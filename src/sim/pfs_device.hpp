#pragma once

/// \file pfs_device.hpp
/// A queued parallel-file-system device for discrete-event simulations
/// (docs/PLATFORM.md).
///
/// The device has `service_channels` slots (the paper's N_S), each worth
/// `channel_bandwidth` (B_N). Transfers are admitted FIFO: at most
/// `service_channels` are in service at once; the rest wait in an arrival-
/// order queue. In-service transfers fair-share the aggregate device
/// bandwidth (channels × B_N), each additionally limited by its own
/// `rate_cap` — the injection bandwidth the interconnect grants the
/// application (fattree.hpp), so a small application cannot absorb more of
/// the device than its links can carry.
///
/// Like SharedChannel, progress is exact (no time-stepping): whenever the
/// active set changes, remaining sizes advance at the old rates and the
/// single pending completion event moves to the new earliest finisher.
///
/// The device tracks measured vs. nominal service time so studies can
/// report how far queueing + link caps diverge from the closed-form Eq. 3
/// cost that `nominal` carries.

#include <cstdint>
#include <deque>
#include <map>

#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace xres {

class PfsDevice {
 public:
  using TransferId = std::uint64_t;
  using CompletionCallback = EventCallback;

  PfsDevice(Simulation& sim, std::uint32_t service_channels,
            Bandwidth channel_bandwidth);

  PfsDevice(const PfsDevice&) = delete;
  PfsDevice& operator=(const PfsDevice&) = delete;
  ~PfsDevice();

  /// Submit \p size for service. \p rate_cap bounds this transfer's rate
  /// (the application's injection bandwidth); \p nominal is the
  /// closed-form cost the caller would have charged without the device
  /// (for divergence accounting). \p on_complete fires at completion.
  TransferId begin_transfer(DataSize size, Bandwidth rate_cap, Duration nominal,
                            CompletionCallback on_complete);

  /// Abort a transfer (queued or in service). Returns false when it
  /// already completed or was already cancelled.
  bool cancel(TransferId id);

  [[nodiscard]] std::size_t in_service() const { return active_.size(); }
  [[nodiscard]] std::size_t queued() const { return waiting_.size(); }
  [[nodiscard]] std::uint64_t completed_transfers() const { return completed_; }

  /// Summed wall time (submit → completion) of completed transfers.
  [[nodiscard]] double measured_seconds() const { return measured_seconds_; }
  /// Summed closed-form nominal time of completed transfers.
  [[nodiscard]] double nominal_seconds() const { return nominal_seconds_; }

 private:
  struct Transfer {
    double remaining_bytes{0.0};
    double rate_cap_bps{0.0};
    double submit_s{0.0};
    double nominal_s{0.0};
    CompletionCallback on_complete;
  };

  /// Rate currently granted to one in-service transfer.
  [[nodiscard]] double rate_of(const Transfer& t) const;

  void advance_to_now();
  void reschedule();
  void on_completion_event();
  void admit_from_queue();

  Simulation& sim_;
  std::uint32_t service_channels_;
  double aggregate_bps_;
  std::map<TransferId, Transfer> active_;
  std::deque<TransferId> waiting_;       ///< FIFO admission order
  std::map<TransferId, Transfer> queued_;
  TransferId next_id_{1};
  double last_update_s_{0.0};
  EventId pending_{};
  bool has_pending_{false};
  std::uint64_t completed_{0};
  double measured_seconds_{0.0};
  double nominal_seconds_{0.0};
};

}  // namespace xres
