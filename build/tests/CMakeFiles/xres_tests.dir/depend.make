# Empty dependencies file for xres_tests.
# This may be replaced when dependencies are built.
