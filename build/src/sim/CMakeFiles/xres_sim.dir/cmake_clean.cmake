file(REMOVE_RECURSE
  "CMakeFiles/xres_sim.dir/event_queue.cpp.o"
  "CMakeFiles/xres_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/xres_sim.dir/shared_channel.cpp.o"
  "CMakeFiles/xres_sim.dir/shared_channel.cpp.o.d"
  "CMakeFiles/xres_sim.dir/simulation.cpp.o"
  "CMakeFiles/xres_sim.dir/simulation.cpp.o.d"
  "libxres_sim.a"
  "libxres_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
