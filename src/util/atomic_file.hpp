#pragma once

/// \file atomic_file.hpp
/// Crash-safe whole-file writes for study artifacts (CSV, metrics JSON,
/// traces, reports). A process killed mid-write must never leave a
/// truncated artifact behind where a complete one is expected: the content
/// is written to `<path>.tmp.<pid>`, flushed to disk, and renamed over
/// \p path in one atomic step (POSIX rename semantics). Readers therefore
/// see either the old file or the complete new file, never a partial one.
///
/// All I/O goes through the fault-injectable wrappers in util/io.hpp and is
/// hardened per the policy table in docs/ROBUSTNESS.md: transient errors
/// (EIO, short writes, failed fsync) are retried with backoff — the whole
/// temp file is rewritten from scratch each attempt, so a half-written temp
/// never survives into the rename. ENOSPC is not retried and surfaces as
/// io::IoError so drivers can exit 75 (resumable) instead of 1.
///
/// The trial journal (recovery/journal.hpp) deliberately does NOT use this:
/// it is append-only by design and protects individual records with CRCs
/// instead.

#include <string>
#include <string_view>

namespace xres {

/// Atomically replace \p path with \p content (plus nothing else — callers
/// append their own trailing newline if they want one). Retries transient
/// I/O errors; throws io::IoError when the write still fails (ENOSPC
/// immediately), with the temporary removed and \p path untouched.
void write_file_atomic(const std::string& path, std::string_view content);

/// Best-effort variant for artifacts that must never fail a run (the
/// perf.json sidecar, telemetry): same write path, but persistent failure
/// returns false instead of throwing. Callers pair it with
/// io::warn_once_degraded.
[[nodiscard]] bool try_write_file_atomic(const std::string& path,
                                         std::string_view content) noexcept;

/// Flush \p file's user-space and kernel buffers to stable storage.
/// Returns false when any step fails (callers decide whether that is
/// fatal). \p file must be an open, writable stdio stream. Fault-injectable
/// (util/io.hpp); errno is set on failure.
[[nodiscard]] bool flush_to_disk(std::FILE* file);

}  // namespace xres
