#include "platform/spec.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace xres {

MachineSpec MachineSpec::exascale() { return MachineSpec{}; }

MachineSpec MachineSpec::testbed(std::uint32_t nodes) {
  MachineSpec spec;
  spec.node_count = nodes;
  spec.validate();
  return spec;
}

const char* to_string(PlatformModelKind kind) {
  switch (kind) {
    case PlatformModelKind::kFlat: return "flat";
    case PlatformModelKind::kFattree: return "fattree";
  }
  XRES_CHECK(false, "unknown platform model kind");
}

PlatformModelKind platform_model_from_string(const std::string& name) {
  if (name == "flat") return PlatformModelKind::kFlat;
  if (name == "fattree") return PlatformModelKind::kFattree;
  XRES_CHECK(false, "platform.model must be 'flat' or 'fattree', got '" + name + "'");
}

void PlatformSpec::validate() const {
  XRES_CHECK(fattree.leaf_radix >= 2, "platform.fattree.radix must be at least 2");
  XRES_CHECK(fattree.taper > 0.0 && fattree.taper <= 1.0,
             "platform.fattree.taper must be in (0, 1]");
}

std::string PlatformSpec::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s(radix=%u,taper=%.2f,pfs=%u)",
                to_string(model), fattree.leaf_radix, fattree.taper,
                fattree.pfs_channels);
  return buf;
}

void MachineSpec::validate() const {
  XRES_CHECK(node_count > 0, "machine needs at least one node");
  XRES_CHECK(node.tflops > 0.0, "node compute must be positive");
  XRES_CHECK(node.cores > 0, "node core count must be positive");
  XRES_CHECK(node.memory > DataSize::zero(), "node memory must be positive");
  XRES_CHECK(node.memory_bandwidth > Bandwidth::bytes_per_second(0.0),
             "memory bandwidth must be positive");
  XRES_CHECK(network.latency >= Duration::zero(), "latency must be non-negative");
  XRES_CHECK(network.bandwidth > Bandwidth::bytes_per_second(0.0),
             "network bandwidth must be positive");
  XRES_CHECK(network.switch_connections > 0, "switch connection count must be positive");
  platform.validate();
}

std::string MachineSpec::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%u nodes x %.1f TFLOPS (%u cores, %s RAM) = %.1f PFLOPS; "
                "net %.0f GB/s, L=%s, N_S=%u",
                node_count, node.tflops, node.cores, to_string(node.memory).c_str(),
                total_pflops(), network.bandwidth.to_gigabytes_per_second(),
                to_string(network.latency).c_str(), network.switch_connections);
  std::string out{buf};
  // Appended only for non-default models: the flat describe() string is a
  // frozen artifact (figure headers, surrogate memo keys).
  if (platform.model != PlatformModelKind::kFlat) {
    out += "; platform=";
    out += platform.describe();
  }
  return out;
}

}  // namespace xres
