#include "platform/transfer.hpp"

#include "util/check.hpp"

namespace xres {

Duration pfs_checkpoint_time(DataSize memory_per_node, std::uint32_t app_nodes,
                             const NetworkSpec& net) {
  XRES_CHECK(app_nodes > 0, "application must use at least one node");
  const Duration per_node = transfer_time(memory_per_node, net.bandwidth);
  const double contention =
      static_cast<double>(app_nodes) / static_cast<double>(net.switch_connections);
  return per_node * contention;
}

Duration local_memory_checkpoint_time(DataSize memory_per_node, const NodeSpec& node) {
  return transfer_time(memory_per_node, node.memory_bandwidth);
}

Duration partner_copy_checkpoint_time(DataSize memory_per_node, const NodeSpec& node,
                                      const NetworkSpec& net) {
  const Duration l1 = local_memory_checkpoint_time(memory_per_node, node);
  const Duration store = transfer_time(memory_per_node, node.memory_bandwidth);
  return 2.0 * (l1 + net.latency + store);
}

}  // namespace xres
