file(REMOVE_RECURSE
  "libxres_apps.a"
)
