#pragma once

/// \file options.hpp
/// The harness options every study shares — observability, crash safety,
/// CSV/report artifact paths — plus the one CLI wiring that turns a
/// `StudyDefinition` into a parser and back. This is the single copy of
/// the plumbing that used to be duplicated between `bench/common.cpp` and
/// `tools/xres_cli.cpp`.

#include <cstdio>
#include <string>

#include "study/registry.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace xres::study {

/// Observability options shared by the study drivers (docs/OBSERVABILITY.md):
/// both artifacts are deterministic functions of the study seed,
/// byte-identical for every --threads value.
struct ObsOptions {
  std::string metrics_path;  ///< non-empty: write merged metrics JSON here
  std::string trace_path;    ///< non-empty: write Chrome trace JSON here

  [[nodiscard]] bool metrics() const { return !metrics_path.empty(); }
  [[nodiscard]] bool trace() const { return !trace_path.empty(); }
  [[nodiscard]] bool enabled() const { return metrics() || trace(); }
};

/// The crash-safety flags (docs/ROBUSTNESS.md) as parsed from the command
/// line; `RecoveryCoordinator` turns them into live journal/resume state.
struct RecoveryCliOptions {
  std::string journal_path;   ///< --journal: write-ahead trial journal here
  bool resume{false};         ///< --resume: skip trials already journaled
  double trial_timeout{0.0};  ///< --trial-timeout seconds (0 = off)
  unsigned trial_retries{0};  ///< --trial-retries: extra same-seed attempts

  [[nodiscard]] bool any() const {
    return !journal_path.empty() || resume || trial_timeout > 0.0 || trial_retries > 0;
  }
};

/// Options every harness shares. Study-specific knobs (trials, patterns,
/// application type, ...) live in the study's parameter schema instead.
struct HarnessOptions {
  std::uint64_t seed{20170529};
  unsigned threads{0};  ///< trial worker threads; 0 = all hardware threads
  bool csv{false};
  bool chart{false};  ///< also render ASCII bars (the figure's visual shape)
  std::string csv_path;  ///< empty: print CSV to stdout when csv is set
  std::string report_path;  ///< non-empty: write a markdown StudyReport here
  ObsOptions obs;  ///< --metrics/--trace/--log-level
  RecoveryCliOptions recovery;  ///< --journal/--resume/--trial-timeout/--trial-retries
  bool ledger{true};  ///< --no-ledger disables the run record
  std::string ledger_path{"results/ledger.jsonl"};  ///< --ledger PATH
  /// Set programmatically by the suite/sweep runner so per-cell ledger
  /// records carry their cell name and suite tag (empty for direct runs).
  std::string run_label;
  std::string run_suite;
};

/// The stream carrying run *status* — journal/resume banners, recovery
/// summaries, wall-clock phase timings, "artifact written to" notices.
/// Defaults to stdout (the historical byte-for-byte behavior); the suite
/// runner points it at stderr so captured study stdout stays a
/// deterministic artifact. Not experiment data: nothing routed here may be
/// needed to interpret the results.
[[nodiscard]] std::FILE* status_stream();
void set_status_stream(std::FILE* stream);

/// printf to status_stream().
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void statusf(const char* format, ...);

/// Registers --metrics/--log-level (and --trace when \p with_trace) on
/// \p cli. Workload drivers pass with_trace = false: their concurrent
/// applications share one simulation, so per-trial tracing does not apply.
void add_obs_options(CliParser& cli, bool with_trace = true);

/// Reads them back after parse(); applies --log-level to the global logger
/// immediately (throws CheckError on a bad name — unlike XRES_LOG, a CLI
/// typo should fail loudly).
[[nodiscard]] ObsOptions read_obs_options(const CliParser& cli);

/// Registers --journal/--resume/--trial-timeout/--trial-retries.
void add_recovery_options(CliParser& cli);

/// Reads them back after parse(); validates combinations (--resume needs
/// --journal, --trial-timeout >= 0) via CliParser::usage_error.
[[nodiscard]] RecoveryCliOptions read_recovery_options(const CliParser& cli);

/// Registers the full option surface of \p def on \p cli: the parameter
/// schema first (as regular `--<key>` options), then the shared harness
/// options its StudyOptionsSpec enables.
void add_study_options(CliParser& cli, const StudyDefinition& def);

/// Reads the schema parameters back after parse(); a value that fails the
/// schema's type/range validation exits via CliParser::usage_error.
[[nodiscard]] ParamSet read_study_params(const CliParser& cli,
                                         const StudyDefinition& def);

/// Report a CheckError as a CLI usage error: strip the "check failed: ...
/// — " prefix and exit(kExitUsage) with the human-readable part. The one
/// conversion every study CLI (run/sweep/spec loading) shares, so bad
/// input always produces one clear line and exit code 2.
[[noreturn]] void usage_error_from(const CheckError& e);

/// Reads the shared harness options back after parse() (applies
/// --log-level, see read_obs_options). `--csv-path` implies `--csv`.
[[nodiscard]] HarnessOptions read_harness_options(const CliParser& cli,
                                                  const StudyDefinition& def);

/// The defaults `read_harness_options` would produce with an empty command
/// line — the starting point for programmatic runs (suite, tests).
[[nodiscard]] HarnessOptions default_harness_options(const StudyDefinition& def);

}  // namespace xres::study
