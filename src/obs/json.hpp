#pragma once

/// \file json.hpp
/// Minimal deterministic JSON emission for the observability artifacts
/// (`--metrics`, `--trace`, `BENCH_engine.json`).
///
/// Determinism is a hard requirement: the metrics file must be
/// byte-identical for every `--threads` value, so numbers are rendered with
/// `std::to_chars` (shortest round-trip form, no locale) and the writer
/// itself never reorders anything — field order is exactly call order.
/// The writer tracks the container stack so malformed documents are a
/// CheckError at emission time, not a surprise in Perfetto.

#include <cstdint>
#include <string>
#include <vector>

namespace xres::obs {

/// \p s with JSON string escapes applied (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest round-trip decimal rendering. Non-finite values (which JSON
/// cannot represent) render as "null".
[[nodiscard]] std::string json_number(double v);
[[nodiscard]] std::string json_number(std::uint64_t v);
[[nodiscard]] std::string json_number(std::int64_t v);

/// Streaming JSON builder.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be directly followed by a value or a
  /// begin_object/begin_array.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-rendered JSON fragment as one value (caller guarantees
  /// validity).
  JsonWriter& raw(const std::string& fragment);

  /// The finished document; throws CheckError if containers remain open.
  [[nodiscard]] const std::string& str() const;

  /// Write the finished document (plus a trailing newline) to \p path;
  /// throws CheckError on I/O failure.
  void write(const std::string& path) const;

 private:
  void before_value();

  std::string out_;
  /// One frame per open container: 'o' or 'a', plus its emitted-count.
  struct Frame {
    char kind;
    std::size_t count{0};
  };
  std::vector<Frame> stack_;
  bool key_pending_{false};
  bool complete_{false};
};

}  // namespace xres::obs
