// Ablation: empirical validation of the Eq.-4 optimal checkpoint interval.
// Sweeps multiples of the planner's tau for checkpoint/restart and shows
// the simulated efficiency peaks near 1.0x — i.e. the closed form the
// paper relies on really is (near-)optimal under the simulated dynamics.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "resilience/planner.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  MachineSpec machine = MachineSpec::exascale();
  study::apply_platform_params(machine, ctx.params());
  const ResilienceConfig resilience;
  const AppSpec app{app_type_by_name("B32"), 60000, 1440};
  const ExecutionPlan base =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, resilience);

  std::printf("Ablation: checkpoint/restart efficiency vs. interval multiplier\n");
  std::printf("application B32 @ 50%% of the exascale system, MTBF 10 y, %u trials\n",
              trials);
  std::printf("planner tau (Eq. 4) = %s\n\n", to_string(base.checkpoint_quantum).c_str());

  Table table{{"tau multiplier", "interval", "efficiency", "checkpoints", "rollbacks"}};
  double best_eff = 0.0;
  double best_mult = 0.0;
  for (double mult : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    ExecutionPlan plan = base;
    plan.checkpoint_quantum = base.checkpoint_quantum * mult;
    std::vector<TrialSpec> specs;
    specs.reserve(trials);
    for (std::uint32_t t = 0; t < trials; ++t) {
      specs.push_back(TrialSpec{
          PlanTrialSpec{plan, resilience, FailureDistribution::exponential()}, {t}});
    }
    RunningStats eff;
    RunningStats checkpoints;
    RunningStats rollbacks;
    for (const ExecutionResult& r : collector.run_batch(
             executor, seed, specs, "tau x" + fmt_double(mult, 2), coordinator)) {
      eff.add(r.efficiency);
      checkpoints.add(static_cast<double>(r.checkpoints_completed));
      rollbacks.add(static_cast<double>(r.rollbacks));
    }
    if (eff.mean() > best_eff) {
      best_eff = eff.mean();
      best_mult = mult;
    }
    table.add_row({fmt_double(mult, 2), to_string(plan.checkpoint_quantum),
                   fmt_mean_std(eff.mean(), eff.stddev()),
                   fmt_double(checkpoints.mean(), 1), fmt_double(rollbacks.mean(), 1)});
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("best multiplier in sweep: %.2f (Eq. 4 is near-optimal when this "
              "is close to 1.0)\n",
              best_mult);
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_checkpoint_interval";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "empirical validation that the Eq.-4 checkpoint interval is near-optimal";
  def.summary = "ablation_checkpoint_interval — simulated efficiency vs. "
                "checkpoint-interval multiplier";
  def.options.default_seed = 10;
  def.params.integer("trials", "trials per multiplier", 80).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
