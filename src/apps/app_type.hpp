#pragma once

/// \file app_type.hpp
/// The eight synthetic benchmark application types of paper Table I.
///
/// Each type is an equation-based benchmark inspired by the NAS Parallel
/// Benchmark scaling analysis of Van der Wijngaart et al. [6]: execution is
/// a sequence of identical one-minute time steps, each spending a fraction
/// T_C communicating and T_W = 1 - T_C computing. Communication intensity
/// takes four levels (0%, 25%, 50%, 75% — EP-like through heavily
/// communication-bound BT-like) and per-node memory two levels (32/64 GB),
/// giving types A32..D64. All types scale weakly: per-node time and memory
/// are invariant in application size.

#include <array>
#include <string>

#include "util/units.hpp"

namespace xres {

/// Communication-intensity class (rows of Table I).
enum class CommClass { kA = 0, kB = 1, kC = 2, kD = 3 };

/// Memory-per-node class (columns of Table I).
enum class MemoryClass { k32GB = 0, k64GB = 1 };

/// One of the eight Table-I synthetic application types.
struct AppType {
  std::string name;        ///< e.g. "C64"
  double comm_fraction;    ///< T_C, fraction of each time step spent communicating
  DataSize memory_per_node;  ///< N_m

  /// T_W = 1 - T_C.
  [[nodiscard]] double work_fraction() const { return 1.0 - comm_fraction; }

  friend bool operator==(const AppType& a, const AppType& b) {
    return a.name == b.name;
  }
};

/// Length of one synthetic time step (paper: one minute).
[[nodiscard]] constexpr Duration time_step_length() { return Duration::minutes(1.0); }

/// Look up a Table-I type by class pair.
[[nodiscard]] AppType app_type(CommClass comm, MemoryClass mem);

/// Look up by name ("A32".."D64"); throws CheckError for unknown names.
[[nodiscard]] AppType app_type_by_name(const std::string& name);

/// All eight types in Table-I order (A32, A64, B32, ..., D64).
[[nodiscard]] const std::array<AppType, 8>& all_app_types();

}  // namespace xres
