// Unit tests for table/CSV output, formatting helpers, the CLI parser and
// the check/logging utilities.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace xres {
namespace {

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    XRES_CHECK(1 == 2, "one is not two");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("util_table_cli_test.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(XRES_CHECK(2 + 2 == 4, "math"));
  EXPECT_NO_THROW(XRES_CHECK(true));
}

TEST(Table, AlignedTextRendering) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2U);
  EXPECT_EQ(t.column_count(), 2U);
}

TEST(Table, CsvEscaping) {
  Table t{{"a", "b"}};
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.1234), "12.3%");
  EXPECT_EQ(fmt_mean_std(0.5, 0.012, 3), "0.500 ± 0.012");
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli{"test program"};
  cli.add_option("--trials", "number of trials", "200");
  cli.add_option("--mtbf-years", "node MTBF", "10.0");
  cli.add_flag("--csv", "emit CSV");
  const char* argv[] = {"prog", "--trials", "50", "--mtbf-years=2.5", "--csv"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.integer("--trials"), 50);
  EXPECT_DOUBLE_EQ(cli.real("--mtbf-years"), 2.5);
  EXPECT_TRUE(cli.flag("--csv"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli{"test"};
  cli.add_option("--trials", "n", "200");
  cli.add_flag("--csv", "csv");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.integer("--trials"), 200);
  EXPECT_FALSE(cli.flag("--csv"));
}

TEST(Cli, RejectsUnknownAndMalformed) {
  CliParser cli{"test"};
  cli.add_option("--n", "n", "1");
  const char* bad1[] = {"prog", "--unknown", "3"};
  EXPECT_THROW((void)cli.parse(3, bad1), CheckError);

  CliParser cli2{"test"};
  cli2.add_option("--n", "n", "1");
  const char* bad2[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli2.parse(3, bad2));
  EXPECT_THROW((void)cli2.integer("--n"), CheckError);

  CliParser cli3{"test"};
  cli3.add_option("--n", "n", "1");
  const char* bad3[] = {"prog", "--n"};
  EXPECT_THROW((void)cli3.parse(2, bad3), CheckError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli{"test"};
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Log, LevelsAndSink) {
  Logger& log = Logger::global();
  const LogLevel old = log.level();
  std::vector<std::string> captured;
  log.set_sink([&captured](LogLevel, const std::string& msg) { captured.push_back(msg); });
  log.set_level(LogLevel::kInfo);

  XRES_LOG_DEBUG("hidden");
  XRES_LOG_INFO("visible");
  XRES_LOG_ERROR("also visible");

  EXPECT_EQ(captured.size(), 2U);
  EXPECT_EQ(captured[0], "visible");

  log.set_sink(nullptr);
  log.set_level(old);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_THROW((void)parse_log_level("loud"), CheckError);
}

}  // namespace
}  // namespace xres
