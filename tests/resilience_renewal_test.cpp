// Tests for the exact renewal-theory expectations and the higher-order
// Daly interval, including convergence of the event-driven simulator to
// the closed-form expectation (a strong end-to-end correctness check).

#include <gtest/gtest.h>

#include <cmath>

#include "core/single_app_study.hpp"
#include "resilience/interval.hpp"
#include "resilience/renewal.hpp"
#include "util/stats.hpp"

namespace xres {
namespace {

TEST(Renewal, NoFailuresIsDeterministic) {
  EXPECT_DOUBLE_EQ(
      expected_restart_time(Duration::seconds(30.0), Rate::zero()).to_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(
      expected_segment_time(Duration::seconds(100.0), Duration::seconds(30.0), Rate::zero())
          .to_seconds(),
      100.0);
  // 100 s of work, τ = 10 s, save 2 s: 9 checkpointed segments + tail.
  EXPECT_DOUBLE_EQ(
      expected_completion_time_exact(Duration::seconds(100.0), Duration::seconds(10.0),
                                     Duration::seconds(2.0), Duration::seconds(3.0),
                                     Rate::zero())
          .to_seconds(),
      118.0);
}

TEST(Renewal, RestartExpectationMatchesFormula) {
  const Rate lambda = Rate::per_second(0.01);
  const Duration restore = Duration::seconds(50.0);
  // E = (e^{λR} - 1)/λ.
  EXPECT_NEAR(expected_restart_time(restore, lambda).to_seconds(),
              (std::exp(0.01 * 50.0) - 1.0) / 0.01, 1e-9);
  // For λR << 1 this approaches R.
  EXPECT_NEAR(expected_restart_time(Duration::seconds(1.0), Rate::per_second(1e-6))
                  .to_seconds(),
              1.0, 1e-5);
}

TEST(Renewal, SegmentExpectationGrowsExponentially) {
  const Rate lambda = Rate::per_second(0.01);
  const Duration d1 = expected_segment_time(Duration::seconds(50.0),
                                            Duration::seconds(10.0), lambda);
  const Duration d2 = expected_segment_time(Duration::seconds(100.0),
                                            Duration::seconds(10.0), lambda);
  // Super-linear growth: doubling the segment more than doubles the cost.
  EXPECT_GT(d2.to_seconds(), 2.0 * d1.to_seconds());
}

TEST(Renewal, ExactDominatesFirstOrderAtHighRisk) {
  // The first-order model underestimates when λτ is not small, because it
  // ignores failures during checkpoints/restarts and repeated failures
  // within one rework window.
  const Duration work = Duration::hours(24.0);
  const Duration tau = Duration::minutes(20.0);
  const Duration save = Duration::minutes(10.0);
  const Rate lambda = Rate::one_per(Duration::hours(1.0));

  const double exact_eff = expected_efficiency_exact(work, tau, save, save, lambda);
  const auto hazard = [lambda](Duration) { return lambda; };
  const double first_order = 1.0 / (1.0 + checkpoint_overhead(tau, save, save, hazard));
  EXPECT_LT(exact_eff, first_order);
  EXPECT_GT(exact_eff, 0.0);
}

TEST(Renewal, SimulatorConvergesToExactExpectation) {
  // The event-driven runtime's mean completion time must converge to the
  // closed form. Single-level plan, exponential failures.
  ExecutionPlan plan;
  plan.kind = TechniqueKind::kCheckpointRestart;
  plan.app = AppSpec{app_type_by_name("A32"), 100, 600};
  plan.physical_nodes = 100;
  plan.baseline = Duration::minutes(600.0);
  plan.work_target = plan.baseline;
  plan.checkpoint_quantum = Duration::minutes(45.0);
  plan.levels = {
      CheckpointLevelSpec{Duration::minutes(8.0), Duration::minutes(8.0), 3}};
  plan.nesting = {1};
  plan.failure_rate = Rate::one_per(Duration::hours(3.0));
  plan.max_wall_time = Duration::infinity();

  const ResilienceConfig resilience;
  RunningStats wall;
  for (std::uint64_t t = 0; t < 400; ++t) {
    const ExecutionResult r = run_trial(
        PlanTrialSpec{plan, resilience, FailureDistribution::exponential()},
        derive_seed(5, t));
    ASSERT_TRUE(r.completed);
    wall.add(r.wall_time.to_hours());
  }

  const Duration exact = expected_completion_time_exact(
      plan.work_target, plan.checkpoint_quantum, plan.levels[0].save_cost,
      plan.levels[0].restore_cost, plan.failure_rate);
  const double ci = wall.summary().ci95_halfwidth;
  EXPECT_NEAR(wall.mean(), exact.to_hours(), 3.0 * ci + 0.05)
      << "simulated mean " << wall.mean() << " h vs exact " << exact.to_hours() << " h";
}

TEST(DalyHigherOrder, RefinesFirstOrder) {
  const Duration cost = Duration::minutes(10.0);
  const Rate lambda = Rate::one_per(Duration::hours(2.0));
  const Duration first = daly_interval(cost, lambda);
  const Duration higher = daly_higher_order_interval(cost, lambda);
  // The correction terms are positive, so the higher-order interval is
  // longer, and closer to the exact-model optimum.
  EXPECT_GT(higher, first);

  const Duration work = Duration::hours(24.0);
  const double eff_first = expected_efficiency_exact(work, first, cost, cost, lambda);
  const double eff_higher = expected_efficiency_exact(work, higher, cost, cost, lambda);
  EXPECT_GE(eff_higher, eff_first - 1e-6);
}

TEST(DalyHigherOrder, CapsAtMtbfWhenCheckpointDominates) {
  const Rate lambda = Rate::one_per(Duration::minutes(30.0));
  const Duration tau =
      daly_higher_order_interval(Duration::hours(2.0), lambda);
  EXPECT_DOUBLE_EQ(tau.to_minutes(), 30.0);
}

TEST(Renewal, RejectsBadInputs) {
  EXPECT_THROW((void)expected_completion_time_exact(Duration::zero(), Duration::seconds(1.0),
                                              Duration::seconds(1.0),
                                              Duration::seconds(1.0), Rate::zero()),
               CheckError);
  EXPECT_THROW((void)expected_completion_time_exact(Duration::seconds(1.0), Duration::zero(),
                                              Duration::seconds(1.0),
                                              Duration::seconds(1.0), Rate::zero()),
               CheckError);
}

}  // namespace
}  // namespace xres
