
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rm/extensions.cpp" "src/rm/CMakeFiles/xres_rm.dir/extensions.cpp.o" "gcc" "src/rm/CMakeFiles/xres_rm.dir/extensions.cpp.o.d"
  "/root/repo/src/rm/fcfs.cpp" "src/rm/CMakeFiles/xres_rm.dir/fcfs.cpp.o" "gcc" "src/rm/CMakeFiles/xres_rm.dir/fcfs.cpp.o.d"
  "/root/repo/src/rm/random_order.cpp" "src/rm/CMakeFiles/xres_rm.dir/random_order.cpp.o" "gcc" "src/rm/CMakeFiles/xres_rm.dir/random_order.cpp.o.d"
  "/root/repo/src/rm/scheduler.cpp" "src/rm/CMakeFiles/xres_rm.dir/scheduler.cpp.o" "gcc" "src/rm/CMakeFiles/xres_rm.dir/scheduler.cpp.o.d"
  "/root/repo/src/rm/slack.cpp" "src/rm/CMakeFiles/xres_rm.dir/slack.cpp.o" "gcc" "src/rm/CMakeFiles/xres_rm.dir/slack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xres_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
