#pragma once

/// \file workload.hpp
/// Arrival-pattern generation for the oversubscribed workload studies
/// (paper Sections VI and VII).
///
/// A pattern = an initial fill (the machine starts at full utilization)
/// plus 100 Poisson arrivals with a two-hour mean gap. Each arriving
/// application draws its type uniformly from Table I, its baseline from
/// {6, 12, 24, 48} h, and its size from {1, 2, 3, 6, 12, 25, 50}% of the
/// machine (≈10–500 PFLOPS). Section VII additionally biases patterns
/// toward high-memory, high-communication, or large applications.

#include <cstdint>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "util/rng.hpp"

namespace xres {

/// Application-mix bias (Section VII).
enum class WorkloadBias {
  kUnbiased,           ///< uniform over all of Table I
  kHighMemory,         ///< only N_m = 64 GB types
  kHighCommunication,  ///< only T_C > 0.25 types (C and D classes)
  kLargeApps,          ///< only 12 / 25 / 50 % sizes
};

[[nodiscard]] const char* to_string(WorkloadBias bias);

/// Tunable pattern parameters (paper defaults built in).
struct WorkloadConfig {
  std::uint32_t machine_nodes{120000};
  std::uint32_t arrival_count{100};
  Duration mean_interarrival{Duration::hours(2.0)};
  std::vector<double> size_fractions{0.01, 0.02, 0.03, 0.06, 0.12, 0.25, 0.50};
  std::vector<double> baseline_hours{6.0, 12.0, 24.0, 48.0};
  WorkloadBias bias{WorkloadBias::kUnbiased};
  /// Generate jobs at t = 0 until the machine is (nearly) full.
  bool initial_fill{true};

  void validate() const;
};

/// One reproducible arrival pattern: initial-fill jobs (arrival = 0)
/// followed by Poisson arrivals, all with Eq.-1 deadlines assigned.
struct ArrivalPattern {
  std::vector<Job> jobs;  ///< sorted by arrival time; fill jobs first

  [[nodiscard]] std::size_t size() const { return jobs.size(); }
};

/// Generate pattern \p index of a study seeded with \p root_seed. The same
/// (config, root_seed, index) always yields the same pattern, so every
/// resilience × scheduler combination replays identical workloads
/// (the paper compares techniques "using the same sets of arriving
/// applications").
[[nodiscard]] ArrivalPattern generate_pattern(const WorkloadConfig& config,
                                              std::uint64_t root_seed,
                                              std::uint32_t index);

}  // namespace xres
