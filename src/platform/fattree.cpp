#include "platform/fattree.hpp"

#include <algorithm>

#include "platform/transfer.hpp"
#include "util/check.hpp"

namespace xres {

FatTreeTopology::FatTreeTopology(std::uint32_t node_count, const NetworkSpec& net,
                                 const FatTreeParams& params)
    : radix_{params.leaf_radix}, per_node_bps_{net.bandwidth.to_bytes_per_second()} {
  XRES_CHECK(node_count > 0, "fat tree needs at least one node");
  XRES_CHECK(radix_ >= 2, "fat-tree radix must be at least 2");
  // Grow levels while a subtree is a strict subset of the machine: the
  // root has no tree uplink — its hop to the PFS is the queued device
  // itself (whose aggregate caps the rate in pfs_rate_cap_for_range), so
  // including it here would pin every cap to the top taper and erase
  // placement sensitivity.
  const double base_uplink =
      net.bandwidth.to_bytes_per_second() * static_cast<double>(net.switch_connections);
  std::uint64_t size = radix_;
  double uplink = base_uplink;
  while (size < node_count) {
    uplink_bps_.push_back(uplink);
    uplink *= params.taper;
    size *= radix_;
  }
}

std::uint64_t FatTreeTopology::subtree_size(std::uint32_t level) const {
  XRES_CHECK(level >= 1 && level <= levels(), "fat-tree level out of range");
  std::uint64_t size = 1;
  for (std::uint32_t l = 0; l < level; ++l) size *= radix_;
  return size;
}

Bandwidth FatTreeTopology::uplink(std::uint32_t level) const {
  XRES_CHECK(level >= 1 && level <= levels(), "fat-tree level out of range");
  return Bandwidth::bytes_per_second(uplink_bps_[level - 1]);
}

std::uint64_t FatTreeTopology::spanned_subtrees(std::uint32_t level, std::uint32_t first,
                                                std::uint32_t count) const {
  XRES_CHECK(count > 0, "spanned_subtrees needs a non-empty range");
  const std::uint64_t size = subtree_size(level);
  const std::uint64_t lo = first / size;
  const std::uint64_t hi = (static_cast<std::uint64_t>(first) + count - 1) / size;
  return hi - lo + 1;
}

Bandwidth FatTreeTopology::injection_bandwidth(std::uint32_t first,
                                               std::uint32_t count) const {
  XRES_CHECK(count > 0, "injection_bandwidth needs a non-empty range");
  double cap = static_cast<double>(count) * per_node_bps_;
  for (std::uint32_t level = 1; level <= levels(); ++level) {
    const double level_cap =
        static_cast<double>(spanned_subtrees(level, first, count)) *
        uplink_bps_[level - 1];
    cap = std::min(cap, level_cap);
  }
  return Bandwidth::bytes_per_second(cap);
}

FatTreePlatformModel::FatTreePlatformModel(const MachineSpec& machine)
    : machine_{machine},
      topology_{machine.node_count, machine.network, machine.platform.fattree} {}

Duration FatTreePlatformModel::pfs_transfer_time(DataSize memory_per_node,
                                                 std::uint32_t app_nodes) const {
  XRES_CHECK(app_nodes > 0, "application must use at least one node");
  const DataSize total = memory_per_node * static_cast<double>(app_nodes);
  return transfer_time(total, pfs_effective_bandwidth(app_nodes));
}

Bandwidth FatTreePlatformModel::pfs_effective_bandwidth(std::uint32_t app_nodes) const {
  // Aligned contiguous placement (first node on a subtree boundary): the
  // planner's estimate before the allocator has placed the application.
  // Under taper < 1 this is the conservative single-pod figure; the
  // workload engine re-derives the cap from the real range once placed.
  return pfs_rate_cap_for_range(0, app_nodes);
}

Bandwidth FatTreePlatformModel::pfs_rate_cap_for_range(std::uint32_t first_node,
                                                       std::uint32_t count) const {
  const Bandwidth injection = topology_.injection_bandwidth(first_node, count);
  const Bandwidth device =
      pfs_channel_bandwidth() * static_cast<double>(pfs_service_channels());
  return std::min(injection, device);
}

Duration FatTreePlatformModel::local_memory_time(DataSize memory_per_node) const {
  return local_memory_checkpoint_time(memory_per_node, machine_.node);
}

Duration FatTreePlatformModel::partner_copy_time(DataSize memory_per_node) const {
  return partner_copy_checkpoint_time(memory_per_node, machine_.node,
                                      machine_.network);
}

std::uint32_t FatTreePlatformModel::pfs_service_channels() const {
  const std::uint32_t configured = machine_.platform.fattree.pfs_channels;
  return configured > 0 ? configured : machine_.network.switch_connections;
}

Bandwidth FatTreePlatformModel::pfs_channel_bandwidth() const {
  return machine_.network.bandwidth;
}

}  // namespace xres
