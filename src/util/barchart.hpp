#pragma once

/// \file barchart.hpp
/// ASCII grouped horizontal bar charts — terminal rendering of the
/// paper's figures. Each category (x-axis group, e.g. a system share)
/// holds one bar per series (e.g. per resilience technique).

#include <cstddef>
#include <string>
#include <vector>

namespace xres {

class BarChart {
 public:
  /// \p series_names label the bars within each category, in order.
  explicit BarChart(std::vector<std::string> series_names);

  /// Append a category; \p values must have one entry per series.
  /// Negative values are invalid.
  void add_category(const std::string& name, const std::vector<double>& values);

  [[nodiscard]] std::size_t category_count() const { return categories_.size(); }

  /// Render with bars scaled so \p max_value spans \p bar_width columns.
  /// Pass max_value <= 0 to auto-scale to the largest value (1.0 minimum,
  /// so efficiency charts keep an absolute scale).
  [[nodiscard]] std::string render(std::size_t bar_width = 50,
                                   double max_value = 0.0) const;

 private:
  struct Category {
    std::string name;
    std::vector<double> values;
  };
  std::vector<std::string> series_;
  std::vector<Category> categories_;
};

}  // namespace xres
