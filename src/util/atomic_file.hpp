#pragma once

/// \file atomic_file.hpp
/// Crash-safe whole-file writes for study artifacts (CSV, metrics JSON,
/// traces, reports). A process killed mid-write must never leave a
/// truncated artifact behind where a complete one is expected: the content
/// is written to `<path>.tmp.<pid>`, flushed to disk, and renamed over
/// \p path in one atomic step (POSIX rename semantics). Readers therefore
/// see either the old file or the complete new file, never a partial one.
///
/// The trial journal (recovery/journal.hpp) deliberately does NOT use this:
/// it is append-only by design and protects individual records with CRCs
/// instead.

#include <string>
#include <string_view>

namespace xres {

/// Atomically replace \p path with \p content (plus nothing else — callers
/// append their own trailing newline if they want one). Throws CheckError
/// on any I/O failure; on failure the temporary file is removed and \p path
/// is left untouched.
void write_file_atomic(const std::string& path, std::string_view content);

/// Flush \p file's user-space and kernel buffers to stable storage.
/// Returns false when any step fails (callers decide whether that is
/// fatal). \p file must be an open, writable stdio stream.
[[nodiscard]] bool flush_to_disk(std::FILE* file);

}  // namespace xres
