#include "resilience/selector.hpp"

#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"
#include "util/check.hpp"

namespace xres {

ResilienceSelector::ResilienceSelector(MachineSpec machine, ResilienceConfig config,
                                       std::vector<TechniqueKind> candidates)
    : machine_{machine}, config_{std::move(config)}, candidates_{std::move(candidates)} {
  machine_.validate();
  config_.validate();
  if (candidates_.empty()) {
    candidates_.assign(workload_techniques().begin(), workload_techniques().end());
  }
  for (TechniqueKind kind : candidates_) {
    XRES_CHECK(kind != TechniqueKind::kNone,
               "kNone is a baseline mode, not a selectable technique");
  }
}

double ResilienceSelector::predicted_efficiency(const AppSpec& app,
                                                TechniqueKind kind) const {
  return predict_efficiency(make_plan(kind, app, machine_, config_), config_);
}

ResilienceSelector::Selection ResilienceSelector::select(const AppSpec& app) const {
  Selection best;
  bool first = true;
  for (TechniqueKind kind : candidates_) {
    ExecutionPlan plan = make_plan(kind, app, machine_, config_);
    const double eff = predict_efficiency(plan, config_);
    if (first || eff > best.predicted_efficiency) {
      best.kind = kind;
      best.predicted_efficiency = eff;
      best.plan = std::move(plan);
      first = false;
    }
  }
  XRES_CHECK(!first, "selector has no candidates");
  return best;
}

}  // namespace xres
