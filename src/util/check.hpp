#pragma once

/// \file check.hpp
/// Runtime precondition / invariant checking that stays active in release
/// builds. Simulation correctness depends on model invariants (allocator
/// consistency, non-negative durations, probability mass sums); violating
/// them silently would corrupt every downstream statistic, so checks throw.

#include <stdexcept>
#include <string>

namespace xres {

/// Thrown when an XRES_CHECK condition is violated. Indicates a programming
/// or configuration error, never an expected runtime condition.
class CheckError final : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace xres

/// Verify \p cond; on failure throw xres::CheckError with location info.
/// The optional second argument is a std::string-convertible message.
#define XRES_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::xres::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                   ::std::string{__VA_ARGS__});            \
    }                                                                      \
  } while (false)
