#include "platform/platform_model.hpp"

#include "platform/fattree.hpp"
#include "platform/transfer.hpp"
#include "util/check.hpp"

namespace xres {

Duration FlatPlatformModel::pfs_transfer_time(DataSize memory_per_node,
                                              std::uint32_t app_nodes) const {
  return pfs_checkpoint_time(memory_per_node, app_nodes, machine_.network);
}

Bandwidth FlatPlatformModel::pfs_effective_bandwidth(std::uint32_t app_nodes) const {
  XRES_CHECK(app_nodes > 0, "application must use at least one node");
  // Eq. 3 rearranged: total bytes N_a·N_m over T = (N_m/B_N)(N_a/N_S)
  // gives B_N · N_S regardless of application size.
  return machine_.network.bandwidth *
         static_cast<double>(machine_.network.switch_connections);
}

Bandwidth FlatPlatformModel::pfs_rate_cap_for_range(std::uint32_t /*first_node*/,
                                                    std::uint32_t count) const {
  return pfs_effective_bandwidth(count);
}

Duration FlatPlatformModel::local_memory_time(DataSize memory_per_node) const {
  return local_memory_checkpoint_time(memory_per_node, machine_.node);
}

Duration FlatPlatformModel::partner_copy_time(DataSize memory_per_node) const {
  return partner_copy_checkpoint_time(memory_per_node, machine_.node,
                                      machine_.network);
}

std::uint32_t FlatPlatformModel::pfs_service_channels() const {
  return machine_.network.switch_connections;
}

Bandwidth FlatPlatformModel::pfs_channel_bandwidth() const {
  return machine_.network.bandwidth;
}

std::unique_ptr<PlatformModel> make_platform_model(const MachineSpec& machine) {
  switch (machine.platform.model) {
    case PlatformModelKind::kFlat:
      return std::make_unique<FlatPlatformModel>(machine);
    case PlatformModelKind::kFattree:
      return std::make_unique<FatTreePlatformModel>(machine);
  }
  XRES_CHECK(false, "unhandled platform model kind");
}

}  // namespace xres
