#include "resilience/multilevel.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace xres {

namespace {

/// Decompose g(w) = A/w + B·w + K for a fixed nesting vector.
struct OverheadTerms {
  double a{0.0};  // per-work checkpoint cost numerator (seconds)
  double b{0.0};  // rework slope (per second)
  double k{0.0};  // interval-independent restart expectation
};

OverheadTerms decompose(const std::vector<int>& nesting,
                        const std::vector<CheckpointLevelSpec>& levels,
                        const std::vector<Rate>& level_rates) {
  const std::size_t m = levels.size();
  // prod[i] = n_1 · ... · n_i (prod[0] = 1).
  std::vector<double> prod(m + 1, 1.0);
  for (std::size_t i = 0; i < m; ++i) {
    prod[i + 1] = prod[i] * static_cast<double>(nesting[i]);
  }
  const double total = prod[m - 1] > 0 ? prod[m - 1] : 1.0;  // checkpoints per top period

  OverheadTerms t;
  for (std::size_t i = 0; i < m; ++i) {
    // Number of level-(i+1) checkpoints in one top period.
    const double count = (i + 1 < m) ? total / prod[i] - total / prod[i + 1]
                                     : total / prod[m - 1];
    t.a += count * levels[i].save_cost.to_seconds() / total;
    const double lambda = level_rates[i].per_second_value();
    t.b += lambda * prod[i] / 2.0;
    t.k += lambda * levels[i].restore_cost.to_seconds();
  }
  return t;
}

}  // namespace

double multilevel_overhead(Duration quantum, const std::vector<int>& nesting,
                           const std::vector<CheckpointLevelSpec>& levels,
                           const std::vector<Rate>& level_rates) {
  XRES_CHECK(!levels.empty(), "need at least one level");
  XRES_CHECK(nesting.size() == levels.size(), "nesting size mismatch");
  XRES_CHECK(level_rates.size() == levels.size(), "rate size mismatch");
  XRES_CHECK(quantum > Duration::zero(), "quantum must be positive");
  const OverheadTerms t = decompose(nesting, levels, level_rates);
  const double w = quantum.to_seconds();
  return t.a / w + t.b * w + t.k;
}

MultilevelSchedule optimize_multilevel(const std::vector<CheckpointLevelSpec>& levels,
                                       const std::vector<Rate>& level_rates,
                                       int max_nesting) {
  XRES_CHECK(!levels.empty(), "need at least one level");
  XRES_CHECK(level_rates.size() == levels.size(), "rate size mismatch");
  XRES_CHECK(max_nesting >= 1, "max nesting must be >= 1");

  // Geometric candidate grid for each nesting count.
  std::vector<int> candidates;
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}) {
    if (n <= max_nesting) candidates.push_back(n);
  }

  const std::size_t dims = levels.size() - 1;
  std::vector<std::size_t> choice(dims, 0);
  MultilevelSchedule best;
  best.overhead = std::numeric_limits<double>::infinity();

  auto evaluate = [&] {
    std::vector<int> nesting(levels.size(), 1);
    for (std::size_t i = 0; i < dims; ++i) nesting[i] = candidates[choice[i]];
    const OverheadTerms t = decompose(nesting, levels, level_rates);
    double w;
    if (t.b > 0.0) {
      w = std::sqrt(t.a / t.b);
    } else {
      // No failures: checkpoint as rarely as possible.
      w = Duration::days(365.0).to_seconds();
    }
    // Keep the quantum meaningful relative to the cheapest checkpoint.
    w = std::max(w, levels.front().save_cost.to_seconds() / 10.0);
    w = std::max(w, 1e-3);
    const double g = t.a / w + t.b * w + t.k;
    if (g < best.overhead) {
      best.overhead = g;
      best.quantum = Duration::seconds(w);
      best.nesting = nesting;
    }
  };

  // Odometer enumeration over the candidate grid (dims is at most 2 for the
  // paper's three-level scheme; the loop generalizes to any depth).
  if (dims == 0) {
    evaluate();
    return best;
  }
  for (;;) {
    evaluate();
    std::size_t d = 0;
    while (d < dims) {
      if (++choice[d] < candidates.size()) break;
      choice[d] = 0;
      ++d;
    }
    if (d == dims) break;
  }
  return best;
}

}  // namespace xres
