#include "runtime/result.hpp"

#include <cstdio>

namespace xres {

std::string ExecutionResult::describe() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s in %s (baseline %s, efficiency %.3f)\n"
      "  failures: %llu seen, %llu masked, %llu rollbacks; checkpoints: %llu\n"
      "  time: work %s, checkpoint %s, restart %s, recovery %s, rework %s\n"
      "  energy proxy: %.3e node-seconds",
      completed ? "completed" : "aborted", to_string(wall_time).c_str(),
      to_string(baseline).c_str(), efficiency,
      static_cast<unsigned long long>(failures_seen),
      static_cast<unsigned long long>(failures_masked),
      static_cast<unsigned long long>(rollbacks),
      static_cast<unsigned long long>(checkpoints_completed),
      to_string(time_working).c_str(), to_string(time_checkpointing).c_str(),
      to_string(time_restarting).c_str(), to_string(time_recovering).c_str(),
      to_string(rework).c_str(), node_seconds);
  return buf;
}

}  // namespace xres
