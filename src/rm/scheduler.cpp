#include "rm/scheduler.hpp"

#include "util/check.hpp"

namespace xres {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "FCFS";
    case SchedulerKind::kRandom: return "Random";
    case SchedulerKind::kSlack: return "Slack";
    case SchedulerKind::kFirstFit: return "FirstFit";
    case SchedulerKind::kSjf: return "SJF";
    case SchedulerKind::kTopoPack: return "TopoPack";
  }
  return "?";
}

SchedulerKind scheduler_from_string(const std::string& name) {
  for (SchedulerKind kind : extended_schedulers()) {
    if (name == to_string(kind)) return kind;
  }
  XRES_CHECK(false, "unknown scheduler: " + name);
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kRandom: return std::make_unique<RandomScheduler>();
    case SchedulerKind::kSlack: return std::make_unique<SlackScheduler>();
    case SchedulerKind::kFirstFit: return std::make_unique<FirstFitScheduler>();
    case SchedulerKind::kSjf: return std::make_unique<SjfScheduler>();
    case SchedulerKind::kTopoPack: return std::make_unique<TopoPackScheduler>();
  }
  XRES_CHECK(false, "unhandled scheduler kind");
}

const std::vector<SchedulerKind>& all_schedulers() {
  static const std::vector<SchedulerKind> kinds{
      SchedulerKind::kFcfs, SchedulerKind::kRandom, SchedulerKind::kSlack};
  return kinds;
}

const std::vector<SchedulerKind>& extended_schedulers() {
  static const std::vector<SchedulerKind> kinds{
      SchedulerKind::kFcfs, SchedulerKind::kRandom, SchedulerKind::kSlack,
      SchedulerKind::kFirstFit, SchedulerKind::kSjf, SchedulerKind::kTopoPack};
  return kinds;
}

}  // namespace xres
