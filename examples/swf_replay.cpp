// SWF replay: run a real cluster job log (Standard Workload Format,
// Parallel Workloads Archive) through the exascale workload engine under a
// chosen resilience policy.
//
//   $ ./swf_replay --swf /path/to/log.swf --node-scale 0.01
//
// Without --swf, a bundled demo fragment is used so the example always
// runs out of the box.

#include <cstdio>

#include "apps/swf.hpp"
#include "core/workload_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// A miniature synthetic "log" in SWF shape for out-of-the-box runs: a
// morning burst of mid-size jobs followed by a steady afternoon stream.
constexpr const char* kDemoSwf = R"(; demo SWF fragment (synthetic)
1  0      0  21600  2400  2400 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
2  600    0  43200  7200  7200 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
3  1200   0  21600  3600  3600 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
4  1800   0  86400  14400 14400 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
5  7200   0  43200  30000 30000 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
6  14400  0  21600  2400  2400 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
7  21600  0  86400  7200  7200 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
8  28800  0  43200  14400 14400 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
9  36000  0  21600  3600  3600 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
10 43200  0  86400  60000 60000 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"swf_replay — run a Standard Workload Format log on the "
                "simulated exascale machine"};
  cli.add_option("--swf", "path to an SWF log (empty: bundled demo)", "");
  cli.add_option("--node-scale", "nodes per SWF processor", "1.0");
  cli.add_option("--max-jobs", "import at most this many jobs (0 = all)", "500");
  cli.add_option("--technique",
                 "resilience technique, or 'selection' / 'none'", "multilevel");
  cli.add_option("--scheduler", "FCFS | Random | Slack | FirstFit | SJF", "Slack");
  cli.add_option("--seed", "root RNG seed", "1");
  if (!cli.parse_or_exit(argc, argv)) return 0;

  SwfImportConfig import;
  import.node_scale = cli.real("--node-scale");
  import.max_jobs = static_cast<std::uint32_t>(cli.integer("--max-jobs"));
  import.seed = static_cast<std::uint64_t>(cli.integer("--seed"));

  SwfImportStats stats;
  const std::string path = cli.str("--swf");
  const ArrivalPattern pattern =
      path.empty() ? import_swf(kDemoSwf, import, &stats)
                   : load_swf(path, import, &stats);
  std::printf("imported %u jobs (%u invalid records skipped, %u comment lines)\n",
              stats.imported, stats.skipped_invalid, stats.comments);
  XRES_CHECK(!pattern.jobs.empty(), "no usable jobs in the SWF input");

  WorkloadEngineConfig engine;
  engine.scheduler = scheduler_from_string(cli.str("--scheduler"));
  engine.seed = import.seed;
  engine.record_occupancy = true;
  const std::string technique = cli.str("--technique");
  if (technique == "selection") {
    engine.policy = TechniquePolicy::selection();
  } else if (technique == "none") {
    engine.policy = TechniquePolicy::ideal_baseline();
  } else {
    engine.policy = TechniquePolicy::fixed_technique(technique_from_string(technique));
  }

  const WorkloadRunResult result = run_workload(engine, pattern);

  Table table{{"metric", "value"}};
  table.add_row({"jobs", std::to_string(result.total_jobs)});
  table.add_row({"completed", std::to_string(result.completed)});
  table.add_row({"dropped", std::to_string(result.dropped) + " (" +
                              fmt_percent(result.dropped_fraction) + ")"});
  table.add_row({"  in queue", std::to_string(result.dropped_before_start)});
  table.add_row({"  mid-run", std::to_string(result.dropped_while_running)});
  table.add_row({"failures injected", std::to_string(result.failures_injected)});
  table.add_row({"makespan", to_string(result.makespan)});
  table.add_row({"mean utilization", fmt_percent(result.mean_utilization)});
  if (result.completed_slowdown.count > 0) {
    table.add_row({"completed slowdown",
                   fmt_mean_std(result.completed_slowdown.mean,
                                result.completed_slowdown.stddev)});
  }
  if (result.queue_wait_hours.count > 0) {
    table.add_row({"queue wait (h)",
                   fmt_mean_std(result.queue_wait_hours.mean,
                                result.queue_wait_hours.stddev)});
  }
  std::printf("%s", table.to_text().c_str());

  if (!result.occupancy.spans().empty()) {
    std::printf("\nmachine occupancy (darker = fuller node band):\n%s",
                result.occupancy
                    .render(engine.machine.node_count,
                            TimePoint::at(result.makespan))
                    .c_str());
  }
  return 0;
}
