// Unit tests for the synthetic application model (Table I) and the
// workload arrival-pattern generator (Sections VI-VII).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/app_type.hpp"
#include "apps/application.hpp"
#include "apps/workload.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TEST(AppType, TableOneHasAllEightTypes) {
  const auto& types = all_app_types();
  ASSERT_EQ(types.size(), 8U);
  std::set<std::string> names;
  for (const AppType& t : types) names.insert(t.name);
  const std::set<std::string> expected{"A32", "A64", "B32", "B64",
                                       "C32", "C64", "D32", "D64"};
  EXPECT_EQ(names, expected);
}

TEST(AppType, CommunicationAndMemoryLevels) {
  EXPECT_DOUBLE_EQ(app_type_by_name("A32").comm_fraction, 0.0);
  EXPECT_DOUBLE_EQ(app_type_by_name("B64").comm_fraction, 0.25);
  EXPECT_DOUBLE_EQ(app_type_by_name("C32").comm_fraction, 0.5);
  EXPECT_DOUBLE_EQ(app_type_by_name("D64").comm_fraction, 0.75);
  EXPECT_DOUBLE_EQ(app_type_by_name("A32").memory_per_node.to_gigabytes(), 32.0);
  EXPECT_DOUBLE_EQ(app_type_by_name("D64").memory_per_node.to_gigabytes(), 64.0);
  EXPECT_DOUBLE_EQ(app_type_by_name("D32").work_fraction(), 0.25);
  EXPECT_THROW(app_type_by_name("E32"), CheckError);
}

TEST(AppType, LookupByClassesMatchesNames) {
  EXPECT_EQ(app_type(CommClass::kC, MemoryClass::k64GB).name, "C64");
  EXPECT_EQ(app_type(CommClass::kA, MemoryClass::k32GB).name, "A32");
}

TEST(AppType, TimeStepIsOneMinute) {
  EXPECT_DOUBLE_EQ(time_step_length().to_minutes(), 1.0);
}

TEST(AppSpec, BaselineAndSplits) {
  // T_B = T_S minutes regardless of size (weak scaling).
  const AppSpec spec{app_type_by_name("C32"), 5000, 1440};
  EXPECT_DOUBLE_EQ(spec.baseline_time().to_hours(), 24.0);
  EXPECT_DOUBLE_EQ(spec.total_work_time().to_hours(), 12.0);
  EXPECT_DOUBLE_EQ(spec.total_comm_time().to_hours(), 12.0);
  EXPECT_DOUBLE_EQ(spec.total_memory().to_terabytes(), 160.0);
  EXPECT_NO_THROW(spec.validate());
}

TEST(AppSpec, FromBaselineRoundTrips) {
  const AppSpec spec =
      AppSpec::from_baseline(app_type_by_name("A64"), 1200, Duration::hours(6.0));
  EXPECT_EQ(spec.time_steps, 360U);
  EXPECT_THROW(AppSpec::from_baseline(app_type_by_name("A64"), 1200,
                                      Duration::seconds(90.0)),
               CheckError);
}

TEST(AppSpec, ValidationCatchesBadSpecs) {
  AppSpec spec{app_type_by_name("A32"), 0, 100};
  EXPECT_THROW(spec.validate(), CheckError);
  spec.nodes = 10;
  spec.time_steps = 0;
  EXPECT_THROW(spec.validate(), CheckError);
}

TEST(Deadline, EquationOneBounds) {
  // T_D = T_A + U(1.2, 2.0) * T_B.
  Pcg32 rng{17};
  const TimePoint arrival = TimePoint::at(Duration::hours(5.0));
  const Duration baseline = Duration::hours(10.0);
  for (int i = 0; i < 2000; ++i) {
    const TimePoint deadline = assign_deadline(arrival, baseline, rng);
    const double factor = (deadline - arrival) / baseline;
    EXPECT_GE(factor, 1.2);
    EXPECT_LT(factor, 2.0);
  }
}

TEST(Workload, PatternIsReproducible) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  const ArrivalPattern a = generate_pattern(config, 99, 3);
  const ArrivalPattern b = generate_pattern(config, 99, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs[i].spec.type.name, b.jobs[i].spec.type.name);
    EXPECT_EQ(a.jobs[i].spec.nodes, b.jobs[i].spec.nodes);
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].deadline, b.jobs[i].deadline);
  }
  const ArrivalPattern c = generate_pattern(config, 99, 4);
  EXPECT_FALSE(a.size() == c.size() &&
               std::equal(a.jobs.begin(), a.jobs.end(), c.jobs.begin(),
                          [](const Job& x, const Job& y) {
                            return x.arrival == y.arrival && x.spec.nodes == y.spec.nodes;
                          }));
}

TEST(Workload, InitialFillSaturatesMachine) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  const ArrivalPattern pattern = generate_pattern(config, 7, 0);
  std::uint32_t fill_nodes = 0;
  std::uint32_t fill_jobs = 0;
  for (const Job& job : pattern.jobs) {
    if (job.arrival == TimePoint::origin()) {
      fill_nodes += job.spec.nodes;
      ++fill_jobs;
    }
  }
  EXPECT_GT(fill_jobs, 0U);
  EXPECT_LE(fill_nodes, 120000U);
  // Remaining gap is smaller than the smallest size option (1%).
  EXPECT_GT(fill_nodes, 120000U - 1200U);
}

TEST(Workload, ArrivalsMatchConfiguration) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  config.arrival_count = 100;
  const ArrivalPattern pattern = generate_pattern(config, 11, 0);
  std::uint32_t arrivals = 0;
  TimePoint prev = TimePoint::origin();
  for (const Job& job : pattern.jobs) {
    if (job.arrival > TimePoint::origin()) {
      ++arrivals;
      EXPECT_GE(job.arrival, prev);
      prev = job.arrival;
      // Sizes come from the configured percentage menu.
      const double fraction = static_cast<double>(job.spec.nodes) / 120000.0;
      const std::vector<double> menu{0.01, 0.02, 0.03, 0.06, 0.12, 0.25, 0.50};
      const bool on_menu = std::any_of(menu.begin(), menu.end(), [&](double m) {
        return std::abs(fraction - m) < 1e-6;
      });
      EXPECT_TRUE(on_menu) << fraction;
      // Baselines from {6, 12, 24, 48} h.
      const double hours = job.spec.baseline_time().to_hours();
      EXPECT_TRUE(hours == 6.0 || hours == 12.0 || hours == 24.0 || hours == 48.0);
    }
    EXPECT_GT(job.deadline, job.arrival);
  }
  EXPECT_EQ(arrivals, 100U);
}

TEST(Workload, MeanInterarrivalIsTwoHours) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  config.arrival_count = 400;
  double total_hours = 0.0;
  int gaps = 0;
  TimePoint prev = TimePoint::origin();
  const ArrivalPattern pattern = generate_pattern(config, 23, 0);
  for (const Job& job : pattern.jobs) {
    if (job.arrival > TimePoint::origin()) {
      total_hours += (job.arrival - prev).to_hours();
      prev = job.arrival;
      ++gaps;
    }
  }
  EXPECT_NEAR(total_hours / gaps, 2.0, 0.35);
}

TEST(Workload, HighMemoryBiasOnlyUses64GB) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  config.bias = WorkloadBias::kHighMemory;
  const ArrivalPattern pattern = generate_pattern(config, 5, 0);
  for (const Job& job : pattern.jobs) {
    EXPECT_DOUBLE_EQ(job.spec.type.memory_per_node.to_gigabytes(), 64.0);
  }
}

TEST(Workload, HighCommunicationBiasOnlyUsesCAndD) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  config.bias = WorkloadBias::kHighCommunication;
  const ArrivalPattern pattern = generate_pattern(config, 5, 0);
  for (const Job& job : pattern.jobs) {
    EXPECT_GT(job.spec.type.comm_fraction, 0.25);
  }
}

TEST(Workload, LargeAppsBiasOnlyUsesLargeSizes) {
  WorkloadConfig config;
  config.machine_nodes = 120000;
  config.bias = WorkloadBias::kLargeApps;
  const ArrivalPattern pattern = generate_pattern(config, 5, 0);
  for (const Job& job : pattern.jobs) {
    EXPECT_GE(job.spec.nodes, 14400U);  // >= 12% of the machine
  }
}

TEST(Workload, BiasNamesRoundTrip) {
  EXPECT_STREQ(to_string(WorkloadBias::kUnbiased), "unbiased");
  EXPECT_STREQ(to_string(WorkloadBias::kLargeApps), "large-apps");
}

TEST(Workload, ConfigValidation) {
  WorkloadConfig config;
  config.size_fractions = {1.5};
  EXPECT_THROW(config.validate(), CheckError);
  config = WorkloadConfig{};
  config.arrival_count = 0;
  EXPECT_THROW(config.validate(), CheckError);
}

}  // namespace
}  // namespace xres
