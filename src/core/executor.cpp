#include "core/executor.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "failure/process.hpp"
#include "failure/replay.hpp"
#include "failure/severity.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {

namespace {

ExecutionResult infeasible_result(const ExecutionPlan& plan, obs::TrialObs* obs) {
  ExecutionResult result;
  result.completed = false;
  result.baseline = plan.baseline;
  result.efficiency = 0.0;
  if (obs != nullptr) {
    const obs::BuiltinMetrics& m = obs::builtin_metrics();
    obs->count(m.trials_run);
    obs->count(m.trials_infeasible);
  }
  return result;
}

/// Fold one finished trial into its observer: counters/gauges from the
/// ExecutionResult (exact, no per-event cost) plus the trial-shape
/// histograms. Runtime-side observation covers only what the result does
/// not retain (per-event severities, checkpoint levels/costs, rework
/// sizes), so nothing is double-counted.
void record_trial_metrics(obs::TrialObs* obs, const ExecutionResult& r,
                          std::uint64_t sim_events) {
  if (obs == nullptr || obs->metrics() == nullptr) return;
  record_result_metrics(obs, r);
  const obs::BuiltinMetrics& m = obs::builtin_metrics();
  obs->count(m.trials_run);
  obs->count(m.sim_events, sim_events);
  obs->observe(m.trial_events, static_cast<double>(sim_events));
  obs->observe(m.trial_wall_hours, r.wall_time.to_seconds() / 3600.0);
}

}  // namespace

std::uint64_t TrialSpec::derived_seed(std::uint64_t root) const {
  if (seed_keys.empty()) return root;
  std::vector<std::uint64_t> keys;
  keys.reserve(seed_keys.size() + 1);
  keys.push_back(root);
  keys.insert(keys.end(), seed_keys.begin(), seed_keys.end());
  return hash_seed(keys);
}

ExecutionResult run_trial(const PlanTrialSpec& spec, std::uint64_t seed,
                          obs::TrialObs* obs) {
  if (!spec.plan.feasible) return infeasible_result(spec.plan, obs);

  Simulation sim;
  const SeverityModel severity{spec.resilience.severity_weights};

  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, spec.plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);

  AppFailureProcess failures{
      sim,
      spec.plan.failure_rate,
      severity,
      spec.failure_distribution,
      Pcg32{derive_seed(seed, 0x6661696c7321ULL)},
      [&runtime](const Failure& f) { runtime.on_failure(f); }};

  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "plan trial ended without a completion callback");
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trial(const TraceTrialSpec& spec, std::uint64_t seed,
                          obs::TrialObs* obs) {
  // Severity is already baked into the trace; spec.resilience is kept for
  // API symmetry and future runtime knobs.
  if (!spec.plan.feasible) return infeasible_result(spec.plan, obs);

  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, spec.plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);

  TraceFailureProcess failures{sim, spec.trace,
                               [&runtime](const Failure& f) { runtime.on_failure(f); }};
  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "trace trial ended without a completion callback");
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trial(const SingleAppTrialConfig& config, std::uint64_t seed,
                          obs::TrialObs* obs) {
  PlanTrialSpec spec;
  spec.plan = make_plan(config.technique, config.app, config.machine, config.resilience);
  spec.resilience = config.resilience;
  spec.failure_distribution = config.failure_distribution;
  return run_trial(spec, seed, obs);
}

ExecutionResult run_trial(const TrialSpec& spec, std::uint64_t root_seed,
                          obs::TrialObs* obs) {
  const std::uint64_t seed = spec.derived_seed(root_seed);
  return std::visit([seed, obs](const auto& work) { return run_trial(work, seed, obs); },
                    spec.work);
}

TrialExecutor::TrialExecutor(unsigned threads) : threads_{threads} {
  if (threads_ == 0) threads_ = std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
}

void TrialExecutor::for_each(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             const TrialProgress& progress) const {
  if (count == 0) return;
  XRES_CHECK(static_cast<bool>(body), "for_each needs a body");

  const std::size_t workers =
      std::min<std::size_t>(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
      if (progress) progress(i + 1, count);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::size_t done = 0;
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (progress) {
        const std::lock_guard<std::mutex> lock{progress_mutex};
        progress(++done, count);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    const TrialProgress& progress) const {
  std::vector<ExecutionResult> results(specs.size());
  for_each(
      specs.size(),
      [&](std::size_t i) { results[i] = run_trial(specs[i], root_seed); },
      progress);
  return results;
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    std::span<obs::TrialObs> observers, const TrialProgress& progress) const {
  XRES_CHECK(observers.size() == specs.size(),
             "one observer per spec (enable channels before the batch)");
  std::vector<ExecutionResult> results(specs.size());
  for_each(
      specs.size(),
      [&](std::size_t i) { results[i] = run_trial(specs[i], root_seed, &observers[i]); },
      progress);
  return results;
}

}  // namespace xres
