// Ablation: topology-aware PFS contention in the workload study. The flat
// platform prices every PFS checkpoint with Eq. 3 and lets concurrent
// applications overlap for free; the fat-tree platform routes the same
// traffic through a queued PFS device with N_S service channels behind
// per-level link caps. This study runs both on identical arrival patterns
// and reports (a) the dropped-% impact per technique and (b) the measured
// vs. Eq.-3 divergence of every completed device transfer — the emergent
// gap between the closed form and the queued dynamics.

#include <cstdio>
#include <vector>

#include "core/workload_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

struct Variant {
  const char* name;
  bool fattree;
  std::uint32_t pfs_channels;  // 0 = MachineSpec default N_S
};

int run(study::StudyContext& ctx) {
  const auto patterns = ctx.params().u32("patterns");
  const std::uint64_t seed = ctx.seed();
  study::RecoveryCoordinator& coordinator = ctx.recovery();
  const TrialExecutor executor{1};  // pattern runs are serial in this sweep
  const std::uint32_t channels = MachineSpec{}.network.switch_connections;

  std::printf("Ablation: flat (Eq. 3) vs. fat-tree queued-PFS platform\n");
  std::printf("scheduler Slack, %u patterns per cell\n\n", patterns);

  Table table{{"platform", "checkpoint-restart dropped %", "multilevel dropped %",
               "parallel-recovery dropped %", "PFS measured/Eq.3"}};

  const std::vector<Variant> variants{
      Variant{"flat (paper)", false, 0},
      Variant{"fattree, N_S channels", true, 0},
      Variant{"fattree, 4 channels", true, 4},
      Variant{"fattree, 1 channel", true, 1}};
  for (const Variant& variant : variants) {
    std::vector<std::string> row{variant.name};
    std::uint64_t transfers = 0;
    double measured_s = 0.0;
    double nominal_s = 0.0;
    for (TechniqueKind kind : workload_techniques()) {
      WorkloadStudyConfig study_config;
      study_config.patterns = patterns;
      study_config.seed = seed;
      study::apply_platform_params(study_config.machine, ctx.params());
      if (variant.fattree) {
        study_config.machine.platform.model = PlatformModelKind::kFattree;
        study_config.machine.platform.fattree.pfs_channels = variant.pfs_channels;
      }
      RunningStats dropped;
      study::run_patterns_controlled(
          coordinator, executor,
          std::string{variant.name} + "/" + to_string(kind), patterns, seed,
          [&](std::uint32_t p) {
            const ArrivalPattern pattern =
                generate_pattern(study_config.workload, study_config.seed, p);
            WorkloadEngineConfig engine;
            engine.machine = study_config.machine;
            engine.resilience = study_config.resilience;
            engine.policy = TechniquePolicy::fixed_technique(kind);
            engine.scheduler = SchedulerKind::kSlack;
            engine.seed = derive_seed(study_config.seed, 0x656e67696eULL, p);
            WorkloadOutcome outcome;
            outcome.result = run_workload(engine, pattern);
            return outcome;
          },
          [&](std::uint32_t, const WorkloadOutcome& outcome) {
            dropped.add(outcome.result.dropped_fraction);
            transfers += outcome.result.pfs_transfers;
            measured_s += outcome.result.pfs_measured_s;
            nominal_s += outcome.result.pfs_nominal_s;
          });
      if (coordinator.interrupted()) return coordinator.finish();
      row.push_back(fmt_double(dropped.mean() * 100.0, 2) + " ± " +
                    fmt_double(dropped.stddev() * 100.0, 2));
    }
    // Per-variant divergence: wall time of every completed device transfer
    // over its Eq.-3 nominal. 1.00x means the queued device reproduced the
    // closed form exactly; contention and small-app channel starvation
    // (N_a < N_S) push it above 1.
    if (transfers > 0 && nominal_s > 0) {
      row.push_back(fmt_double(measured_s / nominal_s, 3) + "x over " +
                    std::to_string(transfers) + " transfers");
    } else {
      row.push_back("n/a (no device)");
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished: %s\n", variant.name);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("(flat prices PFS checkpoints with Eq. 3 and never queues; the\n"
              " fat-tree device serves at most %u concurrent transfers, so the\n"
              " checkpoint storms of the oversubscribed machine queue up and\n"
              " the measured/Eq.3 ratio exceeds 1; parallel recovery never\n"
              " touches the PFS, so its column is the control)\n",
              channels);
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_pfs_contention_topology";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "flat Eq.-3 platform vs. fat-tree queued-PFS device: dropped %% and "
      "measured-vs-Eq.3 divergence";
  def.summary = "ablation_pfs_contention_topology — dropped %% and measured vs. "
                "Eq.-3 PFS divergence, flat vs. fat-tree platform";
  def.options.default_seed = 20170530;
  def.options.threads = false;  // pattern runs are serial in this sweep
  def.params.integer("patterns", "arrival patterns per cell", 15).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
