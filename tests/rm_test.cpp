// Unit tests for the resource-management heuristics against a mock
// scheduler context (paper Section III-D semantics).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rm/scheduler.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

Job make_job(std::uint64_t id, std::uint32_t nodes, double baseline_hours,
             double arrival_hours, double deadline_hours) {
  Job job;
  job.id = JobId{id};
  job.spec = AppSpec::from_baseline(app_type_by_name("A32"), nodes,
                                    Duration::hours(baseline_hours));
  job.arrival = TimePoint::at(Duration::hours(arrival_hours));
  job.deadline = TimePoint::at(Duration::hours(deadline_hours));
  return job;
}

/// Mock context: fixed node budget, records starts and drops.
class MockContext final : public SchedulerContext {
 public:
  explicit MockContext(std::uint32_t free, TimePoint now = TimePoint::origin())
      : free_{free}, now_{now} {}

  [[nodiscard]] TimePoint now() const override { return now_; }
  [[nodiscard]] std::uint32_t free_nodes() const override { return free_; }

  bool try_start(const Job& job) override {
    attempts.push_back(job.id);
    if (job.spec.nodes > free_) return false;
    free_ -= job.spec.nodes;
    started.push_back(job.id);
    return true;
  }

  void drop(const Job& job) override { dropped.push_back(job.id); }

  std::vector<JobId> attempts;
  std::vector<JobId> started;
  std::vector<JobId> dropped;

 private:
  std::uint32_t free_;
  TimePoint now_;
};

std::vector<const Job*> pointers(const std::vector<Job>& jobs) {
  std::vector<const Job*> out;
  for (const Job& j : jobs) out.push_back(&j);
  return out;
}

TEST(Fcfs, StopsAtFirstMisfit) {
  // 100 free nodes; jobs of 40, 80, 10: FCFS starts 40, blocks on 80, and
  // must NOT backfill the 10.
  const std::vector<Job> jobs{make_job(1, 40, 6, 0, 12), make_job(2, 80, 6, 0, 12),
                              make_job(3, 10, 6, 0, 12)};
  MockContext ctx{100};
  Pcg32 rng{1};
  FcfsScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.started, (std::vector<JobId>{JobId{1}}));
  EXPECT_EQ(ctx.attempts.size(), 2U);
  EXPECT_TRUE(ctx.dropped.empty());
}

TEST(Fcfs, StartsAllWhenTheyFit) {
  const std::vector<Job> jobs{make_job(1, 30, 6, 0, 12), make_job(2, 30, 6, 0, 12),
                              make_job(3, 40, 6, 0, 12)};
  MockContext ctx{100};
  Pcg32 rng{1};
  FcfsScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.started.size(), 3U);
}

TEST(Random, AttemptsEveryJobOnce) {
  // Unlike FCFS, the random policy continues past misfits.
  const std::vector<Job> jobs{make_job(1, 90, 6, 0, 12), make_job(2, 90, 6, 0, 12),
                              make_job(3, 10, 6, 0, 12), make_job(4, 10, 6, 0, 12)};
  MockContext ctx{100};
  Pcg32 rng{7};
  RandomScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.attempts.size(), 4U);
  // Whatever the order, at least one big-or-two-small combination starts.
  EXPECT_GE(ctx.started.size(), 1U);
  EXPECT_TRUE(ctx.dropped.empty());
}

TEST(Random, OrderVariesWithSeed) {
  const std::vector<Job> jobs{make_job(1, 1, 6, 0, 12), make_job(2, 1, 6, 0, 12),
                              make_job(3, 1, 6, 0, 12), make_job(4, 1, 6, 0, 12),
                              make_job(5, 1, 6, 0, 12)};
  std::map<std::vector<JobId>, int> orders;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    MockContext ctx{100};
    Pcg32 rng{seed};
    RandomScheduler{}.map(pointers(jobs), ctx, rng);
    orders[ctx.attempts]++;
  }
  EXPECT_GT(orders.size(), 1U);
}

TEST(Slack, ComputesRemainingSlack) {
  // slack = deadline - max(now, arrival) - baseline.
  const Job job = make_job(1, 10, 6.0, 2.0, 12.0);
  EXPECT_DOUBLE_EQ(
      SlackScheduler::slack(job, TimePoint::origin()).to_hours(), 4.0);
  EXPECT_DOUBLE_EQ(
      SlackScheduler::slack(job, TimePoint::at(Duration::hours(5.0))).to_hours(), 1.0);
  EXPECT_DOUBLE_EQ(
      SlackScheduler::slack(job, TimePoint::at(Duration::hours(7.0))).to_hours(), -1.0);
}

TEST(Slack, DropsNegativeSlackJobs) {
  // At t=10h, job 1 (deadline 12h, baseline 6h) can no longer finish.
  const std::vector<Job> jobs{make_job(1, 10, 6, 0, 12), make_job(2, 10, 6, 0, 24)};
  MockContext ctx{100, TimePoint::at(Duration::hours(10.0))};
  Pcg32 rng{1};
  SlackScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.dropped, (std::vector<JobId>{JobId{1}}));
  EXPECT_EQ(ctx.started, (std::vector<JobId>{JobId{2}}));
}

TEST(Slack, StartsInIncreasingSlackOrder) {
  // Slacks at t=0: job1 = 18h, job2 = 2h, job3 = 6h.
  const std::vector<Job> jobs{make_job(1, 10, 6, 0, 24), make_job(2, 10, 6, 0, 8),
                              make_job(3, 10, 6, 0, 12)};
  MockContext ctx{100};
  Pcg32 rng{1};
  SlackScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.attempts,
            (std::vector<JobId>{JobId{2}, JobId{3}, JobId{1}}));
  EXPECT_EQ(ctx.started.size(), 3U);
}

TEST(Slack, ContinuesPastMisfits) {
  // 50 free nodes; tightest job needs 60 (misfit), next needs 40 (starts).
  const std::vector<Job> jobs{make_job(1, 60, 6, 0, 8), make_job(2, 40, 6, 0, 24)};
  MockContext ctx{50};
  Pcg32 rng{1};
  SlackScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.attempts.size(), 2U);
  EXPECT_EQ(ctx.started, (std::vector<JobId>{JobId{2}}));
}

TEST(FirstFit, BackfillsPastMisfits) {
  // Same scenario where strict FCFS blocks: FirstFit starts the 40 and
  // backfills the 10 past the 80-node misfit.
  const std::vector<Job> jobs{make_job(1, 40, 6, 0, 12), make_job(2, 80, 6, 0, 12),
                              make_job(3, 10, 6, 0, 12)};
  MockContext ctx{100};
  Pcg32 rng{1};
  FirstFitScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.started, (std::vector<JobId>{JobId{1}, JobId{3}}));
  EXPECT_EQ(ctx.attempts.size(), 3U);
}

TEST(Sjf, StartsShortestBaselinesFirst) {
  const std::vector<Job> jobs{make_job(1, 10, 24, 0, 72), make_job(2, 10, 6, 0, 72),
                              make_job(3, 10, 12, 0, 72)};
  MockContext ctx{100};
  Pcg32 rng{1};
  SjfScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.attempts, (std::vector<JobId>{JobId{2}, JobId{3}, JobId{1}}));
}

TEST(Sjf, TiesKeepArrivalOrder) {
  const std::vector<Job> jobs{make_job(1, 10, 6, 0, 72), make_job(2, 10, 6, 0, 72)};
  MockContext ctx{100};
  Pcg32 rng{1};
  SjfScheduler{}.map(pointers(jobs), ctx, rng);
  EXPECT_EQ(ctx.attempts, (std::vector<JobId>{JobId{1}, JobId{2}}));
}

TEST(SchedulerFactory, KindsRoundTrip) {
  for (SchedulerKind kind : extended_schedulers()) {
    const auto scheduler = make_scheduler(kind);
    EXPECT_STREQ(scheduler->name(), to_string(kind));
    EXPECT_EQ(scheduler_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)scheduler_from_string("LIFO"), CheckError);
  EXPECT_EQ(all_schedulers().size(), 3U);
  EXPECT_EQ(extended_schedulers().size(), 6U);
}

}  // namespace
}  // namespace xres
