#include "resilience/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "resilience/interval.hpp"
#include "resilience/multilevel.hpp"
#include "util/check.hpp"

namespace xres {

namespace {

double overhead_checkpoint_restart(const ExecutionPlan& plan) {
  const auto& level = plan.levels.front();
  auto hazard = [&plan](Duration) { return plan.failure_rate; };
  // Semi-blocking checkpoints only block (1 - σ) of their duration.
  const Duration effective_save = level.save_cost * (1.0 - plan.checkpoint_work_rate);
  return checkpoint_overhead(plan.checkpoint_quantum, effective_save,
                             level.restore_cost, hazard);
}

double overhead_parallel_recovery(const ExecutionPlan& plan) {
  // Rework is only the failed node's share, recomputed P-way parallel and
  // without a global rollback: expected penalty per failure is
  // τ/(2·P) + restore.
  const auto& level = plan.levels.front();
  const double tau = plan.checkpoint_quantum.to_seconds();
  const double lambda = plan.failure_rate.per_second_value();
  return level.save_cost.to_seconds() / tau +
         lambda * (tau / (2.0 * plan.recovery_parallelism) +
                   level.restore_cost.to_seconds());
}

double overhead_multilevel(const ExecutionPlan& plan, const ResilienceConfig& config) {
  double weight_sum = 0.0;
  for (double w : config.severity_weights) weight_sum += w;
  std::vector<Rate> rates;
  rates.reserve(plan.levels.size());
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    rates.push_back(plan.failure_rate * (config.severity_weights[i] / weight_sum));
  }
  return multilevel_overhead(plan.checkpoint_quantum, plan.nesting, plan.levels, rates);
}

double overhead_redundancy(const ExecutionPlan& plan) {
  const auto& level = plan.levels.front();
  const double node_rate =
      plan.failure_rate.per_second_value() / static_cast<double>(plan.physical_nodes);
  const double duplicated = static_cast<double>(plan.physical_nodes - plan.app.nodes);
  const double singles =
      std::max(static_cast<double>(plan.app.nodes) - duplicated, 0.0);
  auto hazard = [=](Duration tau) {
    return Rate::per_second(singles * node_rate +
                            duplicated * node_rate * node_rate * tau.to_seconds());
  };
  return checkpoint_overhead(plan.checkpoint_quantum, level.save_cost,
                             level.restore_cost, hazard);
}

}  // namespace

double predict_efficiency(const ExecutionPlan& plan, const ResilienceConfig& config) {
  if (!plan.feasible) return 0.0;

  double overhead = 0.0;
  switch (plan.kind) {
    case TechniqueKind::kNone:
      overhead = 0.0;
      break;
    case TechniqueKind::kCheckpointRestart:
    case TechniqueKind::kSemiBlockingCheckpoint:
      overhead = overhead_checkpoint_restart(plan);
      break;
    case TechniqueKind::kMultilevel:
      overhead = overhead_multilevel(plan, config);
      break;
    case TechniqueKind::kParallelRecovery:
      overhead = overhead_parallel_recovery(plan);
      break;
    case TechniqueKind::kRedundancyPartial:
    case TechniqueKind::kRedundancyFull:
      overhead = overhead_redundancy(plan);
      break;
  }

  const double stretch = plan.work_target / plan.baseline;
  XRES_CHECK(stretch >= 1.0 - 1e-12, "stretch below one");
  if (!std::isfinite(overhead) || overhead < 0.0) return 0.0;
  const double efficiency = 1.0 / (stretch * (1.0 + overhead));
  return std::clamp(efficiency, 0.0, 1.0);
}

Duration predict_wall_time(const ExecutionPlan& plan, const ResilienceConfig& config) {
  const double eff = predict_efficiency(plan, config);
  if (eff <= 0.0) return Duration::infinity();
  return plan.baseline / eff;
}

}  // namespace xres
