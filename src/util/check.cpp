#include "util/check.hpp"

namespace xres::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::string what = "check failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  throw CheckError{what};
}

}  // namespace xres::detail
