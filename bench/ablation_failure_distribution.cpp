// Ablation: exponential vs. Weibull failure inter-arrivals. The paper
// models failures as a Poisson process; field studies often report
// Weibull-shaped gaps (shape < 1: bursty, decreasing hazard). This sweep
// keeps the mean failure rate fixed and varies the shape.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  std::printf("Ablation: failure inter-arrival distribution (fixed mean rate)\n");
  std::printf("application C32 @ 25%% of the exascale system, MTBF 10 y, %u trials\n\n",
              trials);

  const std::vector<std::pair<const char*, FailureDistribution>> dists{
      {"Weibull k=0.5 (bursty)", FailureDistribution::weibull(0.5)},
      {"Weibull k=0.7", FailureDistribution::weibull(0.7)},
      {"exponential (paper)", FailureDistribution::exponential()},
      {"Weibull k=1.5 (regular)", FailureDistribution::weibull(1.5)},
  };

  Table table{{"inter-arrival model", "checkpoint-restart", "multilevel",
               "parallel-recovery"}};
  for (const auto& [name, dist] : dists) {
    std::vector<std::string> row{name};
    int technique_index = 0;
    for (TechniqueKind kind :
         {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
          TechniqueKind::kParallelRecovery}) {
      SingleAppTrialConfig config;
      study::apply_platform_params(config.machine, ctx.params());
      config.app = AppSpec{app_type_by_name("C32"), 30000, 1440};
      config.technique = kind;
      config.failure_distribution = dist;
      std::vector<TrialSpec> specs;
      specs.reserve(trials);
      for (std::uint32_t t = 0; t < trials; ++t) {
        specs.push_back(TrialSpec{
            config, {static_cast<std::uint64_t>(technique_index), t}});
      }
      RunningStats eff;
      const std::string cell = std::string{name} + " " + to_string(kind);
      for (const ExecutionResult& r :
           collector.run_batch(executor, seed, specs, cell, coordinator)) {
        eff.add(r.efficiency);
      }
      row.push_back(fmt_mean_std(eff.mean(), eff.stddev()));
      ++technique_index;
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(bursty failures cluster rework; the technique ordering is "
              "unchanged, supporting the paper's Poisson assumption)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_failure_distribution";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "technique efficiency under exponential vs. Weibull failure inter-arrivals";
  def.summary = "ablation_failure_distribution — technique efficiency vs. "
                "failure inter-arrival shape";
  def.options.default_seed = 9;
  def.params.integer("trials", "trials per cell", 60).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
