#include "core/surrogate.hpp"

#include <cmath>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace xres {

const char* to_string(SurrogateMode mode) {
  switch (mode) {
    case SurrogateMode::kSim: return "sim";
    case SurrogateMode::kAnalytic: return "analytic";
    case SurrogateMode::kAuto: return "auto";
  }
  return "?";
}

SurrogateMode surrogate_mode_from_string(const std::string& name) {
  if (name == "sim") return SurrogateMode::kSim;
  if (name == "analytic") return SurrogateMode::kAnalytic;
  if (name == "auto") return SurrogateMode::kAuto;
  XRES_CHECK(false, "unknown surrogate mode '" + name + "' (expected sim, analytic or auto)");
  return SurrogateMode::kSim;
}

bool surrogate_anchor_index(std::size_t index, std::size_t count) {
  return index == 0 || index + 1 == count || index % 2 == 0;
}

SurrogateEstimate surrogate_estimate(const SurrogateAnchor& a, const SurrogateAnchor& b,
                                     double fraction, double analytic) {
  XRES_CHECK(a.fraction < b.fraction, "surrogate anchors must bracket the cell");
  const double t = (fraction - a.fraction) / (b.fraction - a.fraction);
  const double residual_a = a.mean - a.analytic;
  const double residual_b = b.mean - b.analytic;
  const double residual = (1.0 - t) * residual_a + t * residual_b;

  SurrogateEstimate est;
  est.predicted = std::clamp(analytic + residual, 0.0, 1.0);
  est.bound = std::abs(residual_a - residual_b) + 2.0 * (a.sem + b.sem) +
              kBoundMargin +
              kBoundSpanMargin * (b.fraction - a.fraction) * (b.fraction - a.fraction);
  est.mean_failures = (1.0 - t) * a.mean_failures + t * b.mean_failures;
  return est;
}

std::string surrogate_cell_key(const SingleAppTrialConfig& trial, std::uint64_t seed,
                               std::size_t si, std::size_t ti, std::uint32_t trials) {
  std::ostringstream key;
  key.precision(17);
  const ResilienceConfig& r = trial.resilience;
  const FailureDistribution& d = trial.failure_distribution;
  // Every plan- or trial-relevant field: any two configs that differ in a
  // way a trial can observe must fingerprint differently (the memo is a
  // correctness-critical cache, not a heuristic one).
  key << trial.machine.describe() << '|' << trial.app.type.name << '|'
      << to_string(trial.technique) << '|' << trial.app.nodes << '|'
      << trial.app.time_steps << '|' << r.node_mtbf.to_seconds() << '|';
  for (double w : r.severity_weights) key << w << ',';
  key << '|' << r.comm_slowdown_per_tc << '|' << r.recovery_parallelism << '|'
      << r.partial_redundancy << '|' << r.full_redundancy << '|' << r.max_slowdown
      << '|' << r.max_nesting << '|' << r.adaptive_interval << '|'
      << r.semi_blocking_work_rate << '|' << r.checkpoint_compression << '|'
      << static_cast<int>(d.kind()) << '|' << d.shape() << '|' << seed << '|' << si
      << '|' << ti << '|' << trials;
  return key.str();
}

namespace {

struct AnchorMemo {
  std::mutex mutex;
  std::unordered_map<std::string, SurrogateAnchor> entries;
};

AnchorMemo& anchor_memo() {
  static AnchorMemo memo;
  return memo;
}

}  // namespace

std::optional<SurrogateAnchor> surrogate_memo_find(const std::string& key) {
  AnchorMemo& memo = anchor_memo();
  const std::lock_guard<std::mutex> lock{memo.mutex};
  const auto it = memo.entries.find(key);
  if (it == memo.entries.end()) return std::nullopt;
  return it->second;
}

void surrogate_memo_store(const std::string& key, const SurrogateAnchor& anchor) {
  AnchorMemo& memo = anchor_memo();
  const std::lock_guard<std::mutex> lock{memo.mutex};
  memo.entries.emplace(key, anchor);
}

}  // namespace xres
