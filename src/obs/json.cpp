#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace xres::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  XRES_CHECK(res.ec == std::errc{}, "double rendering overflow");
  return std::string(buf, res.ptr);
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

void JsonWriter::before_value() {
  XRES_CHECK(!complete_, "JSON document already complete");
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.kind == 'o') {
    XRES_CHECK(key_pending_, "object values need a key first");
    key_pending_ = false;
  } else if (top.count > 0) {
    out_ += ',';
  }
  ++top.count;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  XRES_CHECK(!stack_.empty() && stack_.back().kind == 'o',
             "key outside an object");
  XRES_CHECK(!key_pending_, "two keys in a row");
  if (stack_.back().count > 0) out_ += ',';
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame{'o'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  XRES_CHECK(!stack_.empty() && stack_.back().kind == 'o' && !key_pending_,
             "mismatched end_object");
  out_ += '}';
  stack_.pop_back();
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame{'a'});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  XRES_CHECK(!stack_.empty() && stack_.back().kind == 'a', "mismatched end_array");
  out_ += ']';
  stack_.pop_back();
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string{v}); }

JsonWriter& JsonWriter::raw(const std::string& fragment) {
  before_value();
  out_ += fragment;
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) { return raw(json_number(v)); }
JsonWriter& JsonWriter::value(std::uint64_t v) { return raw(json_number(v)); }
JsonWriter& JsonWriter::value(std::int64_t v) { return raw(json_number(v)); }
JsonWriter& JsonWriter::value(int v) { return raw(json_number(static_cast<std::int64_t>(v))); }
JsonWriter& JsonWriter::value(bool v) { return raw(v ? "true" : "false"); }
JsonWriter& JsonWriter::null() { return raw("null"); }

const std::string& JsonWriter::str() const {
  XRES_CHECK(stack_.empty() && !out_.empty(), "incomplete JSON document");
  return out_;
}

void JsonWriter::write(const std::string& path) const {
  // Atomic (temp + rename): a crash mid-write never leaves a torn JSON
  // artifact where --metrics/--trace consumers expect a complete one.
  write_file_atomic(path, str() + "\n");
}

}  // namespace xres::obs
