#include "study/capture.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "util/check.hpp"

namespace xres::study {

StdoutCapture::StdoutCapture(std::string path)
    : path_{std::move(path)}, tmp_path_{path_ + ".tmp"} {
  std::fflush(stdout);
  saved_fd_ = ::dup(STDOUT_FILENO);
  XRES_CHECK(saved_fd_ >= 0, "cannot save stdout for capture");
  const int fd = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    ::close(saved_fd_);
    saved_fd_ = -1;
    XRES_CHECK(false, "cannot open capture file: " + tmp_path_);
  }
  ::dup2(fd, STDOUT_FILENO);
  ::close(fd);
}

StdoutCapture::~StdoutCapture() {
  if (!done_) restore();
}

void StdoutCapture::restore() noexcept {
  std::fflush(stdout);
  if (saved_fd_ >= 0) {
    ::dup2(saved_fd_, STDOUT_FILENO);
    ::close(saved_fd_);
    saved_fd_ = -1;
  }
  done_ = true;
}

void StdoutCapture::finish() {
  restore();
  XRES_CHECK(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
             "cannot publish capture: " + path_);
}

}  // namespace xres::study
