# Empty dependencies file for xres_core.
# This may be replaced when dependencies are built.
