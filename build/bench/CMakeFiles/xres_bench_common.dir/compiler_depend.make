# Empty compiler generated dependencies file for xres_bench_common.
# This may be replaced when dependencies are built.
