#pragma once

/// \file registry.hpp
/// The study registry: every paper figure, table, ablation and extension
/// experiment is registered here as data — a `StudyDefinition` with a name,
/// a group, a one-line description, a typed parameter schema and a run
/// function — instead of owning its own `main()`. One generic harness
/// (study_main.hpp) then serves every scenario: the per-figure bench
/// binaries, `xres run <study>`, `xres list`, `xres describe` and
/// `xres suite paper` all enumerate or execute the same definitions.
///
/// Registration is link-time: each study translation unit plants a
/// `Registration` object whose constructor inserts the definition into the
/// global registry. The study TUs are compiled into the `xres_studies`
/// object library so every consumer (bench aliases, CLI, tests) links the
/// full catalog.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace xres::study {

class StudyContext;

/// Which part of the paper reproduction a study belongs to. Groups order
/// the catalog (`xres list`) and select the suite members (`xres suite
/// paper` runs kFigure + kTable).
enum class StudyGroup {
  kFigure,     ///< paper Figures 1-5
  kTable,      ///< paper Tables I-II
  kAblation,   ///< sensitivity sweeps over modeling assumptions
  kExtension,  ///< experiments beyond the paper (energy, paired, ...)
  kAdhoc,      ///< parameterized exploration surfaces (xres efficiency/workload)
};

[[nodiscard]] const char* to_string(StudyGroup group);

/// One entry of a study's typed parameter schema. Parameters surface both
/// as regular CLI options (`--trials 80`) on the per-study binaries and as
/// `--set trials=80` bindings on `xres run`.
struct ParamSpec {
  enum class Type { kInt, kReal, kString };

  std::string key;   ///< bare name, no dashes ("trials")
  std::string help;  ///< one line for --help / xres describe
  Type type{Type::kInt};
  std::string default_value;
  /// Inclusive numeric range (kInt/kReal only); unset bound = unbounded.
  std::optional<double> min_value;
  std::optional<double> max_value;

  /// Human-readable type name ("int", "real", "string").
  [[nodiscard]] const char* type_name() const;
  /// Render the range as "[min, max]" / "[min, ...]" / "" for describe.
  [[nodiscard]] std::string range_text() const;
};

/// Which pieces of the shared harness surface a study exposes. The flags
/// reproduce exactly the option set each pre-registry driver declared, so
/// every historical invocation keeps working.
struct StudyOptionsSpec {
  bool seed{true};  ///< --seed (default below)
  std::uint64_t default_seed{20170529};
  bool threads{true};  ///< --threads (studies with a serial sweep omit it)
  bool csv{false};     ///< --csv / --csv-path
  bool chart{false};   ///< --chart ASCII bars
  bool report{false};  ///< --report markdown artifact
  enum class Obs {
    kNone,       ///< no observability flags (static tables)
    kWithTrace,  ///< --metrics / --trace / --log-level
    kNoTrace,    ///< --metrics / --log-level (concurrent-workload studies)
  } obs{Obs::kWithTrace};
  bool recovery{true};  ///< --journal/--resume/--trial-timeout/--trial-retries
};

/// One registered scenario.
struct StudyDefinition {
  std::string name;  ///< unique, the bench binary name ("fig1_efficiency_a32")
  StudyGroup group{StudyGroup::kAblation};
  std::string description;  ///< one line for the catalog
  /// --help header; empty → "<name> — <description>".
  std::string summary;
  /// Identifies this study's write-ahead journals (recovery::JournalMeta);
  /// empty → name. Figure 1-3 keep their historical title strings.
  std::string journal_id;
  StudyOptionsSpec options;
  std::vector<ParamSpec> params;
  /// The experiment body. Receives parsed params + harness options +
  /// lazily-constructed obs/recovery plumbing; returns the process exit
  /// code (0, or recovery::kExitInterrupted after a drained shutdown).
  std::function<int(StudyContext&)> run;

  [[nodiscard]] const ParamSpec* find_param(const std::string& key) const;
  [[nodiscard]] std::string help_summary() const;
  [[nodiscard]] const std::string& journal_study() const {
    return journal_id.empty() ? name : journal_id;
  }
};

/// Validated key→value bindings for one run of a study, defaulted from the
/// schema. Accessors parse on read (like CliParser) — validate() has
/// already guaranteed they succeed.
class StudyParams {
 public:
  StudyParams() = default;
  /// Schema defaults for \p def (kept alive by the registry).
  explicit StudyParams(const StudyDefinition& def);

  /// Bind \p key to \p value. Throws CheckError on unknown key, a value
  /// that does not parse as the declared type, or one outside the range.
  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::int64_t integer(const std::string& key) const;
  [[nodiscard]] std::uint32_t u32(const std::string& key) const;
  [[nodiscard]] double real(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  const StudyDefinition* def_{nullptr};
  std::map<std::string, std::string> values_;
};

/// Throws CheckError when \p value is not a valid binding for \p spec.
void validate_param_value(const ParamSpec& spec, const std::string& value);

/// The global study catalog.
class StudyRegistry {
 public:
  /// The singleton, with the built-in adhoc studies (efficiency, workload)
  /// registered on first use.
  [[nodiscard]] static StudyRegistry& instance();

  /// Register a study. Throws CheckError on a duplicate name, an empty
  /// description, a missing run function, or an invalid schema default.
  void add(StudyDefinition def);

  /// nullptr when unknown.
  [[nodiscard]] const StudyDefinition* find(const std::string& name) const;

  /// Every study, ordered by (group, name) — the catalog/suite order.
  [[nodiscard]] std::vector<const StudyDefinition*> all() const;

  /// The (group, name)-ordered subset belonging to \p groups.
  [[nodiscard]] std::vector<const StudyDefinition*> group_members(
      const std::vector<StudyGroup>& groups) const;

  [[nodiscard]] std::size_t size() const { return studies_.size(); }

 private:
  StudyRegistry() = default;
  std::vector<std::unique_ptr<StudyDefinition>> studies_;
};

/// Plant one of these at namespace scope to register a study at link time:
///   namespace { const study::Registration registered{make_definition()}; }
struct Registration {
  explicit Registration(StudyDefinition def);
};

}  // namespace xres::study
