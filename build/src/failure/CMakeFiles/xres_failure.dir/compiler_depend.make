# Empty compiler generated dependencies file for xres_failure.
# This may be replaced when dependencies are built.
