# Empty compiler generated dependencies file for ext_technique_map.
# This may be replaced when dependencies are built.
