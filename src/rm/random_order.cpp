#include "rm/scheduler.hpp"

namespace xres {

void RandomScheduler::map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
                          Pcg32& rng) {
  // Attempt every unmapped job once, in uniformly random order; jobs that
  // do not fit return to the unmapped set (Section III-D2).
  std::vector<const Job*> order = pending;
  while (!order.empty()) {
    const auto pick = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint32_t>(order.size())));
    const Job* job = order[pick];
    order[pick] = order.back();
    order.pop_back();
    ctx.try_start(*job);
  }
}

}  // namespace xres
