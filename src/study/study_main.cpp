#include "study/study_main.hpp"

#include <cstdio>

#include "study/options.hpp"

namespace xres::study {

int study_main(const std::string& name, int argc, const char* const* argv) {
  const StudyDefinition* def = StudyRegistry::instance().find(name);
  if (def == nullptr) {
    std::fprintf(stderr, "unknown study '%s' — see `xres list` for the catalog\n",
                 name.c_str());
    return 1;
  }
  return study_main(*def, argc, argv);
}

int study_main(const StudyDefinition& def, int argc, const char* const* argv) {
  CliParser cli{def.help_summary()};
  add_study_options(cli, def);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  ParamSet params = read_study_params(cli, def);
  HarnessOptions options = read_harness_options(cli, def);
  return run_study(def, std::move(params), std::move(options));
}

int run_study(const StudyDefinition& def, ParamSet params, HarnessOptions options) {
  StudyContext ctx{def, std::move(params), std::move(options)};
  return def.run(ctx);
}

}  // namespace xres::study
