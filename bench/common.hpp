#pragma once

/// \file common.hpp
/// Shared plumbing for the figure-reproduction harnesses: CLI wiring and
/// the efficiency-figure runner used by Figures 1-3.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/single_app_study.hpp"
#include "core/workload_record.hpp"
#include "obs/trial_obs.hpp"
#include "recovery/journal.hpp"
#include "recovery/options.hpp"
#include "recovery/shutdown.hpp"
#include "util/cli.hpp"

namespace xres::bench {

/// Observability options shared by the study drivers (ISSUE 2 /
/// docs/OBSERVABILITY.md): both artifacts are deterministic functions of
/// the study seed, byte-identical for every --threads value.
struct ObsOptions {
  std::string metrics_path;  ///< non-empty: write merged metrics JSON here
  std::string trace_path;    ///< non-empty: write Chrome trace JSON here

  [[nodiscard]] bool metrics() const { return !metrics_path.empty(); }
  [[nodiscard]] bool trace() const { return !trace_path.empty(); }
  [[nodiscard]] bool enabled() const { return metrics() || trace(); }
};

/// Registers --metrics/--log-level (and --trace when \p with_trace) on
/// \p cli. Workload drivers pass with_trace = false: their concurrent
/// applications share one simulation, so per-trial tracing does not apply.
void add_obs_options(CliParser& cli, bool with_trace = true);

/// Reads them back after parse(); applies --log-level to the global logger
/// immediately (throws CheckError on a bad name — unlike XRES_LOG, a CLI
/// typo should fail loudly).
[[nodiscard]] ObsOptions read_obs_options(const CliParser& cli);

/// The crash-safety flags (docs/ROBUSTNESS.md) as parsed from the command
/// line; `RecoveryCoordinator` turns them into live journal/resume state.
struct RecoveryCliOptions {
  std::string journal_path;   ///< --journal: write-ahead trial journal here
  bool resume{false};         ///< --resume: skip trials already journaled
  double trial_timeout{0.0};  ///< --trial-timeout seconds (0 = off)
  unsigned trial_retries{0};  ///< --trial-retries: extra same-seed attempts

  [[nodiscard]] bool any() const {
    return !journal_path.empty() || resume || trial_timeout > 0.0 || trial_retries > 0;
  }
};

/// Options every harness shares.
struct HarnessOptions {
  std::uint32_t trials{200};
  std::uint64_t seed{20170529};
  unsigned threads{0};  ///< trial worker threads; 0 = all hardware threads
  bool csv{false};
  bool chart{false};  ///< also render ASCII bars (the figure's visual shape)
  std::string csv_path;  ///< empty: print CSV to stdout when csv is set
  std::string report_path;  ///< non-empty: write a markdown StudyReport here
  ObsOptions obs;  ///< --metrics/--trace/--log-level
  RecoveryCliOptions recovery;  ///< --journal/--resume/--trial-timeout/--trial-retries
};

/// Registers --trials/--seed/--threads/--csv/--csv-path plus the
/// observability and crash-safety options on \p cli.
void add_common_options(CliParser& cli, std::uint32_t default_trials);

/// Registers only --journal/--resume/--trial-timeout/--trial-retries (for
/// harnesses that do not take the full common set).
void add_recovery_options(CliParser& cli);

/// Reads them back after parse(); validates combinations (--resume needs
/// --journal, --trial-timeout >= 0) via CliParser::usage_error.
[[nodiscard]] RecoveryCliOptions read_recovery_options(const CliParser& cli);

/// Reads the common options back after parse() (applies --log-level, see
/// read_obs_options). Invalid values — `--threads 0` or a non-"auto"
/// non-positive thread count among them — exit via CliParser::usage_error.
[[nodiscard]] HarnessOptions read_common_options(const CliParser& cli);

/// Owns the live crash-safety state for one driver run: loads the resume
/// index (validating the journal against the study name and seed), opens
/// the write-ahead journal, installs the SIGINT/SIGTERM handlers, and
/// accumulates the executor's BatchReport. Construct after parsing, pass
/// options() into the study config, call finish() last and return its exit
/// code.
class RecoveryCoordinator {
 public:
  /// \p study and \p root_seed identify the journal (recovery::JournalMeta).
  /// Without --resume an existing journal file at --journal is replaced,
  /// not appended to (appending would resurrect the previous run's records
  /// on a later --resume). Load warnings (torn tail, corrupt records) are
  /// printed to stderr.
  RecoveryCoordinator(const RecoveryCliOptions& cli, std::string study,
                      std::uint64_t root_seed);

  /// The executor-facing view (pointers into this coordinator; valid for
  /// its lifetime).
  [[nodiscard]] recovery::TrialRecoveryOptions options();

  /// Merge one study/batch report into the run's total.
  void absorb(const recovery::BatchReport& report) { report_.merge(report); }
  [[nodiscard]] const recovery::BatchReport& report() const { return report_; }

  /// True when the run drained early on SIGINT/SIGTERM — the driver should
  /// skip writing figure artifacts and return finish().
  [[nodiscard]] bool interrupted() const { return report_.interrupted; }

  /// Flush the journal, print the recovery summary (when anything was
  /// active), and return the driver exit code: recovery::kExitInterrupted
  /// after a drain, else 0.
  [[nodiscard]] int finish();

 private:
  RecoveryCliOptions cli_;
  std::optional<recovery::ResumeIndex> index_;
  std::unique_ptr<recovery::TrialJournal> journal_;
  recovery::BatchReport report_;
};

/// Observed batch execution for drivers that drive TrialExecutor directly
/// (the ablation/extension harnesses): a drop-in replacement for
/// `executor.run_batch` that, when observation is requested, attaches one
/// observer per trial, merges metrics in spec order, and keeps trial 0 of
/// each batch as a trace track named \p label. Call finish() once after
/// the sweep to write the artifacts.
class ObsCollector {
 public:
  explicit ObsCollector(ObsOptions options) : options_{std::move(options)} {}

  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      const TrialExecutor& executor, std::uint64_t root_seed,
      std::span<const TrialSpec> specs, const std::string& label,
      const TrialProgress& progress = {});

  /// run_batch under a RecoveryCoordinator: \p label doubles as the journal
  /// batch label (keep it stable across runs), and the batch's accounting
  /// is absorbed into \p coordinator.
  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      const TrialExecutor& executor, std::uint64_t root_seed,
      std::span<const TrialSpec> specs, const std::string& label,
      RecoveryCoordinator& coordinator, const TrialProgress& progress = {});

  /// Merged metrics so far (null until the first observed batch).
  [[nodiscard]] const obs::MetricSet* metrics() const {
    return metrics_.has_value() ? &*metrics_ : nullptr;
  }

  /// Write the requested artifacts (prints one line per file to stdout).
  void finish();

 private:
  ObsOptions options_;
  std::optional<obs::MetricSet> metrics_;
  obs::TraceLog trace_;
};

/// Crash-safe pattern loop for the workload ablations that hand-build their
/// `WorkloadEngineConfig`s (burst failures, PFS contention): runs `run(p)`
/// for each pattern index in [0, patterns) under the coordinator's
/// journal/resume/watchdog envelope, journaling each outcome under
/// (\p label, p) — fingerprinted by (root_seed, label, p) — and restoring
/// journaled outcomes on --resume. After the loop, `consume(p, outcome)` is
/// invoked serially in pattern order (deterministic merges), or not at all
/// when the loop drained on a shutdown signal — check
/// `coordinator.interrupted()` afterwards. \p label must be stable across
/// runs and unique within the driver (e.g. "variant/technique").
void run_patterns_controlled(
    RecoveryCoordinator& coordinator, const TrialExecutor& executor,
    const std::string& label, std::uint32_t patterns, std::uint64_t root_seed,
    const std::function<WorkloadOutcome(std::uint32_t)>& run,
    const std::function<void(std::uint32_t, const WorkloadOutcome&)>& consume);

/// Run one Figures-1-3 style efficiency figure and print it in the paper's
/// layout (rows: % of system; columns: technique; cells: mean ± σ over
/// trials). Honors the crash-safety options (journal/resume/watchdog); the
/// journal is identified by \p title. Returns the driver exit code: 0, or
/// recovery::kExitInterrupted when a shutdown signal drained the study
/// (figure artifacts are then withheld — resume to produce them).
int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          const HarnessOptions& options);

}  // namespace xres::bench
