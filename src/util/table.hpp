#pragma once

/// \file table.hpp
/// Console table / CSV emission for study results. Every figure-reproduction
/// harness prints an aligned text table (the "rows/series the paper
/// reports") and can also dump CSV for plotting.

#include <cstddef>
#include <string>
#include <vector>

namespace xres {

/// A rectangular table of strings with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Aligned, boxed plain-text rendering.
  [[nodiscard]] std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  /// GitHub-flavored markdown table (pipes escaped in cells).
  [[nodiscard]] std::string to_markdown() const;

  /// Write CSV to \p path, throwing CheckError on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering, e.g. fmt_double(3.14159, 2) == "3.14".
[[nodiscard]] std::string fmt_double(double v, int precision = 3);

/// Percentage rendering: fmt_percent(0.1234) == "12.3%". Input is a fraction.
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

/// "mean ± std" rendering used for figure bars.
[[nodiscard]] std::string fmt_mean_std(double mean, double stddev, int precision = 3);

}  // namespace xres
