#include "core/single_app_study.hpp"

#include <cmath>

#include "failure/process.hpp"
#include "failure/replay.hpp"
#include "failure/severity.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {

ExecutionResult run_plan_trial(const ExecutionPlan& plan,
                               const ResilienceConfig& resilience,
                               FailureDistribution failure_distribution,
                               std::uint64_t seed) {
  if (!plan.feasible) {
    ExecutionResult result;
    result.completed = false;
    result.baseline = plan.baseline;
    result.efficiency = 0.0;
    return result;
  }

  Simulation sim;
  const SeverityModel severity{resilience.severity_weights};

  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};

  AppFailureProcess failures{
      sim,
      plan.failure_rate,
      severity,
      failure_distribution,
      Pcg32{derive_seed(seed, 0x6661696c7321ULL)},
      [&runtime](const Failure& f) { runtime.on_failure(f); }};

  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "single-app trial ended without a completion callback");
  return final_result;
}

ExecutionResult run_plan_trial_with_trace(const ExecutionPlan& plan,
                                          const ResilienceConfig& resilience,
                                          const FailureTrace& trace,
                                          std::uint64_t seed) {
  (void)resilience;  // severity already baked into the trace
  if (!plan.feasible) {
    ExecutionResult result;
    result.completed = false;
    result.baseline = plan.baseline;
    result.efficiency = 0.0;
    return result;
  }

  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};

  TraceFailureProcess failures{sim, trace,
                               [&runtime](const Failure& f) { runtime.on_failure(f); }};
  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "trace trial ended without a completion callback");
  return final_result;
}

ExecutionResult run_single_app_trial(const SingleAppTrialConfig& config,
                                     std::uint64_t seed) {
  const ExecutionPlan plan =
      make_plan(config.technique, config.app, config.machine, config.resilience);
  return run_plan_trial(plan, config.resilience, config.failure_distribution, seed);
}

EfficiencyStudyResult run_efficiency_study(const EfficiencyStudyConfig& config,
                                           const StudyProgress& progress) {
  XRES_CHECK(config.trials > 0, "study needs at least one trial");
  XRES_CHECK(!config.size_fractions.empty(), "study needs at least one size");
  XRES_CHECK(!config.techniques.empty(), "study needs at least one technique");

  EfficiencyStudyResult result;
  result.config = config;
  const std::size_t total_cells =
      config.size_fractions.size() * config.techniques.size();
  std::size_t done_cells = 0;

  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    const double fraction = config.size_fractions[si];
    XRES_CHECK(fraction > 0.0 && fraction <= 1.0, "size fraction must be in (0, 1]");
    const auto nodes = static_cast<std::uint32_t>(std::llround(
        fraction * static_cast<double>(config.machine.node_count)));
    const AppSpec app = AppSpec::from_baseline(config.app_type, std::max(1U, nodes),
                                               config.baseline);

    result.efficiency.emplace_back();
    result.mean_failures.emplace_back();
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      SingleAppTrialConfig trial;
      trial.app = app;
      trial.technique = config.techniques[ti];
      trial.machine = config.machine;
      trial.resilience = config.resilience;
      trial.failure_distribution = config.failure_distribution;

      RunningStats efficiency;
      RunningStats failures;
      for (std::uint32_t t = 0; t < config.trials; ++t) {
        const std::uint64_t seed = derive_seed(config.seed, si, ti, t);
        const ExecutionResult r = run_single_app_trial(trial, seed);
        efficiency.add(r.efficiency);
        failures.add(static_cast<double>(r.failures_seen));
      }
      result.efficiency[si].push_back(efficiency.summary());
      result.mean_failures[si].push_back(failures.empty() ? 0.0 : failures.mean());
      ++done_cells;
      if (progress) progress(done_cells, total_cells);
    }
  }
  return result;
}

Table EfficiencyStudyResult::to_table() const {
  std::vector<std::string> headers{"system share"};
  for (TechniqueKind kind : config.techniques) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    std::vector<std::string> row{fmt_percent(config.size_fractions[si], 0)};
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const Summary& s = efficiency[si][ti];
      row.push_back(fmt_mean_std(s.mean, s.stddev));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table EfficiencyStudyResult::to_csv_table() const {
  Table table{{"size_fraction", "technique", "mean_efficiency", "stddev", "trials",
               "mean_failures"}};
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const Summary& s = efficiency[si][ti];
      table.add_row({fmt_double(config.size_fractions[si], 4),
                     to_string(config.techniques[ti]), fmt_double(s.mean, 6),
                     fmt_double(s.stddev, 6), std::to_string(s.count),
                     fmt_double(mean_failures[si][ti], 2)});
    }
  }
  return table;
}

}  // namespace xres
