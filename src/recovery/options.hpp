#pragma once

/// \file options.hpp
/// The recovery knobs a study threads through to its executor loops, plus
/// the per-batch accounting the executor reports back. Bundled as values so
/// study configs (EfficiencyStudyConfig, WorkloadStudyConfig) and the
/// src/study CLI layer share one vocabulary for
/// `--journal/--resume/--trial-timeout/--trial-retries`.

#include <cstddef>
#include <string>

namespace xres::recovery {

class TrialJournal;
class ResumeIndex;

/// How an executor loop should behave under failure and interruption. The
/// defaults reproduce the historical behavior exactly: no journal, no
/// resume, no watchdog, one attempt, exceptions propagate.
struct TrialRecoveryOptions {
  /// Non-null: stream every completed trial into this journal.
  TrialJournal* journal{nullptr};
  /// Non-null: skip trials whose records are already in the journal.
  const ResumeIndex* resume{nullptr};
  /// Wall-clock watchdog per trial attempt, in seconds (0 = disabled).
  double trial_timeout_seconds{0.0};
  /// Total attempts per trial (same seed) before it is quarantined.
  /// 1 with timeout disabled = historical behavior (exceptions propagate);
  /// quarantine-on-exhaustion engages only when attempts > 1 or a watchdog
  /// timeout is armed.
  unsigned trial_attempts{1};
  /// Drain in-flight trials and stop on SIGINT/SIGTERM (the flag only has
  /// an effect when install_shutdown_handlers() was called).
  bool drain_on_shutdown{true};

  /// True when any non-default behavior is requested.
  [[nodiscard]] bool active() const {
    return journal != nullptr || resume != nullptr || trial_timeout_seconds > 0.0 ||
           trial_attempts > 1;
  }
  /// Quarantine (record + skip) instead of propagating once the attempt
  /// budget is spent?
  [[nodiscard]] bool quarantine_enabled() const {
    return trial_attempts > 1 || trial_timeout_seconds > 0.0;
  }
};

/// What one controlled loop actually did. Studies aggregate these across
/// batches; drivers print the summary and pick the exit code.
struct BatchReport {
  std::size_t executed{0};       ///< trials simulated this run
  std::size_t resumed{0};        ///< trials restored from the journal
  std::size_t retried{0};        ///< extra attempts after a failure/timeout
  std::size_t quarantined{0};    ///< trials recorded as failed and skipped
  std::size_t stale_records{0};  ///< journal records ignored (seed/payload mismatch)
  bool interrupted{false};       ///< a shutdown signal drained the loop early

  void merge(const BatchReport& other) {
    executed += other.executed;
    resumed += other.resumed;
    retried += other.retried;
    quarantined += other.quarantined;
    stale_records += other.stale_records;
    interrupted = interrupted || other.interrupted;
  }

  /// One human-readable line ("1200 executed, 800 resumed, ...") for driver
  /// output; empty counts are elided.
  [[nodiscard]] std::string summary() const {
    std::string out = std::to_string(executed) + " executed";
    if (resumed != 0) out += ", " + std::to_string(resumed) + " resumed from journal";
    if (retried != 0) out += ", " + std::to_string(retried) + " retried";
    if (quarantined != 0) out += ", " + std::to_string(quarantined) + " quarantined";
    if (stale_records != 0) {
      out += ", " + std::to_string(stale_records) + " stale journal records ignored";
    }
    if (interrupted) out += " [interrupted]";
    return out;
  }
};

}  // namespace xres::recovery
