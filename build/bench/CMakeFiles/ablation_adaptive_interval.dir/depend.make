# Empty dependencies file for ablation_adaptive_interval.
# This may be replaced when dependencies are built.
