// Unit tests for the event queue and simulation engine.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TimePoint at(double s) { return TimePoint::at(Duration::seconds(s)); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3.0), [&] { order.push_back(3); });
  q.schedule(at(1.0), [&] { order.push_back(1); });
  q.schedule(at(2.0), [&] { order.push_back(2); });
  while (auto e = q.pop()) e->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(5.0), [&] { order.push_back(1); });
  q.schedule(at(5.0), [&] { order.push_back(2); });
  q.schedule(at(5.0), [&] { order.push_back(3); });
  while (auto e = q.pop()) e->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1.0), [&] { order.push_back(1); });
  const EventId doomed = q.schedule(at(2.0), [&] { order.push_back(2); });
  q.schedule(at(3.0), [&] { order.push_back(3); });
  EXPECT_TRUE(q.pending(doomed));
  EXPECT_TRUE(q.cancel(doomed));
  EXPECT_FALSE(q.pending(doomed));
  EXPECT_FALSE(q.cancel(doomed));  // second cancel is a no-op
  while (auto e = q.pop()) e->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(at(1.0), [] {});
  q.schedule(at(2.0), [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
  EXPECT_EQ(q.next_time(), at(2.0));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.next_time().has_value());
}

TEST(EventQueue, RejectsEmptyCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule(at(1.0), EventCallback{}), CheckError);
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  // Regression: the runtime holds on to completion-event ids across
  // failures; cancelling one whose event already fired must be a safe
  // no-op, not a hit on whatever reused the slot.
  EventQueue q;
  const EventId id = q.schedule(at(1.0), [] {});
  const auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->id, id);
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));
  // The slot is recycled by the next schedule; the stale id must still be
  // rejected rather than cancelling the new occupant.
  const EventId fresh = q.schedule(at(2.0), [] {});
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.pending(fresh));
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueue, ForeignQueueIdIsRejected) {
  // Regression: pending()/cancel() with another queue's id (or a
  // value-initialized one) must be safe and answer false, whatever state
  // either queue is in.
  EventQueue a;
  EventQueue b;
  const EventId in_a = a.schedule(at(1.0), [] {});
  b.schedule(at(1.0), [] {});
  EXPECT_FALSE(b.pending(in_a));
  EXPECT_FALSE(b.cancel(in_a));
  EXPECT_FALSE(a.pending(EventId{}));
  EXPECT_FALSE(a.cancel(EventId{}));
  EXPECT_TRUE(a.pending(in_a));  // still live in its own queue
  EXPECT_EQ(b.size(), 1U);
}

TEST(EventQueue, StaleIdStaysDeadAcrossSlotReuse) {
  // Cancel an event, then keep recycling its slot: every older handle for
  // the slot must remain dead while the current one works.
  EventQueue q;
  const EventId first = q.schedule(at(1.0), [] {});
  ASSERT_TRUE(q.cancel(first));
  std::vector<EventId> stale{first};
  for (int round = 0; round < 16; ++round) {
    const EventId current = q.schedule(at(1.0 + round), [] {});
    for (const EventId old : stale) {
      EXPECT_FALSE(q.pending(old));
      EXPECT_FALSE(q.cancel(old));
    }
    EXPECT_TRUE(q.pending(current));
    if (round % 2 == 0) {
      ASSERT_TRUE(q.cancel(current));
    } else {
      const auto fired = q.pop();
      ASSERT_TRUE(fired.has_value());
      EXPECT_EQ(fired->id, current);
    }
    stale.push_back(current);
  }
  EXPECT_TRUE(q.empty());
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  std::vector<double> times;
  sim.schedule_after(Duration::seconds(10.0), [&] { times.push_back(sim.now().to_seconds()); });
  sim.schedule_at(at(5.0), [&] { times.push_back(sim.now().to_seconds()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 10.0);
  EXPECT_EQ(sim.events_processed(), 2U);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(at(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(at(1.0), [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(Duration::seconds(-1.0), [] {}), CheckError);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(1.0), [&] {
    ++fired;
    sim.schedule_after(Duration::seconds(1.0), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
}

TEST(Simulation, RunUntilAdvancesClockPastLastEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(3.0), [&] { ++fired; });
  sim.schedule_at(at(8.0), [&] { ++fired; });
  sim.run_until(at(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RequestStopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(1.0), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_at(at(2.0), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, MaxEventsGuard) {
  Simulation sim;
  int fired = 0;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++fired;
    sim.schedule_after(Duration::seconds(1.0), tick);
  };
  sim.schedule_after(Duration::seconds(1.0), tick);
  sim.run(/*max_events=*/25);
  EXPECT_EQ(fired, 25);
}

TEST(Simulation, CancelScheduledEvent) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.schedule_at(at(4.0), [&] { ++fired; });
  sim.schedule_at(at(1.0), [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 1.0);
}

TEST(Simulation, DeterministicTieOrderWithCancellation) {
  // A cancelled event between two live ones at the same time must not
  // disturb the deterministic order.
  Simulation sim;
  std::string log;
  sim.schedule_at(at(1.0), [&] { log += 'a'; });
  const EventId b = sim.schedule_at(at(1.0), [&] { log += 'b'; });
  sim.schedule_at(at(1.0), [&] { log += 'c'; });
  sim.cancel(b);
  sim.run();
  EXPECT_EQ(log, "ac");
}

}  // namespace
}  // namespace xres
