#include "core/workload_study.hpp"

#include "util/check.hpp"

namespace xres {

std::string WorkloadCombo::name() const {
  return std::string{to_string(scheduler)} + " + " + policy.name();
}

std::vector<WorkloadComboResult> run_workload_study(
    const WorkloadStudyConfig& config, const std::vector<WorkloadCombo>& combos,
    const WorkloadProgress& progress) {
  XRES_CHECK(config.patterns > 0, "study needs at least one pattern");
  XRES_CHECK(!combos.empty(), "study needs at least one combo");

  // Generate the patterns once; every combo replays the identical
  // workloads (paper Section VI).
  std::vector<ArrivalPattern> patterns;
  patterns.reserve(config.patterns);
  for (std::uint32_t p = 0; p < config.patterns; ++p) {
    patterns.push_back(generate_pattern(config.workload, config.seed, p));
  }

  // Every (combo, pattern) run is independent: execute the flat grid on
  // the worker pool, each run writing its own slot, then reduce serially in
  // (combo, pattern) order so summaries are identical for any thread count.
  const std::size_t total_runs = combos.size() * config.patterns;
  std::vector<WorkloadRunResult> runs(total_runs);
  std::vector<obs::TrialObs> observers;
  if (config.collect_metrics) {
    observers.resize(total_runs);
    for (obs::TrialObs& o : observers) o.enable_metrics();
  }
  const TrialExecutor executor{config.threads};
  executor.for_each(
      total_runs,
      [&](std::size_t idx) {
        const WorkloadCombo& combo = combos[idx / config.patterns];
        const auto p = static_cast<std::uint32_t>(idx % config.patterns);
        WorkloadEngineConfig engine;
        engine.machine = config.machine;
        engine.resilience = config.resilience;
        engine.policy = combo.policy;
        engine.scheduler = combo.scheduler;
        // The engine seed varies per pattern but NOT per combo: combos see
        // identical failure sequences for a given pattern (variance
        // reduction, mirroring the paper's shared arrival patterns).
        engine.seed = derive_seed(config.seed, 0x656e67696eULL, p);
        if (config.collect_metrics) engine.obs = &observers[idx];
        runs[idx] = run_workload(engine, patterns[p]);
      },
      progress);

  std::vector<WorkloadComboResult> results;
  results.reserve(combos.size());
  for (std::size_t ci = 0; ci < combos.size(); ++ci) {
    WorkloadComboResult out;
    out.combo = combos[ci];
    RunningStats dropped;
    RunningStats utilization;
    RunningStats failures;
    for (std::uint32_t p = 0; p < config.patterns; ++p) {
      const WorkloadRunResult& r = runs[ci * config.patterns + p];
      dropped.add(r.dropped_fraction);
      utilization.add(r.mean_utilization);
      failures.add(static_cast<double>(r.failures_injected));
      for (const auto& [kind, count] : r.selection_counts) {
        out.selection_counts[kind] += count;
      }
    }
    out.dropped_fraction = dropped.summary();
    out.mean_utilization = utilization.summary();
    out.mean_failures = failures.empty() ? 0.0 : failures.mean();
    if (config.collect_metrics) {
      // Merge in pattern order: byte-identical for every thread count.
      out.metrics.emplace();
      for (std::uint32_t p = 0; p < config.patterns; ++p) {
        out.metrics->merge(*observers[ci * config.patterns + p].metrics());
      }
    }
    results.push_back(std::move(out));
  }
  return results;
}

std::vector<WorkloadCombo> figure4_combos() {
  std::vector<WorkloadCombo> combos;
  combos.push_back(WorkloadCombo{SchedulerKind::kFcfs, TechniquePolicy::ideal_baseline()});
  for (SchedulerKind sched : all_schedulers()) {
    for (TechniqueKind kind : workload_techniques()) {
      combos.push_back(WorkloadCombo{sched, TechniquePolicy::fixed_technique(kind)});
    }
  }
  return combos;
}

std::vector<WorkloadCombo> figure5_combos() {
  std::vector<WorkloadCombo> combos;
  for (SchedulerKind sched : all_schedulers()) {
    combos.push_back(WorkloadCombo{
        sched, TechniquePolicy::fixed_technique(TechniqueKind::kParallelRecovery)});
    combos.push_back(WorkloadCombo{sched, TechniquePolicy::selection()});
  }
  return combos;
}

Table workload_results_table(const std::vector<WorkloadComboResult>& results) {
  Table table{{"scheduler", "resilience", "dropped %", "std %", "utilization %",
               "failures/pattern"}};
  for (const WorkloadComboResult& r : results) {
    table.add_row({to_string(r.combo.scheduler), r.combo.policy.name(),
                   fmt_double(r.dropped_fraction.mean * 100.0, 2),
                   fmt_double(r.dropped_fraction.stddev * 100.0, 2),
                   fmt_double(r.mean_utilization.mean * 100.0, 1),
                   fmt_double(r.mean_failures, 1)});
  }
  return table;
}

}  // namespace xres
