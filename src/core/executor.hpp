#pragma once

/// \file executor.hpp
/// The unified trial-execution API. Every figure in the paper is a Monte
/// Carlo sweep of independent seeded trials; this header provides
///
///  * `TrialSpec` — a value describing ONE trial: what to run (a
///    planner-driven application config, an explicit plan, or a plan
///    replayed against a fixed failure trace) plus the seed keys that
///    identify the trial within a study,
///  * `run_trial` — execute one trial synchronously,
///  * `TrialExecutor` — run a batch of specs on a fixed-size worker pool
///    with deterministic, thread-count-invariant results.
///
/// ## Seed-derivation contract
///
/// A trial's RNG seed is `derive_seed(root, key_0, ..., key_{k-1})` where
/// `root` is the study's root seed and the keys identify the trial (for the
/// efficiency studies: size index, technique index, trial index). The
/// executor applies exactly this derivation, so any single trial of any
/// figure can be regenerated in isolation with `run_trial` (DESIGN.md §6).
/// A spec with NO keys runs with the root seed itself.
///
/// ## Determinism
///
/// `run_batch` writes each trial's result into a slot indexed by the
/// spec's position; callers reduce the returned vector in spec order.
/// Because neither the per-trial seeds nor the reduction order depend on
/// scheduling, results are bit-identical for every thread count —
/// including `threads == 1`, which reproduces the historical serial path
/// byte for byte. (`Summary::merge` / `RunningStats::merge` additionally
/// support Chan-et-al. pooling of pre-reduced partials, e.g. across
/// processes; within one study we prefer ordered reduction because
/// floating-point merge order would otherwise vary with the partition.)

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "apps/application.hpp"
#include "failure/distribution.hpp"
#include "failure/trace.hpp"
#include "obs/trial_obs.hpp"
#include "platform/spec.hpp"
#include "recovery/options.hpp"
#include "resilience/config.hpp"
#include "resilience/plan.hpp"
#include "resilience/technique.hpp"
#include "runtime/result.hpp"
#include "util/rng.hpp"

namespace xres {

/// One simulated execution of one application under one technique, with
/// the plan derived by the planner (`make_plan`) at execution time.
struct SingleAppTrialConfig {
  AppSpec app{};
  TechniqueKind technique{TechniqueKind::kCheckpointRestart};
  MachineSpec machine{};
  ResilienceConfig resilience{};
  FailureDistribution failure_distribution{FailureDistribution::exponential()};
};

/// Execute an explicit (possibly hand-modified) plan under its own failure
/// rate. Used by ablation harnesses that override planner decisions such
/// as the checkpoint interval.
struct PlanTrialSpec {
  ExecutionPlan plan{};
  ResilienceConfig resilience{};
  FailureDistribution failure_distribution{FailureDistribution::exponential()};
};

/// Execute a plan against a *replayed* failure trace (common random
/// numbers): every technique compared against the same trace sees
/// byte-identical failure times and severities, which removes
/// failure-sampling variance from technique deltas. The trial seed still
/// drives the runtime's internal randomness (redundancy victim
/// classification).
struct TraceTrialSpec {
  ExecutionPlan plan{};
  ResilienceConfig resilience{};
  FailureTrace trace{};
};

/// What one trial executes.
using TrialWork = std::variant<SingleAppTrialConfig, PlanTrialSpec, TraceTrialSpec>;

/// One trial of a study: the work plus the seed keys that identify it.
struct TrialSpec {
  TrialWork work{SingleAppTrialConfig{}};
  /// Mixed with the batch's root seed (see the seed-derivation contract
  /// above). Empty: the trial runs with the root seed unchanged.
  std::vector<std::uint64_t> seed_keys{};

  /// The trial's final seed under root seed \p root.
  [[nodiscard]] std::uint64_t derived_seed(std::uint64_t root) const;
};

/// Run one trial with the given (already derived) seed. Infeasible plans
/// (redundancy larger than the machine) return a zero-efficiency result
/// without simulating, as in the paper's zero-height bars.
///
/// \p obs (optional, may be null) collects the trial's metrics and/or
/// sim-time trace; it must be single-threaded for the trial's duration.
/// Observation never perturbs the simulation: the result is byte-identical
/// with and without it.
[[nodiscard]] ExecutionResult run_trial(const SingleAppTrialConfig& config,
                                        std::uint64_t seed,
                                        obs::TrialObs* obs = nullptr);
[[nodiscard]] ExecutionResult run_trial(const PlanTrialSpec& spec, std::uint64_t seed,
                                        obs::TrialObs* obs = nullptr);
[[nodiscard]] ExecutionResult run_trial(const TraceTrialSpec& spec, std::uint64_t seed,
                                        obs::TrialObs* obs = nullptr);

/// Run one spec under a study root seed (applies the seed-derivation
/// contract).
[[nodiscard]] ExecutionResult run_trial(const TrialSpec& spec, std::uint64_t root_seed,
                                        obs::TrialObs* obs = nullptr);

/// Progress callback: (completed units, total units). The executor invokes
/// it from worker threads under an internal mutex, so one invocation runs
/// at a time and `done` is strictly increasing — callbacks may freely
/// update shared state or write to a stream without their own locking.
using TrialProgress = std::function<void(std::size_t, std::size_t)>;

/// Hooks and policy for a *controlled* executor loop — the crash-safe
/// variant behind `--journal/--resume/--trial-timeout/--trial-retries`
/// (docs/ROBUSTNESS.md). All hooks may be empty. Hooks run on worker
/// threads; like the loop body, each invocation owns only its index's
/// state, except `quarantine`, which the executor serializes internally.
struct TrialLoopControl {
  TrialProgress progress{};
  /// Wall-clock watchdog per attempt, seconds (0 = disabled). Armed as a
  /// thread-local deadline the sim engine polls (util/deadline.hpp).
  double trial_timeout_seconds{0.0};
  /// Total same-seed attempts per unit before giving up (min 1).
  unsigned trial_attempts{1};
  /// Stop handing out new units once a shutdown signal arrives
  /// (recovery/shutdown.hpp); in-flight units drain normally.
  bool drain_on_shutdown{true};
  /// Return true to skip unit i (already restored from a journal). Counted
  /// as `resumed` in the report.
  std::function<bool(std::size_t)> already_done{};
  /// Invoked (serialized) when unit i exhausted its attempts; record a
  /// placeholder outcome. When empty, the last exception propagates and
  /// fails the whole loop — the historical behavior.
  std::function<void(std::size_t, const std::string&)> quarantine{};
};

/// Fixed-size thread-pool executor for trial batches.
///
/// Work distribution is dynamic (an atomic work index hands out the next
/// spec to the first idle worker) but results are written into per-spec
/// slots, so the output — and anything reduced from it in spec order — is
/// independent of the distribution. `threads == 1` runs everything on the
/// calling thread with no pool.
class TrialExecutor {
 public:
  /// \p threads 0 selects `std::thread::hardware_concurrency()` (minimum 1).
  explicit TrialExecutor(unsigned threads = 0);

  /// The resolved worker count.
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run every spec; `result[i]` is spec `i`'s outcome. Deterministic and
  /// thread-count-invariant (see file comment). Exceptions thrown by a
  /// trial stop the batch and are rethrown on the calling thread.
  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      std::uint64_t root_seed, std::span<const TrialSpec> specs,
      const TrialProgress& progress = {}) const;

  /// run_batch with per-trial observation: `observers[i]` (already enabled
  /// for the channels the caller wants) collects trial `i`. Observer count
  /// must equal spec count. Each observer is touched only by the worker
  /// running its trial; merging the filled contexts in spec order
  /// (`MetricSet::merge`) is thread-count-invariant like the results.
  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      std::uint64_t root_seed, std::span<const TrialSpec> specs,
      std::span<obs::TrialObs> observers, const TrialProgress& progress = {}) const;

  /// Generic deterministic parallel-for: invokes `body(i)` once for each
  /// `i` in `[0, count)` across the worker pool. `body` must only write to
  /// state owned by index `i`. Used by study drivers whose unit of work is
  /// not an `ExecutionResult` (e.g. workload pattern runs).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& body,
                const TrialProgress& progress = {}) const;

  /// for_each with the crash-safety envelope: resume skipping, a per-
  /// attempt watchdog deadline, bounded same-seed retry with quarantine,
  /// and graceful shutdown draining. Accounting lands in \p report (may be
  /// null). Determinism is unchanged: results still live in per-index
  /// slots, and whether a unit ran or was restored never depends on thread
  /// scheduling.
  void for_each_controlled(std::size_t count,
                           const std::function<void(std::size_t)>& body,
                           const TrialLoopControl& control,
                           recovery::BatchReport* report = nullptr) const;

  /// run_batch with the crash-safety envelope (docs/ROBUSTNESS.md):
  /// completed trials stream into `rec.journal` (when set), trials already
  /// in `rec.resume` are restored instead of re-simulated — including their
  /// journaled per-trial metrics, so merged `--metrics` output stays
  /// byte-identical — and failing/hung trials are retried then quarantined
  /// per `rec`. \p observers may be empty (unobserved) or one per spec.
  /// \p batch_label namespaces this batch's records within the journal.
  /// On interruption (report->interrupted) the returned vector is only
  /// valid at indices the loop finished; callers must not reduce it.
  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      std::uint64_t root_seed, std::span<const TrialSpec> specs,
      std::span<obs::TrialObs> observers, const recovery::TrialRecoveryOptions& rec,
      const std::string& batch_label, recovery::BatchReport* report = nullptr,
      const TrialProgress& progress = {}) const;

 private:
  unsigned threads_;
};

}  // namespace xres
