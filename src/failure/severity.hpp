#pragma once

/// \file severity.hpp
/// Failure-severity model (paper Section III-E).
///
/// Each failure carries a severity level 1..L. Level j means the failure
/// can be recovered from any checkpoint of level >= j in a multilevel
/// scheme: level 1 is a transient error recoverable from node-local RAM,
/// level 2 a node loss recoverable from a partner copy, level 3 a failure
/// requiring the parallel file system. The probability of each level is a
/// PMF measured from failure logs; the paper uses the BlueGene/L-derived
/// ratios of Moody et al. [3]. The exact log values are not published in
/// the paper, so the default PMF below keeps the property that drives the
/// multilevel trade-off — most failures are recoverable from cheap levels —
/// and is swept by an ablation bench (see DESIGN.md §5).

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace xres {

/// 1-based severity level; level L (highest) needs the most durable
/// checkpoint.
using SeverityLevel = int;

class SeverityModel {
 public:
  /// Build from per-level weights (index 0 = level 1). Weights are
  /// normalized internally; they must be non-negative with a positive sum,
  /// and the *highest* level must have positive mass (otherwise some
  /// failures would be unrecoverable by design).
  explicit SeverityModel(std::vector<double> level_weights);

  /// Default 3-level PMF inspired by the BlueGene/L log analysis in Moody
  /// et al. [3]: 55% transient (L1), 35% node loss (L2), 10% severe (L3).
  [[nodiscard]] static SeverityModel bluegene_default();

  /// Degenerate single-level model: every failure needs the most durable
  /// checkpoint (what plain checkpoint/restart assumes).
  [[nodiscard]] static SeverityModel single_level();

  [[nodiscard]] int level_count() const { return static_cast<int>(weights_.size()); }

  /// P(severity == level), level in [1, level_count()].
  [[nodiscard]] double probability(SeverityLevel level) const;

  /// P(severity >= level): the rate fraction a level-`level` checkpoint
  /// must absorb.
  [[nodiscard]] double probability_at_least(SeverityLevel level) const;

  /// Draw a severity level in [1, level_count()].
  [[nodiscard]] SeverityLevel sample(Pcg32& rng) const;

 private:
  std::vector<double> weights_;  // normalized PMF
  DiscreteDistribution dist_;
};

}  // namespace xres
