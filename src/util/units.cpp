#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace xres {

Duration transfer_time(DataSize size, Bandwidth bw) {
  XRES_CHECK(bw.to_bytes_per_second() > 0.0, "bandwidth must be positive");
  XRES_CHECK(size.to_bytes() >= 0.0, "data size must be non-negative");
  return Duration::seconds(size.to_bytes() / bw.to_bytes_per_second());
}

Rate Rate::one_per(Duration mean) {
  XRES_CHECK(mean > Duration::zero(), "mean interval must be positive");
  if (!mean.is_finite()) return Rate::zero();
  return Rate::per_second(1.0 / mean.to_seconds());
}

Duration Rate::mean_interval() const {
  if (per_second_ <= 0.0) return Duration::infinity();
  return Duration::seconds(1.0 / per_second_);
}

namespace {

std::string format_with(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

std::string to_string(Duration d) {
  const double s = d.to_seconds();
  if (!d.is_finite()) return s > 0 ? "inf" : "-inf";
  if (s < 0) return "-" + to_string(-d);
  if (s < 1e-3) return format_with("%.2f us", s * 1e6);
  if (s < 1.0) return format_with("%.2f ms", s * 1e3);
  if (s < 60.0) return format_with("%.2f s", s);
  if (s < 3600.0) return format_with("%.2f min", s / 60.0);
  if (s < 86400.0) return format_with("%.2f h", s / 3600.0);
  return format_with("%.2f d", s / 86400.0);
}

std::string to_string(TimePoint t) { return to_string(t.since_origin()); }

std::string to_string(DataSize size) {
  const double b = size.to_bytes();
  if (b < 1e6) return format_with("%.0f B", b);
  if (b < 1e9) return format_with("%.2f MB", b / 1e6);
  if (b < 1e12) return format_with("%.2f GB", b / 1e9);
  return format_with("%.2f TB", b / 1e12);
}

}  // namespace xres
