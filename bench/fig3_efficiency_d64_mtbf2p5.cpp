// Reproduces paper Figure 3: the Figure-2 study under degraded component
// reliability (node MTBF 2.5 years). Traditional checkpoint/restart
// collapses — at exascale it spends so long checkpointing and restarting
// that applications cannot complete.

#include "apps/app_type.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{
      "fig3_efficiency_d64_mtbf2p5 — paper Figure 3: efficiency vs. "
      "application size for D64 with node MTBF reduced to 2.5 years."};
  bench::add_common_options(cli, 200);
  if (!cli.parse_or_exit(argc, argv)) return 0;

  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("D64");
  config.resilience.node_mtbf = Duration::years(2.5);
  return bench::run_efficiency_figure(
      "Figure 3: efficiency vs. system share, application D64, MTBF 2.5 y",
      config, bench::read_common_options(cli));
}
