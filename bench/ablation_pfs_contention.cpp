// Ablation: machine-wide PFS bandwidth contention in the workload study.
// The paper's Eq. 3 models per-application PFS contention (N_a / N_S) but
// treats concurrent applications' checkpoints as independent; this
// extension routes all PFS traffic through a shared processor-sharing
// channel with a configurable gateway count and measures the impact on
// dropped applications.

#include <cstdio>
#include <vector>

#include "core/workload_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto patterns = ctx.params().u32("patterns");
  const std::uint64_t seed = ctx.seed();
  const study::ObsOptions& obs_options = ctx.options().obs;
  study::RecoveryCoordinator& coordinator = ctx.recovery();
  const TrialExecutor executor{1};  // pattern runs are serial in this sweep
  obs::MetricSet merged;

  std::printf("Ablation: PFS contention in the oversubscribed workload study\n");
  std::printf("scheduler Slack, %u patterns per cell\n\n", patterns);

  Table table{{"PFS model", "checkpoint-restart dropped %", "multilevel dropped %",
               "parallel-recovery dropped %"}};

  struct Variant {
    const char* name;
    bool contention;
    std::uint32_t gateways;
  };
  for (const Variant variant : {Variant{"independent (paper)", false, 0},
                                Variant{"shared, 8 gateways", true, 8},
                                Variant{"shared, 4 gateways", true, 4},
                                Variant{"shared, 1 gateway", true, 1}}) {
    std::vector<std::string> row{variant.name};
    for (TechniqueKind kind : workload_techniques()) {
      WorkloadStudyConfig study_config;
      study_config.patterns = patterns;
      study_config.seed = seed;
      study::apply_platform_params(study_config.machine, ctx.params());

      // Run the combos manually so the engine flag can be set; the crash-safe
      // pattern loop journals each run under a per-cell batch label.
      RunningStats dropped;
      study::run_patterns_controlled(
          coordinator, executor,
          std::string{variant.name} + "/" + to_string(kind), patterns, seed,
          [&](std::uint32_t p) {
            const ArrivalPattern pattern =
                generate_pattern(study_config.workload, study_config.seed, p);
            WorkloadEngineConfig engine;
            engine.machine = study_config.machine;
            engine.resilience = study_config.resilience;
            engine.policy = TechniquePolicy::fixed_technique(kind);
            engine.scheduler = SchedulerKind::kSlack;
            engine.seed = derive_seed(study_config.seed, 0x656e67696eULL, p);
            engine.model_pfs_contention = variant.contention;
            if (variant.contention) engine.pfs_gateways = variant.gateways;
            obs::TrialObs run_obs;
            if (obs_options.metrics()) {
              run_obs.enable_metrics();
              engine.obs = &run_obs;
            }
            WorkloadOutcome outcome;
            outcome.result = run_workload(engine, pattern);
            if (obs_options.metrics()) outcome.metrics = *run_obs.metrics();
            return outcome;
          },
          [&](std::uint32_t, const WorkloadOutcome& outcome) {
            dropped.add(outcome.result.dropped_fraction);
            if (obs_options.metrics() && outcome.metrics.has_value()) {
              merged.merge(*outcome.metrics);
            }
          });
      if (coordinator.interrupted()) return coordinator.finish();
      row.push_back(fmt_double(dropped.mean() * 100.0, 2) + " ± " +
                    fmt_double(dropped.stddev() * 100.0, 2));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished: %s\n", variant.name);
  }
  std::printf("%s", table.to_text().c_str());
  if (obs_options.metrics()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs_options.metrics_path);
    study::statusf("metrics written to %s\n", obs_options.metrics_path.c_str());
  }
  std::printf("(parallel recovery never touches the PFS, so its column is the "
              "control: contention leaves it unchanged)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_pfs_contention";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "dropped applications with and without machine-wide PFS bandwidth contention";
  def.summary = "ablation_pfs_contention — dropped %% with/without machine-wide "
                "PFS contention";
  def.options.default_seed = 20170530;
  def.options.threads = false;  // pattern runs are serial in this sweep
  def.options.obs = study::StudyOptionsSpec::Obs::kNoTrace;
  def.params.integer("patterns", "arrival patterns per cell", 15).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
