file(REMOVE_RECURSE
  "CMakeFiles/xres_platform.dir/allocator.cpp.o"
  "CMakeFiles/xres_platform.dir/allocator.cpp.o.d"
  "CMakeFiles/xres_platform.dir/machine.cpp.o"
  "CMakeFiles/xres_platform.dir/machine.cpp.o.d"
  "CMakeFiles/xres_platform.dir/spec.cpp.o"
  "CMakeFiles/xres_platform.dir/spec.cpp.o.d"
  "CMakeFiles/xres_platform.dir/transfer.cpp.o"
  "CMakeFiles/xres_platform.dir/transfer.cpp.o.d"
  "libxres_platform.a"
  "libxres_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
