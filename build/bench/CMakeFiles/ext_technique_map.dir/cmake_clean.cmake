file(REMOVE_RECURSE
  "CMakeFiles/ext_technique_map.dir/ext_technique_map.cpp.o"
  "CMakeFiles/ext_technique_map.dir/ext_technique_map.cpp.o.d"
  "ext_technique_map"
  "ext_technique_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_technique_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
