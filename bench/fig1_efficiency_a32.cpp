// Reproduces paper Figure 1: resilience-technique efficiency at increasing
// percentages of total system use for the low-memory, low-communication
// application A32, with a 10-year processor MTBF.

#include "apps/app_type.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{
      "fig1_efficiency_a32 — paper Figure 1: efficiency vs. application size "
      "for A32 (low memory, no communication), node MTBF 10 years."};
  bench::add_common_options(cli, 200);
  if (!cli.parse_or_exit(argc, argv)) return 0;

  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("A32");
  config.resilience.node_mtbf = Duration::years(10.0);
  return bench::run_efficiency_figure(
      "Figure 1: efficiency vs. system share, application A32, MTBF 10 y",
      config, bench::read_common_options(cli));
}
