
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_type.cpp" "src/apps/CMakeFiles/xres_apps.dir/app_type.cpp.o" "gcc" "src/apps/CMakeFiles/xres_apps.dir/app_type.cpp.o.d"
  "/root/repo/src/apps/application.cpp" "src/apps/CMakeFiles/xres_apps.dir/application.cpp.o" "gcc" "src/apps/CMakeFiles/xres_apps.dir/application.cpp.o.d"
  "/root/repo/src/apps/swf.cpp" "src/apps/CMakeFiles/xres_apps.dir/swf.cpp.o" "gcc" "src/apps/CMakeFiles/xres_apps.dir/swf.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/xres_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/xres_apps.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
