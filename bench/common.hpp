#pragma once

/// \file common.hpp
/// Shared plumbing for the figure-reproduction harnesses: CLI wiring and
/// the efficiency-figure runner used by Figures 1-3.

#include <optional>
#include <span>
#include <string>

#include "core/single_app_study.hpp"
#include "obs/trial_obs.hpp"
#include "util/cli.hpp"

namespace xres::bench {

/// Observability options shared by the study drivers (ISSUE 2 /
/// docs/OBSERVABILITY.md): both artifacts are deterministic functions of
/// the study seed, byte-identical for every --threads value.
struct ObsOptions {
  std::string metrics_path;  ///< non-empty: write merged metrics JSON here
  std::string trace_path;    ///< non-empty: write Chrome trace JSON here

  [[nodiscard]] bool metrics() const { return !metrics_path.empty(); }
  [[nodiscard]] bool trace() const { return !trace_path.empty(); }
  [[nodiscard]] bool enabled() const { return metrics() || trace(); }
};

/// Registers --metrics/--log-level (and --trace when \p with_trace) on
/// \p cli. Workload drivers pass with_trace = false: their concurrent
/// applications share one simulation, so per-trial tracing does not apply.
void add_obs_options(CliParser& cli, bool with_trace = true);

/// Reads them back after parse(); applies --log-level to the global logger
/// immediately (throws CheckError on a bad name — unlike XRES_LOG, a CLI
/// typo should fail loudly).
[[nodiscard]] ObsOptions read_obs_options(const CliParser& cli);

/// Options every harness shares.
struct HarnessOptions {
  std::uint32_t trials{200};
  std::uint64_t seed{20170529};
  unsigned threads{0};  ///< trial worker threads; 0 = all hardware threads
  bool csv{false};
  bool chart{false};  ///< also render ASCII bars (the figure's visual shape)
  std::string csv_path;  ///< empty: print CSV to stdout when csv is set
  std::string report_path;  ///< non-empty: write a markdown StudyReport here
  ObsOptions obs;  ///< --metrics/--trace/--log-level
};

/// Registers --trials/--seed/--threads/--csv/--csv-path plus the
/// observability options on \p cli.
void add_common_options(CliParser& cli, std::uint32_t default_trials);

/// Reads them back after parse() (applies --log-level, see
/// read_obs_options).
[[nodiscard]] HarnessOptions read_common_options(const CliParser& cli);

/// Observed batch execution for drivers that drive TrialExecutor directly
/// (the ablation/extension harnesses): a drop-in replacement for
/// `executor.run_batch` that, when observation is requested, attaches one
/// observer per trial, merges metrics in spec order, and keeps trial 0 of
/// each batch as a trace track named \p label. Call finish() once after
/// the sweep to write the artifacts.
class ObsCollector {
 public:
  explicit ObsCollector(ObsOptions options) : options_{std::move(options)} {}

  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      const TrialExecutor& executor, std::uint64_t root_seed,
      std::span<const TrialSpec> specs, const std::string& label,
      const TrialProgress& progress = {});

  /// Merged metrics so far (null until the first observed batch).
  [[nodiscard]] const obs::MetricSet* metrics() const {
    return metrics_.has_value() ? &*metrics_ : nullptr;
  }

  /// Write the requested artifacts (prints one line per file to stdout).
  void finish();

 private:
  ObsOptions options_;
  std::optional<obs::MetricSet> metrics_;
  obs::TraceLog trace_;
};

/// Run one Figures-1-3 style efficiency figure and print it in the paper's
/// layout (rows: % of system; columns: technique; cells: mean ± σ over
/// trials). Returns 0.
int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          const HarnessOptions& options);

}  // namespace xres::bench
