#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# rebuild the library + tests under ThreadSanitizer and run the executor
# tests (the only concurrent code path) under it.
#
#   tools/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# TSAN pass: library + tests + the xres CLI (benches/examples just re-link
# the same library code and would double the build time for no extra
# coverage; the CLI is kept so the observed-executor path below runs under
# TSAN too).
cmake -B "$TSAN_BUILD" -S . -DXRES_TSAN=ON \
  -DXRES_BUILD_BENCH=OFF -DXRES_BUILD_EXAMPLES=OFF -DXRES_BUILD_TOOLS=ON
cmake --build "$TSAN_BUILD" -j "$(nproc)"
ctest --test-dir "$TSAN_BUILD" --output-on-failure -R "TrialExecutor|Integration|Obs"

# Observability smoke under TSAN: a threaded study with per-trial metrics
# and tracing enabled exercises the observer hand-off between workers.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
"$TSAN_BUILD"/tools/xres efficiency --type A32 --trials 4 --threads 4 \
  --metrics "$OBS_TMP/m.json" --trace "$OBS_TMP/t.json" --log-level info \
  > /dev/null
test -s "$OBS_TMP/m.json" && test -s "$OBS_TMP/t.json"

echo "tier-1 OK"
