#pragma once

/// \file selector.hpp
/// Resilience Selection (paper Section VII): pick, per application, the
/// technique with the best predicted efficiency. The paper's selector
/// chooses among the workload techniques (checkpoint/restart, multilevel,
/// parallel recovery); the candidate set is configurable.

#include <vector>

#include "apps/application.hpp"
#include "platform/spec.hpp"
#include "resilience/config.hpp"
#include "resilience/plan.hpp"
#include "resilience/technique.hpp"

namespace xres {

class ResilienceSelector {
 public:
  /// \p candidates defaults to the paper's workload set when empty.
  ResilienceSelector(MachineSpec machine, ResilienceConfig config,
                     std::vector<TechniqueKind> candidates = {});

  /// Predicted efficiency of one technique for \p app.
  [[nodiscard]] double predicted_efficiency(const AppSpec& app, TechniqueKind kind) const;

  struct Selection {
    TechniqueKind kind{TechniqueKind::kCheckpointRestart};
    double predicted_efficiency{0.0};
    ExecutionPlan plan{};
  };

  /// Choose the best technique for \p app and return its ready-to-run plan.
  [[nodiscard]] Selection select(const AppSpec& app) const;

  [[nodiscard]] const std::vector<TechniqueKind>& candidates() const { return candidates_; }

 private:
  MachineSpec machine_;
  ResilienceConfig config_;
  std::vector<TechniqueKind> candidates_;
};

}  // namespace xres
