#pragma once

/// \file figure.hpp
/// The Figures-1-3 efficiency-figure runner, shared by the figure studies
/// and the `xres efficiency` adhoc study.

#include <string>

#include "core/single_app_study.hpp"
#include "study/context.hpp"

namespace xres::study {

/// Run one Figures-1-3 style efficiency figure and print it in the paper's
/// layout (rows: % of system; columns: technique; cells: mean ± σ over
/// trials). Reads `trials` from the study's parameters, the rest from the
/// harness options. Honors the crash-safety options (journal/resume/
/// watchdog); the journal is identified by the study's journal id. Returns
/// the driver exit code: 0, or recovery::kExitInterrupted when a shutdown
/// signal drained the study (figure artifacts are then withheld — resume to
/// produce them).
int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          StudyContext& ctx);

}  // namespace xres::study
