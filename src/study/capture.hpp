#pragma once

/// \file capture.hpp
/// Redirect this process's stdout to a file for the duration of one study
/// run — how `xres suite paper` turns each study's printed output into the
/// `<name>.txt` artifact. Uses fd-level dup/dup2 (not a stream swap) so the
/// capture also covers printf from any library the study calls. The
/// capture streams into `<path>.tmp` and renames over \p path on finish(),
/// so a SIGKILL mid-study never leaves a plausible-looking partial
/// artifact behind.

#include <string>

namespace xres::study {

class StdoutCapture {
 public:
  /// Begin capturing: stdout now writes to `<path>.tmp`. Throws CheckError
  /// when the file cannot be created.
  explicit StdoutCapture(std::string path);

  /// Restores stdout if finish() was never called; the partial `.tmp` file
  /// is left behind (the suite cleans temporaries at startup).
  ~StdoutCapture();

  StdoutCapture(const StdoutCapture&) = delete;
  StdoutCapture& operator=(const StdoutCapture&) = delete;

  /// Flush, restore the real stdout, and publish the capture at the final
  /// path. Throws CheckError on I/O failure.
  void finish();

 private:
  void restore() noexcept;

  std::string path_;
  std::string tmp_path_;
  int saved_fd_{-1};
  bool done_{false};
};

}  // namespace xres::study
