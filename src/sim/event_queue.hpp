#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event simulator.
///
/// Requirements that shaped the design:
///  * deterministic total order: ties in time are broken by insertion
///    sequence so that a seeded simulation replays identically,
///  * O(log n) schedule/pop and O(1) cancel — resilience runtimes cancel
///    their pending phase-completion event on every failure, so cancel is on
///    the hot path,
///  * no per-event allocation: a full figure reproduction executes tens of
///    millions of events, so the container must not malloc per schedule.
///
/// Layout (docs/PERFORMANCE.md has the full design discussion):
///  * an implicit 4-ary heap of 16-byte (time, seq, slot) entries. The
///    first level is padded (LaMarca & Ladner) so every node's four
///    children occupy exactly one 64-byte cache line, and the backing
///    buffer is 64-byte aligned to match — a sift-down touches one line per
///    level instead of two;
///  * event state is split by access pattern: a compact generation-tag
///    array (4 bytes per slot, hot: every cancel/pending/skip reads only
///    this) and a cache-line-aligned callback slab (cold: touched once at
///    schedule and once when the event actually fires);
///  * generation-tagged EventIds: an id packs (queue salt, slot generation,
///    slot index), so cancel/pending are one array read and a tag compare —
///    no hashing, and stale ids (already fired, already cancelled, or from
///    another queue) fail the tag check instead of aliasing a recycled slot.
///
/// Cancellation is lazy: cancel() bumps the slot's tag and drops the
/// callback in O(1); the heap entry stays behind and is discarded when it
/// surfaces at the root. The slot is only recycled at that point, so every
/// heap entry's slot index stays valid for the entry's whole lifetime.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/callback.hpp"
#include "util/units.hpp"

namespace xres {

/// Handle identifying a scheduled event; unique within one queue's lifetime.
/// Never zero for a real event, so a value-initialized EventId is a safe
/// "no event" sentinel that cancel()/pending() reject.
enum class EventId : std::uint64_t {};

}  // namespace xres

template <>
struct std::hash<xres::EventId> {
  std::size_t operator()(xres::EventId id) const noexcept {
    return std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(id));
  }
};

namespace xres {

/// Action executed when an event fires.
using EventCallback = SmallCallback;

/// An event popped from the queue, ready to execute.
struct FiredEvent {
  EventId id{};
  TimePoint time{};
  EventCallback callback;
};

class EventQueue {
 public:
  EventQueue();
  /// Flushes this queue's lifetime tallies (schedules/pops/cancels/
  /// compactions) into the process-global perf counters (obs/perf.hpp).
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule \p callback at absolute time \p when.
  EventId schedule(TimePoint when, EventCallback callback);

  /// Cancel a pending event. Returns true if the event was still pending
  /// (false if it already fired, was already cancelled, or belongs to a
  /// different queue). O(1).
  bool cancel(EventId id) noexcept;

  /// True if \p id is still pending. Ids from other queues, fired events
  /// and cancelled events all report false. O(1).
  [[nodiscard]] bool pending(EventId id) const noexcept;

  /// Time of the earliest pending event, if any.
  [[nodiscard]] std::optional<TimePoint> next_time() const;

  /// Remove and return the earliest pending event. Empty optional when the
  /// queue has no live events.
  std::optional<FiredEvent> pop();

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t size() const { return live_count_; }
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Drop every pending event.
  void clear();

 private:
  // EventId bit layout: [63:48] queue salt, [47:24] slot generation,
  // [23:0] slot index. 2^24 slots bounds *concurrent* pending events (the
  // schedule path checks it). A slot's generation is odd while the event is
  // pending and even when it is free — ids are only ever minted from odd
  // generations, so a single masked compare answers "pending?". The
  // 24-bit generation wraps after 2^23 reuses of one slot, after which a
  // stale id could in principle alias — far beyond any realistic cancel
  // pattern between two uses of the same handle.
  static constexpr std::uint64_t kIndexBits = 24;
  static constexpr std::uint64_t kGenBits = 24;
  static constexpr std::uint64_t kIndexMask = (1ULL << kIndexBits) - 1;
  static constexpr std::uint64_t kGenMask = (1ULL << kGenBits) - 1;

  /// One implicit-heap entry — 16 bytes so a node's four children share one
  /// cache line. The sort key (time, then insertion seq) lives here, not in
  /// the slot, so sift operations never chase the slab, and it is packed
  /// for branchless comparison: `hi` is the event time's IEEE-754 bits
  /// mapped to preserve order as unsigned integers, `lo` is
  /// (seq << 32) | slot. Comparing (hi, lo) lexicographically is exactly
  /// the deterministic (time, seq) order — slot never decides because seq
  /// is unique. `seq` holds the low 32 bits of the queue's insertion
  /// counter; renumber_seqs() renormalizes all outstanding entries before
  /// the counter can wrap, so the order is exact for any number of
  /// schedules.
  struct HeapEntry {
    std::uint64_t hi;
    std::uint64_t lo;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(lo & 0xFFFFFFFFULL);
    }
    [[nodiscard]] std::uint32_t seq() const {
      return static_cast<std::uint32_t>(lo >> 32);
    }
  };

  /// Order-preserving map from double to uint64: flips negative values so
  /// unsigned comparison of the results matches double comparison.
  /// (-0.0 is normalized to +0.0 first so the two zeros stay tied.)
  static std::uint64_t time_to_bits(double t) noexcept;
  static double bits_to_time(std::uint64_t bits) noexcept;

  /// Key larger than any real entry's (no finite time maps to all-ones, and
  /// a slot index never fills 32 bits). Fills every cell at or past the
  /// logical heap size; see sift_down().
  static constexpr HeapEntry kSentinel{~0ULL, ~0ULL};

  /// The callback slab cell, padded to a cache line so neighbouring events
  /// never share one.
  struct alignas(64) CallbackSlot {
    EventCallback callback;
  };

  [[nodiscard]] EventId encode(std::uint32_t slot, std::uint32_t generation) const {
    return EventId{(salt_ << (kIndexBits + kGenBits)) |
                   ((static_cast<std::uint64_t>(generation) & kGenMask) << kIndexBits) |
                   slot};
  }

  /// Splits \p id into (slot, generation); false when the salt says the id
  /// was minted by a different queue.
  bool decode(EventId id, std::uint32_t& slot, std::uint32_t& generation) const noexcept;

  /// Strictly-less in the deterministic event order. Bitwise (not
  /// short-circuit) combination: the whole predicate compiles to compares
  /// and set/cmov instructions with no data-dependent branch, which
  /// matters because random keys would mispredict ~50% of the time in the
  /// sift loops.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return bool(a.hi < b.hi) | (bool(a.hi == b.hi) & bool(a.lo < b.lo));
  }

  // ---- implicit 4-ary heap over a 64-byte-aligned buffer ----
  //
  // Logical index l (0 = root, children 4l+1..4l+4) maps to physical index
  // l + 3: a node's children then live at physical 4(l+1)..4(l+1)+3, i.e.
  // byte offset 64·(l+1) — one full cache line per child group. Physical
  // cells 0..2 are never used. Every physical cell at or past the logical
  // size holds a +inf sentinel, so sift_down can always read a full
  // four-child group without a bounds branch.
  [[nodiscard]] HeapEntry& at(std::size_t logical) const { return heap_[logical + 3]; }
  void heap_grow(std::size_t logical_capacity) const;
  void heap_push(const HeapEntry& entry);
  /// Remove the root of a non-empty heap.
  void heap_pop_root() const;
  void sift_up(std::size_t logical);
  void sift_down(std::size_t logical) const;

  /// Reassign the outstanding entries' 32-bit seqs to 0..n-1 in their
  /// current order and reset the counter. Runs once every 2^32 schedules,
  /// so its O(n log n) cost amortizes to nothing.
  void renumber_seqs();

  /// Discard dead root entries, recycling their slots. After this the root
  /// (if any) is a live event. Called from the const observers, hence the
  /// mutable heap/free-list.
  void skip_dead() const;

  /// Remove every dead entry in one O(n) sweep and re-heapify bottom-up.
  /// cancel() invokes this once dead entries reach half the heap, so a
  /// cancel storm costs one sweep instead of a full root sift per dead
  /// entry — amortized O(1) per cancel.
  void compact_heap();

  // Heap storage: manual buffer (std::vector cannot guarantee the 64-byte
  // base alignment the child-per-line layout needs). `heap_size_` counts
  // logical entries.
  struct AlignedDelete {
    void operator()(HeapEntry* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  mutable std::unique_ptr<HeapEntry[], AlignedDelete> heap_;
  mutable std::size_t heap_size_{0};
  mutable std::size_t heap_capacity_{0};

  /// Per-slot generation tags (odd = pending). Hot: cancel/pending/
  /// skip_dead read only this array.
  std::vector<std::uint32_t> tags_;
  /// Per-slot callbacks. Cold: touched at schedule and at delivery.
  std::vector<CallbackSlot> callbacks_;
  mutable std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t salt_;  ///< per-queue id tag; see decode()

  // Lifetime telemetry: plain members bumped on the hot paths (one integer
  // add each, no atomics, no branches) and flushed once by the destructor.
  std::uint64_t stat_scheduled_{0};
  std::uint64_t stat_popped_{0};
  std::uint64_t stat_cancelled_{0};
  std::uint64_t stat_compactions_{0};
};

}  // namespace xres
