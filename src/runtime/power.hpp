#pragma once

/// \file power.hpp
/// Node power model and execution energy accounting.
///
/// The paper's companion study [7] compares the *energy* of fault
/// tolerance techniques; the key effect is parallel recovery's ability to
/// idle all but a handful of nodes while a failed node replays (Section
/// II-D). The runtime already integrates active node-seconds; this module
/// converts that integral plus the idle remainder of the allocation into
/// joules. Default wattages extrapolate the Sunway TaihuLight power
/// envelope (15.4 MW / 40,960 nodes ≈ 375 W per node at load).

#include <cstdint>
#include <string>

#include "runtime/result.hpp"
#include "util/units.hpp"

namespace xres {

struct NodePowerSpec {
  double active_watts{375.0};  ///< node under computational load
  double idle_watts{125.0};    ///< allocated but idle (e.g. during recovery)

  void validate() const;
};

struct EnergyReport {
  double active_node_seconds{0.0};
  double idle_node_seconds{0.0};
  double joules{0.0};

  [[nodiscard]] double megajoules() const { return joules / 1e6; }
  [[nodiscard]] double kilowatt_hours() const { return joules / 3.6e6; }

  [[nodiscard]] std::string describe() const;
};

/// Energy consumed by one execution: active node-seconds at active power,
/// plus the allocation's idle remainder (physical_nodes × wall −
/// active) at idle power.
[[nodiscard]] EnergyReport execution_energy(const ExecutionResult& result,
                                            std::uint32_t physical_nodes,
                                            const NodePowerSpec& power = {});

}  // namespace xres
