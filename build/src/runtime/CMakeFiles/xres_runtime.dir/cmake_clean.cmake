file(REMOVE_RECURSE
  "CMakeFiles/xres_runtime.dir/app_runtime.cpp.o"
  "CMakeFiles/xres_runtime.dir/app_runtime.cpp.o.d"
  "CMakeFiles/xres_runtime.dir/power.cpp.o"
  "CMakeFiles/xres_runtime.dir/power.cpp.o.d"
  "CMakeFiles/xres_runtime.dir/result.cpp.o"
  "CMakeFiles/xres_runtime.dir/result.cpp.o.d"
  "CMakeFiles/xres_runtime.dir/timeline.cpp.o"
  "CMakeFiles/xres_runtime.dir/timeline.cpp.o.d"
  "CMakeFiles/xres_runtime.dir/transfer_service.cpp.o"
  "CMakeFiles/xres_runtime.dir/transfer_service.cpp.o.d"
  "libxres_runtime.a"
  "libxres_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
