# Empty dependencies file for ablation_recovery_parallelism.
# This may be replaced when dependencies are built.
