file(REMOVE_RECURSE
  "CMakeFiles/ablation_burst_failures.dir/ablation_burst_failures.cpp.o"
  "CMakeFiles/ablation_burst_failures.dir/ablation_burst_failures.cpp.o.d"
  "ablation_burst_failures"
  "ablation_burst_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_burst_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
