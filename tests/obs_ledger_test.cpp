// Run-ledger tests (obs/ledger.hpp writes, study/runlog.hpp reads): framed
// append/scan round trip, torn-tail and bad-CRC tolerance, concurrent
// appenders (O_APPEND line atomicity — also the TSAN target), 10k-record
// scan throughput, run comparison semantics, and the engine-counter
// determinism + status-stream-leakage contracts for a real study run.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"
#include "study/capture.hpp"
#include "study/options.hpp"
#include "study/registry.hpp"
#include "study/runlog.hpp"
#include "study/study_main.hpp"
#include "util/framed_line.hpp"
#include "util/io.hpp"

namespace xres {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

obs::RunRecord sample_record(const std::string& id, std::uint64_t seed) {
  obs::RunRecord r;
  r.id = id;
  r.study = "fig1_efficiency_a32";
  r.seed = seed;
  r.threads = 4;
  r.build = "test";
  r.params = {{"trials", "5"}, {"type", "A32"}};
  r.params_digest = obs::params_digest(r.params);
  r.counters = {{"events_popped", 123}, {"trials_executed", 5}};
  r.wall_seconds = 0.5;
  r.trials_per_second = 10.0;
  r.events_per_second = 246.0;
  r.peak_rss = 1 << 20;
  return r;
}

TEST(ObsLedger, AppendScanRoundTrip) {
  const std::string path = temp_path("ledger_roundtrip.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-a", 7)));
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-b", 8)));

  study::LedgerScanStats stats;
  const auto records = study::load_ledger(path, &stats);
  EXPECT_TRUE(stats.found);
  EXPECT_EQ(stats.valid_records, 2U);
  EXPECT_EQ(stats.corrupt_records, 0U);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].id, "run-a");
  EXPECT_EQ(records[1].id, "run-b");
  EXPECT_EQ(records[1].seed, 8U);
  EXPECT_EQ(records[1].params_digest, records[0].params_digest);
  ASSERT_EQ(records[0].counters.size(), 2U);
  EXPECT_EQ(records[0].counters[0].first, "events_popped");
  EXPECT_EQ(records[0].counters[0].second, 123U);
  EXPECT_DOUBLE_EQ(records[0].wall_seconds, 0.5);
}

TEST(ObsLedger, TornTailSkippedAndHealedByNextAppend) {
  const std::string path = temp_path("ledger_torn.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-a", 1)));
  {
    // A SIGKILL mid-append: a prefix of a frame, no trailing newline.
    std::ofstream out{path, std::ios::binary | std::ios::app};
    out << R"({"c":"deadbeef","r":{"tr)";
  }
  study::LedgerScanStats stats;
  auto records = study::load_ledger(path, &stats);
  EXPECT_EQ(stats.valid_records, 1U);
  EXPECT_EQ(stats.corrupt_records, 1U);

  // The next append must start on a fresh line, not merge into the torn
  // bytes and lose itself.
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-b", 2)));
  records = study::load_ledger(path, &stats);
  EXPECT_EQ(stats.valid_records, 2U);
  EXPECT_EQ(stats.corrupt_records, 1U);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[1].id, "run-b");
}

TEST(ObsLedger, BadCrcSkippedNeverFatal) {
  const std::string path = temp_path("ledger_badcrc.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-a", 1)));
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-b", 2)));

  // Flip one byte inside the first record's JSON: frame parses, CRC fails.
  std::string content = read_file(path);
  const std::size_t pos = content.find("run-a");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 4] = 'X';
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << content;
  }
  study::LedgerScanStats stats;
  const auto records = study::load_ledger(path, &stats);
  EXPECT_EQ(stats.valid_records, 1U);
  EXPECT_EQ(stats.corrupt_records, 1U);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].id, "run-b");
}

TEST(ObsLedger, InjectedFaultsDegradeToWarningNeverThrow) {
  // The ledger is best-effort by policy (docs/ROBUSTNESS.md): an append
  // that hits I/O faults returns false with one warning and must never
  // throw — it cannot take down or change the exit code of the run it is
  // recording.
  const std::string path = temp_path("ledger_injected.jsonl");
  std::remove(path.c_str());
  io::reset_degraded_warnings_for_tests();
  io::install_faults(io::parse_fault_spec("5:1:eio"));
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(obs::append_run_record(path, sample_record("run-a", 1)));
  EXPECT_FALSE(obs::append_run_record(path, sample_record("run-b", 2)));
  const std::string log = ::testing::internal::GetCapturedStderr();
  io::clear_faults();
  EXPECT_GE(io::faults_injected(), 1U);
  // Exactly one degradation warning for any number of failed appends.
  const std::size_t first = log.find("run ledger degraded");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(log.find("run ledger degraded", first + 1), std::string::npos);

  // With injection disarmed the same path works again, and whatever the
  // faulted attempts left behind must not poison the scan.
  ASSERT_TRUE(obs::append_run_record(path, sample_record("run-c", 3)));
  study::LedgerScanStats stats;
  const auto records = study::load_ledger(path, &stats);
  EXPECT_EQ(stats.valid_records, 1U);
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].id, "run-c");
  io::reset_degraded_warnings_for_tests();
}

TEST(ObsLedger, ConcurrentAppendersNeverInterleave) {
  const std::string path = temp_path("ledger_concurrent.jsonl");
  std::remove(path.c_str());
  constexpr int kPerThread = 50;
  auto appender = [&](const std::string& tag) {
    for (int i = 0; i < kPerThread; ++i) {
      obs::append_run_record(path,
                             sample_record(tag + std::to_string(i),
                                           static_cast<std::uint64_t>(i)));
    }
  };
  std::thread a{appender, "a-"};
  std::thread b{appender, "b-"};
  a.join();
  b.join();

  study::LedgerScanStats stats;
  const auto records = study::load_ledger(path, &stats);
  EXPECT_EQ(stats.corrupt_records, 0U);
  EXPECT_EQ(records.size(), 2U * kPerThread);
}

TEST(ObsLedger, TenThousandRecordScan) {
  const std::string path = temp_path("ledger_10k.jsonl");
  std::remove(path.c_str());
  {
    // Write the frames directly — this test times the scan, not the append.
    std::ofstream out{path, std::ios::binary};
    for (int i = 0; i < 10000; ++i) {
      out << frame_crc_line(
          obs::to_ledger_json(sample_record(std::to_string(i), 1)));
    }
  }
  const auto start = std::chrono::steady_clock::now();
  study::LedgerScanStats stats;
  const auto records = study::load_ledger(path, &stats);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(records.size(), 10000U);
  EXPECT_EQ(stats.corrupt_records, 0U);
  // Generous bound (loaded CI runners): the scan is linear and must stay
  // interactive — `xres log` runs it on every invocation.
  EXPECT_LT(elapsed, 5.0);
}

TEST(ObsLedger, CompareRunsDriftAndWarnings) {
  const obs::RunRecord a = sample_record("run-a", 7);
  obs::RunRecord b = sample_record("run-b", 7);

  EXPECT_TRUE(study::compare_runs(a, b, 0.25).identical());

  // Wall-clock slowdown beyond the threshold: warning, never drift.
  b.wall_seconds = a.wall_seconds * 2.0;
  const study::RunComparison slow = study::compare_runs(a, b, 0.25);
  EXPECT_TRUE(slow.identical());
  EXPECT_FALSE(slow.warnings.empty());

  // A counter mismatch is deterministic drift.
  b = sample_record("run-b", 7);
  b.counters[0].second += 1;
  EXPECT_FALSE(study::compare_runs(a, b, 0.25).identical());

  // Different seeds are different experiments, also drift.
  b = sample_record("run-b", 8);
  EXPECT_FALSE(study::compare_runs(a, b, 0.25).identical());
}

TEST(ObsLedger, CompareRunsPlatformDigestWarnsNotFails) {
  obs::RunRecord a = sample_record("run-a", 7);
  obs::RunRecord b = sample_record("run-b", 7);
  a.platform_crc = "2793af5e";
  b.platform_crc = "cb8a35fc";
  // Different platforms are expected to produce different results: counter
  // and artifact-CRC mismatches are demoted to warnings, never drift.
  b.counters[0].second += 1;
  b.metrics_crc = "deadbeef";
  a.metrics_crc = "0badf00d";
  const study::RunComparison cmp = study::compare_runs(a, b, 0.25);
  EXPECT_TRUE(cmp.identical());
  EXPECT_GE(cmp.warnings.size(), 3U);  // platform notice + counter + metrics

  // Same platform digest: the counter mismatch is hard drift again.
  b.platform_crc = a.platform_crc;
  EXPECT_FALSE(study::compare_runs(a, b, 0.25).identical());

  // Identity mismatches stay hard drift even across platforms.
  obs::RunRecord c = sample_record("run-c", 9);
  c.platform_crc = "cb8a35fc";
  EXPECT_FALSE(study::compare_runs(a, c, 0.25).identical());
}

TEST(ObsLedger, ParamsDigestIsOrderAndValueSensitive) {
  const std::vector<std::pair<std::string, std::string>> p1 = {
      {"trials", "5"}, {"type", "A32"}};
  const std::vector<std::pair<std::string, std::string>> p2 = {
      {"trials", "6"}, {"type", "A32"}};
  EXPECT_EQ(obs::params_digest(p1), obs::params_digest(p1));
  EXPECT_NE(obs::params_digest(p1), obs::params_digest(p2));
  EXPECT_NE(obs::params_digest(p1), obs::params_digest({}));
}

struct LedgeredRun {
  int exit_code{-1};
  std::string stdout_bytes;
  obs::RunRecord record;
};

/// Run a small registry study exactly the way the suite does — status to
/// stderr, stdout captured — with the ledger pointed at \p ledger_path.
LedgeredRun run_ledgered(const study::StudyDefinition& def, unsigned threads,
                         const std::string& ledger_path) {
  const std::string base = temp_path("ledgered_" + def.name + "_t" +
                                     std::to_string(threads));
  study::ParamSet params{def};
  params.set("trials", "3");
  study::HarnessOptions options = study::default_harness_options(def);
  options.threads = threads;
  options.ledger_path = ledger_path;

  LedgeredRun result;
  study::set_status_stream(stderr);
  {
    study::StdoutCapture capture{base + ".txt"};
    result.exit_code = study::run_study(def, std::move(params), options);
    capture.finish();
  }
  study::set_status_stream(stdout);
  result.stdout_bytes = read_file(base + ".txt");
  EXPECT_TRUE(obs::last_run_record(result.record));
  return result;
}

TEST(ObsLedger, EngineCountersThreadInvariantAndBannersDoNotLeak) {
  const study::StudyDefinition* def =
      study::StudyRegistry::instance().find("fig1_efficiency_a32");
  ASSERT_NE(def, nullptr);
  const std::string ledger = temp_path("ledger_determinism.jsonl");
  std::remove(ledger.c_str());

  const LedgeredRun one = run_ledgered(*def, 1, ledger);
  const LedgeredRun four = run_ledgered(*def, 4, ledger);
  ASSERT_EQ(one.exit_code, 0);
  ASSERT_EQ(four.exit_code, 0);

  // Deterministic identity must not depend on the worker-thread count:
  // byte-identical counters, same params digest — `xres compare` contract.
  EXPECT_EQ(one.record.params_digest, four.record.params_digest);
  EXPECT_EQ(one.record.counters, four.record.counters);
  EXPECT_TRUE(study::compare_runs(one.record, four.record, 1e9).identical());

  // Wall-clock fields are present but deliberately unchecked for equality.
  EXPECT_GT(one.record.wall_seconds, 0.0);
  EXPECT_GT(four.record.wall_seconds, 0.0);

  // Status-stream leakage: ledger/perf banners must ride the status stream
  // (stderr here, as under a suite), never the captured artifact bytes.
  EXPECT_EQ(one.stdout_bytes.find("run recorded in ledger"), std::string::npos);
  EXPECT_EQ(one.stdout_bytes.find("perf:"), std::string::npos);
  EXPECT_EQ(one.stdout_bytes, four.stdout_bytes);

  // Both runs landed in the ledger file itself.
  study::LedgerScanStats stats;
  const auto records = study::load_ledger(ledger, &stats);
  EXPECT_EQ(stats.valid_records, 2U);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].counters, records[1].counters);
}

}  // namespace
}  // namespace xres
