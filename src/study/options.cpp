#include "study/options.hpp"

#include <cstdarg>

#include "util/check.hpp"
#include "util/log.hpp"

namespace xres::study {

namespace {
std::FILE*& status_stream_slot() {
  static std::FILE* stream = stdout;
  return stream;
}
}  // namespace

std::FILE* status_stream() { return status_stream_slot(); }

void set_status_stream(std::FILE* stream) {
  status_stream_slot() = stream == nullptr ? stdout : stream;
}

void statusf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(status_stream(), format, args);
  va_end(args);
}

void add_obs_options(CliParser& cli, bool with_trace) {
  cli.add_option("--metrics", "write deterministic study metrics JSON to this path "
                 "(byte-identical for every --threads value)", "");
  if (with_trace) {
    cli.add_option("--trace", "write a Chrome trace-event JSON (Perfetto-loadable, "
                   "sim-time spans) to this path", "");
  }
  cli.add_option("--log-level", "override XRES_LOG: trace|debug|info|warn|error|off", "");
}

ObsOptions read_obs_options(const CliParser& cli) {
  ObsOptions options;
  options.metrics_path = cli.str("--metrics");
  if (cli.has_option("--trace")) options.trace_path = cli.str("--trace");
  const std::string level = cli.str("--log-level");
  if (!level.empty()) Logger::global().set_level(parse_log_level(level));
  return options;
}

void add_recovery_options(CliParser& cli) {
  cli.add_option("--journal", "stream completed trials to this write-ahead journal "
                 "(crash-safe; see docs/ROBUSTNESS.md)", "");
  cli.add_flag("--resume", "skip trials already recorded in --journal and reproduce "
               "the uninterrupted artifacts byte for byte");
  cli.add_option("--trial-timeout", "watchdog: seconds of wall time per trial attempt "
                 "before it is aborted (0 = no watchdog)", "0");
  cli.add_option("--trial-retries", "extra same-seed attempts for a failed or timed-out "
                 "trial before it is quarantined", "0");
}

RecoveryCliOptions read_recovery_options(const CliParser& cli) {
  RecoveryCliOptions options;
  options.journal_path = cli.str("--journal");
  options.resume = cli.flag("--resume");
  options.trial_timeout = cli.real("--trial-timeout");
  const std::int64_t retries = cli.integer("--trial-retries");
  if (options.resume && options.journal_path.empty()) {
    CliParser::usage_error("--resume needs --journal <path> (nothing to resume from)");
  }
  if (options.trial_timeout < 0.0) {
    CliParser::usage_error("--trial-timeout must be >= 0 seconds");
  }
  if (retries < 0 || retries > 100) {
    CliParser::usage_error("--trial-retries must be in [0, 100]");
  }
  options.trial_retries = static_cast<unsigned>(retries);
  return options;
}

void add_study_options(CliParser& cli, const StudyDefinition& def) {
  for (const ParamSpec& p : def.params) {
    cli.add_option("--" + p.key, p.help, p.default_value);
  }
  const StudyOptionsSpec& spec = def.options;
  if (spec.seed) {
    cli.add_option("--seed", "root RNG seed", std::to_string(spec.default_seed));
  }
  if (spec.threads) add_threads_option(cli);
  if (spec.csv) {
    cli.add_flag("--csv", "also emit raw CSV");
  }
  if (spec.chart) cli.add_flag("--chart", "also render ASCII bars");
  if (spec.csv) {
    cli.add_option("--csv-path", "write CSV to this file instead of stdout "
                   "(implies --csv)", "");
  }
  if (spec.report) {
    cli.add_option("--report", "write a markdown study report to this path", "");
  }
  if (spec.obs != StudyOptionsSpec::Obs::kNone) {
    add_obs_options(cli, spec.obs == StudyOptionsSpec::Obs::kWithTrace);
  }
  if (spec.recovery) add_recovery_options(cli);
  // The run ledger applies to every study (docs/OBSERVABILITY.md).
  cli.add_option("--ledger", "append this run's record (params digest, counters, "
                 "throughput) to this CRC-framed JSONL ledger",
                 "results/ledger.jsonl");
  cli.add_flag("--no-ledger", "do not record this run in the ledger");
}

ParamSet read_study_params(const CliParser& cli, const StudyDefinition& def) {
  ParamSet params{def};
  for (const ParamSpec& p : def.params) {
    const std::string value = cli.str("--" + p.key);
    try {
      params.set(p.key, value);
    } catch (const CheckError& e) {
      usage_error_from(e);
    }
  }
  return params;
}

void usage_error_from(const CheckError& e) {
  // CheckError prefixes the human-readable part with "check failed: ...
  // — "; surface just the message, as parse_or_exit does.
  std::string message = e.what();
  if (const std::size_t sep = message.find(" — "); sep != std::string::npos) {
    message = message.substr(sep + std::string{" — "}.size());
  }
  CliParser::usage_error(message);
}

HarnessOptions read_harness_options(const CliParser& cli, const StudyDefinition& def) {
  const StudyOptionsSpec& spec = def.options;
  HarnessOptions options = default_harness_options(def);
  if (spec.seed) options.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  if (spec.threads) options.threads = parse_threads_option(cli);
  if (spec.csv) {
    options.csv = cli.flag("--csv");
    options.csv_path = cli.str("--csv-path");
    // --csv-path used to require a separate --csv in some drivers and was
    // silently ignored without it; a requested CSV file now always implies
    // CSV output.
    if (!options.csv_path.empty()) options.csv = true;
  }
  if (spec.chart) options.chart = cli.flag("--chart");
  if (spec.report) options.report_path = cli.str("--report");
  if (spec.obs != StudyOptionsSpec::Obs::kNone) options.obs = read_obs_options(cli);
  if (spec.recovery) options.recovery = read_recovery_options(cli);
  options.ledger_path = cli.str("--ledger");
  if (cli.flag("--no-ledger") || options.ledger_path.empty()) {
    options.ledger = false;
  }
  return options;
}

HarnessOptions default_harness_options(const StudyDefinition& def) {
  HarnessOptions options;
  options.seed = def.options.default_seed;
  options.threads = 0;
  return options;
}

}  // namespace xres::study
