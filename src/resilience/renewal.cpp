#include "resilience/renewal.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xres {

Duration expected_restart_time(Duration restore, Rate lambda) {
  XRES_CHECK(restore >= Duration::zero(), "restore cost must be non-negative");
  if (lambda == Rate::zero()) return restore;
  const double l = lambda.per_second_value();
  return Duration::seconds(std::expm1(l * restore.to_seconds()) / l);
}

Duration expected_segment_time(Duration d, Duration restore, Rate lambda) {
  XRES_CHECK(d >= Duration::zero(), "segment length must be non-negative");
  if (lambda == Rate::zero()) return d;
  const double l = lambda.per_second_value();
  const Duration cycle = Duration::seconds(1.0 / l) + expected_restart_time(restore, lambda);
  return cycle * std::expm1(l * d.to_seconds());
}

Duration expected_completion_time_exact(Duration work, Duration tau, Duration save,
                                        Duration restore, Rate lambda) {
  XRES_CHECK(work > Duration::zero(), "work must be positive");
  XRES_CHECK(tau > Duration::zero(), "interval must be positive");
  // Full segments of (τ + C), then a trailing segment of the leftover work
  // with no checkpoint. When τ does not divide the work evenly, the last
  // full-interval segment is followed by the remainder.
  const double segments = work / tau;
  const auto full = static_cast<std::uint64_t>(segments);
  const Duration remainder = work - tau * static_cast<double>(full);

  Duration total = Duration::zero();
  std::uint64_t checkpointed_segments = full;
  Duration tail = remainder;
  if (remainder <= Duration::zero() && full > 0) {
    // Work divides evenly: the final interval runs without a checkpoint.
    checkpointed_segments = full - 1;
    tail = tau;
  }
  total += expected_segment_time(tau + save, restore, lambda) *
           static_cast<double>(checkpointed_segments);
  total += expected_segment_time(tail, restore, lambda);
  return total;
}

double expected_efficiency_exact(Duration work, Duration tau, Duration save,
                                 Duration restore, Rate lambda) {
  const Duration expected = expected_completion_time_exact(work, tau, save, restore, lambda);
  return work / expected;
}

}  // namespace xres
