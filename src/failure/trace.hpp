#pragma once

/// \file trace.hpp
/// Pre-generated failure traces.
///
/// A trace is a time-sorted list of failures over a horizon. Traces let
/// studies replay identical failure sequences across resilience techniques
/// (variance reduction) and let tests assert against a fixed sequence.
/// Traces round-trip through a small CSV format.

#include <string>
#include <vector>

#include "failure/distribution.hpp"
#include "failure/process.hpp"
#include "failure/severity.hpp"
#include "util/rng.hpp"

namespace xres {

class FailureTrace {
 public:
  FailureTrace() = default;
  explicit FailureTrace(std::vector<Failure> failures);

  /// Generate a trace at fixed \p rate over [0, horizon).
  [[nodiscard]] static FailureTrace generate(Rate rate, Duration horizon,
                                             const SeverityModel& severity,
                                             FailureDistribution dist, Pcg32& rng);

  [[nodiscard]] const std::vector<Failure>& failures() const { return failures_; }
  [[nodiscard]] std::size_t size() const { return failures_.size(); }
  [[nodiscard]] bool empty() const { return failures_.empty(); }

  /// Failures per unit time over the trace horizon implied by the last
  /// failure (zero-size traces report a zero rate).
  [[nodiscard]] Rate empirical_rate() const;

  /// Serialize as "time_seconds,severity" lines with a header.
  [[nodiscard]] std::string to_csv() const;

  /// Parse the to_csv() format; throws CheckError on malformed input.
  [[nodiscard]] static FailureTrace from_csv(const std::string& csv);

  void save(const std::string& path) const;
  [[nodiscard]] static FailureTrace load(const std::string& path);

 private:
  std::vector<Failure> failures_;  // sorted by time
};

}  // namespace xres
