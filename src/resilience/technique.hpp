#pragma once

/// \file technique.hpp
/// The resilience techniques compared by the paper (Section IV), plus the
/// no-resilience "ideal" mode used for baseline runs.

#include <array>
#include <string>

namespace xres {

enum class TechniqueKind {
  kNone,               ///< ideal baseline: no checkpoints, assumes no failures
  kCheckpointRestart,  ///< blocking uncoordinated PFS checkpointing (IV-B)
  kMultilevel,         ///< three-level checkpointing after Moody et al. (IV-C)
  kParallelRecovery,   ///< message logging + parallelized restart (IV-D)
  kRedundancyPartial,  ///< checkpointing + r = 1.5 replication (IV-E)
  kRedundancyFull,     ///< checkpointing + r = 2.0 replication (IV-E)
  /// Extension: semi-blocking PFS checkpointing (the paper's related work
  /// [12], Ni et al.): execution continues at a reduced rate while the
  /// checkpoint drains to the file system.
  kSemiBlockingCheckpoint,
};

/// Display name as used in the paper's figures.
[[nodiscard]] const char* to_string(TechniqueKind kind);

/// Parse a display or CLI name ("checkpoint-restart", "multilevel",
/// "parallel-recovery", "redundancy-1.5", "redundancy-2", "none").
[[nodiscard]] TechniqueKind technique_from_string(const std::string& name);

/// The five techniques evaluated in Figures 1–3 (everything except kNone).
[[nodiscard]] const std::array<TechniqueKind, 5>& evaluated_techniques();

/// The three techniques carried into the workload studies (Sections VI–VII
/// exclude redundancy based on the Section-V results).
[[nodiscard]] const std::array<TechniqueKind, 3>& workload_techniques();

}  // namespace xres
