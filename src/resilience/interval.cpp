#include "resilience/interval.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace xres {

Duration daly_interval(Duration checkpoint_cost, Rate failure_rate) {
  XRES_CHECK(checkpoint_cost > Duration::zero(), "checkpoint cost must be positive");
  XRES_CHECK(failure_rate > Rate::zero(), "failure rate must be positive");
  const double c = checkpoint_cost.to_seconds();
  const double lambda = failure_rate.per_second_value();
  const double tau = std::sqrt(2.0 * c / lambda) - c;
  const double floor_tau = c / 10.0;
  return Duration::seconds(std::max(tau, floor_tau));
}

Duration daly_higher_order_interval(Duration checkpoint_cost, Rate failure_rate) {
  XRES_CHECK(checkpoint_cost > Duration::zero(), "checkpoint cost must be positive");
  XRES_CHECK(failure_rate > Rate::zero(), "failure rate must be positive");
  const double delta = checkpoint_cost.to_seconds();
  const double mtbf = failure_rate.mean_interval().to_seconds();
  if (delta >= 2.0 * mtbf) return Duration::seconds(mtbf);
  const double ratio = delta / (2.0 * mtbf);
  const double tau = std::sqrt(2.0 * delta * mtbf) *
                         (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
                     delta;
  return Duration::seconds(std::max(tau, delta / 10.0));
}

double checkpoint_overhead(Duration tau, Duration save_cost, Duration restore_cost,
                           const std::function<Rate(Duration)>& hazard) {
  XRES_CHECK(tau > Duration::zero(), "interval must be positive");
  const Rate lambda = hazard(tau);
  const double rework = lambda.per_second_value() *
                        (tau.to_seconds() / 2.0 + restore_cost.to_seconds());
  return save_cost / tau + rework;
}

IntervalOptimum optimize_interval(Duration save_cost, Duration restore_cost,
                                  const std::function<Rate(Duration)>& hazard) {
  XRES_CHECK(save_cost > Duration::zero(), "save cost must be positive");
  XRES_CHECK(restore_cost >= Duration::zero(), "restore cost must be non-negative");

  const double lo = std::log(std::max(save_cost.to_seconds() / 100.0, 1e-3));
  const double hi = std::log(Duration::days(365.0).to_seconds());
  auto objective = [&](double log_tau) {
    return checkpoint_overhead(Duration::seconds(std::exp(log_tau)), save_cost,
                               restore_cost, hazard);
  };

  // Golden-section search; the objective is unimodal in log τ for every
  // hazard we use (constant or affine in τ).
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = objective(c);
  double fd = objective(d);
  for (int iter = 0; iter < 100 && (b - a) > 1e-10; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = objective(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = objective(d);
    }
  }
  const double log_tau = (a + b) / 2.0;
  IntervalOptimum opt;
  opt.interval = Duration::seconds(std::exp(log_tau));
  opt.overhead = objective(log_tau);
  return opt;
}

}  // namespace xres
