
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/occupancy.cpp" "src/core/CMakeFiles/xres_core.dir/occupancy.cpp.o" "gcc" "src/core/CMakeFiles/xres_core.dir/occupancy.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/xres_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/xres_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/xres_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/xres_core.dir/report.cpp.o.d"
  "/root/repo/src/core/single_app_study.cpp" "src/core/CMakeFiles/xres_core.dir/single_app_study.cpp.o" "gcc" "src/core/CMakeFiles/xres_core.dir/single_app_study.cpp.o.d"
  "/root/repo/src/core/workload_engine.cpp" "src/core/CMakeFiles/xres_core.dir/workload_engine.cpp.o" "gcc" "src/core/CMakeFiles/xres_core.dir/workload_engine.cpp.o.d"
  "/root/repo/src/core/workload_study.cpp" "src/core/CMakeFiles/xres_core.dir/workload_study.cpp.o" "gcc" "src/core/CMakeFiles/xres_core.dir/workload_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/xres_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xres_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/xres_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/xres_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/xres_rm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
