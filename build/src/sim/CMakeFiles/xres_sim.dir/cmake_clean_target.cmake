file(REMOVE_RECURSE
  "libxres_sim.a"
)
