file(REMOVE_RECURSE
  "CMakeFiles/xres_resilience.dir/analytic.cpp.o"
  "CMakeFiles/xres_resilience.dir/analytic.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/config.cpp.o"
  "CMakeFiles/xres_resilience.dir/config.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/interval.cpp.o"
  "CMakeFiles/xres_resilience.dir/interval.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/multilevel.cpp.o"
  "CMakeFiles/xres_resilience.dir/multilevel.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/plan.cpp.o"
  "CMakeFiles/xres_resilience.dir/plan.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/planner.cpp.o"
  "CMakeFiles/xres_resilience.dir/planner.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/renewal.cpp.o"
  "CMakeFiles/xres_resilience.dir/renewal.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/selector.cpp.o"
  "CMakeFiles/xres_resilience.dir/selector.cpp.o.d"
  "CMakeFiles/xres_resilience.dir/technique.cpp.o"
  "CMakeFiles/xres_resilience.dir/technique.cpp.o.d"
  "libxres_resilience.a"
  "libxres_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
