# Empty dependencies file for technique_advisor.
# This may be replaced when dependencies are built.
