// Unit and property tests for checkpoint-interval optimization: Daly's
// closed form (Eq. 4), the generic golden-section optimizer, and the
// multilevel schedule optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "resilience/interval.hpp"
#include "resilience/multilevel.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TEST(Daly, MatchesEquationFour) {
  // τ = sqrt(2 T_C / λ) − T_C with T_C = 600 s, MTBF = 1 h.
  const Duration cost = Duration::seconds(600.0);
  const Rate lambda = Rate::one_per(Duration::hours(1.0));
  const double expected = std::sqrt(2.0 * 600.0 / lambda.per_second_value()) - 600.0;
  EXPECT_NEAR(daly_interval(cost, lambda).to_seconds(), expected, 1e-9);
}

TEST(Daly, ClampsWhenCheckpointDominates) {
  // When T_C is comparable to the MTBF, Eq. 4 goes non-positive; we clamp
  // to a small positive interval so the simulation can proceed (and
  // predictably thrash, as the paper observes at exascale).
  const Duration cost = Duration::hours(2.0);
  const Rate lambda = Rate::one_per(Duration::hours(1.0));
  const Duration tau = daly_interval(cost, lambda);
  EXPECT_GT(tau, Duration::zero());
  EXPECT_DOUBLE_EQ(tau.to_seconds(), cost.to_seconds() / 10.0);
}

TEST(Daly, RejectsBadInputs) {
  EXPECT_THROW((void)daly_interval(Duration::zero(), Rate::per_hour(1.0)), CheckError);
  EXPECT_THROW((void)daly_interval(Duration::seconds(10.0), Rate::zero()), CheckError);
}

TEST(CheckpointOverhead, FirstOrderFormula) {
  // g(τ) = C/τ + λ(τ/2 + R).
  const auto hazard = [](Duration) { return Rate::per_hour(1.0); };
  const double g = checkpoint_overhead(Duration::minutes(30.0), Duration::minutes(5.0),
                                       Duration::minutes(10.0), hazard);
  const double lambda = 1.0 / 3600.0;
  EXPECT_NEAR(g, 300.0 / 1800.0 + lambda * (900.0 + 600.0), 1e-12);
}

struct DalyCase {
  double cost_seconds;
  double mtbf_hours;
};

class IntervalOptimality : public ::testing::TestWithParam<DalyCase> {};

TEST_P(IntervalOptimality, NumericOptimumBeatsNeighborsAndMatchesTheory) {
  // With a constant hazard, g(τ) = C/τ + λ(τ/2 + R) is minimized exactly at
  // τ* = sqrt(2C/λ). The numeric optimizer must find it, and it must be a
  // local (in fact global) minimum.
  const auto [cost_s, mtbf_h] = GetParam();
  const Duration cost = Duration::seconds(cost_s);
  const Rate lambda = Rate::one_per(Duration::hours(mtbf_h));
  const auto hazard = [lambda](Duration) { return lambda; };

  const IntervalOptimum opt = optimize_interval(cost, cost, hazard);
  const double theory = std::sqrt(2.0 * cost_s / lambda.per_second_value());
  EXPECT_NEAR(opt.interval.to_seconds() / theory, 1.0, 1e-3);

  const double at_opt = checkpoint_overhead(opt.interval, cost, cost, hazard);
  EXPECT_LE(at_opt, checkpoint_overhead(opt.interval * 0.7, cost, cost, hazard));
  EXPECT_LE(at_opt, checkpoint_overhead(opt.interval * 1.4, cost, cost, hazard));
  EXPECT_NEAR(opt.overhead, at_opt, 1e-12);

  // Daly's closed form (which subtracts C) is near-optimal under this
  // model: within a few percent of the numeric optimum's overhead.
  const Duration daly = daly_interval(cost, lambda);
  const double at_daly = checkpoint_overhead(daly, cost, cost, hazard);
  EXPECT_LE(at_opt, at_daly * (1.0 + 1e-9));
  if (cost_s < Duration::hours(mtbf_h).to_seconds() / 10.0) {
    EXPECT_LT(at_daly / at_opt, 1.1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntervalOptimality,
    ::testing::Values(DalyCase{30.0, 24.0}, DalyCase{600.0, 1.0},
                      DalyCase{600.0, 24.0}, DalyCase{1067.0, 0.73},
                      DalyCase{5.0, 100.0}, DalyCase{3600.0, 2000.0}));

TEST(IntervalOptimizer, GrowingHazardShortensInterval) {
  // Redundancy-style hazard λ(τ) = a + b·τ must yield a shorter interval
  // than the constant hazard λ = a + b·τ*_const evaluated at the constant
  // optimum — sanity of the direction of the effect.
  const Duration cost = Duration::seconds(500.0);
  const double a = 1e-6;
  const double b = 1e-9;
  const auto affine = [&](Duration tau) {
    return Rate::per_second(a + b * tau.to_seconds());
  };
  const auto constant = [&](Duration) { return Rate::per_second(a); };
  const IntervalOptimum with_growth = optimize_interval(cost, cost, affine);
  const IntervalOptimum without = optimize_interval(cost, cost, constant);
  EXPECT_LT(with_growth.interval, without.interval);
  EXPECT_GT(with_growth.overhead, without.overhead);
}

TEST(Multilevel, SingleLevelDegeneratesToConstantHazardOptimum) {
  // One level with rate λ: optimal quantum must equal sqrt(2C/λ).
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(600.0), Duration::seconds(600.0), 1}};
  const Rate lambda = Rate::one_per(Duration::hours(10.0));
  const MultilevelSchedule schedule = optimize_multilevel(levels, {lambda}, 128);
  const double theory = std::sqrt(2.0 * 600.0 / lambda.per_second_value());
  EXPECT_NEAR(schedule.quantum.to_seconds() / theory, 1.0, 1e-9);
  EXPECT_EQ(schedule.nesting, (std::vector<int>{1}));
}

TEST(Multilevel, OverheadFormulaMatchesHandComputation) {
  // Two levels, nesting {2,1}: per top period of 2 quanta there is one L1
  // and one L2 checkpoint; P_1 = w, P_2 = 2w.
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(10.0), Duration::seconds(20.0), 1},
      CheckpointLevelSpec{Duration::seconds(100.0), Duration::seconds(200.0), 2}};
  const std::vector<Rate> rates{Rate::per_second(1e-5), Rate::per_second(1e-6)};
  const Duration w = Duration::seconds(1000.0);
  const double g = multilevel_overhead(w, {2, 1}, levels, rates);
  const double expected = (10.0 + 100.0) / 2000.0          // checkpoint cost per work
                          + 1e-5 * (500.0 + 20.0)          // L1 rework + restart
                          + 1e-6 * (1000.0 + 200.0);       // L2 rework + restart
  EXPECT_NEAR(g, expected, 1e-12);
}

TEST(Multilevel, OptimizerBeatsTopLevelOnlySchedule) {
  // The optimized 3-level schedule must not be worse than checkpointing
  // exclusively at the most durable level (the CR-style degenerate
  // schedule with nesting {1,1,1} and the Daly quantum).
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(0.1), Duration::seconds(0.1), 1},
      CheckpointLevelSpec{Duration::seconds(0.4), Duration::seconds(0.4), 2},
      CheckpointLevelSpec{Duration::seconds(533.0), Duration::seconds(533.0), 3}};
  const Rate total = Rate::one_per(Duration::minutes(44.0));
  const std::vector<Rate> rates{total * 0.55, total * 0.35, total * 0.10};

  const MultilevelSchedule best = optimize_multilevel(levels, rates, 128);

  const Duration daly_w = daly_interval(levels[2].save_cost, total);
  const double cr_style = multilevel_overhead(daly_w, {1, 1, 1}, levels, rates);
  EXPECT_LT(best.overhead, cr_style);
  // With cheap low levels absorbing 90% of failures, the win is large.
  EXPECT_LT(best.overhead, 0.5 * cr_style);
  // The optimizer should actually use the hierarchy.
  EXPECT_GT(best.nesting[0] * best.nesting[1], 1);
}

TEST(Multilevel, OptimizerQuantumIsLocallyOptimal) {
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(0.2), Duration::seconds(0.2), 1},
      CheckpointLevelSpec{Duration::seconds(0.8), Duration::seconds(0.8), 2},
      CheckpointLevelSpec{Duration::seconds(1000.0), Duration::seconds(1000.0), 3}};
  const Rate total = Rate::per_hour(1.0);
  const std::vector<Rate> rates{total * 0.6, total * 0.3, total * 0.1};
  const MultilevelSchedule best = optimize_multilevel(levels, rates, 128);
  const double at_best =
      multilevel_overhead(best.quantum, best.nesting, levels, rates);
  EXPECT_LE(at_best,
            multilevel_overhead(best.quantum * 0.8, best.nesting, levels, rates));
  EXPECT_LE(at_best,
            multilevel_overhead(best.quantum * 1.25, best.nesting, levels, rates));
  EXPECT_NEAR(best.overhead, at_best, 1e-12);
}

TEST(Multilevel, NoFailuresMeansRareCheckpoints) {
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(1.0), Duration::seconds(1.0), 1}};
  const MultilevelSchedule schedule =
      optimize_multilevel(levels, {Rate::zero()}, 16);
  EXPECT_GT(schedule.quantum, Duration::days(300.0));
}

TEST(Multilevel, RejectsMismatchedInputs) {
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(1.0), Duration::seconds(1.0), 1}};
  EXPECT_THROW(optimize_multilevel(levels, {}, 16), CheckError);
  EXPECT_THROW(optimize_multilevel({}, {}, 16), CheckError);
  EXPECT_THROW((void)multilevel_overhead(Duration::zero(), {1}, levels, {Rate::zero()}),
               CheckError);
}

}  // namespace
}  // namespace xres
