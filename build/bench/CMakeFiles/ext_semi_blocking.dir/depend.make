# Empty dependencies file for ext_semi_blocking.
# This may be replaced when dependencies are built.
