#pragma once

/// \file shared_channel.hpp
/// A processor-sharing bandwidth resource for discrete-event simulations.
///
/// Models a shared I/O path (e.g. the parallel file system's front end):
/// the channel has a total capacity and a per-stream cap; n concurrent
/// transfers each progress at rate min(per_stream_cap, capacity / n).
/// Whenever the active set changes, all remaining sizes are advanced at
/// the old rate and the single pending completion event is rescheduled for
/// the new earliest finisher. This realizes the classic egalitarian
/// processor-sharing queue exactly (no time-stepping).
///
/// Eq. 3's per-application PFS bandwidth is B_N · N_S independent of
/// application size, so a machine-level PFS is a SharedChannel with
/// per_stream_cap = B_N · N_S and capacity = gateways × B_N · N_S
/// (contention appears beyond `gateways` concurrent checkpoints).

#include <cstdint>
#include <map>

#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace xres {

class SharedChannel {
 public:
  using TransferId = std::uint64_t;
  using CompletionCallback = EventCallback;

  SharedChannel(Simulation& sim, Bandwidth capacity, Bandwidth per_stream_cap);

  SharedChannel(const SharedChannel&) = delete;
  SharedChannel& operator=(const SharedChannel&) = delete;
  ~SharedChannel();

  /// Start moving \p size through the channel; \p on_complete fires when
  /// it finishes (timing depends on concurrent load).
  TransferId begin_transfer(DataSize size, CompletionCallback on_complete);

  /// Abort a transfer. Returns false when it already completed or was
  /// already cancelled.
  bool cancel(TransferId id);

  [[nodiscard]] std::size_t active_transfers() const { return transfers_.size(); }

  /// Rate currently granted to each active transfer.
  [[nodiscard]] Bandwidth current_per_transfer_rate() const;

  /// Bytes still pending for \p id (0 if unknown).
  [[nodiscard]] DataSize remaining(TransferId id) const;

  [[nodiscard]] std::uint64_t completed_transfers() const { return completed_; }

 private:
  struct Transfer {
    double remaining_bytes{0.0};
    CompletionCallback on_complete;
  };

  /// Advance all remaining sizes to the current time at the rate in force
  /// since the last update.
  void advance_to_now();

  /// (Re)schedule the completion event for the earliest finisher.
  void reschedule();

  void on_completion_event();

  Simulation& sim_;
  double capacity_bps_;
  double per_stream_cap_bps_;
  std::map<TransferId, Transfer> transfers_;
  TransferId next_id_{1};
  double last_update_s_{0.0};
  EventId pending_{};
  bool has_pending_{false};
  std::uint64_t completed_{0};
};

}  // namespace xres
