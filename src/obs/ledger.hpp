#pragma once

/// \file ledger.hpp
/// The run ledger: one CRC-framed JSONL record per `xres` invocation,
/// appended to a persistent file (default `results/ledger.jsonl`) so every
/// run leaves a queryable, comparable trace — study, params digest, seed,
/// engine counters, wall-clock throughput.
///
/// Records reuse the trial journal's framing (util/framed_line.hpp):
/// `{"c":"<crc32>","r":<record>}` per line. Appends are a single O_APPEND
/// write of one whole line, so concurrent appenders interleave at line
/// granularity and a SIGKILL mid-append leaves at worst one torn tail that
/// readers drop by CRC. This write side lives in obs (util-only deps); the
/// scan/query side is src/study/runlog.hpp.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xres::obs {

/// Everything the ledger remembers about one run. Deterministic identity
/// fields (study, params_digest, seed, counters, metrics/manifest CRCs)
/// are comparable across machines; wall-clock fields are informational.
struct RunRecord {
  std::string id;           ///< mint_run_id(): unique per process+time
  std::string study;        ///< registry study name
  std::string cell;         ///< suite/sweep cell name ("" for direct runs)
  std::string suite;        ///< suite tag ("" for direct runs)
  std::uint64_t seed{0};
  unsigned threads{1};
  std::string build;        ///< git-describe-style build id
  int status{0};            ///< 0 ok; nonzero exit code; -1 exception
  std::string params_digest;  ///< params_digest() of `params`
  std::vector<std::pair<std::string, std::string>> params;  ///< sorted by key
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< perf_counter_items order
  double wall_seconds{0};
  double trials_per_second{0};
  double events_per_second{0};
  std::uint64_t peak_rss{0};      ///< bytes
  std::string metrics_crc;   ///< crc32 hex of the --metrics file ("" if none)
  std::string manifest_crc;  ///< crc32 hex of the suite manifest ("" if none)
  /// CRC-32 hex over the `platform.*` params (key=value\n, key-sorted):
  /// the topology identity of the run. Two runs with differing digests
  /// executed on different modeled platforms, so `xres compare` warns
  /// (but does not fail) before diffing their artifacts.
  std::string platform_crc;
};

/// Record JSON (unframed) for \p record — `{"ledger":"xres-run-v1",...}`.
[[nodiscard]] std::string to_ledger_json(const RunRecord& record);

/// Fresh run id: epoch-seconds hex + pid hex + per-process sequence.
[[nodiscard]] std::string mint_run_id();

/// CRC-32 hex over the canonical `key=value\n` rendering of \p params
/// (callers pass them already key-sorted) — the (study, params) identity
/// two runs are compared by.
[[nodiscard]] std::string params_digest(
    const std::vector<std::pair<std::string, std::string>>& params);

/// Append \p record as one framed line to \p path (parent directories are
/// created as needed). Best-effort by policy (docs/ROBUSTNESS.md): on any
/// I/O failure — including injected faults (util/io.hpp) — it warns once,
/// returns false, and never throws; the ledger must never take down or
/// change the exit code of the run it is recording.
bool append_run_record(const std::string& path, const RunRecord& record);

/// Stash/fetch the most recent record built by this process, so a suite can
/// collect per-cell telemetry after each `run_study` without re-plumbing
/// every study signature. Returns false when no record was stashed yet.
void set_last_run_record(const RunRecord& record);
[[nodiscard]] bool last_run_record(RunRecord& out);

}  // namespace xres::obs
