#include "util/toml.hpp"

#include <cctype>

namespace xres::util {
namespace {

bool is_bare_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '-' ||
         c == '.';
}

const TomlTable* find_table(const std::vector<TomlTable>& tables,
                            std::string_view name) {
  for (const TomlTable& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

/// Character cursor with line tracking. Statements are newline-terminated
/// except inside arrays, where newlines are plain whitespace.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  std::vector<TomlTable> parse_document() {
    std::vector<TomlTable> tables;
    tables.push_back(TomlTable{"", 1, {}});
    for (;;) {
      skip_ws_and_comments();
      if (eof()) break;
      if (peek() == '[') {
        take();
        skip_blanks();
        const int line = line_;
        std::string name = parse_key();
        skip_blanks();
        if (eof() || peek() != ']') fail("expected ']' after table name");
        take();
        expect_end_of_line("table header");
        if (find_table(tables, name) != nullptr) {
          fail_at(line, "duplicate table [" + name + "]");
        }
        tables.push_back(TomlTable{std::move(name), line, {}});
        continue;
      }
      const int line = line_;
      std::string key = parse_key();
      if (key.find('.') != std::string::npos) {
        fail("dotted keys are not supported: " + key);
      }
      skip_blanks();
      if (eof() || peek() != '=') fail("expected '=' after key '" + key + "'");
      take();
      skip_blanks();
      TomlValue value = parse_value();
      expect_end_of_line("value");
      TomlTable& current = tables.back();
      if (current.find(key) != nullptr) {
        fail_at(line, "duplicate key '" + key + "'" +
                          (current.name.empty()
                               ? std::string{}
                               : " in table [" + current.name + "]"));
      }
      current.entries.push_back(TomlEntry{std::move(key), std::move(value), line});
    }
    return tables;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const { fail_at(line_, what); }

  /// Duplicate-key/table errors surface after the statement's newline has
  /// been consumed; report the line the statement started on.
  [[noreturn]] static void fail_at(int line, const std::string& what) {
    throw TomlParseError{"line " + std::to_string(line) + ": " + what};
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Skip spaces and tabs (not newlines).
  void skip_blanks() {
    while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos_;
  }

  void skip_comment() {
    if (!eof() && peek() == '#') {
      while (!eof() && peek() != '\n') ++pos_;
    }
  }

  /// Require that nothing but blanks/comment remains before the newline.
  void expect_end_of_line(const char* after) {
    skip_blanks();
    skip_comment();
    if (eof()) return;
    if (peek() != '\n') fail(std::string{"unexpected text after "} + after);
    take();
  }

  /// Skip whitespace (including newlines) and comments; used between
  /// statements and inside arrays.
  void skip_ws_and_comments() {
    for (;;) {
      skip_blanks();
      skip_comment();
      if (!eof() && peek() == '\n') {
        take();
        continue;
      }
      return;
    }
  }

  std::string parse_key() {
    if (eof()) fail("expected a key");
    if (peek() == '"' || peek() == '\'') {
      const TomlValue v = parse_string();
      if (v.text.empty()) fail("empty quoted key");
      return v.text;
    }
    std::string key;
    while (!eof() && is_bare_key_char(peek())) key += take();
    if (key.empty()) fail(std::string{"expected a key, got '"} + peek() + "'");
    return key;
  }

  TomlValue parse_string() {
    TomlValue v;
    v.kind = TomlValue::Kind::kString;
    const char quote = take();
    if (quote == '\'') {
      // Literal string: no escapes, single line.
      for (;;) {
        if (eof() || peek() == '\n') fail("unterminated literal string");
        const char c = take();
        if (c == '\'') return v;
        v.text += c;
      }
    }
    // Basic string with escapes.
    for (;;) {
      if (eof() || peek() == '\n') fail("unterminated string");
      const char c = take();
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = take();
      switch (esc) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("truncated \\u escape");
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code < 0x80) {
            v.text += static_cast<char>(code);
          } else if (code < 0x800) {
            v.text += static_cast<char>(0xC0 | (code >> 6));
            v.text += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.text += static_cast<char>(0xE0 | (code >> 12));
            v.text += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.text += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(std::string{"unknown escape '\\"} + esc + "'");
      }
    }
  }

  TomlValue parse_scalar_token() {
    std::string token;
    while (!eof() && peek() != ' ' && peek() != '\t' && peek() != '\n' &&
           peek() != '#' && peek() != ',' && peek() != ']') {
      token += take();
    }
    if (token.empty()) fail("expected a value");
    TomlValue v;
    v.text = token;
    if (token == "true" || token == "false") {
      v.kind = TomlValue::Kind::kBool;
      return v;
    }
    // Number: [+-]? digits [. digits] [(e|E) [+-]? digits]. Raw text is
    // preserved; this only classifies integer vs float and rejects junk.
    std::size_t i = 0;
    if (token[i] == '+' || token[i] == '-') ++i;
    const auto eat_digits = [&] {
      const std::size_t start = i;
      while (i < token.size() && std::isdigit(static_cast<unsigned char>(token[i]))) ++i;
      return i > start;
    };
    bool is_float = false;
    if (!eat_digits()) fail("bad value: " + token);
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (!eat_digits()) fail("bad number: " + token);
      is_float = true;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (!eat_digits()) fail("bad number: " + token);
      is_float = true;
    }
    if (i != token.size()) fail("bad value: " + token);
    v.kind = is_float ? TomlValue::Kind::kFloat : TomlValue::Kind::kInteger;
    return v;
  }

  TomlValue parse_array() {
    TomlValue v;
    v.kind = TomlValue::Kind::kArray;
    take();  // '['
    for (;;) {
      skip_ws_and_comments();
      if (eof()) fail("unterminated array");
      if (peek() == ']') {
        take();
        return v;
      }
      v.items.push_back(parse_value());
      skip_ws_and_comments();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        take();
        continue;
      }
      if (peek() != ']') fail("expected ',' or ']' in array");
    }
  }

  TomlValue parse_value() {
    if (eof()) fail("expected a value");
    const char c = peek();
    if (c == '"' || c == '\'') return parse_string();
    if (c == '[') return parse_array();
    return parse_scalar_token();
  }

  std::string_view text_;
  std::size_t pos_{0};
  int line_{1};
};

}  // namespace

const TomlEntry* TomlTable::find(std::string_view key) const {
  for (const TomlEntry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

const TomlTable* TomlDocument::find(std::string_view name) const {
  return find_table(tables_, name);
}

TomlDocument TomlDocument::parse(std::string_view text) {
  TomlDocument doc;
  doc.tables_ = Parser{text}.parse_document();
  return doc;
}

}  // namespace xres::util
