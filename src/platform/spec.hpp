#pragma once

/// \file spec.hpp
/// Hardware description of the simulated machine (paper Section III-C).
///
/// The exascale defaults extrapolate the Sunway TaihuLight architecture:
/// 4× the CPE count per node (260 → 1028 cores, ~3.1 → ~12 TFLOPS), 4× the
/// node memory (32 → 128 GB) with hybrid-memory-cube-class aggregate
/// bandwidth (320 GB/s), and an "NDR InfiniBand"-class interconnect
/// (latency 0.5 µs, 600 GB/s, 12 simultaneous switch connections). 120,000
/// such nodes reach an exaflop.

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace xres {

/// A single compute node.
struct NodeSpec {
  double tflops{12.0};                ///< peak compute per node
  std::uint32_t cores{1028};          ///< CPU cores per node
  DataSize memory{DataSize::gigabytes(128.0)};
  /// Aggregate memory bandwidth B_M used for in-RAM checkpoints (Eq. 5).
  Bandwidth memory_bandwidth{Bandwidth::gigabytes_per_second(320.0)};
};

/// The interconnect + parallel-file-system path (paper Section III-F).
struct NetworkSpec {
  Duration latency{Duration::microseconds(0.5)};  ///< L
  Bandwidth bandwidth{Bandwidth::gigabytes_per_second(600.0)};  ///< B_N
  std::uint32_t switch_connections{12};  ///< N_S: simultaneous connections per switch
};

/// Which platform model answers data-movement questions
/// (platform/platform_model.hpp).
enum class PlatformModelKind {
  kFlat,     ///< the paper's closed-form constants (Eq. 3/5/6), the default
  kFattree,  ///< k-ary fat-tree zone + queued PFS device
};

[[nodiscard]] const char* to_string(PlatformModelKind kind);
/// Parses "flat" / "fattree"; throws CheckError naming the value otherwise.
[[nodiscard]] PlatformModelKind platform_model_from_string(const std::string& name);

/// Parameters of the fat-tree interconnect zone (used when
/// `PlatformSpec::model == kFattree`).
struct FatTreeParams {
  /// Nodes per leaf switch (the tree's arity k). The exascale default
  /// mirrors N_S so a full leaf exactly saturates its uplink.
  std::uint32_t leaf_radix{12};
  /// Per-level uplink taper: a level-l subtree's uplink carries
  /// N_S · B_N · taper^(l-1). 1.0 = full bisection (non-blocking).
  double taper{1.0};
  /// PFS service channels (spindles/gateway streams); 0 = use N_S.
  std::uint32_t pfs_channels{0};
};

/// Platform-model selection, carried by MachineSpec. The default (`flat`)
/// leaves every artifact byte-identical to the pre-topology code.
struct PlatformSpec {
  PlatformModelKind model{PlatformModelKind::kFlat};
  FatTreeParams fattree{};

  /// Validates topology parameters; throws CheckError otherwise.
  void validate() const;

  /// Short parenthesized summary, e.g. "fattree(radix=12,taper=1.00,pfs=12)".
  [[nodiscard]] std::string describe() const;
};

/// The whole machine.
struct MachineSpec {
  NodeSpec node{};
  NetworkSpec network{};
  std::uint32_t node_count{120000};
  PlatformSpec platform{};

  /// The paper's exascale system (defaults above).
  [[nodiscard]] static MachineSpec exascale();

  /// A small machine for unit tests and examples.
  [[nodiscard]] static MachineSpec testbed(std::uint32_t nodes);

  /// Aggregate peak performance in PFLOPS.
  [[nodiscard]] double total_pflops() const {
    return node.tflops * static_cast<double>(node_count) / 1000.0;
  }

  /// Total cores across the machine.
  [[nodiscard]] std::uint64_t total_cores() const {
    return static_cast<std::uint64_t>(node.cores) * node_count;
  }

  /// Validates physical plausibility; throws CheckError otherwise.
  void validate() const;

  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;
};

}  // namespace xres
