#include "failure/distribution.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xres {

FailureDistribution FailureDistribution::exponential() {
  return FailureDistribution{FailureDistributionKind::kExponential, 1.0};
}

FailureDistribution FailureDistribution::weibull(double shape) {
  XRES_CHECK(shape > 0.0, "Weibull shape must be positive");
  return FailureDistribution{FailureDistributionKind::kWeibull, shape};
}

Duration FailureDistribution::draw(Pcg32& rng, Rate rate) const {
  XRES_CHECK(rate >= Rate::zero(), "failure rate must be non-negative");
  if (rate == Rate::zero()) return Duration::infinity();
  switch (kind_) {
    case FailureDistributionKind::kExponential:
      return rng.exponential(rate);
    case FailureDistributionKind::kWeibull: {
      // Choose scale so the mean equals 1/rate: mean = scale * Gamma(1 + 1/k).
      const double gamma = std::tgamma(1.0 + 1.0 / shape_);
      const Duration scale = rate.mean_interval() / gamma;
      return rng.weibull(shape_, scale);
    }
  }
  XRES_CHECK(false, "unhandled distribution kind");
}

}  // namespace xres
