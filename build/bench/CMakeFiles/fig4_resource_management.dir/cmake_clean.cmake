file(REMOVE_RECURSE
  "CMakeFiles/fig4_resource_management.dir/fig4_resource_management.cpp.o"
  "CMakeFiles/fig4_resource_management.dir/fig4_resource_management.cpp.o.d"
  "fig4_resource_management"
  "fig4_resource_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_resource_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
