// Reproduces paper Figure 5: dropped applications for each resource
// management technique using Parallel Recovery vs. using per-application
// Resilience Selection, over four arrival-pattern types (unbiased,
// high-memory, high-communication, large applications).

#include <chrono>
#include <cstdio>

#include "core/workload_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{
      "fig5_resilience_selection — paper Figure 5: Parallel Recovery vs. "
      "Resilience Selection per scheduler, over four workload biases."};
  cli.add_option("--patterns", "arrival patterns per combo (paper: 50)", "50");
  cli.add_option("--seed", "root RNG seed", "20170530");
  cli.add_option("--threads", "worker threads (0 = all hardware threads)", "0");
  cli.add_flag("--csv", "also emit raw CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const auto threads = static_cast<unsigned>(cli.integer("--threads"));

  std::printf("Figure 5: Parallel Recovery vs. Resilience Selection\n\n");

  Table table{{"arrival pattern", "scheduler", "resilience", "dropped %", "std %"}};
  const auto start = std::chrono::steady_clock::now();
  for (WorkloadBias bias :
       {WorkloadBias::kUnbiased, WorkloadBias::kHighMemory,
        WorkloadBias::kHighCommunication, WorkloadBias::kLargeApps}) {
    WorkloadStudyConfig study;
    study.patterns = patterns;
    study.seed = seed;
    study.threads = threads;
    study.workload.bias = bias;

    std::fprintf(stderr, "bias: %s\n", to_string(bias));
    const auto results = run_workload_study(
        study, figure5_combos(), [](std::size_t done, std::size_t total) {
          std::fprintf(stderr, "\r  pattern-run %zu/%zu", done, total);
          if (done == total) std::fprintf(stderr, "\n");
          std::fflush(stderr);
        });
    for (const WorkloadComboResult& r : results) {
      table.add_row({to_string(bias), to_string(r.combo.scheduler),
                     r.combo.policy.name(),
                     fmt_double(r.dropped_fraction.mean * 100.0, 2),
                     fmt_double(r.dropped_fraction.stddev * 100.0, 2)});
    }
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("%s", table.to_text().c_str());
  std::printf("(computed in %.1f s)\n", elapsed);
  if (cli.flag("--csv")) std::printf("\n%s", table.to_csv().c_str());
  return 0;
}
