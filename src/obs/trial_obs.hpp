#pragma once

/// \file trial_obs.hpp
/// Per-trial observation context: the one pointer instrumented components
/// carry. Both channels (metrics, trace) are individually optional; a null
/// `TrialObs*` — or a `TrialObs` with neither channel enabled — makes every
/// instrumentation site a pointer test and nothing more, which is the
/// "near-free when disabled" contract.
///
/// Ownership: the study/driver that wants observation allocates one
/// `TrialObs` per trial (or per workload pattern), hands a pointer to the
/// trial, and merges/collects the filled contexts in spec order afterwards.
/// A `TrialObs` is single-threaded for the duration of its trial.

#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xres::obs {

class TrialObs {
 public:
  void enable_metrics() { metrics_.emplace(); }
  void enable_trace() { trace_.emplace(); }

  [[nodiscard]] MetricSet* metrics() { return metrics_.has_value() ? &*metrics_ : nullptr; }
  [[nodiscard]] const MetricSet* metrics() const {
    return metrics_.has_value() ? &*metrics_ : nullptr;
  }
  [[nodiscard]] TraceBuffer* trace() { return trace_.has_value() ? &*trace_ : nullptr; }
  [[nodiscard]] const TraceBuffer* trace() const {
    return trace_.has_value() ? &*trace_ : nullptr;
  }

  // Metric conveniences that are safe when the channel is disabled.
  void count(MetricId id, std::uint64_t delta = 1) {
    if (metrics_.has_value()) metrics_->inc(id, delta);
  }
  void add(MetricId id, double delta) {
    if (metrics_.has_value()) metrics_->add(id, delta);
  }
  void observe(MetricId id, double value) {
    if (metrics_.has_value()) metrics_->observe(id, value);
  }

 private:
  std::optional<MetricSet> metrics_;
  std::optional<TraceBuffer> trace_;
};

}  // namespace xres::obs
