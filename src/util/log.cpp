#include "util/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace xres {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> try_parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (LogLevel l : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError, LogLevel::kOff}) {
    if (lower == to_string(l)) return l;
  }
  return std::nullopt;
}

LogLevel parse_log_level(const std::string& name) {
  const std::optional<LogLevel> level = try_parse_log_level(name);
  XRES_CHECK(level.has_value(), "unknown log level: " + name);
  return *level;
}

LogLevel Logger::level_from_env(const char* env) {
  if (env == nullptr) return LogLevel::kWarn;
  const std::optional<LogLevel> level = try_parse_log_level(env);
  if (!level.has_value()) {
    // A typo in the environment must not abort the study — warn and run.
    std::fprintf(stderr, "[xres warn ] ignoring unknown XRES_LOG level \"%s\" (use %s)\n",
                 env, "trace|debug|info|warn|error|off");
    return LogLevel::kWarn;
  }
  return *level;
}

Logger::Logger() : level_{level_from_env(std::getenv("XRES_LOG"))} {}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock{sink_mutex_};
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock{sink_mutex_};
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::fprintf(stderr, "[xres %-5s] %s\n", to_string(level), message.c_str());
}

}  // namespace xres
