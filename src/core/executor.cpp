#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "failure/process.hpp"
#include "failure/replay.hpp"
#include "failure/severity.hpp"
#include "recovery/journal.hpp"
#include "recovery/json_parse.hpp"
#include "recovery/shutdown.hpp"
#include "recovery/trial_record.hpp"
#include "obs/perf.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"

namespace xres {

namespace {

ExecutionResult infeasible_result(const ExecutionPlan& plan, obs::TrialObs* obs) {
  ExecutionResult result;
  result.completed = false;
  result.baseline = plan.baseline;
  result.efficiency = 0.0;
  if (obs != nullptr) {
    const obs::BuiltinMetrics& m = obs::builtin_metrics();
    obs->count(m.trials_run);
    obs->count(m.trials_infeasible);
  }
  return result;
}

/// Fold one finished trial into its observer: counters/gauges from the
/// ExecutionResult (exact, no per-event cost) plus the trial-shape
/// histograms. Runtime-side observation covers only what the result does
/// not retain (per-event severities, checkpoint levels/costs, rework
/// sizes), so nothing is double-counted.
void record_trial_metrics(obs::TrialObs* obs, const ExecutionResult& r,
                          std::uint64_t sim_events) {
  if (obs == nullptr || obs->metrics() == nullptr) return;
  record_result_metrics(obs, r);
  const obs::BuiltinMetrics& m = obs::builtin_metrics();
  obs->count(m.trials_run);
  obs->count(m.sim_events, sim_events);
  obs->observe(m.trial_events, static_cast<double>(sim_events));
  obs->observe(m.trial_wall_hours, r.wall_time.to_seconds() / 3600.0);
}

/// Attempt number of the trial currently executing on this thread; set by
/// for_each_controlled's retry loop so run_batch's journal body can record
/// how many tries an outcome took without widening the body signature.
thread_local unsigned t_current_attempt = 1;

}  // namespace

std::uint64_t TrialSpec::derived_seed(std::uint64_t root) const {
  if (seed_keys.empty()) return root;
  std::vector<std::uint64_t> keys;
  keys.reserve(seed_keys.size() + 1);
  keys.push_back(root);
  keys.insert(keys.end(), seed_keys.begin(), seed_keys.end());
  return hash_seed(keys);
}

ExecutionResult run_trial(const PlanTrialSpec& spec, std::uint64_t seed,
                          obs::TrialObs* obs) {
  if (!spec.plan.feasible) return infeasible_result(spec.plan, obs);

  Simulation sim;
  const SeverityModel severity{spec.resilience.severity_weights};

  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, spec.plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);

  AppFailureProcess failures{
      sim,
      spec.plan.failure_rate,
      severity,
      spec.failure_distribution,
      Pcg32{derive_seed(seed, 0x6661696c7321ULL)},
      [&runtime](const Failure& f) { runtime.on_failure(f); }};

  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "plan trial ended without a completion callback");
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trial(const TraceTrialSpec& spec, std::uint64_t seed,
                          obs::TrialObs* obs) {
  // Severity is already baked into the trace; spec.resilience is kept for
  // API symmetry and future runtime knobs.
  if (!spec.plan.feasible) return infeasible_result(spec.plan, obs);

  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;

  ResilientAppRuntime runtime{
      sim, spec.plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);

  TraceFailureProcess failures{sim, spec.trace,
                               [&runtime](const Failure& f) { runtime.on_failure(f); }};
  failures.start();
  runtime.start();
  sim.run();

  XRES_CHECK(finished, "trace trial ended without a completion callback");
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trial(const SingleAppTrialConfig& config, std::uint64_t seed,
                          obs::TrialObs* obs) {
  PlanTrialSpec spec;
  spec.plan = make_plan(config.technique, config.app, config.machine, config.resilience);
  spec.resilience = config.resilience;
  spec.failure_distribution = config.failure_distribution;
  return run_trial(spec, seed, obs);
}

ExecutionResult run_trial(const TrialSpec& spec, std::uint64_t root_seed,
                          obs::TrialObs* obs) {
  const std::uint64_t seed = spec.derived_seed(root_seed);
  return std::visit([seed, obs](const auto& work) { return run_trial(work, seed, obs); },
                    spec.work);
}

TrialExecutor::TrialExecutor(unsigned threads) : threads_{threads} {
  if (threads_ == 0) threads_ = std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
}

void TrialExecutor::for_each(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             const TrialProgress& progress) const {
  TrialLoopControl control;
  control.progress = progress;
  // Plain loops ignore shutdown signals: their callers reduce the full
  // result vector unconditionally, so draining early would hand them
  // default-constructed slots.
  control.drain_on_shutdown = false;
  for_each_controlled(count, body, control, nullptr);
}

void TrialExecutor::for_each_controlled(std::size_t count,
                                        const std::function<void(std::size_t)>& body,
                                        const TrialLoopControl& control,
                                        recovery::BatchReport* report) const {
  if (count == 0) return;
  XRES_CHECK(static_cast<bool>(body), "for_each_controlled needs a body");

  const unsigned attempts = std::max(1U, control.trial_attempts);
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> resumed{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> quarantined{0};
  std::atomic<bool> interrupted{false};
  std::mutex quarantine_mutex;

  // One unit through the whole envelope: resume skip, then up to `attempts`
  // tries under the watchdog deadline, then quarantine (or, unhooked, the
  // historical propagate-and-fail-the-batch path). Only std::exception is
  // retryable; anything else is a bug and escapes immediately.
  auto run_unit = [&](std::size_t i) {
    if (control.already_done && control.already_done(i)) {
      resumed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (unsigned attempt = 1;; ++attempt) {
      try {
        const ScopedDeadline deadline{control.trial_timeout_seconds};
        t_current_attempt = attempt;
        body(i);
        executed.fetch_add(1, std::memory_order_relaxed);
        return;
      } catch (const std::exception& e) {
        if (attempt < attempts) {
          retried.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!control.quarantine) throw;
        {
          const std::lock_guard<std::mutex> lock{quarantine_mutex};
          control.quarantine(i, e.what());
        }
        quarantined.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::exception_ptr error;
  const std::size_t workers = std::min<std::size_t>(threads_, count);
  if (workers <= 1) {
    std::size_t done = 0;
    for (std::size_t i = 0; i < count; ++i) {
      if (control.drain_on_shutdown && recovery::shutdown_requested()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      try {
        run_unit(i);
      } catch (...) {
        error = std::current_exception();
        break;
      }
      if (control.progress) control.progress(++done, count);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::size_t done = 0;
    std::mutex progress_mutex;

    auto worker = [&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (control.drain_on_shutdown && recovery::shutdown_requested()) {
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          run_unit(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock{error_mutex};
            if (!error) error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        if (control.progress) {
          const std::lock_guard<std::mutex> lock{progress_mutex};
          control.progress(++done, count);
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (report != nullptr) {
    report->executed += executed.load(std::memory_order_relaxed);
    report->resumed += resumed.load(std::memory_order_relaxed);
    report->retried += retried.load(std::memory_order_relaxed);
    report->quarantined += quarantined.load(std::memory_order_relaxed);
    report->interrupted =
        report->interrupted || interrupted.load(std::memory_order_relaxed);
  }
  // One flush per batch into the process-global telemetry (obs/perf.hpp):
  // the per-unit accounting above already paid for these atomics.
  obs::perf_add_trials(executed.load(std::memory_order_relaxed),
                       resumed.load(std::memory_order_relaxed),
                       retried.load(std::memory_order_relaxed),
                       quarantined.load(std::memory_order_relaxed));
  if (error) std::rethrow_exception(error);
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    const TrialProgress& progress) const {
  std::vector<ExecutionResult> results(specs.size());
  for_each(
      specs.size(),
      [&](std::size_t i) { results[i] = run_trial(specs[i], root_seed); },
      progress);
  return results;
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    std::span<obs::TrialObs> observers, const TrialProgress& progress) const {
  XRES_CHECK(observers.size() == specs.size(),
             "one observer per spec (enable channels before the batch)");
  std::vector<ExecutionResult> results(specs.size());
  for_each(
      specs.size(),
      [&](std::size_t i) { results[i] = run_trial(specs[i], root_seed, &observers[i]); },
      progress);
  return results;
}

std::vector<ExecutionResult> TrialExecutor::run_batch(
    std::uint64_t root_seed, std::span<const TrialSpec> specs,
    std::span<obs::TrialObs> observers, const recovery::TrialRecoveryOptions& rec,
    const std::string& batch_label, recovery::BatchReport* report,
    const TrialProgress& progress) const {
  const bool observed = !observers.empty();
  XRES_CHECK(!observed || observers.size() == specs.size(),
             "one observer per spec, or no observers at all");

  std::vector<ExecutionResult> results(specs.size());
  std::atomic<std::size_t> stale{0};

  TrialLoopControl control;
  control.progress = progress;
  control.trial_timeout_seconds = rec.trial_timeout_seconds;
  control.trial_attempts = rec.trial_attempts;
  control.drain_on_shutdown = rec.drain_on_shutdown;

  if (rec.resume != nullptr) {
    control.already_done = [&](std::size_t i) {
      const recovery::JournalRecord* record = rec.resume->find(batch_label, i);
      if (record == nullptr) return false;
      if (record->seed != specs[i].derived_seed(root_seed)) {
        // The sweep changed under the journal; re-running is the only safe
        // answer.
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      // Trace-collecting trials always re-run: the simulation is
      // deterministic, so re-running rebuilds the identical trace, and
      // journaling event buffers would dwarf the results they describe.
      if (observed && observers[i].trace() != nullptr) return false;
      recovery::TrialOutcome outcome;
      try {
        outcome = recovery::parse_trial_outcome(record->payload);
      } catch (const recovery::JsonParseError&) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (observed && observers[i].metrics() != nullptr) {
        // Journaled without metrics (an unobserved earlier run) but needed
        // now: re-run rather than hand back a hole in the merge.
        if (!outcome.metrics.has_value()) return false;
        *observers[i].metrics() = *outcome.metrics;
      }
      results[i] = outcome.result;
      return true;
    };
  }

  auto journal_outcome = [&](std::size_t i, recovery::TrialOutcome outcome) {
    recovery::JournalRecord record;
    record.batch = batch_label;
    record.index = i;
    record.seed = specs[i].derived_seed(root_seed);
    record.payload = recovery::serialize_trial_outcome(outcome);
    rec.journal->append(record);
  };

  // Re-arm a trial's enabled observer channels so every attempt starts from
  // a clean slate instead of double-counting a failed predecessor.
  auto reset_observer = [&](std::size_t i) {
    if (!observed) return;
    if (observers[i].metrics() != nullptr) observers[i].enable_metrics();
    if (observers[i].trace() != nullptr) observers[i].enable_trace();
  };

  auto body = [&](std::size_t i) {
    obs::TrialObs* obs = nullptr;
    if (observed) {
      reset_observer(i);
      obs = &observers[i];
    }
    const auto start = std::chrono::steady_clock::now();
    results[i] = run_trial(specs[i], root_seed, obs);
    if (rec.journal != nullptr) {
      recovery::TrialOutcome outcome;
      outcome.result = results[i];
      if (obs != nullptr && obs->metrics() != nullptr) outcome.metrics = *obs->metrics();
      outcome.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      outcome.attempts = t_current_attempt;
      journal_outcome(i, std::move(outcome));
    }
  };

  if (rec.quarantine_enabled()) {
    control.quarantine = [&](std::size_t i, const std::string& reason) {
      // Same shape as an infeasible plan: present but worthless, so the
      // study's reductions stay well-defined.
      ExecutionResult placeholder;
      placeholder.completed = false;
      placeholder.efficiency = 0.0;
      results[i] = placeholder;
      reset_observer(i);
      if (rec.journal != nullptr) {
        recovery::TrialOutcome outcome;
        outcome.result = placeholder;
        outcome.quarantined = true;
        outcome.quarantine_reason = reason;
        outcome.attempts = std::max(1U, rec.trial_attempts);
        if (observed && observers[i].metrics() != nullptr) {
          outcome.metrics.emplace();  // clean zero set, matching the reset
        }
        journal_outcome(i, std::move(outcome));
      }
    };
  }

  for_each_controlled(specs.size(), body, control, report);
  if (report != nullptr) {
    report->stale_records += stale.load(std::memory_order_relaxed);
  }
  return results;
}

}  // namespace xres
