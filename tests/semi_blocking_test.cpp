// Tests for the semi-blocking checkpointing extension (paper related work
// [12]): execution continues at a reduced rate while a checkpoint drains,
// and the in-flight image covers only the progress at phase entry.

#include <gtest/gtest.h>

#include "core/single_app_study.hpp"
#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"

namespace xres {
namespace {

/// 100 s of work, checkpoint every 10 s of work at a cost of 2 s with
/// work continuing at half rate, restore 3 s.
ExecutionPlan semi_plan() {
  ExecutionPlan plan;
  plan.kind = TechniqueKind::kSemiBlockingCheckpoint;
  plan.app = AppSpec{app_type_by_name("A32"), 10, 100};
  plan.physical_nodes = 10;
  plan.baseline = Duration::seconds(100.0);
  plan.work_target = Duration::seconds(100.0);
  plan.checkpoint_quantum = Duration::seconds(10.0);
  plan.levels = {CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(3.0), 3}};
  plan.nesting = {1};
  plan.checkpoint_work_rate = 0.5;
  plan.failure_rate = Rate::zero();
  return plan;
}

struct Harness {
  Simulation sim;
  ExecutionResult result;
  bool finished{false};

  std::unique_ptr<ResilientAppRuntime> make(ExecutionPlan plan) {
    return std::make_unique<ResilientAppRuntime>(
        sim, std::move(plan), 1, [this](const ExecutionResult& r) {
          result = r;
          finished = true;
        });
  }

  void inject_at(ResilientAppRuntime& rt, double seconds) {
    sim.schedule_at(TimePoint::at(Duration::seconds(seconds)), [&rt, this] {
      rt.on_failure(Failure{sim.now(), 1});
    });
  }
};

TEST(SemiBlocking, OverlapShortensFailureFreeRun) {
  // Each cycle: 10 s work + 2 s checkpoint gaining 1 s of overlapped
  // progress = 11 progress / 12 s wall. After 8 cycles (t=96, p=88,
  // boundary 98): work 10 (t=106, p=98), checkpoint (t=108, p=99), work 1
  // (t=109, p=100). Blocking CR takes 118 s on the same plan.
  Harness h;
  auto rt = h.make(semi_plan());
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_TRUE(h.result.completed);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 109.0);
  EXPECT_EQ(h.result.checkpoints_completed, 9U);
  EXPECT_GT(h.result.efficiency, 100.0 / 118.0);
}

TEST(SemiBlocking, InFlightImageExcludesOverlappedWork) {
  // Failure at t=13 (1 s after the first checkpoint committed at t=12):
  // progress is 11 + 1 = 12 but the image covers only the snapshot (10).
  // Rework must therefore be 2, not 1.
  Harness h;
  auto rt = h.make(semi_plan());
  h.inject_at(*rt, 13.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(h.result.time_restarting.to_seconds(), 3.0);
}

TEST(SemiBlocking, FailureDuringCheckpointLosesOverlapToo) {
  // Failure at t=11 (1 s into the first checkpoint): progress = 10 + 0.5,
  // nothing saved yet -> everything is rework; restart 3 s then a fresh
  // 109 s run: wall = 11 + 3 + 109 = 123 s.
  Harness h;
  auto rt = h.make(semi_plan());
  h.inject_at(*rt, 11.0);
  rt->start();
  h.sim.run();
  ASSERT_TRUE(h.finished);
  EXPECT_DOUBLE_EQ(h.result.rework.to_seconds(), 10.5);
  EXPECT_DOUBLE_EQ(h.result.wall_time.to_seconds(), 123.0);
}

TEST(SemiBlocking, PlannerWiresTechnique) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const AppSpec app{app_type_by_name("A32"), 120000, 1440};
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kSemiBlockingCheckpoint, app, machine, config);
  EXPECT_DOUBLE_EQ(plan.checkpoint_work_rate, 0.5);
  EXPECT_TRUE(plan.levels[0].uses_shared_pfs);
  // Same PFS image cost as blocking CR…
  const ExecutionPlan cr =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, config);
  EXPECT_DOUBLE_EQ(plan.levels[0].save_cost.to_seconds(),
                   cr.levels[0].save_cost.to_seconds());
  // …but a shorter interval (Eq. 4 on the effective blocked cost).
  EXPECT_LT(plan.checkpoint_quantum, cr.checkpoint_quantum);
  EXPECT_GT(predict_efficiency(plan, config), predict_efficiency(cr, config));
}

TEST(SemiBlocking, BeatsBlockingCheckpointRestartAtExascale) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("A32"), 120000, 1440};
  RunningStats semi;
  RunningStats blocking;
  for (std::uint64_t t = 0; t < 15; ++t) {
    config.technique = TechniqueKind::kSemiBlockingCheckpoint;
    semi.add(run_trial(config, derive_seed(9, t)).efficiency);
    config.technique = TechniqueKind::kCheckpointRestart;
    blocking.add(run_trial(config, derive_seed(9, t)).efficiency);
  }
  EXPECT_GT(semi.mean(), blocking.mean() + 0.05);
}

TEST(SemiBlocking, RoundTripsName) {
  EXPECT_EQ(technique_from_string("semi-blocking-checkpoint"),
            TechniqueKind::kSemiBlockingCheckpoint);
}

TEST(SemiBlocking, InvalidWorkRateRejected) {
  ExecutionPlan plan = semi_plan();
  plan.checkpoint_work_rate = 1.0;  // would never finish a checkpoint cycle
  EXPECT_THROW(plan.validate(), CheckError);
  ResilienceConfig config;
  config.semi_blocking_work_rate = -0.1;
  EXPECT_THROW(config.validate(), CheckError);
}

}  // namespace
}  // namespace xres
