#include "study/capture.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"
#include "util/io.hpp"

namespace xres::study {

StdoutCapture::StdoutCapture(std::string path)
    : path_{std::move(path)}, tmp_path_{path_ + ".tmp"} {
  std::fflush(stdout);
  saved_fd_ = ::dup(STDOUT_FILENO);
  XRES_CHECK(saved_fd_ >= 0, "cannot save stdout for capture");
  // Critical path with the standard retry policy: a transient EIO on the
  // capture open must not fail the whole suite cell.
  int fd = -1;
  const bool opened = io::retry_io(tmp_path_.c_str(), [&] {
    fd = io::open_fd(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    return fd >= 0;
  });
  if (!opened) {
    const int err = errno;
    ::close(saved_fd_);
    saved_fd_ = -1;
    throw io::IoError{"cannot open capture file " + tmp_path_ + ": " +
                          std::strerror(err),
                      err};
  }
  ::dup2(fd, STDOUT_FILENO);
  ::close(fd);
}

StdoutCapture::~StdoutCapture() {
  if (!done_) restore();
}

void StdoutCapture::restore() noexcept {
  std::fflush(stdout);
  if (saved_fd_ >= 0) {
    ::dup2(saved_fd_, STDOUT_FILENO);
    ::close(saved_fd_);
    saved_fd_ = -1;
  }
  done_ = true;
}

void StdoutCapture::finish() {
  restore();
  // Publish temp -> final atomically; rename retries transient errors and a
  // persistent failure throws IoError (the cell's artifact is missing, so
  // the suite must fail loudly / exit 75 on ENOSPC).
  if (!io::retry_io(path_.c_str(),
                    [&] { return io::rename(tmp_path_.c_str(), path_.c_str()) == 0; })) {
    const int err = errno;
    throw io::IoError{"cannot publish capture " + path_ + ": " + std::strerror(err),
                      err};
  }
}

}  // namespace xres::study
