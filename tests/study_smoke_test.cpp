// Registry smoke test: run studies end-to-end at tiny trial counts and
// assert the artifact bytes (stdout, CSV, metrics JSON) are identical for
// --threads 1 and --threads 2 — the determinism contract every study in
// the catalog promises. A fast one-per-group subset runs in tier-1; the
// full-catalog sweep is guarded by XRES_SMOKE_ALL=1.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/trial_engine.hpp"
#include "study/capture.hpp"
#include "study/options.hpp"
#include "study/registry.hpp"
#include "study/study_main.hpp"

namespace xres::study {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct SmokeArtifacts {
  int exit_code{-1};
  std::string stdout_bytes;
  std::string csv_bytes;
  std::string metrics_bytes;
};

SmokeArtifacts run_smoke(const StudyDefinition& def, unsigned threads) {
  const std::string base = ::testing::TempDir() + "smoke_" + def.name + "_t" +
                           std::to_string(threads);
  ParamSet params{def};
  for (const char* key : {"trials", "patterns", "traces"}) {
    if (def.find_param(key) != nullptr) params.set(key, "2");
  }
  HarnessOptions options = default_harness_options(def);
  if (def.options.threads) options.threads = threads;
  if (def.options.csv) {
    options.csv = true;
    options.csv_path = base + ".csv";
  }
  if (def.options.obs != StudyOptionsSpec::Obs::kNone) {
    options.obs.metrics_path = base + ".metrics.json";
  }

  SmokeArtifacts result;
  // Route run status (wall-clock phase timings, "written to" notices) to
  // stderr so the captured stdout is a pure function of the seed — exactly
  // what the suite runner does.
  set_status_stream(stderr);
  {
    StdoutCapture capture{base + ".txt"};
    result.exit_code = run_study(def, std::move(params), options);
    capture.finish();
  }
  set_status_stream(stdout);

  result.stdout_bytes = read_file(base + ".txt");
  if (!options.csv_path.empty()) result.csv_bytes = read_file(options.csv_path);
  if (!options.obs.metrics_path.empty()) {
    result.metrics_bytes = read_file(options.obs.metrics_path);
  }
  return result;
}

void expect_threads_invariant(const std::string& name) {
  const StudyDefinition* def = StudyRegistry::instance().find(name);
  ASSERT_NE(def, nullptr) << name;
  const SmokeArtifacts one = run_smoke(*def, 1);
  ASSERT_EQ(one.exit_code, 0) << name;
  EXPECT_FALSE(one.stdout_bytes.empty()) << name;
  // Serial-sweep studies expose no --threads; the single run is the smoke.
  if (!def->options.threads) return;
  const SmokeArtifacts two = run_smoke(*def, 2);
  ASSERT_EQ(two.exit_code, 0) << name;
  EXPECT_EQ(one.stdout_bytes, two.stdout_bytes) << name;
  EXPECT_EQ(one.csv_bytes, two.csv_bytes) << name;
  EXPECT_EQ(one.metrics_bytes, two.metrics_bytes) << name;
}

// The batched (direct) and unbatched (event-queue) trial engines must
// produce byte-identical study artifacts at any thread count — the
// cross-engine face of the determinism contract (the full differential
// matrix lives in surrogate_diff_test.cpp).
void expect_engine_invariant(const std::string& name) {
  const StudyDefinition* def = StudyRegistry::instance().find(name);
  ASSERT_NE(def, nullptr) << name;
  SmokeArtifacts direct;
  {
    const ScopedTrialEngine scoped{TrialEngine::kDirect};
    direct = run_smoke(*def, 1);
  }
  ASSERT_EQ(direct.exit_code, 0) << name;
  SmokeArtifacts event;
  {
    const ScopedTrialEngine scoped{TrialEngine::kEvent};
    event = run_smoke(*def, def->options.threads ? 4 : 1);
  }
  ASSERT_EQ(event.exit_code, 0) << name;
  EXPECT_EQ(direct.stdout_bytes, event.stdout_bytes) << name;
  EXPECT_EQ(direct.csv_bytes, event.csv_bytes) << name;
  EXPECT_EQ(direct.metrics_bytes, event.metrics_bytes) << name;
}

TEST(StudySmoke, FastSubsetEngineInvariant) {
  for (const char* name : {"fig1_efficiency_a32", "efficiency"}) {
    expect_engine_invariant(name);
  }
}

TEST(StudySmoke, FullCatalogEngineInvariant) {
  if (std::getenv("XRES_SMOKE_ALL") == nullptr) {
    GTEST_SKIP() << "set XRES_SMOKE_ALL=1 to sweep the full catalog";
  }
  for (const StudyDefinition* def : StudyRegistry::instance().all()) {
    expect_engine_invariant(def->name);
  }
}

// Fast tier-1 subset: one study per harness shape — static table, figure
// pipeline, workload figure, executor ablation, extension.
TEST(StudySmoke, FastSubsetThreadsInvariant) {
  for (const char* name :
       {"table1_app_types", "fig1_efficiency_a32", "fig4_resource_management",
        "ablation_severity_pmf", "ext_semi_blocking"}) {
    expect_threads_invariant(name);
  }
}

// Full-catalog sweep, too slow for tier-1:
//   XRES_SMOKE_ALL=1 ./xres_tests --gtest_filter='StudySmoke.*'
TEST(StudySmoke, FullCatalogThreadsInvariant) {
  if (std::getenv("XRES_SMOKE_ALL") == nullptr) {
    GTEST_SKIP() << "set XRES_SMOKE_ALL=1 to sweep the full catalog";
  }
  for (const StudyDefinition* def : StudyRegistry::instance().all()) {
    expect_threads_invariant(def->name);
  }
}

}  // namespace
}  // namespace xres::study
