// Tests for graceful-shutdown semantics under fire (recovery/shutdown.hpp):
// signal-storm escalation (first signal drains, every repeat hard-exits
// with 128+sig), a drain that still flushes the journal, and the journal's
// fsync/append retry policy holding up when faults are injected exactly at
// the flush op — including with a shutdown already requested, the "SIGTERM
// lands during the fsync batch" case.

#include "recovery/shutdown.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "core/executor.hpp"
#include "recovery/journal.hpp"
#include "util/io.hpp"

namespace xres {
namespace {

using recovery::JournalMeta;
using recovery::JournalRecord;
using recovery::ResumeIndex;
using recovery::TrialJournal;

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path{::testing::TempDir() + name} {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

JournalMeta test_meta() {
  JournalMeta meta;
  meta.study = "shutdown-test";
  meta.root_seed = 11;
  return meta;
}

JournalRecord make_record(std::uint64_t index) {
  JournalRecord record;
  record.batch = "b";
  record.index = index;
  record.seed = 500 + index;
  record.payload = "{}";
  return record;
}

class ShutdownTest : public ::testing::Test {
 protected:
  void TearDown() override {
    io::clear_faults();
    recovery::clear_shutdown_for_tests();
  }
};

TEST_F(ShutdownTest, SignalStormEscalates) {
  recovery::clear_shutdown_for_tests();
  EXPECT_FALSE(recovery::shutdown_requested());

  // First signal: start draining (handler returns, no exit).
  EXPECT_EQ(recovery::note_shutdown_signal(SIGINT), 0);
  EXPECT_TRUE(recovery::shutdown_requested());
  EXPECT_EQ(recovery::shutdown_signal(), SIGINT);

  // Every subsequent signal of the storm escalates with the shell
  // convention 128+sig — a wedged drain can always be killed.
  EXPECT_EQ(recovery::note_shutdown_signal(SIGINT), 128 + SIGINT);
  EXPECT_EQ(recovery::note_shutdown_signal(SIGTERM), 128 + SIGTERM);
  EXPECT_EQ(recovery::note_shutdown_signal(SIGINT), 128 + SIGINT);
  EXPECT_TRUE(recovery::shutdown_requested());
}

TEST_F(ShutdownTest, FirstSignalOfEitherKindDrains) {
  recovery::clear_shutdown_for_tests();
  EXPECT_EQ(recovery::note_shutdown_signal(SIGTERM), 0);
  EXPECT_EQ(recovery::shutdown_signal(), SIGTERM);
  EXPECT_EQ(recovery::note_shutdown_signal(SIGTERM), 128 + SIGTERM);
}

TEST_F(ShutdownTest, DrainStillFlushesJournal) {
  // A shutdown arrives mid-batch: the executor drains in-flight trials and
  // the journal must still land every completed record on disk — that is
  // the whole point of exiting 75 instead of dying.
  const TempPath tmp{"xres_shutdown_drain.jsonl"};
  recovery::clear_shutdown_for_tests();
  {
    TrialJournal journal{tmp.path, test_meta(), /*flush_every=*/1000};
    const TrialExecutor executor{2};
    std::atomic<std::uint64_t> next{0};
    recovery::BatchReport report;
    executor.for_each_controlled(
        64,
        [&](std::size_t) {
          const std::uint64_t index = next.fetch_add(1);
          if (index == 4) recovery::request_shutdown_for_tests();
          journal.append(make_record(index));
        },
        TrialLoopControl{}, &report);
    EXPECT_TRUE(report.interrupted);
    EXPECT_LT(report.executed, 64U);
    EXPECT_EQ(journal.appended(), report.executed);
    // The driver's drain path: flush before exiting kExitInterrupted.
    journal.flush();
  }
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_TRUE(index.stats().found);
  EXPECT_GE(index.stats().valid_records, 5U);  // at least up to the signal
  EXPECT_EQ(index.stats().corrupt_records, 0U);
  EXPECT_FALSE(index.stats().torn_tail);
}

/// The 1-based op index of the flush() fsync for a journal that appended
/// \p records records (measured, not hardcoded, so layout changes in the
/// write path cannot silently invalidate the fault aim).
std::uint64_t journal_flush_op(std::size_t records) {
  const TempPath tmp{"xres_shutdown_probe.jsonl"};
  io::install_faults(io::FaultConfig{});
  std::uint64_t ops = 0;
  {
    TrialJournal journal{tmp.path, test_meta(), 1000};
    for (std::size_t i = 0; i < records; ++i) {
      journal.append(make_record(i));
    }
    journal.flush();
    ops = io::ops_performed();  // last op so far IS the flush fsync
  }
  io::clear_faults();
  return ops;
}

TEST_F(ShutdownTest, InjectedFsyncFaultAtFlushIsRetriedAndJournalSurvives) {
  constexpr std::size_t kRecords = 3;
  const std::uint64_t flush_op = journal_flush_op(kRecords);
  ASSERT_GE(flush_op, kRecords + 2);  // open + meta writes precede appends

  const TempPath tmp{"xres_shutdown_fsync_fault.jsonl"};
  io::FaultConfig config;
  config.one_shots.push_back({flush_op, io::kFaultFsync});
  io::install_faults(config);
  {
    TrialJournal journal{tmp.path, test_meta(), 1000};
    for (std::size_t i = 0; i < kRecords; ++i) {
      journal.append(make_record(i));
    }
    EXPECT_NO_THROW(journal.flush());  // first fsync fails, retry lands it
  }
  io::clear_faults();
  EXPECT_GE(io::faults_injected(), 1U);

  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.stats().valid_records, kRecords);
  EXPECT_EQ(index.stats().corrupt_records, 0U);
}

TEST_F(ShutdownTest, ShortWriteMidAppendIsIsolatedByRetry) {
  constexpr std::size_t kRecords = 3;
  // Aim a short write at the second data record's fwrite: one op after the
  // state reached by (open, meta, append #1) with nothing injected.
  const std::uint64_t ops_before = journal_flush_op(1) - 1;  // minus flush fsync
  const std::uint64_t target = ops_before + 1;

  const TempPath tmp{"xres_shutdown_short.jsonl"};
  io::FaultConfig config;
  config.one_shots.push_back({target, io::kFaultShort});
  io::install_faults(config);
  {
    TrialJournal journal{tmp.path, test_meta(), 1000};
    for (std::size_t i = 0; i < kRecords; ++i) {
      journal.append(make_record(i));
    }
    journal.flush();
  }
  io::clear_faults();
  EXPECT_GE(io::faults_injected(), 1U);

  // The torn half-line was isolated behind a '\n' by the retry, so the
  // tolerant loader drops exactly one corrupt line and keeps every record.
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.stats().valid_records, kRecords);
  EXPECT_EQ(index.stats().corrupt_records, 1U);
  for (std::size_t i = 0; i < kRecords; ++i) {
    EXPECT_NE(index.find("b", i), nullptr) << "record " << i;
  }
}

TEST_F(ShutdownTest, SigtermDuringFsyncBatchStillFlushes) {
  // The race satellite 3 pins: SIGTERM arrives while the journal is inside
  // its fsync batch AND the fsync itself fails transiently. The drain must
  // neither drop the batch nor clear the shutdown request.
  constexpr std::size_t kRecords = 4;
  const std::uint64_t flush_op = journal_flush_op(kRecords);

  const TempPath tmp{"xres_shutdown_term_fsync.jsonl"};
  io::FaultConfig config;
  config.one_shots.push_back({flush_op, io::kFaultFsync});
  io::install_faults(config);
  recovery::clear_shutdown_for_tests();
  {
    TrialJournal journal{tmp.path, test_meta(), 1000};
    for (std::size_t i = 0; i < kRecords; ++i) {
      journal.append(make_record(i));
    }
    EXPECT_EQ(recovery::note_shutdown_signal(SIGTERM), 0);  // SIGTERM lands
    EXPECT_NO_THROW(journal.flush());
  }
  io::clear_faults();
  EXPECT_TRUE(recovery::shutdown_requested());
  EXPECT_EQ(recovery::shutdown_signal(), SIGTERM);

  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.stats().valid_records, kRecords);
  EXPECT_EQ(index.stats().corrupt_records, 0U);
  recovery::clear_shutdown_for_tests();
}

}  // namespace
}  // namespace xres
