#include "core/trial_engine.hpp"

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>

#include "failure/replay.hpp"
#include "failure/trace.hpp"
#include "obs/perf.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"
#include "util/log.hpp"

namespace xres {

namespace {

/// -1: no override (use the environment); otherwise a TrialEngine value.
std::atomic<int> g_engine_override{-1};

TrialEngine engine_from_env() {
  const char* value = std::getenv("XRES_TRIAL_ENGINE");
  if (value == nullptr) return TrialEngine::kDirect;  // auto
  const std::string_view v{value};
  if (v == "event") return TrialEngine::kEvent;
  if (v == "direct" || v == "auto" || v.empty()) return TrialEngine::kDirect;
  XRES_LOG_WARN("unknown XRES_TRIAL_ENGINE '" + std::string{v} +
                "' (expected event|direct|auto); using auto");
  return TrialEngine::kDirect;
}

/// The three direct event sources, in the tag order used for tie-breaking
/// bookkeeping only (ordering is always by (time, seq)).
enum class DirectEvent { kNone, kFailure, kTimeout, kPhase };

}  // namespace

TrialEngine trial_engine() {
  const int override = g_engine_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<TrialEngine>(override);
  static const TrialEngine from_env = engine_from_env();
  return from_env;
}

ScopedTrialEngine::ScopedTrialEngine(TrialEngine engine)
    : previous_{g_engine_override.exchange(static_cast<int>(engine),
                                           std::memory_order_relaxed)} {}

ScopedTrialEngine::~ScopedTrialEngine() {
  g_engine_override.store(previous_, std::memory_order_relaxed);
}

void record_trial_metrics(obs::TrialObs* obs, const ExecutionResult& r,
                          std::uint64_t sim_events) {
  if (obs == nullptr || obs->metrics() == nullptr) return;
  record_result_metrics(obs, r);
  const obs::BuiltinMetrics& m = obs::builtin_metrics();
  obs->count(m.trials_run);
  obs->count(m.sim_events, sim_events);
  obs->observe(m.trial_events, static_cast<double>(sim_events));
  obs->observe(m.trial_wall_hours, r.wall_time.to_seconds() / 3600.0);
}

const SeverityModel& cached_severity_model(const std::vector<double>& weights) {
  struct Cache {
    std::vector<double> weights;
    std::optional<SeverityModel> model;
  };
  thread_local Cache cache;
  if (!cache.model.has_value() || cache.weights != weights) {
    cache.model.emplace(weights);
    cache.weights = weights;
  }
  return *cache.model;
}

namespace {

bool same_config(const SingleAppTrialConfig& a, const SingleAppTrialConfig& b) {
  // The plan-relevant fields only: failure_distribution is not a make_plan
  // input, so it deliberately does not participate in the cache key.
  const AppType& at = a.app.type;
  const AppType& bt = b.app.type;
  return a.technique == b.technique && at.name == bt.name &&
         at.comm_fraction == bt.comm_fraction &&
         at.memory_per_node == bt.memory_per_node && a.app.nodes == b.app.nodes &&
         a.app.time_steps == b.app.time_steps &&
         a.machine.node.tflops == b.machine.node.tflops &&
         a.machine.node.cores == b.machine.node.cores &&
         a.machine.node.memory == b.machine.node.memory &&
         a.machine.node.memory_bandwidth == b.machine.node.memory_bandwidth &&
         a.machine.network.latency == b.machine.network.latency &&
         a.machine.network.bandwidth == b.machine.network.bandwidth &&
         a.machine.network.switch_connections == b.machine.network.switch_connections &&
         a.machine.node_count == b.machine.node_count &&
         a.resilience.node_mtbf == b.resilience.node_mtbf &&
         a.resilience.severity_weights == b.resilience.severity_weights &&
         a.resilience.comm_slowdown_per_tc == b.resilience.comm_slowdown_per_tc &&
         a.resilience.recovery_parallelism == b.resilience.recovery_parallelism &&
         a.resilience.partial_redundancy == b.resilience.partial_redundancy &&
         a.resilience.full_redundancy == b.resilience.full_redundancy &&
         a.resilience.max_slowdown == b.resilience.max_slowdown &&
         a.resilience.max_nesting == b.resilience.max_nesting &&
         a.resilience.adaptive_interval == b.resilience.adaptive_interval &&
         a.resilience.semi_blocking_work_rate == b.resilience.semi_blocking_work_rate &&
         a.resilience.checkpoint_compression == b.resilience.checkpoint_compression;
}

}  // namespace

const ExecutionPlan& cached_plan(const SingleAppTrialConfig& config) {
  struct Cache {
    bool valid{false};
    SingleAppTrialConfig key;
    ExecutionPlan plan;
  };
  thread_local Cache cache;
  if (!cache.valid || !same_config(cache.key, config)) {
    cache.plan =
        make_plan(config.technique, config.app, config.machine, config.resilience);
    cache.key = config;
    cache.valid = true;
  }
  return cache.plan;
}

namespace {

/// The shared virtual pop + dispatch loop. \p next_failure_time/seq/pending
/// describe the driver's failure stream slot; \p fire_failure dispatches it
/// (and re-arms it for the lazy generated stream). Mirrors Simulation::run:
/// watchdog poll every 4096 events *before* the pop, clock advanced to the
/// popped event's time, loop exit on request_stop or a drained "queue".
template <typename FailureSlot, typename FireFailure>
void run_direct_loop(Simulation& sim, ResilientAppRuntime& runtime, DirectHost& host,
                     FailureSlot&& failure_slot, FireFailure&& fire_failure) {
  std::uint64_t executed = 0;
  while (!sim.stop_requested()) {
    // Merge the failure and timeout slots into the earliest "interrupt".
    // Neither changes while phase events dispatch (a failure slot is only
    // re-armed by fire_failure; the timeout is cancelled only on paths that
    // also request_stop), so the steady-state work/checkpoint alternation
    // below re-checks just one (time, seq) bound per event.
    DirectEvent interrupt = DirectEvent::kNone;
    // +inf sentinel: phase events (always finite) sort before an absent
    // interrupt without a separate emptiness test in the drain condition.
    TimePoint int_time = TimePoint::origin() + Duration::infinity();
    std::uint64_t int_seq = 0;
    TimePoint fail_time{};
    std::uint64_t fail_seq = 0;
    if (failure_slot(fail_time, fail_seq)) {
      interrupt = DirectEvent::kFailure;
      int_time = fail_time;
      int_seq = fail_seq;
    }
    if (host.timeout_pending &&
        (interrupt == DirectEvent::kNone || host.timeout_time < int_time ||
         (host.timeout_time == int_time && host.timeout_seq < int_seq))) {
      interrupt = DirectEvent::kTimeout;
      int_time = host.timeout_time;
      int_seq = host.timeout_seq;
    }

    while (host.phase_pending &&
           (host.phase_time < int_time ||
            (host.phase_time == int_time && host.phase_seq < int_seq))) {
      if ((executed & 0xFFFU) == 0) {
        sim.count_watchdog_poll();
        deadline_poll();
      }
      sim.advance_direct(host.phase_time);
      runtime.dispatch_phase_direct();
      ++executed;
      if (sim.stop_requested()) return;
    }

    if (interrupt == DirectEvent::kNone) break;
    if ((executed & 0xFFFU) == 0) {
      sim.count_watchdog_poll();
      deadline_poll();
    }
    sim.advance_direct(int_time);
    if (interrupt == DirectEvent::kFailure) {
      fire_failure();
    } else {
      runtime.dispatch_timeout_direct();
    }
    ++executed;
  }
}

}  // namespace

ExecutionResult run_plan_trial_direct(const ExecutionPlan& plan,
                                      const SeverityModel& severity,
                                      const FailureDistribution& dist,
                                      std::uint64_t seed, obs::TrialObs* obs) {
  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;
  DirectHost host;

  ResilientAppRuntime runtime{
      sim, plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);
  runtime.attach_direct_host(&host);

  // The failure stream, drawn lazily in AppFailureProcess's exact RNG
  // order: the first gap before the runtime starts, then per delivery a
  // severity sample followed by the next gap.
  Pcg32 rng{derive_seed(seed, 0x6661696c7321ULL)};
  bool fail_pending = false;
  TimePoint fail_time{};
  std::uint64_t fail_seq = 0;
  const auto schedule_next_failure = [&] {
    const Duration gap = dist.draw(rng, plan.failure_rate);
    if (!gap.is_finite()) return;  // zero rate: no failures ever
    fail_time = sim.now() + gap;
    fail_seq = host.next_seq++;
    fail_pending = true;
  };

  schedule_next_failure();  // AppFailureProcess::start()
  runtime.start();

  run_direct_loop(
      sim, runtime, host,
      [&](TimePoint& when, std::uint64_t& seq) {
        if (!fail_pending) return false;
        when = fail_time;
        seq = fail_seq;
        return true;
      },
      [&] {
        fail_pending = false;
        const Failure failure{sim.now(), severity.sample(rng)};
        schedule_next_failure();
        runtime.on_failure(failure);
      });

  XRES_CHECK(finished, "plan trial ended without a completion callback");
  obs::perf_add_batched_trials(1);
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

ExecutionResult run_trace_trial_direct(const ExecutionPlan& plan,
                                       const FailureTrace& trace, std::uint64_t seed,
                                       obs::TrialObs* obs) {
  Simulation sim;
  ExecutionResult final_result;
  bool finished = false;
  DirectHost host;

  ResilientAppRuntime runtime{
      sim, plan, derive_seed(seed, 0x72756e74696dULL), [&](const ExecutionResult& r) {
        final_result = r;
        finished = true;
        sim.request_stop();
      }};
  runtime.set_observer(obs);
  runtime.attach_direct_host(&host);

  // TraceFailureProcess::start() schedules every replayed failure up front
  // in trace order, consuming insertion seqs 0..n-1 before the runtime's
  // timeout/phase events; past-time failures are skipped and consume none.
  const std::vector<Failure>& failures = trace.failures();
  std::size_t next = 0;
  while (next < failures.size() && failures[next].time < sim.now()) ++next;
  const std::size_t skipped = next;
  if (skipped > 0) {
    XRES_LOG_WARN("trace replay skipped " + std::to_string(skipped) +
                  " failures that predate the current simulation time");
  }
  host.next_seq = failures.size() - skipped;

  runtime.start();

  run_direct_loop(
      sim, runtime, host,
      [&](TimePoint& when, std::uint64_t& seq) {
        if (next >= failures.size()) return false;
        when = failures[next].time;
        seq = next - skipped;
        return true;
      },
      [&] {
        const Failure& failure = failures[next];
        ++next;
        runtime.on_failure(failure);
      });

  XRES_CHECK(finished, "trace trial ended without a completion callback");
  obs::perf_add_batched_trials(1);
  record_trial_metrics(obs, final_result, sim.events_processed());
  return final_result;
}

}  // namespace xres
