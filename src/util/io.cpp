#include "util/io.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_set>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.hpp"
#include "util/log.hpp"

namespace xres::io {

namespace {

// The installed plan. `g_active` is the only thing the disabled fast path
// touches (one relaxed load per wrapped op); the config itself is written
// before the flag flips and never mutated while active.
std::atomic<bool> g_active{false};
FaultConfig g_config;
std::atomic<std::uint64_t> g_ops{0};
std::atomic<std::uint64_t> g_injected{0};
std::atomic<bool> g_atexit_registered{false};

std::mutex g_degraded_mutex;
std::unordered_set<std::string> g_degraded_warned;

/// SplitMix64 — the per-op decision hash. Pure in (seed, op index) so every
/// injection is replayable from the trace line alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* kind_name(unsigned kind) {
  switch (kind) {
    case kFaultEio: return "eio";
    case kFaultEnospc: return "enospc";
    case kFaultShort: return "short";
    case kFaultFsync: return "fsync";
  }
  return "?";
}

void print_stats_at_exit() {
  if (!g_active.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "io-faults: ops=%llu injected=%llu seed=%llu\n",
               static_cast<unsigned long long>(g_ops.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   g_injected.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(g_config.seed));
}

/// The per-op gate every wrapper calls: claims the next op index, handles
/// the crash-point, and returns the FaultKind to inject (0 = none).
/// \p op_name / \p path feed the trace.
unsigned next_op(const char* op_name, const char* path) {
  if (!g_active.load(std::memory_order_relaxed)) return 0;
  const std::uint64_t idx = g_ops.fetch_add(1, std::memory_order_relaxed) + 1;
  if (g_config.crash_at != 0 && idx == g_config.crash_at) {
    // Simulate sudden process death (power loss, OOM-kill): no flushes, no
    // destructors, no atexit. Buffered stdio bytes die with the process —
    // exactly what the journal's CRC framing must tolerate.
    std::fprintf(stderr, "io-fault: op #%llu crash on %s %s (seed %llu)\n",
                 static_cast<unsigned long long>(idx), op_name, path,
                 static_cast<unsigned long long>(g_config.seed));
    ::_exit(kCrashExitCode);
  }
  const unsigned kind = planned_fault(g_config, idx);
  if (kind != 0) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "io-fault: op #%llu inject %s on %s %s (seed %llu)\n",
                 static_cast<unsigned long long>(idx), kind_name(kind), op_name,
                 path, static_cast<unsigned long long>(g_config.seed));
  } else if (g_config.trace) {
    std::fprintf(stderr, "io-trace: op #%llu %s %s\n",
                 static_cast<unsigned long long>(idx), op_name, path);
  }
  return kind;
}

/// Map an injected kind to the errno a non-write op reports (kShort and
/// kFsync degrade to plain EIO where "short" has no meaning).
int kind_errno(unsigned kind) { return kind == kFaultEnospc ? ENOSPC : EIO; }

bool is_transient(int err) { return err == EIO || err == EINTR || err == EAGAIN; }

std::uint64_t parse_u64_or_throw(const std::string& text, const char* what) {
  XRES_CHECK(!text.empty(), std::string{"io-faults: empty "} + what);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  XRES_CHECK(errno == 0 && end != nullptr && *end == '\0',
             "io-faults: bad " + std::string{what} + " '" + text + "'");
  return v;
}

}  // namespace

bool IoError::disk_full() const {
#ifdef EDQUOT
  if (error_code_ == EDQUOT) return true;
#endif
  return error_code_ == ENOSPC;
}

unsigned planned_fault(const FaultConfig& config, std::uint64_t op_index) {
  for (const FaultPoint& shot : config.one_shots) {
    if (shot.op == op_index) return shot.kind;
  }
  if (config.rate <= 0.0 || config.kinds == 0) return 0;
  const std::uint64_t h = mix64(config.seed ^ mix64(op_index));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= config.rate) return 0;
  // Pick uniformly among the enabled kinds with an independent hash.
  unsigned enabled[4];
  unsigned count = 0;
  for (const unsigned kind : {kFaultEio, kFaultEnospc, kFaultShort, kFaultFsync}) {
    if ((config.kinds & kind) != 0) enabled[count++] = kind;
  }
  const std::uint64_t pick = mix64(config.seed ^ mix64(op_index ^ 0x5bd1e995ULL));
  return enabled[pick % count];
}

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  // seed : rate [: kinds]
  const std::size_t colon1 = spec.find(':');
  XRES_CHECK(colon1 != std::string::npos,
             "io-faults: expected seed:rate[:kinds], got '" + spec + "'");
  const std::size_t colon2 = spec.find(':', colon1 + 1);
  config.seed = parse_u64_or_throw(spec.substr(0, colon1), "seed");
  const std::string rate_text =
      spec.substr(colon1 + 1, colon2 == std::string::npos ? std::string::npos
                                                          : colon2 - colon1 - 1);
  XRES_CHECK(!rate_text.empty(), "io-faults: empty rate in '" + spec + "'");
  char* end = nullptr;
  errno = 0;
  config.rate = std::strtod(rate_text.c_str(), &end);
  XRES_CHECK(errno == 0 && end != nullptr && *end == '\0' && config.rate >= 0.0 &&
                 config.rate <= 1.0,
             "io-faults: rate must be in [0, 1], got '" + rate_text + "'");

  if (colon2 == std::string::npos) return config;  // kinds default to all
  config.kinds = 0;
  std::string kinds_text = spec.substr(colon2 + 1);
  XRES_CHECK(!kinds_text.empty(), "io-faults: empty kinds list in '" + spec + "'");
  std::size_t start = 0;
  while (start <= kinds_text.size()) {
    std::size_t comma = kinds_text.find(',', start);
    if (comma == std::string::npos) comma = kinds_text.size();
    const std::string token = kinds_text.substr(start, comma - start);
    start = comma + 1;
    XRES_CHECK(!token.empty(), "io-faults: empty kind token in '" + spec + "'");
    const std::size_t at = token.find('@');
    if (at != std::string::npos) {
      const std::string name = token.substr(0, at);
      const std::uint64_t op = parse_u64_or_throw(token.substr(at + 1), "op index");
      XRES_CHECK(op >= 1, "io-faults: op indices are 1-based, got '" + token + "'");
      if (name == "crash") {
        config.crash_at = op;
      } else if (name == "eio") {
        config.one_shots.push_back({op, kFaultEio});
      } else if (name == "enospc") {
        config.one_shots.push_back({op, kFaultEnospc});
      } else if (name == "short") {
        config.one_shots.push_back({op, kFaultShort});
      } else if (name == "fsync") {
        config.one_shots.push_back({op, kFaultFsync});
      } else {
        XRES_CHECK(false, "io-faults: unknown one-shot kind '" + name + "'");
      }
    } else if (token == "eio") {
      config.kinds |= kFaultEio;
    } else if (token == "enospc") {
      config.kinds |= kFaultEnospc;
    } else if (token == "short") {
      config.kinds |= kFaultShort;
    } else if (token == "fsync") {
      config.kinds |= kFaultFsync;
    } else if (token == "all") {
      config.kinds |= kFaultAll;
    } else if (token == "trace") {
      config.trace = true;
    } else {
      XRES_CHECK(false, "io-faults: unknown kind '" + token +
                            "' (want eio, enospc, short, fsync, all, trace, "
                            "kind@N, crash@N)");
    }
  }
  XRES_CHECK(config.rate == 0.0 || config.kinds != 0,
             "io-faults: a nonzero rate needs at least one rate-based kind");
  return config;
}

void install_faults(const FaultConfig& config) {
  g_config = config;
  g_ops.store(0, std::memory_order_relaxed);
  g_injected.store(0, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
  if (!g_atexit_registered.exchange(true, std::memory_order_relaxed)) {
    std::atexit(print_stats_at_exit);
  }
}

void clear_faults() { g_active.store(false, std::memory_order_release); }

bool faults_active() { return g_active.load(std::memory_order_relaxed); }

std::uint64_t ops_performed() { return g_ops.load(std::memory_order_relaxed); }

std::uint64_t faults_injected() {
  return g_injected.load(std::memory_order_relaxed);
}

std::FILE* fopen(const char* path, const char* mode) {
  if (const unsigned kind = next_op("fopen", path); kind != 0) {
    errno = kind_errno(kind);
    return nullptr;
  }
  return std::fopen(path, mode);
}

std::size_t fwrite(const void* data, std::size_t size, std::FILE* stream,
                   const char* path) {
  if (const unsigned kind = next_op("fwrite", path); kind != 0) {
    if (kind == kFaultShort && size > 1) {
      // Write the first half for real: the on-disk state is the torn
      // artifact a crashed writer leaves, not a clean no-op.
      const std::size_t half = size / 2;
      const std::size_t wrote = std::fwrite(data, 1, half, stream);
      errno = EIO;
      return wrote;
    }
    errno = kind_errno(kind);
    return 0;
  }
  return std::fwrite(data, 1, size, stream);
}

bool fsync_stream(std::FILE* stream, const char* path) {
  if (stream == nullptr) return false;
  if (const unsigned kind = next_op("fsync", path); kind != 0) {
    errno = kind_errno(kind);
    return false;
  }
  if (std::fflush(stream) != 0) return false;
#if defined(_WIN32)
  return _commit(_fileno(stream)) == 0;
#else
  return ::fsync(fileno(stream)) == 0;
#endif
}

int fclose(std::FILE* stream, const char* path) {
  if (const unsigned kind = next_op("fclose", path); kind != 0) {
    std::fclose(stream);  // the fd is gone either way, as POSIX allows
    errno = kind_errno(kind);
    return EOF;
  }
  return std::fclose(stream);
}

int rename(const char* from, const char* to) {
  if (const unsigned kind = next_op("rename", to); kind != 0) {
    errno = kind_errno(kind);
    return -1;
  }
  return std::rename(from, to);
}

int remove(const char* path) {
  if (const unsigned kind = next_op("unlink", path); kind != 0) {
    errno = kind_errno(kind);
    return -1;
  }
  return std::remove(path);
}

int open_fd(const char* path, int flags, ::mode_t mode) {
  if (const unsigned kind = next_op("open", path); kind != 0) {
    errno = kind_errno(kind);
    return -1;
  }
  return ::open(path, flags, mode);
}

::ssize_t write_fd(int fd, const void* data, std::size_t size, const char* path) {
  if (const unsigned kind = next_op("write", path); kind != 0) {
    if (kind == kFaultShort && size > 1) {
      const ::ssize_t wrote = ::write(fd, data, size / 2);
      errno = EIO;
      return wrote;
    }
    errno = kind_errno(kind);
    return -1;
  }
  return ::write(fd, data, size);
}

int close_fd(int fd, const char* path) {
  if (const unsigned kind = next_op("close", path); kind != 0) {
    ::close(fd);
    errno = kind_errno(kind);
    return -1;
  }
  return ::close(fd);
}

bool retry_io(const char* what, const std::function<bool()>& op,
              const RetryPolicy& policy) {
  int backoff_ms = policy.base_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    errno = 0;
    if (op()) return true;
    const int err = errno;
    if (attempt >= policy.attempts || !is_transient(err)) {
      errno = err;
      return false;
    }
    XRES_LOG_WARN(std::string{"transient I/O error on "} + what + " (" +
                  std::strerror(err) + ") — retry " + std::to_string(attempt) +
                  "/" + std::to_string(policy.attempts - 1));
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 4;
    }
    errno = 0;
  }
}

void warn_once_degraded(const std::string& artifact, const std::string& detail) {
  {
    const std::lock_guard<std::mutex> lock{g_degraded_mutex};
    if (!g_degraded_warned.insert(artifact).second) return;
  }
  XRES_LOG_WARN(artifact + " degraded: " + detail +
                " — continuing without it (best-effort artifact; run result "
                "and exit code are unaffected)");
}

void reset_degraded_warnings_for_tests() {
  const std::lock_guard<std::mutex> lock{g_degraded_mutex};
  g_degraded_warned.clear();
}

}  // namespace xres::io
