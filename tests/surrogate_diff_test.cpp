// Differential harness for the batched trial engine and the analytic
// surrogate (core/surrogate.hpp). Sweeps (study, params, seed) cells
// through:
//
//  * batched (direct-execution) vs. unbatched (event-queue) trial engines,
//    at 1 and 4 worker threads — every ExecutionResult field and the merged
//    metrics must match exactly (byte drift fails);
//  * surrogate-answered vs. fully-simulated efficiency studies — anchor and
//    fallback cells must be bit-identical to the simulated study, and every
//    surrogate-answered cell must sit within its reported error bound.
//
// A fast subset runs in tier-1 (and under TSAN via the Surrogate filter);
// the full matrix is guarded by XRES_SMOKE_ALL=1.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "core/surrogate.hpp"
#include "core/trial_engine.hpp"
#include "obs/trial_obs.hpp"
#include "resilience/technique.hpp"
#include "util/rng.hpp"

namespace xres {
namespace {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XRES_TEST_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define XRES_TEST_TSAN 1
#endif

constexpr bool tsan_build() {
#ifdef XRES_TEST_TSAN
  return true;
#else
  return false;
#endif
}

bool full_matrix() { return std::getenv("XRES_SMOKE_ALL") != nullptr; }

/// Field-exact ExecutionResult comparison: the engines promise identical
/// arithmetic, so even the accumulated doubles must match bit for bit.
void expect_identical(const ExecutionResult& a, const ExecutionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.wall_time, b.wall_time) << label;
  EXPECT_EQ(a.baseline, b.baseline) << label;
  EXPECT_EQ(a.efficiency, b.efficiency) << label;
  EXPECT_EQ(a.failures_seen, b.failures_seen) << label;
  EXPECT_EQ(a.failures_masked, b.failures_masked) << label;
  EXPECT_EQ(a.rollbacks, b.rollbacks) << label;
  EXPECT_EQ(a.checkpoints_completed, b.checkpoints_completed) << label;
  EXPECT_EQ(a.time_working, b.time_working) << label;
  EXPECT_EQ(a.time_checkpointing, b.time_checkpointing) << label;
  EXPECT_EQ(a.time_restarting, b.time_restarting) << label;
  EXPECT_EQ(a.time_recovering, b.time_recovering) << label;
  EXPECT_EQ(a.rework, b.rework) << label;
  EXPECT_EQ(a.node_seconds, b.node_seconds) << label;
}

struct BatchRun {
  std::vector<ExecutionResult> results;
  std::string metrics_text;
};

/// Run one batch under \p engine at \p threads, with per-trial metrics
/// merged in spec order (the study reduction).
BatchRun run_engine_batch(TrialEngine engine, unsigned threads,
                          const SingleAppTrialConfig& config, std::uint64_t seed,
                          std::uint32_t trials) {
  const ScopedTrialEngine scoped{engine};
  std::vector<TrialSpec> specs;
  specs.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t) {
    specs.push_back(TrialSpec{config, {t}});
  }
  std::vector<obs::TrialObs> observers(specs.size());
  for (obs::TrialObs& o : observers) o.enable_metrics();

  const TrialExecutor executor{threads};
  BatchRun run;
  run.results = executor.run_batch(seed, specs, observers);
  obs::MetricSet merged;
  for (const obs::TrialObs& o : observers) merged.merge(*o.metrics());
  run.metrics_text = merged.to_table().to_text();
  return run;
}

SingleAppTrialConfig diff_cell(const std::string& app, TechniqueKind technique,
                               double mtbf_years, std::uint32_t nodes) {
  SingleAppTrialConfig config;
  config.app = AppSpec::from_baseline(app_type_by_name(app), nodes,
                                      Duration::hours(2.0));
  config.technique = technique;
  config.machine = MachineSpec::exascale();
  config.resilience.node_mtbf = Duration::years(mtbf_years);
  return config;
}

/// Batched (direct) vs unbatched (event) engines across worker counts:
/// the differential core of the harness. The event engine at 1 thread is
/// the reference; every other (engine × threads) combination must
/// reproduce it exactly, metrics included.
void expect_engine_invariant(const SingleAppTrialConfig& config,
                             const std::string& label, std::uint64_t seed,
                             std::uint32_t trials) {
  const BatchRun reference = run_engine_batch(TrialEngine::kEvent, 1, config, seed, trials);
  ASSERT_EQ(reference.results.size(), trials) << label;
  for (const TrialEngine engine : {TrialEngine::kEvent, TrialEngine::kDirect}) {
    for (const unsigned threads : {1U, 4U}) {
      if (engine == TrialEngine::kEvent && threads == 1) continue;
      const BatchRun run = run_engine_batch(engine, threads, config, seed, trials);
      const std::string tag = label + "/" + (engine == TrialEngine::kEvent ? "event" : "direct") +
                              "/t" + std::to_string(threads);
      ASSERT_EQ(run.results.size(), reference.results.size()) << tag;
      for (std::size_t i = 0; i < run.results.size(); ++i) {
        expect_identical(reference.results[i], run.results[i],
                         tag + "/trial" + std::to_string(i));
      }
      // Queue-shape counters legitimately differ between engines; the
      // study-facing metrics (sim_events, outcome counters, phase gauges)
      // must not. MetricSet::to_table covers exactly those.
      EXPECT_EQ(reference.metrics_text, run.metrics_text) << tag;
    }
  }
}

TEST(SurrogateDiff, EnginesAgreeFast) {
  expect_engine_invariant(diff_cell("C64", TechniqueKind::kMultilevel, 1.0, 4000),
                          "C64/ml/failure-heavy", 20260808, tsan_build() ? 4 : 12);
  expect_engine_invariant(
      diff_cell("A32", TechniqueKind::kParallelRecovery, 10.0, 1200),
      "A32/pr", 7, tsan_build() ? 4 : 12);
}

TEST(SurrogateDiff, EnginesAgreeFullMatrix) {
  if (!full_matrix()) GTEST_SKIP() << "set XRES_SMOKE_ALL=1 for the full matrix";
  std::uint64_t seed = 1;
  for (const char* app : {"A32", "C64", "D64"}) {
    for (const TechniqueKind technique : evaluated_techniques()) {
      for (const double mtbf : {0.5, 10.0}) {
        expect_engine_invariant(
            diff_cell(app, technique, mtbf, 3000),
            std::string{app} + "/" + to_string(technique) + "/" + std::to_string(mtbf),
            ++seed, 8);
      }
    }
  }
}

EfficiencyStudyConfig small_study(std::uint64_t seed) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("C64");
  config.baseline = Duration::hours(3.0);
  config.size_fractions = {0.02, 0.05, 0.10, 0.25, 0.50};
  config.trials = tsan_build() ? 3 : 6;
  config.seed = seed;
  config.threads = 2;
  return config;
}

/// Surrogate-vs-simulated differential: anchors bit-identical, surrogate
/// cells within their reported bound.
TEST(SurrogateDiff, AnalyticWithinBoundOfSimulation) {
  const EfficiencyStudyConfig config = small_study(20260808);

  EfficiencyStudyConfig sim = config;
  sim.surrogate = SurrogateMode::kSim;
  const EfficiencyStudyResult simulated = run_efficiency_study(sim);

  EfficiencyStudyConfig sur = config;
  sur.surrogate = SurrogateMode::kAnalytic;
  const EfficiencyStudyResult answered = run_efficiency_study(sur);

  ASSERT_EQ(answered.surrogate_cells.size(), config.size_fractions.size());
  EXPECT_TRUE(simulated.surrogate_cells.empty());
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const std::string label = "cell s" + std::to_string(si) + ".t" + std::to_string(ti);
      const SurrogateCell& cell = answered.surrogate_cells[si][ti];
      const Summary& sim_cell = simulated.efficiency[si][ti];
      const Summary& sur_cell = answered.efficiency[si][ti];
      if (cell.anchor) {
        // Anchors re-use the simulated path's exact seeds: bit-identical.
        EXPECT_EQ(sim_cell.mean, sur_cell.mean) << label;
        EXPECT_EQ(sim_cell.stddev, sur_cell.stddev) << label;
        EXPECT_EQ(sim_cell.count, sur_cell.count) << label;
        EXPECT_EQ(simulated.mean_failures[si][ti], answered.mean_failures[si][ti])
            << label;
      } else {
        EXPECT_FALSE(cell.simulated) << label;
        EXPECT_EQ(sur_cell.count, 0U) << label;
        EXPECT_LE(std::abs(cell.predicted - sim_cell.mean), cell.bound) << label
            << " predicted=" << cell.predicted << " sim=" << sim_cell.mean
            << " bound=" << cell.bound;
      }
    }
  }
}

/// Auto mode: every cell is either simulated (anchor or bound-exceeded
/// fallback, bit-identical to the simulated study) or within bound.
TEST(SurrogateDiff, AutoFallsBackToSimulationWhenBoundExceeded) {
  // A fresh seed so the in-process anchor memo from other tests cannot
  // serve these cells.
  const EfficiencyStudyConfig config = small_study(977);

  EfficiencyStudyConfig sim = config;
  sim.surrogate = SurrogateMode::kSim;
  const EfficiencyStudyResult simulated = run_efficiency_study(sim);

  EfficiencyStudyConfig automatic = config;
  automatic.surrogate = SurrogateMode::kAuto;
  const EfficiencyStudyResult answered = run_efficiency_study(automatic);

  ASSERT_EQ(answered.surrogate_cells.size(), config.size_fractions.size());
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const std::string label = "cell s" + std::to_string(si) + ".t" + std::to_string(ti);
      const SurrogateCell& cell = answered.surrogate_cells[si][ti];
      const Summary& sim_cell = simulated.efficiency[si][ti];
      const Summary& ans_cell = answered.efficiency[si][ti];
      if (cell.simulated) {
        EXPECT_EQ(sim_cell.mean, ans_cell.mean) << label;
        EXPECT_EQ(sim_cell.stddev, ans_cell.stddev) << label;
      } else {
        EXPECT_LE(cell.bound, kAutoBoundThreshold) << label;
        EXPECT_LE(std::abs(cell.predicted - sim_cell.mean), cell.bound) << label;
      }
    }
  }
}

/// Anchor memoization: re-running the same surrogate study in-process
/// answers anchors from the memo (count 0 — not re-simulated) with the
/// identical means.
TEST(SurrogateDiff, AnchorsAreMemoized) {
  EfficiencyStudyConfig config = small_study(31337);
  config.surrogate = SurrogateMode::kAnalytic;
  const EfficiencyStudyResult first = run_efficiency_study(config);
  const EfficiencyStudyResult second = run_efficiency_study(config);
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      EXPECT_EQ(first.efficiency[si][ti].mean, second.efficiency[si][ti].mean);
      if (first.surrogate_cells[si][ti].anchor) {
        EXPECT_EQ(first.efficiency[si][ti].count, config.trials);
        EXPECT_EQ(second.efficiency[si][ti].count, 0U);  // memo hit
      }
    }
  }
}

/// Property test (paper Eqs. 1–8): across randomized configurations the
/// surrogate's prediction for the interior size must sit within its
/// reported bound of the simulated mean efficiency for the same seeds.
TEST(SurrogateProperty, PredictionWithinReportedBound) {
  const int configurations = tsan_build() ? 25 : (full_matrix() ? 200 : 60);
  Pcg32 rng{0x5052455354ULL};
  int surrogate_cells_checked = 0;
  for (int i = 0; i < configurations; ++i) {
    EfficiencyStudyConfig config;
    config.app_type = all_app_types()[rng.next_below(8)];
    config.resilience.node_mtbf = Duration::years(rng.uniform(2.0, 30.0));
    // Whole minutes: baselines must be an integral number of time steps.
    config.baseline = Duration::minutes(static_cast<double>(60 + rng.next_below(121)));
    config.trials = 6;
    config.seed = 1000 + static_cast<std::uint64_t>(i);
    config.threads = 2;
    config.techniques = {evaluated_techniques()[rng.next_below(5)]};
    const double lo = rng.uniform(0.01, 0.25);
    const double mid = rng.uniform(0.26, 0.55);
    const double hi = rng.uniform(0.56, 1.0);
    config.size_fractions = {lo, mid, hi};

    EfficiencyStudyConfig sim = config;
    sim.surrogate = SurrogateMode::kSim;
    const EfficiencyStudyResult simulated = run_efficiency_study(sim);

    EfficiencyStudyConfig sur = config;
    sur.surrogate = SurrogateMode::kAnalytic;
    const EfficiencyStudyResult answered = run_efficiency_study(sur);

    const std::string label = "config " + std::to_string(i) + " (" +
                              config.app_type.name + ", " +
                              to_string(config.techniques[0]) + ")";
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      const SurrogateCell& cell = answered.surrogate_cells[si][0];
      if (cell.simulated) {
        EXPECT_EQ(simulated.efficiency[si][0].mean, answered.efficiency[si][0].mean)
            << label;
        continue;
      }
      ++surrogate_cells_checked;
      EXPECT_LE(std::abs(cell.predicted - simulated.efficiency[si][0].mean), cell.bound)
          << label << " si=" << si << " predicted=" << cell.predicted
          << " sim=" << simulated.efficiency[si][0].mean << " bound=" << cell.bound;
    }
  }
  EXPECT_GT(surrogate_cells_checked, 0);
}

}  // namespace
}  // namespace xres
