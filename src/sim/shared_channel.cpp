#include "sim/shared_channel.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace xres {

namespace {
// Sub-byte residues from floating-point progress accounting count as done.
constexpr double kRemainingEpsilonBytes = 1e-6;
}  // namespace

SharedChannel::SharedChannel(Simulation& sim, Bandwidth capacity,
                             Bandwidth per_stream_cap)
    : sim_{sim},
      capacity_bps_{capacity.to_bytes_per_second()},
      per_stream_cap_bps_{per_stream_cap.to_bytes_per_second()},
      last_update_s_{sim.now().to_seconds()} {
  XRES_CHECK(capacity_bps_ > 0.0, "channel capacity must be positive");
  XRES_CHECK(per_stream_cap_bps_ > 0.0, "per-stream cap must be positive");
}

SharedChannel::~SharedChannel() {
  if (has_pending_) sim_.cancel(pending_);
}

Bandwidth SharedChannel::current_per_transfer_rate() const {
  if (transfers_.empty()) return Bandwidth::bytes_per_second(per_stream_cap_bps_);
  const double share = capacity_bps_ / static_cast<double>(transfers_.size());
  return Bandwidth::bytes_per_second(std::min(per_stream_cap_bps_, share));
}

DataSize SharedChannel::remaining(TransferId id) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return DataSize::zero();
  // Remaining is as of the last update; advance virtually for accuracy.
  const double rate = current_per_transfer_rate().to_bytes_per_second();
  const double elapsed = sim_.now().to_seconds() - last_update_s_;
  return DataSize::bytes(std::max(0.0, it->second.remaining_bytes - rate * elapsed));
}

void SharedChannel::advance_to_now() {
  const double now_s = sim_.now().to_seconds();
  const double elapsed = now_s - last_update_s_;
  last_update_s_ = now_s;
  if (elapsed <= 0.0 || transfers_.empty()) return;
  const double rate = current_per_transfer_rate().to_bytes_per_second();
  for (auto& [id, transfer] : transfers_) {
    transfer.remaining_bytes = std::max(0.0, transfer.remaining_bytes - rate * elapsed);
  }
}

void SharedChannel::reschedule() {
  if (has_pending_) {
    sim_.cancel(pending_);
    has_pending_ = false;
  }
  if (transfers_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, transfer] : transfers_) {
    min_remaining = std::min(min_remaining, transfer.remaining_bytes);
  }
  const double rate = current_per_transfer_rate().to_bytes_per_second();
  const double eta_s = std::max(0.0, min_remaining) / rate;
  pending_ = sim_.schedule_after(Duration::seconds(eta_s), [this] {
    has_pending_ = false;
    on_completion_event();
  });
  has_pending_ = true;
}

void SharedChannel::on_completion_event() {
  advance_to_now();
  // Complete exactly one finished transfer per event; if several finished
  // simultaneously, reschedule() fires again at a zero delay. "Finished"
  // must tolerate floating-point residue: when the simulation clock is
  // large, an ETA below its representable resolution can no longer advance
  // time, so any transfer within a nanosecond of completion at the current
  // rate counts as done (otherwise the event would re-fire at the same
  // timestamp forever).
  const double rate = current_per_transfer_rate().to_bytes_per_second();
  // The smallest time step the clock can represent grows with the absolute
  // time (double ulp); anything finishing within a few ulps is "now".
  const double clock_resolution =
      std::max(1e-9, sim_.now().to_seconds() * 8.0 * std::numeric_limits<double>::epsilon());
  const double done_threshold = std::max(kRemainingEpsilonBytes, rate * clock_resolution);
  auto best = transfers_.end();
  for (auto it = transfers_.begin(); it != transfers_.end(); ++it) {
    if (best == transfers_.end() ||
        it->second.remaining_bytes < best->second.remaining_bytes) {
      best = it;
    }
  }
  if (best != transfers_.end() && best->second.remaining_bytes <= done_threshold) {
    CompletionCallback callback = std::move(best->second.on_complete);
    transfers_.erase(best);
    ++completed_;
    reschedule();
    callback();
    return;
  }
  // Numeric corner: nothing quite finished; try again at the new ETA.
  reschedule();
}

SharedChannel::TransferId SharedChannel::begin_transfer(DataSize size,
                                                        CompletionCallback on_complete) {
  XRES_CHECK(static_cast<bool>(on_complete), "completion callback must be non-empty");
  XRES_CHECK(size >= DataSize::zero(), "transfer size must be non-negative");
  advance_to_now();
  const TransferId id = next_id_++;
  transfers_.emplace(id, Transfer{size.to_bytes(), std::move(on_complete)});
  reschedule();
  return id;
}

bool SharedChannel::cancel(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return false;
  advance_to_now();
  transfers_.erase(it);
  reschedule();
  return true;
}

}  // namespace xres
