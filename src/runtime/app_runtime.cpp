#include "runtime/app_runtime.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "obs/trial_obs.hpp"
#include "resilience/interval.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace xres {

ResilientAppRuntime::ResilientAppRuntime(Simulation& sim, ExecutionPlan plan,
                                         std::uint64_t seed,
                                         CompletionCallback on_complete)
    : sim_{sim},
      plan_{std::move(plan)},
      rng_{derive_seed(seed, 0x617070727421ULL)},
      on_complete_{std::move(on_complete)} {
  plan_.validate();
  XRES_CHECK(static_cast<bool>(on_complete_), "completion callback must be non-empty");
  active_normal_nodes_ = static_cast<double>(plan_.physical_nodes);
  active_recovery_nodes_ = std::min(1.0 + plan_.recovery_parallelism,
                                    static_cast<double>(plan_.app.nodes));
}

ResilientAppRuntime::~ResilientAppRuntime() { cancel_pending(); }

const char* ResilientAppRuntime::phase_name() const {
  switch (phase_) {
    case Phase::kIdle: return "idle";
    case Phase::kWorking: return "working";
    case Phase::kCheckpointing: return "checkpointing";
    case Phase::kRestarting: return "restarting";
    case Phase::kRecovering: return "recovering";
    case Phase::kDone: return "done";
    case Phase::kAborted: return "aborted";
  }
  return "?";
}

void ResilientAppRuntime::start() {
  XRES_CHECK(phase_ == Phase::kIdle, "runtime already started");
  XRES_CHECK(plan_.feasible, "cannot execute an infeasible plan");
  start_time_ = sim_.now();
  phase_start_ = start_time_;
  result_.baseline = plan_.baseline;

  saved_.assign(plan_.levels.size(), Duration::zero());
  quantum_ = plan_.checkpoint_quantum;
  next_checkpoint_at_ = plan_.levels.empty() ? Duration::infinity() : quantum_;

  // Tabulate the checkpoint-level odometer: with L levels the pattern of
  // level_index_for_checkpoint(k) repeats with the product of the nesting
  // counts as its period, so one small table replaces a divide-per-level
  // scan on every checkpoint (the hottest plan query in a trial).
  level_cycle_.clear();
  level_cycle_pos_ = 0;
  if (!plan_.levels.empty()) {
    std::uint64_t cycle = 1;
    for (std::size_t i = 0; i + 1 < plan_.levels.size(); ++i) {
      cycle *= static_cast<std::uint64_t>(plan_.nesting[i]);
      if (cycle > 4096) break;
    }
    if (cycle <= 4096) {
      // Walk the odometer incrementally (digit i counts to nesting[i] and
      // carries) instead of dividing per entry; the carried-into digit is
      // exactly level_index_for_checkpoint's answer.
      level_cycle_.resize(cycle);
      std::vector<std::uint32_t> digits(plan_.levels.size() - 1, 0);
      for (std::uint64_t r = 0; r < cycle; ++r) {
        std::size_t carried = 0;
        while (carried < digits.size() &&
               ++digits[carried] == static_cast<std::uint32_t>(plan_.nesting[carried])) {
          digits[carried] = 0;
          ++carried;
        }
        level_cycle_[r] = static_cast<std::uint32_t>(carried);
      }
    }
  }

  if (plan_.replication_degree > 1.0) {
    const std::uint32_t duplicated = plan_.physical_nodes - plan_.app.nodes;
    XRES_CHECK(duplicated <= plan_.app.nodes,
               "replication degree above 2 is not modeled");
    dup_healthy_ = duplicated;
    dup_degraded_ = 0;
    singles_ = plan_.app.nodes - duplicated;
  }

  if (plan_.max_wall_time.is_finite()) {
    if (direct_ != nullptr) {
      direct_->timeout_time = sim_.now() + plan_.max_wall_time;
      direct_->timeout_seq = direct_->next_seq++;
      direct_->timeout_pending = true;
    } else {
      timeout_event_ =
          sim_.schedule_after(plan_.max_wall_time, [this] { abort_on_timeout(); });
      has_timeout_ = true;
    }
  }
  enter_working();
}

void ResilientAppRuntime::set_pfs_transfer_service(TransferService* service) {
  XRES_CHECK(phase_ == Phase::kIdle, "transfer service must be set before start");
  pfs_service_ = service;
}

void ResilientAppRuntime::set_observer(obs::TrialObs* obs) {
  XRES_CHECK(phase_ == Phase::kIdle, "observer must be set before start");
  obs_ = obs;
}

void ResilientAppRuntime::attach_direct_host(DirectHost* host) {
  XRES_CHECK(phase_ == Phase::kIdle, "direct host must be attached before start");
  XRES_CHECK(pfs_service_ == nullptr,
             "direct execution does not support a shared PFS transfer service");
  XRES_CHECK(host != nullptr, "direct host must be non-null");
  direct_ = host;
}

void ResilientAppRuntime::schedule_phase_direct(Duration nominal) {
  // No pending-phase check: every schedule_phase_direct call is reached
  // from a dispatch (or start) that just cleared the slot, and the event
  // path's schedule_phase keeps the guarded equivalent.
  // Same arithmetic as schedule_after: the completion time is bit-identical
  // to what the event queue would have stored and popped.
  direct_->phase_time = sim_.now() + nominal;
  direct_->phase_seq = direct_->next_seq++;
  direct_->phase_pending = true;
}

void ResilientAppRuntime::dispatch_phase_direct() {
  direct_->phase_pending = false;
  // The Duration arguments exist for the event path's lambdas; every
  // handler ignores them (elapsed time is re-derived from phase_start_),
  // so the direct dispatch passes zero instead of reloading plan data.
  switch (phase_) {
    case Phase::kWorking: on_segment_done(phase_arg_); break;
    case Phase::kCheckpointing:
      on_checkpoint_done(phase_level_, Duration::zero());
      break;
    case Phase::kRestarting: on_restart_done(Duration::zero()); break;
    case Phase::kRecovering: on_recovery_done(Duration::zero()); break;
    case Phase::kIdle:
    case Phase::kDone:
    case Phase::kAborted:
      XRES_CHECK(false, "direct phase dispatch outside an executing phase");
  }
}

void ResilientAppRuntime::dispatch_timeout_direct() {
  direct_->timeout_pending = false;
  abort_on_timeout();
}

void ResilientAppRuntime::cancel_pending() {
  if (direct_ != nullptr) {
    direct_->phase_pending = false;
    return;
  }
  if (!has_pending_) return;
  if (pending_is_transfer_) {
    pfs_service_->cancel(pending_transfer_);
  } else {
    sim_.cancel(pending_);
  }
  has_pending_ = false;
}

void ResilientAppRuntime::schedule_phase(Duration nominal, bool shared_pfs,
                                         EventCallback done) {
  XRES_CHECK(!has_pending_, "phase scheduled while another is pending");
  // The handler is moved to a local before running: `done` re-enters
  // schedule_phase for the next phase, which repopulates phase_done_.
  phase_done_ = std::move(done);
  auto wrapped = [this] {
    has_pending_ = false;
    EventCallback handler = std::move(phase_done_);
    handler();
  };
  if (shared_pfs && pfs_service_ != nullptr) {
    if (obs_ != nullptr) obs_->count(obs::builtin_metrics().pfs_phases);
    // phase_level_ is always current here: shared_pfs phases are entered
    // only from enter_checkpointing / enter_restarting, which set it.
    TransferRequest request;
    request.nominal = nominal;
    request.bytes = plan_.levels[phase_level_].pfs_bytes;
    request.rate_cap = plan_.levels[phase_level_].pfs_rate_cap;
    pending_transfer_ = pfs_service_->begin(request, std::move(wrapped));
    pending_is_transfer_ = true;
  } else {
    pending_ = sim_.schedule_after(nominal, std::move(wrapped));
    pending_is_transfer_ = false;
  }
  has_pending_ = true;
}

double ResilientAppRuntime::active_nodes() const {
  // During recovery only the restarted node plus its recovery helpers
  // compute; the rest of the allocation idles (Section IV-D). Both values
  // are precomputed at start().
  if (phase_ == Phase::kRecovering) return active_recovery_nodes_;
  return active_normal_nodes_;
}

void ResilientAppRuntime::enable_timeline() {
  XRES_CHECK(phase_ == Phase::kIdle, "enable_timeline must precede start");
  timeline_.emplace();
}

void ResilientAppRuntime::accrue(Duration elapsed) {
  switch (phase_) {
    case Phase::kWorking:
      accrue_known(elapsed, result_.time_working, SpanKind::kWork,
                   active_normal_nodes_);
      return;
    case Phase::kCheckpointing:
      accrue_known(elapsed, result_.time_checkpointing, SpanKind::kCheckpoint,
                   active_normal_nodes_);
      return;
    case Phase::kRestarting:
      accrue_known(elapsed, result_.time_restarting, SpanKind::kRestart,
                   active_normal_nodes_);
      return;
    case Phase::kRecovering:
      accrue_known(elapsed, result_.time_recovering, SpanKind::kRecovery,
                   active_recovery_nodes_);
      return;
    case Phase::kIdle:
    case Phase::kDone:
    case Phase::kAborted:
      XRES_CHECK(elapsed >= Duration::zero(), "negative phase time");
      result_.node_seconds += active_normal_nodes_ * elapsed.to_seconds();
      return;
  }
}

void ResilientAppRuntime::accrue_known(Duration elapsed, Duration& bucket,
                                       SpanKind span, double nodes) {
  XRES_CHECK(elapsed >= Duration::zero(), "negative phase time");
  bucket += elapsed;
  result_.node_seconds += nodes * elapsed.to_seconds();
  if (timeline_.has_value()) {
    timeline_->add(span, phase_start_, elapsed);
  }
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    accrue_trace_span(span, elapsed);
  }
}

void ResilientAppRuntime::accrue_trace_span(SpanKind span, Duration elapsed) {
  obs::TraceBuffer& trace = *obs_->trace();
  switch (span) {
    case SpanKind::kWork:
      trace.span("work", "phase", phase_start_, elapsed);
      break;
    case SpanKind::kCheckpoint:
      trace.span("checkpoint L" + std::to_string(phase_level_), "phase", phase_start_,
                 elapsed,
                 {obs::trace_arg("level", static_cast<int>(phase_level_)),
                  obs::trace_arg("pfs", phase_pfs_)});
      break;
    case SpanKind::kRestart:
      trace.span("restart", "phase", phase_start_, elapsed,
                 {obs::trace_arg("level", static_cast<int>(phase_level_)),
                  obs::trace_arg("pfs", phase_pfs_)});
      break;
    case SpanKind::kRecovery:
      trace.span("recovery", "phase", phase_start_, elapsed,
                 {obs::trace_arg("lost_work_s", recovery_lost_.to_seconds())});
      break;
  }
}

void ResilientAppRuntime::enter_working() {
  if (progress_ >= plan_.work_target) {
    complete();
    return;
  }
  phase_ = Phase::kWorking;
  phase_start_ = sim_.now();
  phase_pfs_ = false;
  const Duration target = std::min(next_checkpoint_at_, plan_.work_target);
  const Duration length = target - progress_;
  XRES_CHECK(length > Duration::zero(), "empty work segment");
  if (direct_ != nullptr) {
    phase_arg_ = target;
    schedule_phase_direct(length);
    return;
  }
  schedule_phase(length, /*shared_pfs=*/false,
                 [this, target] { on_segment_done(target); });
}

void ResilientAppRuntime::on_segment_done(Duration target) {
  accrue_known(sim_.now() - phase_start_, result_.time_working, SpanKind::kWork,
               active_normal_nodes_);
  progress_ = target;
  if (progress_ >= plan_.work_target) {
    complete();
  } else {
    enter_checkpointing();
  }
}

void ResilientAppRuntime::enter_checkpointing() {
  phase_ = Phase::kCheckpointing;
  phase_start_ = sim_.now();
  // Semi-blocking checkpoints snapshot the state at phase entry; work done
  // concurrently is not covered by the in-flight image.
  checkpoint_snapshot_ = progress_;
  const std::size_t idx =
      level_cycle_.empty()
          ? plan_.level_index_for_checkpoint(checkpoint_counter_ + 1)
          : level_cycle_[level_cycle_pos_];
  const CheckpointLevelSpec& level = plan_.levels[idx];
  phase_level_ = idx;
  phase_pfs_ = level.uses_shared_pfs;
  if (direct_ != nullptr) {
    schedule_phase_direct(level.save_cost);
    return;
  }
  schedule_phase(level.save_cost, level.uses_shared_pfs,
                 [this, idx] { on_checkpoint_done(idx, plan_.levels[idx].save_cost); });
}

void ResilientAppRuntime::on_checkpoint_done(std::size_t level_index, Duration) {
  const Duration elapsed = sim_.now() - phase_start_;
  accrue_known(elapsed, result_.time_checkpointing, SpanKind::kCheckpoint,
               active_normal_nodes_);
  ++checkpoint_counter_;
  if (!level_cycle_.empty() && ++level_cycle_pos_ == level_cycle_.size()) {
    level_cycle_pos_ = 0;
  }
  ++result_.checkpoints_completed;
  if (obs_ != nullptr) {
    obs_->observe(obs::builtin_metrics().checkpoint_level,
                  static_cast<double>(level_index));
    obs_->observe(obs::builtin_metrics().checkpoint_cost_seconds, elapsed.to_seconds());
  }
  // The image covers progress as of phase entry (identical to progress_
  // for blocking techniques, where checkpoint_work_rate is 0).
  saved_[level_index] = checkpoint_snapshot_;
  progress_ = std::min(progress_ + elapsed * plan_.checkpoint_work_rate,
                       plan_.work_target);
  // A completed checkpoint is the consistency point at which failed
  // replicas are re-provisioned (DESIGN.md §4).
  dup_healthy_ += dup_degraded_;
  dup_degraded_ = 0;
  if (plan_.adaptive_interval) retune_quantum();
  next_checkpoint_at_ = progress_ + quantum_;
  enter_working();
}

void ResilientAppRuntime::retune_quantum() {
  // Gamma-prior rate estimate: the planned rate contributes two pseudo-
  // failures of prior weight, so early in the run the planner's interval
  // dominates and the estimate converges to the empirical rate later. The
  // prior window is capped at the work target so a wildly optimistic plan
  // (tiny planned rate → huge 2/λ window) cannot drown out the evidence.
  const Duration elapsed = sim_.now() - start_time_;
  if (elapsed <= Duration::zero()) return;
  constexpr double kPriorFailures = 2.0;
  double prior_window_s = plan_.work_target.to_seconds();
  if (plan_.failure_rate > Rate::zero()) {
    prior_window_s = std::min(prior_window_s,
                              kPriorFailures / plan_.failure_rate.per_second_value());
  }
  const double prior_failures =
      prior_window_s * (plan_.failure_rate > Rate::zero()
                            ? plan_.failure_rate.per_second_value()
                            : 0.0);
  const double rate = (static_cast<double>(result_.failures_seen) + prior_failures) /
                      (elapsed.to_seconds() + prior_window_s);
  if (rate <= 0.0) return;
  quantum_ = daly_interval(plan_.levels.front().save_cost, Rate::per_second(rate));
}

void ResilientAppRuntime::enter_restarting(std::size_t level_index, Duration restore_cost,
                                           bool shared_pfs) {
  phase_ = Phase::kRestarting;
  phase_start_ = sim_.now();
  phase_level_ = level_index;
  phase_pfs_ = shared_pfs;
  if (obs_ != nullptr) obs_->count(obs::builtin_metrics().restarts);
  if (direct_ != nullptr) {
    schedule_phase_direct(restore_cost);
    return;
  }
  schedule_phase(restore_cost, shared_pfs,
                 [this, restore_cost] { on_restart_done(restore_cost); });
}

void ResilientAppRuntime::on_restart_done(Duration) {
  accrue_known(sim_.now() - phase_start_, result_.time_restarting,
               SpanKind::kRestart, active_normal_nodes_);
  enter_working();
}

void ResilientAppRuntime::enter_recovering(Duration lost_work) {
  phase_ = Phase::kRecovering;
  phase_start_ = sim_.now();
  phase_pfs_ = false;
  recovery_lost_ = lost_work;
  if (obs_ != nullptr) obs_->count(obs::builtin_metrics().recoveries);
  const Duration duration = plan_.levels.front().restore_cost +
                            lost_work / plan_.recovery_parallelism;
  // Parallel recovery restores from in-memory partner copies, never the
  // shared PFS.
  if (direct_ != nullptr) {
    schedule_phase_direct(duration);
    return;
  }
  schedule_phase(duration, /*shared_pfs=*/false,
                 [this, duration] { on_recovery_done(duration); });
}

void ResilientAppRuntime::on_recovery_done(Duration) {
  accrue_known(sim_.now() - phase_start_, result_.time_recovering,
               SpanKind::kRecovery, active_recovery_nodes_);
  recovery_lost_ = Duration::zero();
  if (progress_ >= next_checkpoint_at_ && progress_ < plan_.work_target) {
    // The failure interrupted a checkpoint at this boundary: retake it.
    enter_checkpointing();
  } else {
    enter_working();
  }
}

void ResilientAppRuntime::cancel_timeout() {
  if (direct_ != nullptr) {
    direct_->timeout_pending = false;
    return;
  }
  if (!has_timeout_) return;
  sim_.cancel(timeout_event_);
  has_timeout_ = false;
}

void ResilientAppRuntime::complete() {
  cancel_pending();
  cancel_timeout();
  phase_ = Phase::kDone;
  result_.completed = true;
  result_.wall_time = sim_.now() - start_time_;
  result_.efficiency =
      result_.wall_time > Duration::zero() ? plan_.baseline / result_.wall_time : 1.0;
  result_.efficiency = std::min(result_.efficiency, 1.0);
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    obs_->trace()->instant("complete", "run", sim_.now(),
                           {obs::trace_arg("efficiency", result_.efficiency)});
  }
  on_complete_(result_);
}

void ResilientAppRuntime::abort_on_timeout() {
  has_timeout_ = false;
  if (finished()) return;
  accrue(sim_.now() - phase_start_);
  cancel_pending();
  phase_ = Phase::kAborted;
  result_.completed = false;
  result_.wall_time = sim_.now() - start_time_;
  result_.efficiency = 0.0;
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    obs_->trace()->instant("abort", "run", sim_.now(),
                           {obs::trace_arg("reason", std::string{"wall-time cap"})});
  }
  XRES_LOG_DEBUG("application aborted by wall-time cap after " +
                 to_string(result_.wall_time));
  on_complete_(result_);
}

void ResilientAppRuntime::abort() {
  if (finished() || phase_ == Phase::kIdle) return;
  accrue(sim_.now() - phase_start_);
  cancel_pending();
  cancel_timeout();
  phase_ = Phase::kAborted;
  result_.completed = false;
  result_.wall_time = sim_.now() - start_time_;
  result_.efficiency = 0.0;
  if (obs_ != nullptr && obs_->trace() != nullptr) {
    obs_->trace()->instant("abort", "run", sim_.now(),
                           {obs::trace_arg("reason", std::string{"external"})});
  }
}

bool ResilientAppRuntime::redundancy_masks_failure() {
  // Classify which physical node the failure hit, weighted by replica
  // population: an unduplicated process (fatal), one of a healthy pair
  // (masked: the pair degrades), or the survivor of a degraded pair
  // (fatal).
  const double w_single = static_cast<double>(singles_);
  const double w_healthy = 2.0 * static_cast<double>(dup_healthy_);
  const double w_degraded = static_cast<double>(dup_degraded_);
  const double total = w_single + w_healthy + w_degraded;
  if (total <= 0.0) return false;
  const double u = rng_.uniform(0.0, total);
  if (u < w_healthy) {
    XRES_CHECK(dup_healthy_ > 0, "replica accounting underflow");
    --dup_healthy_;
    ++dup_degraded_;
    return true;
  }
  return false;
}

void ResilientAppRuntime::handle_rollback_failure(SeverityLevel severity) {
  // Best recovery point: the newest saved progress among levels that cover
  // this severity; ties broken toward the cheaper restore.
  std::size_t best_idx = std::numeric_limits<std::size_t>::max();
  Duration best = -Duration::infinity();
  for (std::size_t i = 0; i < plan_.levels.size(); ++i) {
    if (plan_.levels[i].coverage < severity) continue;
    if (saved_[i] > best ||
        (best_idx != std::numeric_limits<std::size_t>::max() && saved_[i] == best &&
         plan_.levels[i].restore_cost < plan_.levels[best_idx].restore_cost)) {
      best = saved_[i];
      best_idx = i;
    }
  }
  XRES_CHECK(best_idx != std::numeric_limits<std::size_t>::max(),
             "no checkpoint level covers the failure severity");

  const Duration rework = progress_ - best;
  result_.rework += rework;
  ++result_.rollbacks;
  progress_ = best;
  if (obs_ != nullptr) {
    obs_->observe(obs::builtin_metrics().rollback_rework_minutes,
                  rework.to_seconds() / 60.0);
    if (obs_->trace() != nullptr) {
      obs_->trace()->instant("rollback", "failure", sim_.now(),
                             {obs::trace_arg("level", static_cast<int>(best_idx)),
                              obs::trace_arg("rework_s", rework.to_seconds())});
    }
  }
  // Retune on rollbacks too: an application thrashing under a badly
  // misspecified interval may never complete a checkpoint, and rollback
  // is exactly when fresh failure evidence arrives.
  if (plan_.adaptive_interval) retune_quantum();
  next_checkpoint_at_ = progress_ + quantum_;

  // Restarting re-provisions failed replicas.
  dup_healthy_ += dup_degraded_;
  dup_degraded_ = 0;

  enter_restarting(best_idx, plan_.levels[best_idx].restore_cost,
                   plan_.levels[best_idx].uses_shared_pfs);
}

void ResilientAppRuntime::handle_parallel_recovery_failure() {
  // Only the failed node's work since the last in-memory checkpoint must
  // be replayed; global progress is retained (message logging).
  const Duration lost = progress_ - saved_.front();
  XRES_CHECK(lost >= Duration::zero(), "negative lost work");
  enter_recovering(lost);
}

void ResilientAppRuntime::on_failure(const Failure& failure) {
  if (finished() || phase_ == Phase::kIdle) return;
  if (plan_.levels.empty()) return;  // ideal-baseline mode is failure-oblivious
  ++result_.failures_seen;

  const auto note_failure = [&](bool masked) {
    if (obs_ == nullptr) return;
    obs_->observe(obs::builtin_metrics().failure_severity,
                  static_cast<double>(failure.severity));
    if (obs_->trace() != nullptr) {
      obs_->trace()->instant("failure", "failure", sim_.now(),
                             {obs::trace_arg("severity", failure.severity),
                              obs::trace_arg("masked", masked),
                              obs::trace_arg("phase", std::string{phase_name()})});
    }
  };

  // Parallel recovery idles all but (1 + P) nodes while recovering; a
  // failure landing on an idle node has nothing to destroy (its state is
  // protected by the double in-memory checkpoint). Thin accordingly.
  if (!plan_.rollback_on_failure && phase_ == Phase::kRecovering) {
    const double active_fraction =
        std::min(1.0, (1.0 + plan_.recovery_parallelism) /
                          static_cast<double>(plan_.app.nodes));
    if (!rng_.bernoulli(active_fraction)) {
      ++result_.failures_masked;
      note_failure(/*masked=*/true);
      return;
    }
  }

  if (plan_.replication_degree > 1.0 && redundancy_masks_failure()) {
    ++result_.failures_masked;
    note_failure(/*masked=*/true);
    return;  // execution continues undisturbed
  }
  note_failure(/*masked=*/false);

  // The failure interrupts the current phase. Work performed up to the
  // failure instant counts as progress — at full rate in the Working
  // phase, at the semi-blocking rate during an overlapped checkpoint.
  const Duration elapsed = sim_.now() - phase_start_;
  if (phase_ == Phase::kWorking) {
    progress_ += elapsed;
  } else if (phase_ == Phase::kCheckpointing) {
    progress_ = std::min(progress_ + elapsed * plan_.checkpoint_work_rate,
                         plan_.work_target);
  }
  accrue(elapsed);
  cancel_pending();

  if (plan_.rollback_on_failure) {
    handle_rollback_failure(failure.severity);
  } else {
    handle_parallel_recovery_failure();
  }
}

}  // namespace xres
