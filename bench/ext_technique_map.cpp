// Extension bench: the optimal-technique map. Generalizes Figure 2's
// single crossover into a full (application type x system share) grid:
// which technique wins each cell, by simulation. This is the lookup the
// paper's Resilience Selection implicitly computes.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "resilience/selector.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const double mtbf_years = ctx.params().real("mtbf-years");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  ResilienceConfig resilience;
  resilience.node_mtbf = Duration::years(mtbf_years);
  MachineSpec machine = MachineSpec::exascale();
  study::apply_platform_params(machine, ctx.params());
  const ResilienceSelector selector{machine, resilience};

  const std::vector<double> shares{0.01, 0.05, 0.10, 0.25, 0.50, 1.00};
  std::printf("Extension: optimal-technique map (simulated winner; '*' where the\n"
              "analytic selector agrees), MTBF %.1f y, %u trials/cell\n\n",
              mtbf_years, trials);

  std::vector<std::string> headers{"type"};
  for (double s : shares) headers.push_back(fmt_percent(s, 0));
  Table table{std::move(headers)};

  std::uint32_t agreements = 0;
  std::uint32_t cells = 0;
  for (const AppType& type : all_app_types()) {
    std::vector<std::string> row{type.name};
    for (double share : shares) {
      const auto nodes = static_cast<std::uint32_t>(share * machine.node_count);
      const AppSpec app{type, nodes, 1440};

      TechniqueKind best = TechniqueKind::kCheckpointRestart;
      double best_eff = -1.0;
      int column = 0;
      for (TechniqueKind kind : workload_techniques()) {
        SingleAppTrialConfig config;
        config.app = app;
        config.technique = kind;
        config.resilience = resilience;
        std::vector<TrialSpec> specs;
        specs.reserve(trials);
        for (std::uint32_t t = 0; t < trials; ++t) {
          specs.push_back(TrialSpec{config, {static_cast<std::uint64_t>(column), t}});
        }
        RunningStats eff;
        const std::string label =
            type.name + " @ " + fmt_percent(share, 0) + " " + to_string(kind);
        for (const ExecutionResult& r :
             collector.run_batch(executor, seed, specs, label, coordinator)) {
          eff.add(r.efficiency);
        }
        if (eff.mean() > best_eff) {
          best_eff = eff.mean();
          best = kind;
        }
        ++column;
      }
      const auto predicted = selector.select(app).kind;
      ++cells;
      if (predicted == best) ++agreements;
      // Compact labels: CR / ML / PR.
      const char* label = best == TechniqueKind::kCheckpointRestart ? "CR"
                          : best == TechniqueKind::kMultilevel      ? "ML"
                                                                    : "PR";
      row.push_back(std::string{label} + (predicted == best ? "*" : ""));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished type %s\n", type.name.c_str());
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("selector agreement with simulation: %u/%u cells\n", agreements, cells);
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ext_technique_map";
  def.group = study::StudyGroup::kExtension;
  def.description =
      "simulated optimal technique per (application type x system share) cell";
  def.summary = "ext_technique_map — simulated optimal technique per "
                "(type x size) cell";
  def.options.default_seed = 23;
  def.params.integer("trials", "trials per technique per cell", 20).min(1);
  def.params.real("mtbf-years", "node MTBF", 10).min(0.001);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
