#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace xres {

namespace {

constexpr std::uint64_t kPcgMultiplier = 6364136223846793005ULL;

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t hash_seed(std::span<const std::uint64_t> keys) {
  std::uint64_t acc = 0x2545f4914f6cdd1dULL;
  for (std::uint64_t k : keys) {
    std::uint64_t state = acc ^ k;
    acc = splitmix64(state) + 0x9e3779b97f4a7c15ULL * k;
  }
  std::uint64_t state = acc;
  return splitmix64(state);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_{0}, inc_{(stream << 1U) | 1U} {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  const auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint64_t Pcg32::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
}

double Pcg32::next_double() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11U) * 0x1.0p-53;
}

double Pcg32::uniform(double lo, double hi) {
  XRES_CHECK(lo <= hi, "uniform bounds out of order");
  return lo + (hi - lo) * next_double();
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  XRES_CHECK(bound > 0, "bound must be positive");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0U - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32U);
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) {
  XRES_CHECK(lo <= hi, "uniform_int bounds out of order");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  XRES_CHECK(span <= 0xffffffffULL, "uniform_int range too wide for 32-bit draw");
  return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint32_t>(span)));
}

bool Pcg32::bernoulli(double p) {
  XRES_CHECK(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  return next_double() < p;
}

Duration Pcg32::exponential(Rate rate) {
  XRES_CHECK(rate >= Rate::zero(), "rate must be non-negative");
  if (rate == Rate::zero()) return Duration::infinity();
  // Inverse CDF; 1 - u avoids log(0).
  const double u = 1.0 - next_double();
  return Duration::seconds(-std::log(u) / rate.per_second_value());
}

Duration Pcg32::weibull(double shape, Duration scale) {
  XRES_CHECK(shape > 0.0, "Weibull shape must be positive");
  XRES_CHECK(scale > Duration::zero(), "Weibull scale must be positive");
  const double u = 1.0 - next_double();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Pcg32::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

DiscreteDistribution::DiscreteDistribution(std::span<const double> weights) {
  XRES_CHECK(!weights.empty(), "discrete distribution needs at least one category");
  double total = 0.0;
  for (double w : weights) {
    XRES_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  XRES_CHECK(total > 0.0, "weights must have positive sum");

  const std::size_t n = weights.size();
  prob_.resize(n);
  threshold_.resize(n);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) prob_[i] = weights[i] / total;

  // Walker/Vose alias-table construction: partition scaled probabilities
  // into "small" (< 1) and "large" (>= 1) and pair them up.
  std::vector<double> scaled(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = prob_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    threshold_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::size_t i : large) {
    threshold_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::size_t i : small) {
    // Only reachable through floating-point round-off; treat as certain.
    threshold_[i] = 1.0;
    alias_[i] = i;
  }
}

double DiscreteDistribution::probability(std::size_t i) const {
  XRES_CHECK(i < prob_.size(), "category index out of range");
  return prob_[i];
}

std::size_t DiscreteDistribution::sample(Pcg32& rng) const {
  const auto column = static_cast<std::size_t>(rng.next_below(
      static_cast<std::uint32_t>(prob_.size())));
  return rng.next_double() < threshold_[column] ? column : alias_[column];
}

}  // namespace xres
