// Tests for the TrialExecutor study API: the seed-derivation contract,
// bit-identical results for every thread count, exception propagation and
// progress-callback guarantees. These are the invariants DESIGN.md §
// "Deterministic parallel execution" promises.

#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "core/workload_study.hpp"
#include "failure/severity.hpp"
#include "resilience/planner.hpp"

namespace xres {
namespace {

SingleAppTrialConfig small_config(TechniqueKind technique) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 360};
  config.technique = technique;
  return config;
}

TEST(TrialExecutor, DerivedSeedContract) {
  const TrialSpec keyed{small_config(TechniqueKind::kMultilevel), {7, 11}};
  EXPECT_EQ(keyed.derived_seed(99), derive_seed(99, 7, 11));

  // No keys: the root seed passes through unchanged.
  const TrialSpec unkeyed{small_config(TechniqueKind::kMultilevel), {}};
  EXPECT_EQ(unkeyed.derived_seed(99), 99U);

  // run_trial(TrialSpec, root) is exactly run_trial(work, derived seed).
  const ExecutionResult via_spec = run_trial(keyed, 99);
  const ExecutionResult direct =
      run_trial(small_config(TechniqueKind::kMultilevel), derive_seed(99, 7, 11));
  EXPECT_DOUBLE_EQ(via_spec.wall_time.to_seconds(), direct.wall_time.to_seconds());
  EXPECT_EQ(via_spec.failures_seen, direct.failures_seen);
}

TEST(TrialExecutor, BatchMatchesSerialForEveryThreadCount) {
  std::vector<TrialSpec> specs;
  int k = 0;
  for (TechniqueKind kind :
       {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
        TechniqueKind::kParallelRecovery}) {
    for (std::uint64_t t = 0; t < 6; ++t) {
      specs.push_back(TrialSpec{small_config(kind),
                                {static_cast<std::uint64_t>(k), t}});
    }
    ++k;
  }

  std::vector<ExecutionResult> serial;
  for (const TrialSpec& spec : specs) {
    serial.push_back(run_trial(spec, 20170529));
  }

  for (unsigned threads : {1U, 2U, 4U}) {
    const TrialExecutor executor{threads};
    const std::vector<ExecutionResult> batch = executor.run_batch(20170529, specs);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(batch[i].efficiency, serial[i].efficiency) << i;
      EXPECT_DOUBLE_EQ(batch[i].wall_time.to_seconds(),
                       serial[i].wall_time.to_seconds())
          << i;
      EXPECT_EQ(batch[i].failures_seen, serial[i].failures_seen) << i;
      EXPECT_EQ(batch[i].checkpoints_completed, serial[i].checkpoints_completed) << i;
      EXPECT_EQ(batch[i].rollbacks, serial[i].rollbacks) << i;
    }
  }
}

TEST(TrialExecutor, EfficiencyStudyIsThreadCountInvariant) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("A32");
  config.size_fractions = {0.05, 0.50};
  config.techniques = {TechniqueKind::kCheckpointRestart,
                       TechniqueKind::kParallelRecovery};
  config.trials = 8;

  config.threads = 1;
  const EfficiencyStudyResult serial = run_efficiency_study(config);
  config.threads = 4;
  const EfficiencyStudyResult parallel = run_efficiency_study(config);

  ASSERT_EQ(serial.efficiency.size(), parallel.efficiency.size());
  for (std::size_t si = 0; si < serial.efficiency.size(); ++si) {
    ASSERT_EQ(serial.efficiency[si].size(), parallel.efficiency[si].size());
    for (std::size_t ti = 0; ti < serial.efficiency[si].size(); ++ti) {
      const Summary& a = serial.efficiency[si][ti];
      const Summary& b = parallel.efficiency[si][ti];
      EXPECT_EQ(a.count, b.count);
      EXPECT_DOUBLE_EQ(a.mean, b.mean);
      EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
      EXPECT_DOUBLE_EQ(a.min, b.min);
      EXPECT_DOUBLE_EQ(a.max, b.max);
      EXPECT_DOUBLE_EQ(serial.mean_failures[si][ti], parallel.mean_failures[si][ti]);
    }
  }
}

TEST(TrialExecutor, WorkloadStudyIsThreadCountInvariant) {
  WorkloadStudyConfig study;
  study.workload.arrival_count = 10;
  study.patterns = 3;
  const std::vector<WorkloadCombo> combos{
      WorkloadCombo{SchedulerKind::kFcfs,
                    TechniquePolicy::fixed_technique(TechniqueKind::kParallelRecovery)},
      WorkloadCombo{SchedulerKind::kSlack, TechniquePolicy::ideal_baseline()}};

  study.threads = 1;
  const auto serial = run_workload_study(study, combos);
  study.threads = 4;
  const auto parallel = run_workload_study(study, combos);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].dropped_fraction.count, parallel[i].dropped_fraction.count);
    EXPECT_DOUBLE_EQ(serial[i].dropped_fraction.mean, parallel[i].dropped_fraction.mean);
    EXPECT_DOUBLE_EQ(serial[i].dropped_fraction.stddev,
                     parallel[i].dropped_fraction.stddev);
  }
}

TEST(TrialExecutor, ForEachVisitsEveryIndexOnce) {
  const TrialExecutor executor{4};
  std::vector<std::atomic<int>> visits(64);
  executor.for_each(visits.size(),
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(TrialExecutor, ForEachPropagatesExceptions) {
  for (unsigned threads : {1U, 4U}) {
    const TrialExecutor executor{threads};
    EXPECT_THROW(executor.for_each(32,
                                   [](std::size_t i) {
                                     if (i == 17) {
                                       throw std::runtime_error{"boom"};
                                     }
                                   }),
                 std::runtime_error)
        << threads << " threads";
  }
}

TEST(TrialExecutor, ProgressIsMonotoneAndComplete) {
  for (unsigned threads : {1U, 4U}) {
    const TrialExecutor executor{threads};
    std::mutex mutex;
    std::vector<std::size_t> seen;
    executor.for_each(
        40, [](std::size_t) {},
        [&](std::size_t done, std::size_t total) {
          const std::lock_guard<std::mutex> lock{mutex};
          EXPECT_EQ(total, 40U);
          seen.push_back(done);
        });
    ASSERT_EQ(seen.size(), 40U) << threads << " threads";
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], i + 1) << threads << " threads";
    }
  }
}

TEST(TrialExecutor, ZeroThreadsUsesHardwareConcurrency) {
  const TrialExecutor executor{0};
  EXPECT_GE(executor.threads(), 1U);
}

TEST(TrialExecutor, EmptyBatchIsFine) {
  const TrialExecutor executor{4};
  EXPECT_TRUE(executor.run_batch(1, {}).empty());
  bool called = false;
  executor.for_each(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TrialExecutor, TraceAndPlanSpecsRunThroughBatch) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig resilience;
  const AppSpec app{app_type_by_name("B32"), 12000, 360};
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, resilience);

  Pcg32 rng{5};
  const SeverityModel severity{resilience.severity_weights};
  const FailureTrace trace =
      FailureTrace::generate(plan.failure_rate, Duration::days(2.0), severity,
                             FailureDistribution::exponential(), rng);

  const std::vector<TrialSpec> specs{
      TrialSpec{PlanTrialSpec{plan, resilience, FailureDistribution::exponential()}, {0}},
      TrialSpec{TraceTrialSpec{plan, resilience, trace}, {1}}};
  const TrialExecutor executor{2};
  const auto results = executor.run_batch(3, specs);
  ASSERT_EQ(results.size(), 2U);
  EXPECT_DOUBLE_EQ(results[0].efficiency,
                   run_trial(std::get<PlanTrialSpec>(specs[0].work),
                             specs[0].derived_seed(3))
                       .efficiency);
  EXPECT_DOUBLE_EQ(results[1].efficiency,
                   run_trial(std::get<TraceTrialSpec>(specs[1].work),
                             specs[1].derived_seed(3))
                       .efficiency);
}

}  // namespace
}  // namespace xres
