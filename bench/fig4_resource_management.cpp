// Reproduces paper Figure 4: percentage of applications dropped for each
// resilience technique x resource management technique combination over 50
// shared arrival patterns on the oversubscribed exascale system, compared
// against the failure-free Ideal Baseline.

#include <cstdio>

#include "common.hpp"
#include "core/workload_study.hpp"
#include "obs/profile.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{
      "fig4_resource_management — paper Figure 4: dropped applications per "
      "(scheduler x resilience technique) combination, 50 arrival patterns."};
  cli.add_option("--patterns", "arrival patterns per combo (paper: 50)", "50");
  cli.add_option("--seed", "root RNG seed", "20170530");
  add_threads_option(cli);
  cli.add_flag("--csv", "also emit raw CSV");
  bench::add_obs_options(cli, /*with_trace=*/false);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const bench::ObsOptions obs = bench::read_obs_options(cli);
  const bench::RecoveryCliOptions rec = bench::read_recovery_options(cli);

  obs::PhaseProfiler profiler;
  profiler.begin("setup");
  WorkloadStudyConfig study;
  study.patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  study.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  study.threads = parse_threads_option(cli);
  study.collect_metrics = obs.metrics();

  bench::RecoveryCoordinator coordinator{rec, "fig4_resource_management", study.seed};
  study.recovery = coordinator.options();

  std::printf("Figure 4: dropped applications, oversubscribed exascale system\n");
  std::printf("machine: %s\n", study.machine.describe().c_str());
  std::printf(
      "workload: full initial fill + %u Poisson arrivals (mean gap %s); "
      "%u patterns; node MTBF %s\n\n",
      study.workload.arrival_count, to_string(study.workload.mean_interarrival).c_str(),
      study.patterns, to_string(study.resilience.node_mtbf).c_str());

  profiler.begin("run");
  obs::ProgressMeter meter{"pattern-run"};
  recovery::BatchReport report;
  const auto results =
      run_workload_study(study, figure4_combos(), meter.callback(), &report);
  coordinator.absorb(report);
  if (coordinator.interrupted()) return coordinator.finish();

  profiler.begin("reduce");
  const Table table = workload_results_table(results);
  std::printf("%s", table.to_text().c_str());
  if (cli.flag("--csv")) std::printf("\n%s", table.to_csv().c_str());

  if (obs.metrics()) {
    // Merge per-combo metrics in combo order: byte-identical for every
    // --threads value.
    obs::MetricSet merged;
    for (const WorkloadComboResult& r : results) {
      if (r.metrics.has_value()) merged.merge(*r.metrics);
    }
    std::printf("\nInstrumented breakdown (whole study):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs.metrics_path);
    std::printf("metrics written to %s\n", obs.metrics_path.c_str());
  }

  profiler.end();
  std::printf("(dropped %% = applications missing their Eq.-1 deadline; "
              "phases: %s)\n",
              profiler.summary().c_str());
  return coordinator.finish();
}
