#include "study/context.hpp"

#include <cstdio>

namespace xres::study {

ObsCollector& StudyContext::collector() {
  if (!collector_.has_value()) collector_.emplace(options_.obs);
  return *collector_;
}

RecoveryCoordinator& StudyContext::recovery() {
  if (!recovery_.has_value()) {
    recovery_.emplace(options_.recovery, def_->journal_study(), options_.seed);
  }
  return *recovery_;
}

void StudyContext::emit_csv(const Table& table) {
  if (!options_.csv && options_.csv_path.empty()) return;
  if (options_.csv_path.empty()) {
    std::printf("\n%s", table.to_csv().c_str());
  } else {
    table.write_csv(options_.csv_path);
    statusf("CSV written to %s\n", options_.csv_path.c_str());
  }
}

}  // namespace xres::study
