// Ablation: parallel recovery's sensitivity to the recovery-parallelism
// factor P (how many helper nodes replay the failed node's work). The
// paper takes its value from Meneses et al. [2]; this sweep shows the
// Figure 1/2 conclusions hold for any P >= 1 and quantifies the gain.

#include <cstdio>

#include "apps/app_type.hpp"
#include "common.hpp"
#include "core/single_app_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"ablation_recovery_parallelism — parallel recovery vs. P"};
  cli.add_option("--trials", "trials per P", "60");
  cli.add_option("--seed", "root RNG seed", "8");
  add_threads_option(cli);
  bench::add_obs_options(cli);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const auto trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const TrialExecutor executor{parse_threads_option(cli)};
  bench::ObsCollector collector{bench::read_obs_options(cli)};
  bench::RecoveryCoordinator coordinator{bench::read_recovery_options(cli),
                                         "ablation_recovery_parallelism", seed};

  std::printf("Ablation: parallel recovery efficiency vs. recovery parallelism P\n");
  std::printf("application D64 @ 100%% of the exascale system, MTBF 10 y, %u trials\n\n",
              trials);

  Table table{{"P", "efficiency", "time recovering (mean)", "energy (node-s, mean)"}};
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    SingleAppTrialConfig config;
    config.app = AppSpec{app_type_by_name("D64"), 120000, 1440};
    config.technique = TechniqueKind::kParallelRecovery;
    config.resilience.recovery_parallelism = p;

    std::vector<TrialSpec> specs;
    specs.reserve(trials);
    for (std::uint32_t t = 0; t < trials; ++t) {
      specs.push_back(TrialSpec{config, {t}});
    }
    RunningStats eff;
    RunningStats recovering;
    RunningStats energy;
    for (const ExecutionResult& r : collector.run_batch(
             executor, seed, specs, "P=" + fmt_double(p, 0), coordinator)) {
      eff.add(r.efficiency);
      recovering.add(r.time_recovering.to_minutes());
      energy.add(r.node_seconds);
    }
    table.add_row({fmt_double(p, 0), fmt_mean_std(eff.mean(), eff.stddev()),
                   fmt_double(recovering.mean(), 1) + " min",
                   fmt_double(energy.mean(), 0)});
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  return coordinator.finish();
}
