// Unit tests for the event queue and simulation engine.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TimePoint at(double s) { return TimePoint::at(Duration::seconds(s)); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3.0), [&] { order.push_back(3); });
  q.schedule(at(1.0), [&] { order.push_back(1); });
  q.schedule(at(2.0), [&] { order.push_back(2); });
  while (auto e = q.pop()) e->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(5.0), [&] { order.push_back(1); });
  q.schedule(at(5.0), [&] { order.push_back(2); });
  q.schedule(at(5.0), [&] { order.push_back(3); });
  while (auto e = q.pop()) e->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1.0), [&] { order.push_back(1); });
  const EventId doomed = q.schedule(at(2.0), [&] { order.push_back(2); });
  q.schedule(at(3.0), [&] { order.push_back(3); });
  EXPECT_TRUE(q.pending(doomed));
  EXPECT_TRUE(q.cancel(doomed));
  EXPECT_FALSE(q.pending(doomed));
  EXPECT_FALSE(q.cancel(doomed));  // second cancel is a no-op
  while (auto e = q.pop()) e->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(at(1.0), [] {});
  q.schedule(at(2.0), [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
  EXPECT_EQ(q.next_time(), at(2.0));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.next_time().has_value());
}

TEST(EventQueue, RejectsEmptyCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule(at(1.0), EventCallback{}), CheckError);
}

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  std::vector<double> times;
  sim.schedule_after(Duration::seconds(10.0), [&] { times.push_back(sim.now().to_seconds()); });
  sim.schedule_at(at(5.0), [&] { times.push_back(sim.now().to_seconds()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 10.0);
  EXPECT_EQ(sim.events_processed(), 2U);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(at(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(at(1.0), [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(Duration::seconds(-1.0), [] {}), CheckError);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(1.0), [&] {
    ++fired;
    sim.schedule_after(Duration::seconds(1.0), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
}

TEST(Simulation, RunUntilAdvancesClockPastLastEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(3.0), [&] { ++fired; });
  sim.schedule_at(at(8.0), [&] { ++fired; });
  sim.run_until(at(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RequestStopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(at(1.0), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_at(at(2.0), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, MaxEventsGuard) {
  Simulation sim;
  int fired = 0;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++fired;
    sim.schedule_after(Duration::seconds(1.0), tick);
  };
  sim.schedule_after(Duration::seconds(1.0), tick);
  sim.run(/*max_events=*/25);
  EXPECT_EQ(fired, 25);
}

TEST(Simulation, CancelScheduledEvent) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.schedule_at(at(4.0), [&] { ++fired; });
  sim.schedule_at(at(1.0), [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 1.0);
}

TEST(Simulation, DeterministicTieOrderWithCancellation) {
  // A cancelled event between two live ones at the same time must not
  // disturb the deterministic order.
  Simulation sim;
  std::string log;
  sim.schedule_at(at(1.0), [&] { log += 'a'; });
  const EventId b = sim.schedule_at(at(1.0), [&] { log += 'b'; });
  sim.schedule_at(at(1.0), [&] { log += 'c'; });
  sim.cancel(b);
  sim.run();
  EXPECT_EQ(log, "ac");
}

}  // namespace
}  // namespace xres
