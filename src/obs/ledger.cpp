#include "obs/ledger.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <optional>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json.hpp"
#include "util/crc32.hpp"
#include "util/framed_line.hpp"
#include "util/io.hpp"

namespace xres::obs {

namespace {

constexpr std::string_view kLedgerKind = "xres-run-v1";

std::mutex g_last_mutex;
std::optional<RunRecord> g_last_record;

/// mkdir -p for the directory part of \p path; best-effort.
void ensure_parent_dirs(const std::string& path) {
  std::size_t pos = 0;
  while ((pos = path.find('/', pos + 1)) != std::string::npos) {
    const std::string dir = path.substr(0, pos);
    if (dir.empty()) continue;
    ::mkdir(dir.c_str(), 0755);  // EEXIST is the common, fine case
  }
}

}  // namespace

std::string to_ledger_json(const RunRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.key("ledger").value(std::string{kLedgerKind});
  w.key("id").value(record.id);
  w.key("study").value(record.study);
  if (!record.cell.empty()) w.key("cell").value(record.cell);
  if (!record.suite.empty()) w.key("suite").value(record.suite);
  w.key("seed").value(static_cast<std::uint64_t>(record.seed));
  w.key("threads").value(static_cast<std::uint64_t>(record.threads));
  w.key("build").value(record.build);
  w.key("status").value(static_cast<std::int64_t>(record.status));
  w.key("params_digest").value(record.params_digest);
  w.key("params").begin_object();
  for (const auto& [key, value] : record.params) w.key(key).value(value);
  w.end_object();
  w.key("counters").begin_object();
  for (const auto& [key, value] : record.counters) w.key(key).value(value);
  w.end_object();
  w.key("wall_s").value(record.wall_seconds);
  w.key("trials_per_s").value(record.trials_per_second);
  w.key("events_per_s").value(record.events_per_second);
  w.key("peak_rss_bytes").value(record.peak_rss);
  if (!record.metrics_crc.empty()) w.key("metrics_crc").value(record.metrics_crc);
  if (!record.manifest_crc.empty()) {
    w.key("manifest_crc").value(record.manifest_crc);
  }
  if (!record.platform_crc.empty()) {
    w.key("platform_crc").value(record.platform_crc);
  }
  w.end_object();
  return w.str();
}

std::string mint_run_id() {
  static std::atomic<unsigned> g_sequence{0};
  const unsigned seq = g_sequence.fetch_add(1, std::memory_order_relaxed);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%08llx-%05lx-%u",
                static_cast<unsigned long long>(std::time(nullptr)),
                static_cast<unsigned long>(::getpid()), seq);
  return buf;
}

std::string params_digest(
    const std::vector<std::pair<std::string, std::string>>& params) {
  std::uint32_t crc = 0;
  for (const auto& [key, value] : params) {
    crc = crc32(key, crc);
    crc = crc32("=", crc);
    crc = crc32(value, crc);
    crc = crc32("\n", crc);
  }
  return crc32_hex(crc);
}

bool append_run_record(const std::string& path, const RunRecord& record) {
  if (path.empty()) return false;
  std::string line = frame_crc_line(to_ledger_json(record));
  ensure_parent_dirs(path);
  // The ledger is best-effort by contract (docs/ROBUSTNESS.md policy
  // table): any failure — including an injected EIO — degrades to a
  // warn-once and a false return; it never throws, retries, or changes the
  // exit code of the run it is recording.
  // O_RDWR, not O_WRONLY: the torn-tail probe below pread()s the last byte.
  const int fd = io::open_fd(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC,
                             0644);
  if (fd < 0) {
    io::warn_once_degraded("run ledger",
                           "cannot open " + path + ": " + std::strerror(errno));
    return false;
  }
  // A SIGKILLed writer can leave a torn final line with no newline; start
  // on a fresh line so this record does not merge into the torn one (the
  // scanner skips the resulting blank/corrupt line, never this record).
  struct ::stat st {};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      line.insert(line.begin(), '\n');
    }
  }
  // One write() of one whole line: POSIX O_APPEND makes this atomic with
  // respect to other appenders, so concurrent runs never interleave bytes.
  // A short write (injected or real) leaves a torn line; terminate it so
  // the scanner drops exactly that line and future appends stay readable.
  const ssize_t n = io::write_fd(fd, line.data(), line.size(), path.c_str());
  const bool ok = n == static_cast<ssize_t>(line.size());
  if (!ok) {
    io::warn_once_degraded("run ledger",
                           "append to " + path + " failed: " + std::strerror(errno));
    if (n > 0) (void)!::write(fd, "\n", 1);
  }
  io::close_fd(fd, path.c_str());
  return ok;
}

void set_last_run_record(const RunRecord& record) {
  const std::lock_guard<std::mutex> lock{g_last_mutex};
  g_last_record = record;
}

bool last_run_record(RunRecord& out) {
  const std::lock_guard<std::mutex> lock{g_last_mutex};
  if (!g_last_record.has_value()) return false;
  out = *g_last_record;
  return true;
}

}  // namespace xres::obs
