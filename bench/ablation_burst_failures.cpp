// Ablation: spatially correlated (burst) failures in the workload study.
// The paper assumes independent single-node failures; real machines also
// lose cabinets and power domains. This sweep keeps the event rate fixed
// and converts a growing fraction of events into contiguous-block bursts.

#include <cstdio>

#include "common.hpp"
#include "core/workload_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"ablation_burst_failures — dropped %% vs correlated-failure mix"};
  cli.add_option("--patterns", "arrival patterns per cell", "15");
  cli.add_option("--burst-width", "nodes per burst (cabinet size)", "512");
  cli.add_option("--seed", "root RNG seed", "20170530");
  bench::add_obs_options(cli, /*with_trace=*/false);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const auto patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  const auto width = static_cast<std::uint32_t>(cli.integer("--burst-width"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const bench::ObsOptions obs_options = bench::read_obs_options(cli);
  bench::RecoveryCoordinator coordinator{bench::read_recovery_options(cli),
                                         "ablation_burst_failures", seed};
  const TrialExecutor executor{1};  // pattern runs are serial in this sweep
  obs::MetricSet merged;

  std::printf("Ablation: correlated failures (bursts of %u nodes), scheduler Slack\n\n",
              width);

  Table table{{"burst probability", "checkpoint-restart dropped %",
               "multilevel dropped %", "parallel-recovery dropped %"}};
  for (double probability : {0.0, 0.1, 0.3, 0.6}) {
    std::vector<std::string> row{fmt_percent(probability, 0)};
    for (TechniqueKind kind : workload_techniques()) {
      WorkloadStudyConfig study;
      study.patterns = patterns;
      study.seed = seed;
      RunningStats dropped;
      bench::run_patterns_controlled(
          coordinator, executor,
          "burst:" + fmt_percent(probability, 0) + "/" + to_string(kind), patterns,
          seed,
          [&](std::uint32_t p) {
            const ArrivalPattern pattern =
                generate_pattern(study.workload, study.seed, p);
            WorkloadEngineConfig engine;
            engine.machine = study.machine;
            engine.resilience = study.resilience;
            engine.policy = TechniquePolicy::fixed_technique(kind);
            engine.scheduler = SchedulerKind::kSlack;
            engine.seed = derive_seed(study.seed, 0x656e67696eULL, p);
            engine.burst_probability = probability;
            engine.burst_width = width;
            obs::TrialObs run_obs;
            if (obs_options.metrics()) {
              run_obs.enable_metrics();
              engine.obs = &run_obs;
            }
            WorkloadOutcome outcome;
            outcome.result = run_workload(engine, pattern);
            if (obs_options.metrics()) outcome.metrics = *run_obs.metrics();
            return outcome;
          },
          [&](std::uint32_t, const WorkloadOutcome& outcome) {
            dropped.add(outcome.result.dropped_fraction);
            if (obs_options.metrics() && outcome.metrics.has_value()) {
              merged.merge(*outcome.metrics);
            }
          });
      if (coordinator.interrupted()) return coordinator.finish();
      row.push_back(fmt_double(dropped.mean() * 100.0, 2) + " ± " +
                    fmt_double(dropped.stddev() * 100.0, 2));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished probability %.1f\n", probability);
  }
  std::printf("%s", table.to_text().c_str());
  if (obs_options.metrics()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs_options.metrics_path);
    std::printf("metrics written to %s\n", obs_options.metrics_path.c_str());
  }
  std::printf("(bursts multiply the per-event damage; severities are clamped to\n"
              " node-loss level, which multilevel absorbs with partner copies)\n");
  return coordinator.finish();
}
