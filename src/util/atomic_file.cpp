#include "util/atomic_file.hpp"

#include <cstdio>

#include "util/check.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace xres {

bool flush_to_disk(std::FILE* file) {
  if (file == nullptr) return false;
  if (std::fflush(file) != 0) return false;
#if defined(_WIN32)
  return _commit(_fileno(file)) == 0;
#else
  return ::fsync(fileno(file)) == 0;
#endif
}

void write_file_atomic(const std::string& path, std::string_view content) {
  XRES_CHECK(!path.empty(), "atomic write needs a non-empty path");
#if defined(_WIN32)
  const std::string tmp = path + ".tmp";
#else
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#endif

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  XRES_CHECK(f != nullptr, "cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool flushed = flush_to_disk(f);
  const bool closed = std::fclose(f) == 0;
  if (written != content.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    XRES_CHECK(false, "short write to " + tmp);
  }
#if defined(_WIN32)
  // rename() does not replace on Windows; remove the target first.
  std::remove(path.c_str());
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    XRES_CHECK(false, "cannot rename " + tmp + " over " + path);
  }
}

}  // namespace xres
