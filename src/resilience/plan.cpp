#include "resilience/plan.hpp"

#include "util/check.hpp"

namespace xres {

std::size_t ExecutionPlan::level_index_for_checkpoint(std::uint64_t k) const {
  XRES_CHECK(!levels.empty(), "plan has no checkpoint levels");
  XRES_CHECK(k >= 1, "checkpoint index counts from 1");
  // Odometer: the k-th checkpoint is the highest level i such that k is a
  // multiple of the product of nesting counts below i.
  std::size_t best = 0;
  std::uint64_t period = 1;
  for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
    period *= static_cast<std::uint64_t>(nesting[i]);
    if (k % period == 0) best = i + 1;
  }
  return best;
}

std::size_t ExecutionPlan::recovery_level_for(SeverityLevel severity) const {
  XRES_CHECK(!levels.empty(), "plan has no checkpoint levels");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].coverage >= severity) return i;
  }
  XRES_CHECK(false, "no checkpoint level covers severity " + std::to_string(severity));
}

void ExecutionPlan::validate() const {
  app.validate();
  XRES_CHECK(physical_nodes >= app.nodes, "physical nodes below application nodes");
  XRES_CHECK(baseline > Duration::zero(), "baseline must be positive");
  XRES_CHECK(work_target >= baseline, "stretched work target below baseline");
  XRES_CHECK(recovery_parallelism >= 1.0, "recovery parallelism must be >= 1");
  XRES_CHECK(replication_degree >= 1.0, "replication degree must be >= 1");
  XRES_CHECK(checkpoint_work_rate >= 0.0 && checkpoint_work_rate < 1.0,
             "checkpoint work rate must be in [0, 1)");
  XRES_CHECK(nesting.size() == levels.size(), "nesting size must match level count");
  if (kind != TechniqueKind::kNone) {
    XRES_CHECK(!levels.empty(), "resilient plan needs at least one checkpoint level");
    XRES_CHECK(checkpoint_quantum > Duration::zero(), "checkpoint quantum must be positive");
    for (const auto& level : levels) {
      XRES_CHECK(level.save_cost >= Duration::zero(), "negative save cost");
      XRES_CHECK(level.restore_cost >= Duration::zero(), "negative restore cost");
      XRES_CHECK(level.coverage >= 1, "level coverage must be >= 1");
    }
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
      XRES_CHECK(levels[i].coverage <= levels[i + 1].coverage,
                 "levels must be ordered by increasing coverage");
      XRES_CHECK(nesting[i] >= 1, "nesting counts must be >= 1");
    }
  }
}

}  // namespace xres
