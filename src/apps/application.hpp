#pragma once

/// \file application.hpp
/// Application instances: a Table-I type scaled to a node count and a time
/// step count, plus the workload-study job wrapper (arrival + deadline,
/// paper Eq. 1).

#include <cstdint>
#include <functional>
#include <string>

#include "apps/app_type.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace xres {

/// A concrete application: type + size + length. Weak scaling means the
/// per-time-step behavior is independent of \p nodes.
struct AppSpec {
  AppType type{};
  std::uint32_t nodes{1};       ///< N_a
  std::uint64_t time_steps{1};  ///< T_S

  /// Delay-free execution time T_B = T_S × (T_W + T_C) = T_S minutes
  /// (no resilience stretch applied).
  [[nodiscard]] Duration baseline_time() const {
    return time_step_length() * static_cast<double>(time_steps);
  }

  /// Total computation (non-communication) time across the run.
  [[nodiscard]] Duration total_work_time() const {
    return baseline_time() * type.work_fraction();
  }

  /// Total communication time across the run.
  [[nodiscard]] Duration total_comm_time() const {
    return baseline_time() * type.comm_fraction;
  }

  /// Aggregate memory footprint (N_m × N_a).
  [[nodiscard]] DataSize total_memory() const {
    return type.memory_per_node * static_cast<double>(nodes);
  }

  /// Construct with a length given as a baseline duration; the duration
  /// must be a whole number of time steps.
  [[nodiscard]] static AppSpec from_baseline(AppType type, std::uint32_t nodes,
                                             Duration baseline);

  /// Short human-readable description, e.g. "D64 x 30000 nodes, 24.00 h".
  [[nodiscard]] std::string describe() const;

  void validate() const;
};

/// Identifier for an application instance in a workload.
enum class JobId : std::uint64_t {};

}  // namespace xres

template <>
struct std::hash<xres::JobId> {
  std::size_t operator()(xres::JobId id) const noexcept {
    return std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(id));
  }
};

namespace xres {

/// An application submission in the workload studies (Sections VI–VII).
struct Job {
  JobId id{};
  AppSpec spec{};
  TimePoint arrival{};   ///< T_A
  TimePoint deadline{};  ///< T_D (Eq. 1)
};

/// Eq. 1: T_D = T_A + U(1.2, 2.0) × T_B.
[[nodiscard]] TimePoint assign_deadline(TimePoint arrival, Duration baseline, Pcg32& rng);

}  // namespace xres
