// The built-in adhoc studies: `xres efficiency` and `xres workload`, the
// CLI's parameterized exploration surfaces. They live in the study library
// (not bench/) because the tier-1 TSAN pass builds with XRES_BUILD_BENCH=OFF
// and still runs `xres efficiency` — the catalog must not depend on the
// bench target being configured.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "core/workload_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"
#include "util/barchart.hpp"

namespace xres::study {
namespace {

int run_efficiency_adhoc(StudyContext& ctx) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name(ctx.params().str("type"));
  config.resilience.node_mtbf = Duration::years(ctx.params().real("mtbf-years"));
  config.baseline = Duration::hours(ctx.params().real("baseline-hours"));
  config.trials = ctx.params().u32("trials");
  try {
    config.surrogate = surrogate_mode_from_string(ctx.params().str("surrogate"));
  } catch (const CheckError& e) {
    usage_error_from(e);
  }
  config.seed = ctx.seed();
  config.threads = ctx.threads();
  apply_platform_params(config.machine, ctx.params());
  const ObsOptions& obs = ctx.options().obs;
  config.collect_metrics = obs.metrics();
  config.collect_trace = obs.trace();

  RecoveryCoordinator& rec = ctx.recovery();
  config.recovery = rec.options();

  const EfficiencyStudyResult result = run_efficiency_study(config);
  rec.absorb(result.recovery_report);
  if (rec.interrupted()) return rec.finish();  // withhold partial output
  std::printf("%s", result.to_table().to_text().c_str());
  if (!result.surrogate_cells.empty()) {
    std::printf("\nSurrogate provenance (bound = max |predicted - simulated mean|):\n%s",
                result.to_surrogate_table().to_text().c_str());
  }
  if (obs.metrics()) {
    std::printf("\nInstrumented breakdown (per technique, whole study):\n%s",
                result.to_metrics_table().to_text().c_str());
    result.metrics->write_json(obs.metrics_path);
    statusf("metrics written to %s\n", obs.metrics_path.c_str());
  }
  if (obs.trace()) {
    result.trace.write(obs.trace_path);
    statusf("trace written to %s (%zu tracks, %zu events; open in Perfetto)\n",
            obs.trace_path.c_str(), result.trace.track_count(),
            result.trace.event_count());
  }
  if (ctx.options().chart) {
    std::vector<std::string> series;
    for (TechniqueKind kind : config.techniques) series.emplace_back(to_string(kind));
    BarChart chart{series};
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      std::vector<double> values;
      for (const Summary& s : result.efficiency[si]) values.push_back(s.mean);
      chart.add_category(fmt_percent(config.size_fractions[si], 0), values);
    }
    std::printf("\n%s", chart.render(50, 1.0).c_str());
  }
  return rec.finish();
}

int run_workload_adhoc(StudyContext& ctx) {
  WorkloadStudyConfig config;
  config.patterns = ctx.params().u32("patterns");
  config.seed = ctx.seed();
  config.threads = ctx.threads();
  apply_platform_params(config.machine, ctx.params());
  const ObsOptions& obs = ctx.options().obs;
  config.collect_metrics = obs.metrics();
  config.resilience.node_mtbf = Duration::years(ctx.params().real("mtbf-years"));
  const std::string bias = ctx.params().str("bias");
  for (WorkloadBias b : {WorkloadBias::kUnbiased, WorkloadBias::kHighMemory,
                         WorkloadBias::kHighCommunication, WorkloadBias::kLargeApps}) {
    if (bias == to_string(b)) config.workload.bias = b;
  }

  WorkloadCombo combo;
  combo.scheduler = scheduler_from_string(ctx.params().str("scheduler"));
  const std::string technique = ctx.params().str("technique");
  combo.policy = technique == "selection" ? TechniquePolicy::selection()
                 : technique == "none"    ? TechniquePolicy::ideal_baseline()
                 : TechniquePolicy::fixed_technique(technique_from_string(technique));

  RecoveryCoordinator& rec = ctx.recovery();
  config.recovery = rec.options();

  recovery::BatchReport report;
  const auto results = run_workload_study(
      config, {combo},
      [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r  pattern %zu/%zu", done, total);
        if (done == total) std::fprintf(stderr, "\n");
      },
      &report);
  rec.absorb(report);
  if (rec.interrupted()) return rec.finish();  // withhold partial output
  std::printf("%s", workload_results_table(results).to_text().c_str());
  if (obs.metrics()) {
    obs::MetricSet merged;
    for (const WorkloadComboResult& r : results) {
      if (r.metrics.has_value()) merged.merge(*r.metrics);
    }
    std::printf("\nInstrumented breakdown:\n%s", merged.to_table().to_text().c_str());
    merged.write_json(obs.metrics_path);
    statusf("metrics written to %s\n", obs.metrics_path.c_str());
  }
  return rec.finish();
}

}  // namespace

namespace detail {

void register_builtin_studies(StudyRegistry& registry) {
  {
    StudyDefinition def;
    def.name = "efficiency";
    def.group = StudyGroup::kAdhoc;
    def.description = "technique-efficiency sweep over application sizes";
    def.summary = "xres efficiency — technique-efficiency sweep over application sizes";
    def.journal_id = "xres efficiency";  // historical journal identity
    def.options.default_seed = 20170529;
    def.options.chart = true;
    def.params.text("type", "application type (Table I)", "C64");
    def.params.real("mtbf-years", "per-node MTBF", 10).min(0.001);
    def.params.integer("trials", "trials per cell", 50).min(1);
    def.params.real("baseline-hours", "delay-free execution time", 24).min(0.001);
    def.params.text("surrogate",
                    "sim | analytic | auto — answer cells from the analytic "
                    "surrogate with a per-cell error bound (docs/STUDIES.md)",
                    "sim");
    def.run = run_efficiency_adhoc;
    registry.add(std::move(def));
  }
  {
    StudyDefinition def;
    def.name = "workload";
    def.group = StudyGroup::kAdhoc;
    def.description = "oversubscribed-machine dropped-applications study";
    def.summary = "xres workload — oversubscribed-machine study";
    def.journal_id = "xres workload";  // historical journal identity
    def.options.default_seed = 20170530;
    def.options.obs = StudyOptionsSpec::Obs::kNoTrace;
    def.params.text("scheduler", "FCFS | Random | Slack | FirstFit | SJF | TopoPack",
                    "Slack");
    def.params.text("technique", "technique name, 'selection' or 'none'",
                    "parallel-recovery");
    def.params.integer("patterns", "arrival patterns to average", 10).min(1);
    def.params.real("mtbf-years", "per-node MTBF", 10).min(0.001);
    def.params.text("bias", "unbiased | high-memory | high-communication | large-apps",
                    "unbiased");
    def.run = run_workload_adhoc;
    registry.add(std::move(def));
  }
}

}  // namespace detail
}  // namespace xres::study
