// Ablation: spatially correlated (burst) failures in the workload study.
// The paper assumes independent single-node failures; real machines also
// lose cabinets and power domains. This sweep keeps the event rate fixed
// and converts a growing fraction of events into contiguous-block bursts.

#include <cstdio>
#include <vector>

#include "core/workload_study.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto patterns = ctx.params().u32("patterns");
  const auto width = ctx.params().u32("burst-width");
  const std::uint64_t seed = ctx.seed();
  const study::ObsOptions& obs_options = ctx.options().obs;
  study::RecoveryCoordinator& coordinator = ctx.recovery();
  const TrialExecutor executor{1};  // pattern runs are serial in this sweep
  obs::MetricSet merged;

  std::printf("Ablation: correlated failures (bursts of %u nodes), scheduler Slack\n\n",
              width);

  Table table{{"burst probability", "checkpoint-restart dropped %",
               "multilevel dropped %", "parallel-recovery dropped %"}};
  for (double probability : {0.0, 0.1, 0.3, 0.6}) {
    std::vector<std::string> row{fmt_percent(probability, 0)};
    for (TechniqueKind kind : workload_techniques()) {
      WorkloadStudyConfig study_config;
      study_config.patterns = patterns;
      study_config.seed = seed;
      study::apply_platform_params(study_config.machine, ctx.params());
      RunningStats dropped;
      study::run_patterns_controlled(
          coordinator, executor,
          "burst:" + fmt_percent(probability, 0) + "/" + to_string(kind), patterns,
          seed,
          [&](std::uint32_t p) {
            const ArrivalPattern pattern =
                generate_pattern(study_config.workload, study_config.seed, p);
            WorkloadEngineConfig engine;
            engine.machine = study_config.machine;
            engine.resilience = study_config.resilience;
            engine.policy = TechniquePolicy::fixed_technique(kind);
            engine.scheduler = SchedulerKind::kSlack;
            engine.seed = derive_seed(study_config.seed, 0x656e67696eULL, p);
            engine.burst_probability = probability;
            engine.burst_width = width;
            obs::TrialObs run_obs;
            if (obs_options.metrics()) {
              run_obs.enable_metrics();
              engine.obs = &run_obs;
            }
            WorkloadOutcome outcome;
            outcome.result = run_workload(engine, pattern);
            if (obs_options.metrics()) outcome.metrics = *run_obs.metrics();
            return outcome;
          },
          [&](std::uint32_t, const WorkloadOutcome& outcome) {
            dropped.add(outcome.result.dropped_fraction);
            if (obs_options.metrics() && outcome.metrics.has_value()) {
              merged.merge(*outcome.metrics);
            }
          });
      if (coordinator.interrupted()) return coordinator.finish();
      row.push_back(fmt_double(dropped.mean() * 100.0, 2) + " ± " +
                    fmt_double(dropped.stddev() * 100.0, 2));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished probability %.1f\n", probability);
  }
  std::printf("%s", table.to_text().c_str());
  if (obs_options.metrics()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs_options.metrics_path);
    study::statusf("metrics written to %s\n", obs_options.metrics_path.c_str());
  }
  std::printf("(bursts multiply the per-event damage; severities are clamped to\n"
              " node-loss level, which multilevel absorbs with partner copies)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_burst_failures";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "dropped applications as independent failures become correlated bursts";
  def.summary = "ablation_burst_failures — dropped %% vs correlated-failure mix";
  def.options.default_seed = 20170530;
  def.options.threads = false;  // pattern runs are serial in this sweep
  def.options.obs = study::StudyOptionsSpec::Obs::kNoTrace;
  def.params.integer("patterns", "arrival patterns per cell", 15).min(1);
  def.params.integer("burst-width", "nodes per burst (cabinet size)", 512).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
