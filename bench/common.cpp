#include "common.hpp"

#include <chrono>
#include <cstdio>

#include "core/report.hpp"
#include "util/barchart.hpp"

namespace xres::bench {

void add_common_options(CliParser& cli, std::uint32_t default_trials) {
  cli.add_option("--trials", "trials per bar (paper: 200)",
                 std::to_string(default_trials));
  cli.add_option("--seed", "root RNG seed", "20170529");
  cli.add_option("--threads", "trial worker threads (0 = all hardware threads; "
                 "results are thread-count-invariant)", "0");
  cli.add_flag("--csv", "also emit raw CSV");
  cli.add_flag("--chart", "also render ASCII bars");
  cli.add_option("--csv-path", "write CSV to this file instead of stdout", "");
  cli.add_option("--report", "write a markdown study report to this path", "");
}

HarnessOptions read_common_options(const CliParser& cli) {
  HarnessOptions options;
  options.trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  options.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  options.threads = static_cast<unsigned>(cli.integer("--threads"));
  options.csv = cli.flag("--csv");
  options.chart = cli.flag("--chart");
  options.csv_path = cli.str("--csv-path");
  options.report_path = cli.str("--report");
  return options;
}

int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          const HarnessOptions& options) {
  config.trials = options.trials;
  config.seed = options.seed;
  config.threads = options.threads;

  std::printf("%s\n", title.c_str());
  std::printf("machine: %s\n", config.machine.describe().c_str());
  std::printf("node MTBF: %s; baseline T_B: %s; %u trials per bar; %u threads\n\n",
              to_string(config.resilience.node_mtbf).c_str(),
              to_string(config.baseline).c_str(), config.trials,
              TrialExecutor{options.threads}.threads());

  const auto start = std::chrono::steady_clock::now();
  const EfficiencyStudyResult result =
      run_efficiency_study(config, [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r  cell %zu/%zu", done, total);
        if (done == total) std::fprintf(stderr, "\n");
        std::fflush(stderr);
      });
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  std::printf("%s", result.to_table().to_text().c_str());
  std::printf("(efficiency = baseline execution time / simulated execution time; "
              "computed in %.1f s)\n",
              elapsed);

  if (options.chart) {
    std::vector<std::string> series;
    for (TechniqueKind kind : config.techniques) series.emplace_back(to_string(kind));
    BarChart chart{series};
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      std::vector<double> values;
      for (const Summary& s : result.efficiency[si]) values.push_back(s.mean);
      chart.add_category(fmt_percent(config.size_fractions[si], 0), values);
    }
    std::printf("\n%s", chart.render(50, 1.0).c_str());
  }

  if (options.csv || !options.csv_path.empty()) {
    const Table csv = result.to_csv_table();
    if (options.csv_path.empty()) {
      std::printf("\n%s", csv.to_csv().c_str());
    } else {
      csv.write_csv(options.csv_path);
      std::printf("CSV written to %s\n", options.csv_path.c_str());
    }
  }

  if (!options.report_path.empty()) {
    StudyReport report{title};
    report.add_config("machine", config.machine.describe());
    report.add_config("node MTBF", to_string(config.resilience.node_mtbf));
    report.add_config("application type", config.app_type.name);
    report.add_config("baseline T_B", to_string(config.baseline));
    report.add_config("trials per bar", std::to_string(config.trials));
    report.add_config("seed", std::to_string(config.seed));
    report.add_paragraph(
        "Efficiency = delay-free baseline execution time divided by the "
        "simulated execution time with failures and resilience overhead "
        "(mean ± sample standard deviation across trials).");
    report.add_table("Efficiency by system share", result.to_table());
    report.add_table("Raw data", result.to_csv_table());
    report.write(options.report_path);
    std::printf("report written to %s\n", options.report_path.c_str());
  }
  return 0;
}

}  // namespace xres::bench
