file(REMOVE_RECURSE
  "CMakeFiles/fig1_efficiency_a32.dir/fig1_efficiency_a32.cpp.o"
  "CMakeFiles/fig1_efficiency_a32.dir/fig1_efficiency_a32.cpp.o.d"
  "fig1_efficiency_a32"
  "fig1_efficiency_a32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_efficiency_a32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
