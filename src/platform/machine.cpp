#include "platform/machine.hpp"

namespace xres {

Machine::Machine(MachineSpec spec) : spec_{spec}, allocator_{spec.node_count} {
  spec_.validate();
}

std::optional<NodeRange> Machine::allocate(std::uint32_t count, OwnerId owner) {
  XRES_CHECK(!by_owner_.contains(owner), "owner already holds an allocation");
  auto range = placement_group_ > 1 ? allocator_.allocate_grouped(count, placement_group_)
                                    : allocator_.allocate(count);
  if (!range.has_value()) return std::nullopt;
  by_first_node_.emplace(range->first, std::make_pair(range->count, owner));
  by_owner_.emplace(owner, *range);
  return range;
}

void Machine::release(OwnerId owner) {
  auto it = by_owner_.find(owner);
  XRES_CHECK(it != by_owner_.end(), "owner holds no allocation");
  allocator_.release(it->second);
  by_first_node_.erase(it->second.first);
  by_owner_.erase(it);
}

std::optional<NodeRange> Machine::allocation_of(OwnerId owner) const {
  auto it = by_owner_.find(owner);
  if (it == by_owner_.end()) return std::nullopt;
  return it->second;
}

std::optional<Machine::Victim> Machine::pick_random_busy_node(Pcg32& rng) const {
  const std::uint32_t busy = busy_nodes();
  if (busy == 0) return std::nullopt;
  // Uniform over busy nodes: draw the k-th busy node, then walk the
  // allocation index (allocation counts are small: one per running app).
  std::uint32_t k = rng.next_below(busy);
  for (const auto& [first, entry] : by_first_node_) {
    const auto& [count, owner] = entry;
    if (k < count) return Victim{first + k, owner};
    k -= count;
  }
  XRES_CHECK(false, "busy-node index out of sync with allocations");
}

std::vector<OwnerId> Machine::owners_in_range(std::uint32_t first,
                                              std::uint32_t count) const {
  XRES_CHECK(count > 0, "range must be non-empty");
  const std::uint32_t end = first + count;
  std::vector<OwnerId> owners;
  // Start from the allocation at or before `first` (it may straddle it).
  auto it = by_first_node_.upper_bound(first);
  if (it != by_first_node_.begin()) --it;
  for (; it != by_first_node_.end() && it->first < end; ++it) {
    const auto& [alloc_count, owner] = it->second;
    if (it->first + alloc_count > first) owners.push_back(owner);
  }
  return owners;
}

void Machine::validate() const {
  allocator_.validate();
  std::uint32_t total = 0;
  XRES_CHECK(by_first_node_.size() == by_owner_.size(), "allocation indexes out of sync");
  for (const auto& [first, entry] : by_first_node_) {
    const auto& [count, owner] = entry;
    auto it = by_owner_.find(owner);
    XRES_CHECK(it != by_owner_.end(), "allocation owner missing from owner index");
    XRES_CHECK(it->second.first == first && it->second.count == count,
               "allocation indexes disagree");
    for (std::uint32_t n = first; n < first + count; ++n) {
      XRES_CHECK(!allocator_.is_free(n), "allocated node marked free");
    }
    total += count;
  }
  XRES_CHECK(total == allocator_.busy_count(), "busy count out of sync");
}

}  // namespace xres
