#pragma once

/// \file platform_model.hpp
/// Pluggable platform data-movement model (docs/PLATFORM.md).
///
/// Historically the planner called the Eq. 3/5/6 free functions in
/// transfer.hpp directly, so the machine was three constants (L, B_N, N_S)
/// and PFS contention was an analytic assumption. A PlatformModel answers
/// the same questions behind an interface so a topology-aware
/// implementation (fattree.hpp) can report *effective* bandwidths derived
/// from link capacities and placement instead:
///
///  * `flat` (FlatPlatformModel, the default) delegates bit-identically to
///    the transfer.hpp free functions — every pre-topology artifact is
///    unchanged.
///  * `fattree` (FatTreePlatformModel) computes an application's injection
///    bandwidth from the k-ary fat-tree it spans and caps it by the queued
///    PFS device's aggregate service bandwidth (sim/pfs_device.hpp).
///
/// The planner consumes `pfs_transfer_time` / `*_time` when building
/// plans; the workload engine additionally consumes
/// `pfs_rate_cap_for_range` to account for the actual allocated node range
/// once placement is known.

#include <cstdint>
#include <memory>

#include "platform/spec.hpp"
#include "util/units.hpp"

namespace xres {

class PlatformModel {
 public:
  virtual ~PlatformModel() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Time for an N_a-node application to write (or read) a coordinated
  /// checkpoint of \p memory_per_node per node to the PFS, with the
  /// machine otherwise idle (Eq. 3 for the flat model).
  [[nodiscard]] virtual Duration pfs_transfer_time(DataSize memory_per_node,
                                                   std::uint32_t app_nodes) const = 0;

  /// Aggregate application→PFS bandwidth behind `pfs_transfer_time`
  /// (total bytes / time). Flat: B_N · N_S independent of app size.
  [[nodiscard]] virtual Bandwidth pfs_effective_bandwidth(std::uint32_t app_nodes) const = 0;

  /// Placement-aware cap on the aggregate PFS rate for an application
  /// allocated nodes [first, first + count): the minimum over fat-tree
  /// levels of spanned-subtree uplink capacity. The flat model has no
  /// topology, so this equals `pfs_effective_bandwidth(count)`.
  [[nodiscard]] virtual Bandwidth pfs_rate_cap_for_range(std::uint32_t first_node,
                                                         std::uint32_t count) const = 0;

  /// Eq. 5: level-1 checkpoint to node-local RAM.
  [[nodiscard]] virtual Duration local_memory_time(DataSize memory_per_node) const = 0;

  /// Eq. 6: level-2 checkpoint to a contiguous partner node.
  [[nodiscard]] virtual Duration partner_copy_time(DataSize memory_per_node) const = 0;

  /// Service channels of the shared PFS device (N_S for both models unless
  /// overridden via platform.pfs.channels).
  [[nodiscard]] virtual std::uint32_t pfs_service_channels() const = 0;

  /// Bandwidth of one PFS service channel (aggregate device bandwidth =
  /// channels × this).
  [[nodiscard]] virtual Bandwidth pfs_channel_bandwidth() const = 0;
};

/// The paper's closed-form model: Eq. 3/5/6 verbatim.
class FlatPlatformModel final : public PlatformModel {
 public:
  explicit FlatPlatformModel(const MachineSpec& machine) : machine_{machine} {}

  [[nodiscard]] const char* name() const override { return "flat"; }
  [[nodiscard]] Duration pfs_transfer_time(DataSize memory_per_node,
                                           std::uint32_t app_nodes) const override;
  [[nodiscard]] Bandwidth pfs_effective_bandwidth(std::uint32_t app_nodes) const override;
  [[nodiscard]] Bandwidth pfs_rate_cap_for_range(std::uint32_t first_node,
                                                 std::uint32_t count) const override;
  [[nodiscard]] Duration local_memory_time(DataSize memory_per_node) const override;
  [[nodiscard]] Duration partner_copy_time(DataSize memory_per_node) const override;
  [[nodiscard]] std::uint32_t pfs_service_channels() const override;
  [[nodiscard]] Bandwidth pfs_channel_bandwidth() const override;

 private:
  MachineSpec machine_;
};

/// Builds the model selected by \p machine.platform.model.
[[nodiscard]] std::unique_ptr<PlatformModel> make_platform_model(const MachineSpec& machine);

}  // namespace xres
