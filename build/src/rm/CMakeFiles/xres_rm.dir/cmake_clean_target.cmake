file(REMOVE_RECURSE
  "libxres_rm.a"
)
