#include "common.hpp"

#include <cstdio>

#include "core/report.hpp"
#include "obs/profile.hpp"
#include "util/barchart.hpp"
#include "util/log.hpp"

namespace xres::bench {

void add_obs_options(CliParser& cli, bool with_trace) {
  cli.add_option("--metrics", "write deterministic study metrics JSON to this path "
                 "(byte-identical for every --threads value)", "");
  if (with_trace) {
    cli.add_option("--trace", "write a Chrome trace-event JSON (Perfetto-loadable, "
                   "sim-time spans) to this path", "");
  }
  cli.add_option("--log-level", "override XRES_LOG: trace|debug|info|warn|error|off", "");
}

ObsOptions read_obs_options(const CliParser& cli) {
  ObsOptions options;
  options.metrics_path = cli.str("--metrics");
  if (cli.has_option("--trace")) options.trace_path = cli.str("--trace");
  const std::string level = cli.str("--log-level");
  if (!level.empty()) Logger::global().set_level(parse_log_level(level));
  return options;
}

void add_common_options(CliParser& cli, std::uint32_t default_trials) {
  cli.add_option("--trials", "trials per bar (paper: 200)",
                 std::to_string(default_trials));
  cli.add_option("--seed", "root RNG seed", "20170529");
  cli.add_option("--threads", "trial worker threads (0 = all hardware threads; "
                 "results are thread-count-invariant)", "0");
  cli.add_flag("--csv", "also emit raw CSV");
  cli.add_flag("--chart", "also render ASCII bars");
  cli.add_option("--csv-path", "write CSV to this file instead of stdout", "");
  cli.add_option("--report", "write a markdown study report to this path", "");
  add_obs_options(cli);
}

HarnessOptions read_common_options(const CliParser& cli) {
  HarnessOptions options;
  options.trials = static_cast<std::uint32_t>(cli.integer("--trials"));
  options.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  options.threads = static_cast<unsigned>(cli.integer("--threads"));
  options.csv = cli.flag("--csv");
  options.chart = cli.flag("--chart");
  options.csv_path = cli.str("--csv-path");
  options.report_path = cli.str("--report");
  options.obs = read_obs_options(cli);
  return options;
}

std::vector<ExecutionResult> ObsCollector::run_batch(const TrialExecutor& executor,
                                                     std::uint64_t root_seed,
                                                     std::span<const TrialSpec> specs,
                                                     const std::string& label,
                                                     const TrialProgress& progress) {
  if (!options_.enabled()) return executor.run_batch(root_seed, specs, progress);

  std::vector<obs::TrialObs> observers(specs.size());
  for (obs::TrialObs& o : observers) {
    if (options_.metrics()) o.enable_metrics();
  }
  if (options_.trace() && !observers.empty()) observers.front().enable_trace();
  std::vector<ExecutionResult> results =
      executor.run_batch(root_seed, specs, observers, progress);
  if (options_.metrics()) {
    if (!metrics_.has_value()) metrics_.emplace();
    // Merge in spec order: byte-identical for every thread count.
    for (const obs::TrialObs& o : observers) metrics_->merge(*o.metrics());
  }
  if (options_.trace() && !observers.empty()) {
    trace_.add_track(label, std::move(*observers.front().trace()));
  }
  return results;
}

void ObsCollector::finish() {
  if (options_.metrics() && metrics_.has_value()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                metrics_->to_table().to_text().c_str());
    metrics_->write_json(options_.metrics_path);
    std::printf("metrics written to %s\n", options_.metrics_path.c_str());
  }
  if (options_.trace() && !trace_.empty()) {
    trace_.write(options_.trace_path);
    std::printf("trace written to %s (%zu tracks, %zu events)\n",
                options_.trace_path.c_str(), trace_.track_count(), trace_.event_count());
  }
}

int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          const HarnessOptions& options) {
  obs::PhaseProfiler profiler;
  profiler.begin("setup");
  config.trials = options.trials;
  config.seed = options.seed;
  config.threads = options.threads;
  config.collect_metrics = options.obs.metrics();
  config.collect_trace = options.obs.trace();

  std::printf("%s\n", title.c_str());
  std::printf("machine: %s\n", config.machine.describe().c_str());
  std::printf("node MTBF: %s; baseline T_B: %s; %u trials per bar; %u threads\n\n",
              to_string(config.resilience.node_mtbf).c_str(),
              to_string(config.baseline).c_str(), config.trials,
              TrialExecutor{options.threads}.threads());

  profiler.begin("run");
  obs::ProgressMeter meter{"cell"};
  const EfficiencyStudyResult result = run_efficiency_study(config, meter.callback());

  profiler.begin("reduce");
  std::printf("%s", result.to_table().to_text().c_str());

  if (options.chart) {
    std::vector<std::string> series;
    for (TechniqueKind kind : config.techniques) series.emplace_back(to_string(kind));
    BarChart chart{series};
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      std::vector<double> values;
      for (const Summary& s : result.efficiency[si]) values.push_back(s.mean);
      chart.add_category(fmt_percent(config.size_fractions[si], 0), values);
    }
    std::printf("\n%s", chart.render(50, 1.0).c_str());
  }

  if (options.csv || !options.csv_path.empty()) {
    const Table csv = result.to_csv_table();
    if (options.csv_path.empty()) {
      std::printf("\n%s", csv.to_csv().c_str());
    } else {
      csv.write_csv(options.csv_path);
      std::printf("CSV written to %s\n", options.csv_path.c_str());
    }
  }

  if (options.obs.metrics()) {
    std::printf("\nInstrumented breakdown (per technique, whole study):\n%s",
                result.to_metrics_table().to_text().c_str());
    result.metrics->write_json(options.obs.metrics_path);
    std::printf("metrics written to %s\n", options.obs.metrics_path.c_str());
  }
  if (options.obs.trace()) {
    result.trace.write(options.obs.trace_path);
    std::printf("trace written to %s (%zu tracks, %zu events; open in Perfetto)\n",
                options.obs.trace_path.c_str(), result.trace.track_count(),
                result.trace.event_count());
  }

  if (!options.report_path.empty()) {
    StudyReport report{title};
    report.add_config("machine", config.machine.describe());
    report.add_config("node MTBF", to_string(config.resilience.node_mtbf));
    report.add_config("application type", config.app_type.name);
    report.add_config("baseline T_B", to_string(config.baseline));
    report.add_config("trials per bar", std::to_string(config.trials));
    report.add_config("seed", std::to_string(config.seed));
    report.add_paragraph(
        "Efficiency = delay-free baseline execution time divided by the "
        "simulated execution time with failures and resilience overhead "
        "(mean ± sample standard deviation across trials).");
    report.add_table("Efficiency by system share", result.to_table());
    report.add_table("Raw data", result.to_csv_table());
    if (result.metrics.has_value()) {
      report.add_table("Instrumented breakdown", result.to_metrics_table());
    }
    report.write(options.report_path);
    std::printf("report written to %s\n", options.report_path.c_str());
  }

  profiler.end();
  std::printf("(efficiency = baseline / simulated execution time; phases: %s)\n",
              profiler.summary().c_str());
  return 0;
}

}  // namespace xres::bench
