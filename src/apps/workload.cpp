#include "apps/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace xres {

const char* to_string(WorkloadBias bias) {
  switch (bias) {
    case WorkloadBias::kUnbiased: return "unbiased";
    case WorkloadBias::kHighMemory: return "high-memory";
    case WorkloadBias::kHighCommunication: return "high-communication";
    case WorkloadBias::kLargeApps: return "large-apps";
  }
  return "?";
}

void WorkloadConfig::validate() const {
  XRES_CHECK(machine_nodes > 0, "workload needs a machine");
  XRES_CHECK(arrival_count > 0, "workload needs arrivals");
  XRES_CHECK(mean_interarrival > Duration::zero(), "mean inter-arrival must be positive");
  XRES_CHECK(!size_fractions.empty(), "workload needs size options");
  XRES_CHECK(!baseline_hours.empty(), "workload needs baseline options");
  for (double f : size_fractions) {
    XRES_CHECK(f > 0.0 && f <= 1.0, "size fraction must be in (0, 1]");
  }
  for (double h : baseline_hours) {
    XRES_CHECK(h > 0.0, "baseline hours must be positive");
  }
}

namespace {

/// The candidate Table-I types under a bias.
std::vector<AppType> biased_types(WorkloadBias bias) {
  std::vector<AppType> types;
  for (const AppType& t : all_app_types()) {
    switch (bias) {
      case WorkloadBias::kUnbiased:
        types.push_back(t);
        break;
      case WorkloadBias::kHighMemory:
        if (t.memory_per_node >= DataSize::gigabytes(64.0)) types.push_back(t);
        break;
      case WorkloadBias::kHighCommunication:
        if (t.comm_fraction > 0.25) types.push_back(t);
        break;
      case WorkloadBias::kLargeApps:
        types.push_back(t);  // bias applies to sizes, not types
        break;
    }
  }
  XRES_CHECK(!types.empty(), "bias produced an empty type set");
  return types;
}

/// The candidate size fractions under a bias.
std::vector<double> biased_sizes(const WorkloadConfig& config) {
  if (config.bias != WorkloadBias::kLargeApps) return config.size_fractions;
  std::vector<double> large;
  for (double f : config.size_fractions) {
    if (f >= 0.12) large.push_back(f);
  }
  XRES_CHECK(!large.empty(), "large-app bias produced an empty size set");
  return large;
}

std::uint32_t nodes_for_fraction(double fraction, std::uint32_t machine_nodes) {
  const double exact = fraction * static_cast<double>(machine_nodes);
  const auto nodes = static_cast<std::uint32_t>(std::llround(exact));
  return std::max(1U, nodes);
}

AppSpec draw_spec(const WorkloadConfig& config, const std::vector<AppType>& types,
                  const std::vector<double>& sizes, Pcg32& rng) {
  const AppType& type = types[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint32_t>(types.size())))];
  const double fraction = sizes[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint32_t>(sizes.size())))];
  const double hours = config.baseline_hours[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint32_t>(config.baseline_hours.size())))];
  return AppSpec::from_baseline(type, nodes_for_fraction(fraction, config.machine_nodes),
                                Duration::hours(hours));
}

}  // namespace

ArrivalPattern generate_pattern(const WorkloadConfig& config, std::uint64_t root_seed,
                                std::uint32_t index) {
  config.validate();
  Pcg32 rng{derive_seed(root_seed, 0x776b6c6421ULL, index)};
  const std::vector<AppType> types = biased_types(config.bias);
  const std::vector<double> sizes = biased_sizes(config);

  ArrivalPattern pattern;
  std::uint64_t next_id = 1;

  if (config.initial_fill) {
    // Fill the machine at t = 0 (the paper "begins by filling the entire
    // exascale system"): keep drawing applications while one of the size
    // options still fits the remaining node budget.
    const double min_fraction = *std::min_element(sizes.begin(), sizes.end());
    const std::uint32_t min_nodes = nodes_for_fraction(min_fraction, config.machine_nodes);
    std::uint32_t free_nodes = config.machine_nodes;
    while (free_nodes >= min_nodes) {
      AppSpec spec = draw_spec(config, types, sizes, rng);
      if (spec.nodes > free_nodes) continue;  // redraw a size that fits
      Job job;
      job.id = JobId{next_id++};
      job.spec = spec;
      job.arrival = TimePoint::origin();
      job.deadline = assign_deadline(job.arrival, spec.baseline_time(), rng);
      free_nodes -= spec.nodes;
      pattern.jobs.push_back(std::move(job));
    }
  }

  // Poisson arrivals with the configured mean gap.
  TimePoint t = TimePoint::origin();
  const Rate arrival_rate = Rate::one_per(config.mean_interarrival);
  for (std::uint32_t i = 0; i < config.arrival_count; ++i) {
    t += rng.exponential(arrival_rate);
    Job job;
    job.id = JobId{next_id++};
    job.spec = draw_spec(config, types, sizes, rng);
    job.arrival = t;
    job.deadline = assign_deadline(job.arrival, job.spec.baseline_time(), rng);
    pattern.jobs.push_back(std::move(job));
  }
  return pattern;
}

}  // namespace xres
