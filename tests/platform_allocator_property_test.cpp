// Property test for the contiguous first-fit node allocator.
//
// Random allocate/release sequences run against a reference model that
// tracks per-node occupancy in a plain bitmap — slow but obviously
// correct. After every operation the allocator must agree with the model
// on free/busy totals and per-node occupancy, placements must be exactly
// the first (lowest-address) fit the bitmap can see, and the allocator's
// own validate() must keep accepting its free-list (disjoint, sorted,
// coalesced — the invariants release() restores by merging neighbors).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "platform/allocator.hpp"
#include "util/rng.hpp"

namespace xres {
namespace {

/// Obviously-correct reference: one bool per node.
class BitmapModel {
 public:
  explicit BitmapModel(std::uint32_t capacity) : busy_(capacity, false) {}

  /// First-fit over the raw bitmap.
  std::optional<NodeRange> allocate(std::uint32_t count) {
    if (count == 0 || count > busy_.size()) return std::nullopt;
    std::uint32_t run = 0;
    for (std::uint32_t node = 0; node < busy_.size(); ++node) {
      run = busy_[node] ? 0 : run + 1;
      if (run == count) {
        const NodeRange range{node + 1 - count, count};
        set(range, true);
        return range;
      }
    }
    return std::nullopt;
  }

  void release(NodeRange range) { set(range, false); }

  [[nodiscard]] bool is_free(std::uint32_t node) const { return !busy_[node]; }

  [[nodiscard]] std::uint32_t free_count() const {
    std::uint32_t total = 0;
    for (const bool b : busy_) total += b ? 0 : 1;
    return total;
  }

  [[nodiscard]] std::uint32_t largest_free_block() const {
    std::uint32_t best = 0;
    std::uint32_t run = 0;
    for (const bool b : busy_) {
      run = b ? 0 : run + 1;
      if (run > best) best = run;
    }
    return best;
  }

 private:
  void set(NodeRange range, bool value) {
    for (std::uint32_t node = range.first; node < range.end(); ++node) {
      ASSERT_NE(busy_[node], value) << "model saw overlap at node " << node;
      busy_[node] = value;
    }
  }

  std::vector<bool> busy_;
};

void run_churn(std::uint64_t seed, std::uint32_t capacity, int ops) {
  Pcg32 rng{seed};
  NodeAllocator alloc{capacity};
  BitmapModel model{capacity};
  std::vector<NodeRange> held;

  for (int op = 0; op < ops; ++op) {
    const bool do_alloc = held.empty() || rng.bernoulli(0.55);
    if (do_alloc) {
      // Mix tiny and huge requests so both fragmentation and full-capacity
      // rejection paths run.
      const auto count = static_cast<std::uint32_t>(
          rng.bernoulli(0.1) ? rng.uniform_int(1, static_cast<std::int64_t>(capacity))
                             : rng.uniform_int(1, static_cast<std::int64_t>(capacity / 16 + 1)));
      const auto got = alloc.allocate(count);
      const auto want = model.allocate(count);
      ASSERT_EQ(got.has_value(), want.has_value()) << "count " << count;
      if (got.has_value()) {
        // First fit, lowest address: the placement is fully determined.
        EXPECT_EQ(*got, *want);
        held.push_back(*got);
      }
    } else {
      const auto idx =
          static_cast<std::size_t>(rng.next_below(static_cast<std::uint32_t>(held.size())));
      alloc.release(held[idx]);
      model.release(held[idx]);
      held[idx] = held.back();
      held.pop_back();
    }

    // Node conservation + agreement with the model.
    ASSERT_EQ(alloc.free_count(), model.free_count());
    ASSERT_EQ(alloc.busy_count(), capacity - alloc.free_count());
    ASSERT_NO_THROW(alloc.validate());  // free list disjoint/sorted/coalesced
    if ((op & 0xF) == 0) {
      EXPECT_EQ(alloc.largest_free_block(), model.largest_free_block());
      const std::uint32_t probe = rng.next_below(capacity);
      EXPECT_EQ(alloc.is_free(probe), model.is_free(probe));
    }
    if (testing::Test::HasFatalFailure()) return;
  }

  // Release everything: the allocator must coalesce back to one block.
  for (const NodeRange range : held) {
    alloc.release(range);
    model.release(range);
  }
  EXPECT_EQ(alloc.free_count(), capacity);
  EXPECT_EQ(alloc.largest_free_block(), capacity);
  ASSERT_NO_THROW(alloc.validate());
}

TEST(NodeAllocatorProperty, RandomChurnMatchesBitmapModel) {
  for (const std::uint64_t seed : {5U, 6U, 7U}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_churn(seed, 512, 4000);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(NodeAllocatorProperty, SmallCapacityEdgeCases) {
  // Tiny machines hit the boundary paths (exact fit, full machine, single
  // node) far more often.
  for (const std::uint64_t seed : {8U, 9U}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_churn(seed, 17, 2500);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(NodeAllocatorProperty, DoubleFreeIsRejected) {
  NodeAllocator alloc{64};
  const auto range = alloc.allocate(16);
  ASSERT_TRUE(range.has_value());
  alloc.release(*range);
  EXPECT_THROW(alloc.release(*range), CheckError);
  // Releasing a range overlapping free space is also rejected.
  const auto again = alloc.allocate(8);
  ASSERT_TRUE(again.has_value());
  EXPECT_THROW(alloc.release(NodeRange{again->first, again->count + 1}), CheckError);
}

}  // namespace
}  // namespace xres
