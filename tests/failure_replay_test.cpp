// Tests for failure-trace replay and paired (common-random-number)
// technique comparisons.

#include <gtest/gtest.h>

#include "core/single_app_study.hpp"
#include "failure/replay.hpp"
#include "resilience/planner.hpp"
#include "sim/simulation.hpp"

namespace xres {
namespace {

FailureTrace make_trace(std::initializer_list<double> seconds, SeverityLevel severity = 1) {
  std::vector<Failure> failures;
  for (double s : seconds) {
    failures.push_back(Failure{TimePoint::at(Duration::seconds(s)), severity});
  }
  return FailureTrace{std::move(failures)};
}

TEST(TraceReplay, DeliversAllFailuresAtRecordedTimes) {
  Simulation sim;
  const FailureTrace trace = make_trace({10.0, 25.0, 99.5});
  std::vector<double> seen;
  TraceFailureProcess replay{sim, trace, [&](const Failure& f) {
                               seen.push_back(sim.now().to_seconds());
                               EXPECT_EQ(f.severity, 1);
                             }};
  replay.start();
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{10.0, 25.0, 99.5}));
  EXPECT_EQ(replay.delivered(), 3U);
  EXPECT_EQ(replay.skipped(), 0U);
}

TEST(TraceReplay, StopCancelsPendingDeliveries) {
  Simulation sim;
  const FailureTrace trace = make_trace({10.0, 20.0, 30.0});
  int seen = 0;
  TraceFailureProcess replay{sim, trace, [&](const Failure&) { ++seen; }};
  replay.start();
  sim.run_until(TimePoint::at(Duration::seconds(15.0)));
  replay.stop();
  sim.run();
  EXPECT_EQ(seen, 1);
}

TEST(TraceReplay, SkipsFailuresBeforeNow) {
  Simulation sim;
  sim.schedule_at(TimePoint::at(Duration::seconds(50.0)), [] {});
  sim.run();
  const FailureTrace trace = make_trace({10.0, 60.0});
  int seen = 0;
  TraceFailureProcess replay{sim, trace, [&](const Failure&) { ++seen; }};
  replay.start();
  sim.run();
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(replay.skipped(), 1U);
}

TEST(TraceReplay, PlanTrialIsDeterministicAcrossRuns) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig resilience;
  const AppSpec app{app_type_by_name("B32"), 12000, 720};
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, resilience);

  Pcg32 rng{31};
  const SeverityModel severity{resilience.severity_weights};
  const FailureTrace trace =
      FailureTrace::generate(plan.failure_rate, Duration::days(5.0), severity,
                             FailureDistribution::exponential(), rng);

  const ExecutionResult a = run_trial(TraceTrialSpec{plan, resilience, trace}, 1);
  const ExecutionResult b = run_trial(TraceTrialSpec{plan, resilience, trace}, 2);
  // The runtime seed only drives redundancy/recovery sampling, which CR
  // never touches: identical traces give identical executions.
  EXPECT_DOUBLE_EQ(a.wall_time.to_seconds(), b.wall_time.to_seconds());
  EXPECT_EQ(a.rollbacks, b.rollbacks);
}

TEST(TraceReplay, PairedComparisonSharpensTechniqueDeltas) {
  // Paired trials: for each trace, both techniques face identical
  // failures. Parallel recovery must beat checkpoint/restart on (nearly)
  // every individual trace at exascale for A32 — a far stronger statement
  // than a difference of independent means.
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig resilience;
  const AppSpec app{app_type_by_name("A32"), 120000, 1440};
  const ExecutionPlan cr =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, resilience);
  const ExecutionPlan pr =
      make_plan(TechniqueKind::kParallelRecovery, app, machine, resilience);
  const SeverityModel severity{resilience.severity_weights};

  int pr_wins = 0;
  const int pairs = 10;
  for (int i = 0; i < pairs; ++i) {
    Pcg32 rng{derive_seed(77, i)};
    const FailureTrace trace =
        FailureTrace::generate(cr.failure_rate, Duration::days(30.0), severity,
                               FailureDistribution::exponential(), rng);
    const ExecutionResult r_cr = run_trial(TraceTrialSpec{cr, resilience, trace}, 1);
    const ExecutionResult r_pr = run_trial(TraceTrialSpec{pr, resilience, trace}, 1);
    if (r_pr.efficiency > r_cr.efficiency) ++pr_wins;
  }
  EXPECT_EQ(pr_wins, pairs);
}

TEST(TraceReplay, InfeasiblePlanShortCircuits) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig resilience;
  const AppSpec app{app_type_by_name("A32"), 120000, 1440};
  const ExecutionPlan full =
      make_plan(TechniqueKind::kRedundancyFull, app, machine, resilience);
  const FailureTrace trace = make_trace({10.0});
  const ExecutionResult r = run_trial(TraceTrialSpec{full, resilience, trace}, 1);
  EXPECT_FALSE(r.completed);
  EXPECT_DOUBLE_EQ(r.efficiency, 0.0);
}

}  // namespace
}  // namespace xres
