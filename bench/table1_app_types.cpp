// Reproduces paper Table I: the eight synthetic application types and
// their communication/memory characteristics, plus the derived per-type
// modeling constants.

#include <cstdio>

#include "apps/app_type.hpp"
#include "platform/spec.hpp"
#include "platform/transfer.hpp"
#include "resilience/config.hpp"
#include "resilience/planner.hpp"
#include "study/registry.hpp"
#include "util/table.hpp"

namespace {
using namespace xres;

int run(study::StudyContext&) {
  std::printf("Table I: characteristics of application types\n\n");
  Table table{{"type", "comm intensity T_C", "work T_W", "memory/node N_m",
               "msg-log slowdown u"}};
  const ResilienceConfig config;
  for (const AppType& type : all_app_types()) {
    table.add_row({type.name, fmt_percent(type.comm_fraction, 0),
                   fmt_percent(type.work_fraction(), 0), to_string(type.memory_per_node),
                   fmt_double(message_logging_slowdown(type, config), 4)});
  }
  std::printf("%s", table.to_text().c_str());

  std::printf("\nDerived checkpoint costs on the exascale machine:\n\n");
  const MachineSpec machine = MachineSpec::exascale();
  Table costs{{"memory/node", "L1 RAM (Eq.5)", "L2 partner (Eq.6)",
               "PFS @ 1% (Eq.3)", "PFS @ 100% (Eq.3)"}};
  for (double gb : {32.0, 64.0}) {
    const DataSize m = DataSize::gigabytes(gb);
    costs.add_row({to_string(m),
                   to_string(local_memory_checkpoint_time(m, machine.node)),
                   to_string(partner_copy_checkpoint_time(m, machine.node, machine.network)),
                   to_string(pfs_checkpoint_time(m, 1200, machine.network)),
                   to_string(pfs_checkpoint_time(m, 120000, machine.network))});
  }
  std::printf("%s", costs.to_text().c_str());
  return 0;
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "table1_app_types";
  def.group = study::StudyGroup::kTable;
  def.description =
      "paper Table I: application types and derived checkpoint-cost constants";
  def.summary = "table1_app_types — paper Table I: application-type characteristics "
                "and derived checkpoint costs.";
  // A static table: no seed, no trials, no harness options at all.
  def.options.seed = false;
  def.options.threads = false;
  def.options.obs = study::StudyOptionsSpec::Obs::kNone;
  def.options.recovery = false;
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
