file(REMOVE_RECURSE
  "CMakeFiles/ext_paired_comparison.dir/ext_paired_comparison.cpp.o"
  "CMakeFiles/ext_paired_comparison.dir/ext_paired_comparison.cpp.o.d"
  "ext_paired_comparison"
  "ext_paired_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_paired_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
