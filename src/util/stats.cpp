#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>

namespace xres {

void Summary::merge(const Summary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count);
  const auto nb = static_cast<double>(other.count);
  const double n = na + nb;
  const double delta = other.mean - mean;
  // M2 = stddev^2 * (n-1) on each side; zero for singleton samples.
  const double m2 = stddev * stddev * (na - 1.0) +
                    other.stddev * other.stddev * (nb - 1.0) +
                    delta * delta * na * nb / n;
  mean += delta * nb / n;
  count += other.count;
  stddev = count > 1 ? std::sqrt(m2 / (n - 1.0)) : 0.0;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  ci95_halfwidth = count > 1 ? 1.959963985 * stddev / std::sqrt(n) : 0.0;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  XRES_CHECK(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  XRES_CHECK(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  XRES_CHECK(count_ > 0, "max of empty sample");
  return max_;
}

Summary RunningStats::summary() const {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  if (count_ > 1) {
    s.ci95_halfwidth = 1.959963985 * s.stddev / std::sqrt(static_cast<double>(count_));
  }
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  XRES_CHECK(hi > lo, "histogram range must be non-empty");
  XRES_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

std::size_t Histogram::count_in_bin(std::size_t i) const {
  XRES_CHECK(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::bin_lower_edge(std::size_t i) const {
  XRES_CHECK(i < counts_.size(), "bin index out of range");
  return lo_ + static_cast<double>(i) * width_;
}

std::string Histogram::to_text(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char label[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(label, sizeof label, "[%10.3g, %10.3g) %8zu |",
                  bin_lower_edge(i), bin_lower_edge(i) + width_, counts_[i]);
    out += label;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

WelchResult welch_t_test(const Summary& a, const Summary& b) {
  XRES_CHECK(a.count >= 2 && b.count >= 2, "Welch test needs >= 2 samples per side");
  const double va = a.stddev * a.stddev / static_cast<double>(a.count);
  const double vb = b.stddev * b.stddev / static_cast<double>(b.count);
  XRES_CHECK(va + vb > 0.0, "Welch test needs positive combined variance");

  WelchResult result;
  result.t = (a.mean - b.mean) / std::sqrt(va + vb);
  const double num = (va + vb) * (va + vb);
  const double den = va * va / static_cast<double>(a.count - 1) +
                     vb * vb / static_cast<double>(b.count - 1);
  result.degrees_of_freedom = den > 0.0 ? num / den : 1.0;

  // Two-sided 5% critical values of Student's t, interpolated on a coarse
  // dof grid (exact enough for a significance flag).
  constexpr double dof_grid[] = {1, 2, 3, 4, 5, 7, 10, 15, 20, 30, 60, 120, 1e9};
  constexpr double crit_grid[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.365, 2.228,
                                  2.131,  2.086, 2.042, 2.000, 1.980, 1.960};
  double critical = crit_grid[0];
  for (std::size_t i = 0; i + 1 < std::size(dof_grid); ++i) {
    if (result.degrees_of_freedom >= dof_grid[i + 1]) {
      critical = crit_grid[i + 1];
      continue;
    }
    const double frac = (result.degrees_of_freedom - dof_grid[i]) /
                        (dof_grid[i + 1] - dof_grid[i]);
    critical = crit_grid[i] + frac * (crit_grid[i + 1] - crit_grid[i]);
    break;
  }
  result.significant_95 = std::abs(result.t) > critical;
  return result;
}

double quantile(std::vector<double> samples, double q) {
  XRES_CHECK(!samples.empty(), "quantile of empty sample");
  XRES_CHECK(q >= 0.0 && q <= 1.0, "quantile fraction outside [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - frac) + samples[lower + 1] * frac;
}

}  // namespace xres
