file(REMOVE_RECURSE
  "CMakeFiles/xres_rm.dir/extensions.cpp.o"
  "CMakeFiles/xres_rm.dir/extensions.cpp.o.d"
  "CMakeFiles/xres_rm.dir/fcfs.cpp.o"
  "CMakeFiles/xres_rm.dir/fcfs.cpp.o.d"
  "CMakeFiles/xres_rm.dir/random_order.cpp.o"
  "CMakeFiles/xres_rm.dir/random_order.cpp.o.d"
  "CMakeFiles/xres_rm.dir/scheduler.cpp.o"
  "CMakeFiles/xres_rm.dir/scheduler.cpp.o.d"
  "CMakeFiles/xres_rm.dir/slack.cpp.o"
  "CMakeFiles/xres_rm.dir/slack.cpp.o.d"
  "libxres_rm.a"
  "libxres_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
