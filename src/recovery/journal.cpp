#include "recovery/journal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/perf.hpp"
#include "recovery/json_parse.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/framed_line.hpp"
#include "util/io.hpp"
#include "util/log.hpp"

namespace xres::recovery {

namespace {

constexpr std::string_view kJournalKind = "xres-trial-journal";

[[noreturn]] void throw_journal_io(const std::string& what, const std::string& path) {
  const int err = errno != 0 ? errno : EIO;
  throw io::IoError{what + " " + path + ": " + std::strerror(err), err};
}

}  // namespace

// Framing now lives in util/framed_line.hpp so the run ledger (obs/ledger)
// shares the exact same line format; these wrappers keep the journal API.
std::string frame_journal_line(const std::string& record_json) {
  return frame_crc_line(record_json);
}

bool unframe_journal_line(std::string_view line, std::string& record_json) {
  return unframe_crc_line(line, record_json);
}

std::string to_record_json(const JournalRecord& record) {
  std::string out = "{\"b\":\"";
  out += obs::json_escape(record.batch);
  out += "\",\"i\":";
  out += obs::json_number(record.index);
  out += ",\"s\":";
  out += obs::json_number(record.seed);
  out += ",\"p\":";
  out += record.payload;
  out += '}';
  return out;
}

std::string to_meta_json(const JournalMeta& meta) {
  std::string out = "{\"journal\":\"";
  out += kJournalKind;
  out += "\",\"v\":";
  out += obs::json_number(static_cast<std::uint64_t>(meta.version));
  out += ",\"study\":\"";
  out += obs::json_escape(meta.study);
  out += "\",\"root_seed\":";
  out += obs::json_number(meta.root_seed);
  out += '}';
  return out;
}

TrialJournal::TrialJournal(std::string path, JournalMeta meta, std::size_t flush_every)
    : path_{std::move(path)}, meta_{std::move(meta)},
      flush_every_{flush_every == 0 ? 1 : flush_every} {
  XRES_CHECK(!path_.empty(), "journal needs a path");
  // "a" so an existing journal is extended, never truncated: the write-
  // ahead property depends on old records surviving the reopen. Opening is
  // a critical-path op: transient errors retry, persistent ones throw
  // IoError (ENOSPC maps to the resumable exit upstream).
  if (!io::retry_io(path_.c_str(), [&] {
        file_ = io::fopen(path_.c_str(), "ab");
        return file_ != nullptr;
      })) {
    throw_journal_io("cannot open journal for append:", path_);
  }
  // In append mode the initial position is implementation-defined; seek so
  // ftell reliably reports whether the file already has content.
  std::fseek(file_, 0, SEEK_END);
  if (std::ftell(file_) == 0) {
    // Fresh journal: the meta record makes it self-identifying.
    append_line_locked(frame_journal_line(to_meta_json(meta_)));
    fsync_locked();
  }
}

TrialJournal::~TrialJournal() {
  if (file_ == nullptr) return;
  // Destructors must not throw; a failed final flush only costs re-running
  // the lost tail on resume.
  if (io::fsync_stream(file_, path_.c_str()) && unflushed_ != 0) {
    obs::perf_add_journal_fsync();
  }
  io::fclose(file_, path_.c_str());
}

// Append one framed line, retrying transient failures. A failed attempt may
// leave a partial line in the file (that is exactly what an injected short
// write simulates), so every retry first emits a bare '\n': the partial
// bytes become one isolated CRC-failing line the tolerant loader skips,
// instead of merging with — and poisoning — the retried record.
void TrialJournal::append_line_locked(const std::string& line) {
  bool clean = true;
  const bool ok = io::retry_io(path_.c_str(), [&] {
    std::clearerr(file_);
    if (!clean) std::fputc('\n', file_);
    clean = false;
    return io::fwrite(line.data(), line.size(), file_, path_.c_str()) == line.size();
  });
  if (!ok) throw_journal_io("cannot append to journal", path_);
}

// fsync with retry; persistent failure throws IoError — a journal whose
// records may not survive a crash is worse than a loudly failed run.
void TrialJournal::fsync_locked() {
  if (!io::retry_io(path_.c_str(),
                    [&] { return io::fsync_stream(file_, path_.c_str()); })) {
    throw_journal_io("fsync failed on journal", path_);
  }
  unflushed_ = 0;
  obs::perf_add_journal_fsync();
}

void TrialJournal::append(const JournalRecord& record) {
  const std::string line = frame_journal_line(to_record_json(record));
  const std::lock_guard<std::mutex> lock{mutex_};
  XRES_CHECK(file_ != nullptr, "journal already closed");
  append_line_locked(line);
  ++appended_;
  if (++unflushed_ >= flush_every_) fsync_locked();
}

void TrialJournal::flush() {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (file_ == nullptr || unflushed_ == 0) return;
  fsync_locked();
}

std::size_t TrialJournal::appended() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return appended_;
}

std::string ResumeIndex::key(const std::string& batch, std::uint64_t index) {
  return batch + '\x1f' + std::to_string(index);
}

const JournalRecord* ResumeIndex::find(const std::string& batch,
                                       std::uint64_t index) const {
  const auto it = records_.find(key(batch, index));
  return it == records_.end() ? nullptr : &it->second;
}

ResumeIndex ResumeIndex::load(const std::string& path, const JournalMeta& expected) {
  ResumeIndex index;
  std::ifstream in{path, std::ios::binary};
  if (!in.good()) return index;  // no journal yet: fresh start
  index.stats_.found = true;

  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  // Split on '\n' manually so a missing trailing newline (torn final
  // append) still yields the partial line for CRC rejection.
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  const std::string_view view{content};
  while (start < view.size()) {
    std::size_t end = view.find('\n', start);
    if (end == std::string_view::npos) end = view.size();
    if (end > start) lines.push_back(view.substr(start, end - start));
    start = end + 1;
  }

  bool saw_meta = false;
  std::string record_json;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const bool is_tail = li + 1 == lines.size();
    if (!unframe_journal_line(lines[li], record_json)) {
      if (is_tail) {
        index.stats_.torn_tail = true;
        XRES_LOG_WARN("journal " + path + ": dropping torn/corrupt final record "
                      "(interrupted append) — the affected trial will re-run");
      } else {
        ++index.stats_.corrupt_records;
        XRES_LOG_WARN("journal " + path + ": skipping corrupt record at line " +
                      std::to_string(li + 1) + " — the affected trial will re-run");
      }
      continue;
    }

    JsonValue record;
    try {
      record = parse_json(record_json);
      if (record.find("journal") != nullptr) {
        // Meta record: the journal's identity. Mismatches are fatal —
        // resuming a different study's results would corrupt statistics.
        XRES_CHECK(record.at("journal").as_string() == kJournalKind,
                   "not an xres trial journal: " + path);
        XRES_CHECK(record.at("v").as_u64() == expected.version,
                   "journal " + path + " has format version " +
                       std::to_string(record.at("v").as_u64()) + ", expected " +
                       std::to_string(expected.version));
        XRES_CHECK(record.at("study").as_string() == expected.study,
                   "journal " + path + " belongs to study '" +
                       record.at("study").as_string() + "', not '" + expected.study +
                       "' — refusing to resume");
        XRES_CHECK(record.at("root_seed").as_u64() == expected.root_seed,
                   "journal " + path + " was written with --seed " +
                       std::to_string(record.at("root_seed").as_u64()) +
                       ", not " + std::to_string(expected.root_seed) +
                       " — refusing to resume");
        saw_meta = true;
        continue;
      }

      JournalRecord parsed;
      parsed.batch = record.at("b").as_string();
      parsed.index = record.at("i").as_u64();
      parsed.seed = record.at("s").as_u64();
      // Keep the payload as raw JSON text; trial_record.cpp parses it
      // lazily so one bad payload only costs that trial a re-run.
      parsed.payload = record_json;  // replaced below with just the payload
      const JsonValue& payload = record.at("p");
      (void)payload;  // validated structurally by the parse above
      // Re-extract the payload substring: record layout is fixed, so the
      // payload is everything after "\"p\":" up to the final '}'.
      const std::size_t p = record_json.find(",\"p\":");
      XRES_CHECK(p != std::string::npos, "journal record lost its payload");
      parsed.payload = record_json.substr(p + 5, record_json.size() - (p + 5) - 1);

      const std::string k = key(parsed.batch, parsed.index);
      if (index.records_.contains(k)) {
        // Duplicates are possible when a crashed run re-executed a trial
        // whose record had not been fsync'd. Results are deterministic, so
        // either copy is correct; keep the first.
        ++index.stats_.duplicate_records;
        continue;
      }
      ++index.stats_.valid_records;
      index.records_.emplace(k, std::move(parsed));
    } catch (const JsonParseError& e) {
      if (is_tail) {
        index.stats_.torn_tail = true;
      } else {
        ++index.stats_.corrupt_records;
      }
      XRES_LOG_WARN("journal " + path + ": unreadable record at line " +
                    std::to_string(li + 1) + " (" + e.what() +
                    ") — the affected trial will re-run");
    }
  }

  XRES_CHECK(saw_meta || index.records_.empty(),
             "journal " + path + " has data records but no readable meta record — "
             "cannot verify it belongs to this study; delete it or pick "
             "another --journal path");
  return index;
}

}  // namespace xres::recovery
