file(REMOVE_RECURSE
  "CMakeFiles/ext_semi_blocking.dir/ext_semi_blocking.cpp.o"
  "CMakeFiles/ext_semi_blocking.dir/ext_semi_blocking.cpp.o.d"
  "ext_semi_blocking"
  "ext_semi_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_semi_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
