#include "recovery/trial_record.hpp"

#include "obs/json.hpp"
#include "recovery/json_parse.hpp"

namespace xres::recovery {

namespace {

using obs::JsonWriter;

void write_result(JsonWriter& w, const ExecutionResult& r) {
  w.begin_object();
  w.key("completed").value(r.completed);
  w.key("wall_s").value(r.wall_time.to_seconds());
  w.key("baseline_s").value(r.baseline.to_seconds());
  w.key("efficiency").value(r.efficiency);
  w.key("failures_seen").value(r.failures_seen);
  w.key("failures_masked").value(r.failures_masked);
  w.key("rollbacks").value(r.rollbacks);
  w.key("checkpoints").value(r.checkpoints_completed);
  w.key("work_s").value(r.time_working.to_seconds());
  w.key("ckpt_s").value(r.time_checkpointing.to_seconds());
  w.key("restart_s").value(r.time_restarting.to_seconds());
  w.key("recover_s").value(r.time_recovering.to_seconds());
  w.key("rework_s").value(r.rework.to_seconds());
  w.key("node_s").value(r.node_seconds);
  w.end_object();
}

ExecutionResult read_result(const JsonValue& v) {
  ExecutionResult r;
  r.completed = v.at("completed").as_bool();
  r.wall_time = Duration::seconds(v.at("wall_s").as_double());
  r.baseline = Duration::seconds(v.at("baseline_s").as_double());
  r.efficiency = v.at("efficiency").as_double();
  r.failures_seen = v.at("failures_seen").as_u64();
  r.failures_masked = v.at("failures_masked").as_u64();
  r.rollbacks = v.at("rollbacks").as_u64();
  r.checkpoints_completed = v.at("checkpoints").as_u64();
  r.time_working = Duration::seconds(v.at("work_s").as_double());
  r.time_checkpointing = Duration::seconds(v.at("ckpt_s").as_double());
  r.time_restarting = Duration::seconds(v.at("restart_s").as_double());
  r.time_recovering = Duration::seconds(v.at("recover_s").as_double());
  r.rework = Duration::seconds(v.at("rework_s").as_double());
  r.node_seconds = v.at("node_s").as_double();
  return r;
}

}  // namespace

/// Metric values by slot, in registry order. Slot counts are recorded so a
/// journal written against a different metric registry (another binary
/// revision) is rejected instead of silently misattributed.
void write_metric_set(JsonWriter& w, const obs::MetricSet& set) {
  const std::vector<obs::MetricDesc> descs = obs::MetricRegistry::global().descriptors();
  w.begin_object();
  w.key("counters").begin_array();
  for (const obs::MetricDesc& d : descs) {
    if (d.id.kind() == obs::MetricKind::kCounter) w.value(set.counter(d.id));
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const obs::MetricDesc& d : descs) {
    if (d.id.kind() == obs::MetricKind::kGauge) w.value(set.gauge(d.id));
  }
  w.end_array();
  w.key("hists").begin_array();
  for (const obs::MetricDesc& d : descs) {
    if (d.id.kind() != obs::MetricKind::kHistogram) continue;
    const obs::HistogramData& h = set.histogram(d.id);
    w.begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    // Sparse buckets: [index, count] pairs (most trial histograms touch a
    // handful of the 64 log2 buckets).
    w.key("b").begin_array();
    for (std::size_t b = 0; b < obs::HistogramData::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(b));
      w.value(h.buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

obs::MetricSet read_metric_set(const JsonValue& v) {
  obs::MetricSet set;
  const std::vector<obs::MetricDesc> descs = obs::MetricRegistry::global().descriptors();
  std::vector<obs::MetricId> counters;
  std::vector<obs::MetricId> gauges;
  std::vector<obs::MetricId> hists;
  for (const obs::MetricDesc& d : descs) {
    switch (d.id.kind()) {
      case obs::MetricKind::kCounter: counters.push_back(d.id); break;
      case obs::MetricKind::kGauge: gauges.push_back(d.id); break;
      case obs::MetricKind::kHistogram: hists.push_back(d.id); break;
    }
  }

  const std::vector<JsonValue>& cvals = v.at("counters").as_array();
  const std::vector<JsonValue>& gvals = v.at("gauges").as_array();
  const std::vector<JsonValue>& hvals = v.at("hists").as_array();
  if (cvals.size() != counters.size() || gvals.size() != gauges.size() ||
      hvals.size() != hists.size()) {
    throw JsonParseError{"journaled metrics do not match this binary's metric "
                         "registry — re-running the trial"};
  }
  for (std::size_t i = 0; i < cvals.size(); ++i) set.set_counter(counters[i], cvals[i].as_u64());
  for (std::size_t i = 0; i < gvals.size(); ++i) set.set_gauge(gauges[i], gvals[i].as_double());
  for (std::size_t i = 0; i < hvals.size(); ++i) {
    const JsonValue& hv = hvals[i];
    obs::HistogramData h;
    h.count = hv.at("count").as_u64();
    h.sum = hv.at("sum").as_double();
    h.min = hv.at("min").as_double();
    h.max = hv.at("max").as_double();
    for (const JsonValue& pair : hv.at("b").as_array()) {
      const std::vector<JsonValue>& bc = pair.as_array();
      if (bc.size() != 2) throw JsonParseError{"bad histogram bucket pair"};
      const std::uint64_t bucket = bc[0].as_u64();
      if (bucket >= obs::HistogramData::kBuckets) {
        throw JsonParseError{"histogram bucket index out of range"};
      }
      h.buckets[bucket] = bc[1].as_u64();
    }
    set.restore_histogram(hists[i], h);
  }
  return set;
}

std::string serialize_trial_outcome(const TrialOutcome& outcome) {
  JsonWriter w;
  w.begin_object();
  w.key("result");
  write_result(w, outcome.result);
  if (outcome.quarantined) {
    w.key("quarantined").value(true);
    w.key("reason").value(outcome.quarantine_reason);
  }
  if (outcome.metrics.has_value()) {
    w.key("metrics");
    write_metric_set(w, *outcome.metrics);
  }
  if (outcome.wall_seconds > 0) w.key("w").value(outcome.wall_seconds);
  if (outcome.attempts > 1) {
    w.key("a").value(static_cast<std::uint64_t>(outcome.attempts));
  }
  w.end_object();
  return w.str();
}

TrialOutcome parse_trial_outcome(const std::string& payload) {
  const JsonValue v = parse_json(payload);
  TrialOutcome out;
  out.result = read_result(v.at("result"));
  if (const JsonValue* q = v.find("quarantined"); q != nullptr && q->as_bool()) {
    out.quarantined = true;
    out.quarantine_reason = v.at("reason").as_string();
  }
  if (const JsonValue* m = v.find("metrics"); m != nullptr) {
    out.metrics = read_metric_set(*m);
  }
  if (const JsonValue* wall = v.find("w"); wall != nullptr) {
    out.wall_seconds = wall->as_double();
  }
  if (const JsonValue* a = v.find("a"); a != nullptr) {
    out.attempts = static_cast<unsigned>(a->as_u64());
  }
  return out;
}

}  // namespace xres::recovery
