#include "study/runlog.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "recovery/json_parse.hpp"
#include "util/cli.hpp"
#include "util/framed_line.hpp"

namespace xres::study {

namespace {

constexpr std::string_view kLedgerKind = "xres-run-v1";

std::string trim(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// Find the record whose id is \p needle, or the unique record whose id
/// starts with it. Exits with a usage error on no match / ambiguity.
const obs::RunRecord& find_run(const std::vector<obs::RunRecord>& records,
                               const std::string& needle) {
  const obs::RunRecord* prefix_match = nullptr;
  std::size_t prefix_matches = 0;
  for (const obs::RunRecord& r : records) {
    if (r.id == needle) return r;
    if (r.id.rfind(needle, 0) == 0) {
      prefix_match = &r;
      ++prefix_matches;
    }
  }
  if (prefix_matches == 1) return *prefix_match;
  if (prefix_matches == 0) {
    CliParser::usage_error("no run '" + needle + "' in the ledger — see `xres log`");
  }
  CliParser::usage_error("run id prefix '" + needle + "' is ambiguous (" +
                         std::to_string(prefix_matches) + " matches) — use more "
                         "characters or the full id from `xres log`");
}

/// Shared entry guard for `xres show` / `xres compare`: load \p path or
/// exit 2 with one clean line naming it — a missing, unreadable or wholly
/// corrupt ledger is an input problem, not a crash (docs/ROBUSTNESS.md).
std::vector<obs::RunRecord> load_ledger_or_usage_error(const std::string& path) {
  LedgerScanStats stats;
  std::vector<obs::RunRecord> records = load_ledger(path, &stats);
  if (!stats.found) {
    CliParser::usage_error("cannot read ledger " + path +
                           " (runs record themselves there by default; see "
                           "docs/OBSERVABILITY.md)");
  }
  if (stats.valid_records == 0) {
    CliParser::usage_error(
        "ledger " + path + " holds no readable records (" +
        std::to_string(stats.corrupt_records) + " corrupt line(s) skipped)");
  }
  return records;
}

std::map<std::string, std::uint64_t> counter_map(const obs::RunRecord& r) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : r.counters) out[name] = value;
  return out;
}

void print_record(const obs::RunRecord& r) {
  std::printf("run %s\n", r.id.c_str());
  std::printf("  study          %s\n", r.study.c_str());
  if (!r.cell.empty()) std::printf("  cell           %s\n", r.cell.c_str());
  if (!r.suite.empty()) std::printf("  suite          %s\n", r.suite.c_str());
  std::printf("  seed           %llu\n", static_cast<unsigned long long>(r.seed));
  std::printf("  threads        %u\n", r.threads);
  std::printf("  build          %s\n", r.build.c_str());
  std::printf("  status         %d\n", r.status);
  std::printf("  params digest  %s\n", r.params_digest.c_str());
  for (const auto& [key, value] : r.params) {
    std::printf("    %-22s %s\n", key.c_str(), value.c_str());
  }
  std::printf("  counters\n");
  for (const auto& [name, value] : r.counters) {
    std::printf("    %-22s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("  wall           %.3f s\n", r.wall_seconds);
  std::printf("  throughput     %.1f trials/s, %.0f events/s\n",
              r.trials_per_second, r.events_per_second);
  std::printf("  peak rss       %.1f MiB\n",
              static_cast<double>(r.peak_rss) / (1024.0 * 1024.0));
  if (!r.metrics_crc.empty()) {
    std::printf("  metrics crc    %s\n", r.metrics_crc.c_str());
  }
  if (!r.manifest_crc.empty()) {
    std::printf("  manifest crc   %s\n", r.manifest_crc.c_str());
  }
  if (!r.platform_crc.empty()) {
    std::printf("  platform crc   %s\n", r.platform_crc.c_str());
  }
}

}  // namespace

obs::RunRecord parse_run_record(const std::string& record_json) {
  using recovery::JsonParseError;
  using recovery::JsonValue;
  const JsonValue v = recovery::parse_json(record_json);
  const JsonValue* kind = v.find("ledger");
  if (kind == nullptr || kind->as_string() != kLedgerKind) {
    throw JsonParseError{"not an xres run-ledger record"};
  }
  obs::RunRecord r;
  r.id = v.at("id").as_string();
  r.study = v.at("study").as_string();
  if (const JsonValue* cell = v.find("cell"); cell != nullptr) {
    r.cell = cell->as_string();
  }
  if (const JsonValue* suite = v.find("suite"); suite != nullptr) {
    r.suite = suite->as_string();
  }
  r.seed = v.at("seed").as_u64();
  r.threads = static_cast<unsigned>(v.at("threads").as_u64());
  r.build = v.at("build").as_string();
  r.status = static_cast<int>(v.at("status").as_i64());
  r.params_digest = v.at("params_digest").as_string();
  for (const auto& [key, value] : v.at("params").as_object()) {
    r.params.emplace_back(key, value.as_string());
  }
  for (const auto& [key, value] : v.at("counters").as_object()) {
    r.counters.emplace_back(key, value.as_u64());
  }
  r.wall_seconds = v.at("wall_s").as_double();
  r.trials_per_second = v.at("trials_per_s").as_double();
  r.events_per_second = v.at("events_per_s").as_double();
  r.peak_rss = v.at("peak_rss_bytes").as_u64();
  if (const JsonValue* crc = v.find("metrics_crc"); crc != nullptr) {
    r.metrics_crc = crc->as_string();
  }
  if (const JsonValue* crc = v.find("manifest_crc"); crc != nullptr) {
    r.manifest_crc = crc->as_string();
  }
  if (const JsonValue* crc = v.find("platform_crc"); crc != nullptr) {
    r.platform_crc = crc->as_string();
  }
  return r;
}

std::vector<obs::RunRecord> load_ledger(const std::string& path,
                                        LedgerScanStats* stats) {
  std::vector<obs::RunRecord> records;
  LedgerScanStats local;
  std::ifstream in{path, std::ios::binary};
  if (in.good()) {
    local.found = true;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const std::string_view view{content};
    std::size_t start = 0;
    std::string record_json;
    while (start < view.size()) {
      std::size_t end = view.find('\n', start);
      if (end == std::string_view::npos) end = view.size();
      const std::string_view line = view.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      if (!unframe_crc_line(line, record_json)) {
        ++local.corrupt_records;  // torn tail or bit rot: skip, never fatal
        continue;
      }
      try {
        records.push_back(parse_run_record(record_json));
        ++local.valid_records;
      } catch (const recovery::JsonParseError&) {
        ++local.corrupt_records;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return records;
}

const std::string& build_describe() {
  static const std::string cached = [] {
    std::string describe = "unknown";
    if (std::FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128] = {};
      if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
        const std::string line = trim(buf);
        if (!line.empty()) describe = line;
      }
      ::pclose(pipe);
    }
    return describe;
  }();
  return cached;
}

RunComparison compare_runs(const obs::RunRecord& a, const obs::RunRecord& b,
                           double slowdown_threshold) {
  RunComparison out;
  auto drift = [&out](const std::string& line) { out.drift.push_back(line); };

  // A platform-digest mismatch is a warning, not drift: the runs modeled
  // different interconnect/PFS topologies, so their results are *expected*
  // to differ. Identity mismatches (study/params/seed/status) stay hard
  // drift, but result differences (counters, artifact CRCs) are demoted to
  // warnings — the comparison is apples-to-oranges, not broken determinism.
  const bool platform_differs = !a.platform_crc.empty() &&
                                !b.platform_crc.empty() &&
                                a.platform_crc != b.platform_crc;
  auto result_drift = [&out, &drift, platform_differs](const std::string& line) {
    if (platform_differs) {
      out.warnings.push_back(line + " (expected: different platforms)");
    } else {
      drift(line);
    }
  };
  if (platform_differs) {
    out.warnings.push_back("platform digest differs (" + a.platform_crc + " vs " +
                           b.platform_crc +
                           "): runs modeled different platforms, artifact "
                           "differences are expected");
  }

  if (a.study != b.study) drift("study: " + a.study + " vs " + b.study);
  if (a.params_digest != b.params_digest) {
    drift("params digest: " + a.params_digest + " vs " + b.params_digest);
  }
  if (a.seed != b.seed) {
    drift("seed: " + std::to_string(a.seed) + " vs " + std::to_string(b.seed));
  }
  if (a.status != b.status) {
    drift("status: " + std::to_string(a.status) + " vs " + std::to_string(b.status));
  }
  // Counter totals are part of the determinism contract; --threads is not
  // (the whole point is that thread count never changes them).
  const auto counters_a = counter_map(a);
  const auto counters_b = counter_map(b);
  std::map<std::string, bool> names;
  for (const auto& [name, value] : counters_a) names[name] = true;
  for (const auto& [name, value] : counters_b) names[name] = true;
  for (const auto& [name, present] : names) {
    const auto it_a = counters_a.find(name);
    const auto it_b = counters_b.find(name);
    const std::uint64_t va = it_a == counters_a.end() ? 0 : it_a->second;
    const std::uint64_t vb = it_b == counters_b.end() ? 0 : it_b->second;
    if (va != vb) {
      result_drift("counter " + name + ": " + std::to_string(va) + " vs " +
            std::to_string(vb));
    }
  }
  if (!a.metrics_crc.empty() && !b.metrics_crc.empty() &&
      a.metrics_crc != b.metrics_crc) {
    result_drift("metrics crc: " + a.metrics_crc + " vs " + b.metrics_crc);
  }
  if (!a.manifest_crc.empty() && !b.manifest_crc.empty() &&
      a.manifest_crc != b.manifest_crc) {
    result_drift("manifest crc: " + a.manifest_crc + " vs " + b.manifest_crc);
  }

  char buf[160];
  if (a.wall_seconds > 0 &&
      b.wall_seconds > a.wall_seconds * (1.0 + slowdown_threshold)) {
    std::snprintf(buf, sizeof buf,
                  "wall time regressed %.0f%%: %.3fs -> %.3fs (threshold %.0f%%)",
                  (b.wall_seconds / a.wall_seconds - 1.0) * 100.0, a.wall_seconds,
                  b.wall_seconds, slowdown_threshold * 100.0);
    out.warnings.emplace_back(buf);
  }
  if (a.trials_per_second > 0 && b.trials_per_second > 0 &&
      b.trials_per_second < a.trials_per_second * (1.0 - slowdown_threshold)) {
    std::snprintf(buf, sizeof buf,
                  "throughput regressed %.0f%%: %.1f -> %.1f trials/s "
                  "(threshold %.0f%%)",
                  (1.0 - b.trials_per_second / a.trials_per_second) * 100.0,
                  a.trials_per_second, b.trials_per_second,
                  slowdown_threshold * 100.0);
    out.warnings.emplace_back(buf);
  }
  return out;
}

int cmd_log(int argc, const char* const* argv) {
  CliParser cli{"list recent runs from the ledger (newest last)"};
  cli.add_option("--ledger", "ledger file to read", "results/ledger.jsonl");
  cli.add_option("--study", "only show runs of this study", "");
  cli.add_option("--limit", "show at most the N most recent runs (0 = all)", "20");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const std::string path = cli.str("--ledger");
  const std::string study = cli.str("--study");
  const std::int64_t limit = cli.integer("--limit");
  if (limit < 0) CliParser::usage_error("--limit must be >= 0");

  LedgerScanStats stats;
  std::vector<obs::RunRecord> records = load_ledger(path, &stats);
  if (!stats.found) {
    std::printf("no ledger at %s (runs record themselves there by default; "
                "see docs/OBSERVABILITY.md)\n", path.c_str());
    return 0;
  }
  if (!study.empty()) {
    std::erase_if(records, [&](const obs::RunRecord& r) { return r.study != study; });
  }
  std::size_t first = 0;
  if (limit > 0 && records.size() > static_cast<std::size_t>(limit)) {
    first = records.size() - static_cast<std::size_t>(limit);
  }
  std::printf("%-17s %-28s %-10s %3s %8s %10s %8s %s\n", "id", "study", "seed",
              "thr", "wall_s", "trials/s", "status", "params");
  for (std::size_t i = first; i < records.size(); ++i) {
    const obs::RunRecord& r = records[i];
    std::string name = r.study;
    if (!r.cell.empty() && r.cell != r.study) name += "[" + r.cell + "]";
    if (name.size() > 28) name = name.substr(0, 25) + "...";
    std::printf("%-17s %-28s %-10llu %3u %8.2f %10.1f %8d %s\n", r.id.c_str(),
                name.c_str(), static_cast<unsigned long long>(r.seed), r.threads,
                r.wall_seconds, r.trials_per_second, r.status,
                r.params_digest.c_str());
  }
  const std::size_t shown = records.size() - first;
  std::printf("%zu run%s shown (%zu in ledger", shown, shown == 1 ? "" : "s",
              stats.valid_records);
  if (stats.corrupt_records > 0) {
    std::printf(", %zu corrupt line%s skipped", stats.corrupt_records,
                stats.corrupt_records == 1 ? "" : "s");
  }
  std::printf(")\n");
  return 0;
}

int cmd_show(int argc, const char* const* argv) {
  std::string id;
  std::vector<const char*> rest;
  rest.push_back(argc > 0 ? argv[0] : "xres-show");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (id.empty() && !arg.starts_with("--")) {
      id = arg;
    } else {
      rest.push_back(argv[i]);
    }
  }
  CliParser cli{"show one ledger record in full: xres show <run-id>"};
  cli.add_option("--ledger", "ledger file to read", "results/ledger.jsonl");
  if (!cli.parse_or_exit(static_cast<int>(rest.size()), rest.data())) return 0;
  if (id.empty()) {
    CliParser::usage_error("usage: xres show <run-id> [--ledger PATH] — ids are "
                           "listed by `xres log`");
  }
  const std::vector<obs::RunRecord> records =
      load_ledger_or_usage_error(cli.str("--ledger"));
  print_record(find_run(records, id));
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  std::vector<std::string> ids;
  std::vector<const char*> rest;
  rest.push_back(argc > 0 ? argv[0] : "xres-compare");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (ids.size() < 2 && !arg.starts_with("--")) {
      ids.emplace_back(arg);
    } else {
      rest.push_back(argv[i]);
    }
  }
  CliParser cli{"compare two ledger runs: xres compare <run-a> <run-b>"};
  cli.add_option("--ledger", "ledger file to read", "results/ledger.jsonl");
  cli.add_option("--threshold", "wall-clock slowdown fraction that triggers a "
                 "regression warning", "0.25");
  if (!cli.parse_or_exit(static_cast<int>(rest.size()), rest.data())) return 0;
  if (ids.size() != 2) {
    CliParser::usage_error("usage: xres compare <run-a> <run-b> [--ledger PATH] "
                           "[--threshold F]");
  }
  const double threshold = cli.real("--threshold");
  if (threshold < 0) CliParser::usage_error("--threshold must be >= 0");

  const std::vector<obs::RunRecord> records =
      load_ledger_or_usage_error(cli.str("--ledger"));
  const obs::RunRecord& a = find_run(records, ids[0]);
  const obs::RunRecord& b = find_run(records, ids[1]);
  const RunComparison cmp = compare_runs(a, b, threshold);

  std::printf("compare %s (%s) vs %s (%s)\n", a.id.c_str(), a.study.c_str(),
              b.id.c_str(), b.study.c_str());
  for (const std::string& line : cmp.drift) {
    std::printf("  drift: %s\n", line.c_str());
  }
  for (const std::string& line : cmp.warnings) {
    std::printf("  warn:  %s\n", line.c_str());
  }
  if (cmp.identical()) {
    std::printf("  deterministic fields identical (%zu counters checked)\n",
                counter_map(a).size());
    return 0;
  }
  std::printf("  %zu deterministic mismatch%s\n", cmp.drift.size(),
              cmp.drift.size() == 1 ? "" : "es");
  return 1;
}

}  // namespace xres::study
