# Empty dependencies file for xres_sim.
# This may be replaced when dependencies are built.
