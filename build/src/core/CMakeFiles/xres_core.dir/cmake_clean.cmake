file(REMOVE_RECURSE
  "CMakeFiles/xres_core.dir/occupancy.cpp.o"
  "CMakeFiles/xres_core.dir/occupancy.cpp.o.d"
  "CMakeFiles/xres_core.dir/policy.cpp.o"
  "CMakeFiles/xres_core.dir/policy.cpp.o.d"
  "CMakeFiles/xres_core.dir/report.cpp.o"
  "CMakeFiles/xres_core.dir/report.cpp.o.d"
  "CMakeFiles/xres_core.dir/single_app_study.cpp.o"
  "CMakeFiles/xres_core.dir/single_app_study.cpp.o.d"
  "CMakeFiles/xres_core.dir/workload_engine.cpp.o"
  "CMakeFiles/xres_core.dir/workload_engine.cpp.o.d"
  "CMakeFiles/xres_core.dir/workload_study.cpp.o"
  "CMakeFiles/xres_core.dir/workload_study.cpp.o.d"
  "libxres_core.a"
  "libxres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
