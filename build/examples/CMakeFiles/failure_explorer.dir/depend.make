# Empty dependencies file for failure_explorer.
# This may be replaced when dependencies are built.
