# Empty dependencies file for xres_resilience.
# This may be replaced when dependencies are built.
