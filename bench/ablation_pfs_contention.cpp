// Ablation: machine-wide PFS bandwidth contention in the workload study.
// The paper's Eq. 3 models per-application PFS contention (N_a / N_S) but
// treats concurrent applications' checkpoints as independent; this
// extension routes all PFS traffic through a shared processor-sharing
// channel with a configurable gateway count and measures the impact on
// dropped applications.

#include <cstdio>

#include "common.hpp"
#include "core/workload_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"ablation_pfs_contention — dropped %% with/without machine-wide "
                "PFS contention"};
  cli.add_option("--patterns", "arrival patterns per cell", "15");
  cli.add_option("--seed", "root RNG seed", "20170530");
  bench::add_obs_options(cli, /*with_trace=*/false);
  bench::add_recovery_options(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const auto patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  const bench::ObsOptions obs_options = bench::read_obs_options(cli);
  bench::RecoveryCoordinator coordinator{bench::read_recovery_options(cli),
                                         "ablation_pfs_contention", seed};
  const TrialExecutor executor{1};  // pattern runs are serial in this sweep
  obs::MetricSet merged;

  std::printf("Ablation: PFS contention in the oversubscribed workload study\n");
  std::printf("scheduler Slack, %u patterns per cell\n\n", patterns);

  Table table{{"PFS model", "checkpoint-restart dropped %", "multilevel dropped %",
               "parallel-recovery dropped %"}};

  struct Variant {
    const char* name;
    bool contention;
    std::uint32_t gateways;
  };
  for (const Variant variant : {Variant{"independent (paper)", false, 0},
                                Variant{"shared, 8 gateways", true, 8},
                                Variant{"shared, 4 gateways", true, 4},
                                Variant{"shared, 1 gateway", true, 1}}) {
    std::vector<std::string> row{variant.name};
    for (TechniqueKind kind : workload_techniques()) {
      WorkloadStudyConfig study;
      study.patterns = patterns;
      study.seed = seed;

      // Run the combos manually so the engine flag can be set; the crash-safe
      // pattern loop journals each run under a per-cell batch label.
      RunningStats dropped;
      bench::run_patterns_controlled(
          coordinator, executor,
          std::string{variant.name} + "/" + to_string(kind), patterns, seed,
          [&](std::uint32_t p) {
            const ArrivalPattern pattern =
                generate_pattern(study.workload, study.seed, p);
            WorkloadEngineConfig engine;
            engine.machine = study.machine;
            engine.resilience = study.resilience;
            engine.policy = TechniquePolicy::fixed_technique(kind);
            engine.scheduler = SchedulerKind::kSlack;
            engine.seed = derive_seed(study.seed, 0x656e67696eULL, p);
            engine.model_pfs_contention = variant.contention;
            if (variant.contention) engine.pfs_gateways = variant.gateways;
            obs::TrialObs run_obs;
            if (obs_options.metrics()) {
              run_obs.enable_metrics();
              engine.obs = &run_obs;
            }
            WorkloadOutcome outcome;
            outcome.result = run_workload(engine, pattern);
            if (obs_options.metrics()) outcome.metrics = *run_obs.metrics();
            return outcome;
          },
          [&](std::uint32_t, const WorkloadOutcome& outcome) {
            dropped.add(outcome.result.dropped_fraction);
            if (obs_options.metrics() && outcome.metrics.has_value()) {
              merged.merge(*outcome.metrics);
            }
          });
      if (coordinator.interrupted()) return coordinator.finish();
      row.push_back(fmt_double(dropped.mean() * 100.0, 2) + " ± " +
                    fmt_double(dropped.stddev() * 100.0, 2));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "finished: %s\n", variant.name);
  }
  std::printf("%s", table.to_text().c_str());
  if (obs_options.metrics()) {
    std::printf("\nInstrumented breakdown (whole sweep):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs_options.metrics_path);
    std::printf("metrics written to %s\n", obs_options.metrics_path.c_str());
  }
  std::printf("(parallel recovery never touches the PFS, so its column is the "
              "control: contention leaves it unchanged)\n");
  return coordinator.finish();
}
