#include "platform/allocator.hpp"

#include <algorithm>

namespace xres {

NodeAllocator::NodeAllocator(std::uint32_t node_count)
    : capacity_{node_count}, free_total_{node_count} {
  XRES_CHECK(node_count > 0, "allocator needs at least one node");
  free_blocks_.emplace(0U, node_count);
}

std::optional<NodeRange> NodeAllocator::allocate(std::uint32_t count) {
  XRES_CHECK(count > 0, "cannot allocate zero nodes");
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second < count) continue;
    const NodeRange range{it->first, count};
    if (it->second == count) {
      free_blocks_.erase(it);
    } else {
      const std::uint32_t new_first = it->first + count;
      const std::uint32_t new_len = it->second - count;
      free_blocks_.erase(it);
      free_blocks_.emplace(new_first, new_len);
    }
    free_total_ -= count;
    return range;
  }
  return std::nullopt;
}

std::optional<NodeRange> NodeAllocator::allocate_grouped(std::uint32_t count,
                                                         std::uint32_t group_size) {
  XRES_CHECK(count > 0, "cannot allocate zero nodes");
  if (group_size <= 1) return allocate(count);

  const auto spanned = [group_size, count](std::uint32_t start) {
    return (start + count - 1) / group_size - start / group_size + 1;
  };

  bool found = false;
  std::uint32_t best_start = 0;
  std::uint32_t best_spanned = 0;
  for (const auto& [first, len] : free_blocks_) {
    if (len < count) continue;
    // Candidate 1: block start.
    if (!found || spanned(first) < best_spanned) {
      found = true;
      best_start = first;
      best_spanned = spanned(first);
    }
    // Candidate 2: first group boundary inside the block, if the range
    // still fits behind it.
    const std::uint32_t aligned = ((first + group_size - 1) / group_size) * group_size;
    if (aligned > first && aligned + count <= first + len &&
        spanned(aligned) < best_spanned) {
      best_start = aligned;
      best_spanned = spanned(aligned);
    }
  }
  if (!found) return std::nullopt;

  // Carve [best_start, best_start + count) out of its free block.
  auto it = free_blocks_.upper_bound(best_start);
  XRES_CHECK(it != free_blocks_.begin(), "grouped placement lost its free block");
  --it;
  const std::uint32_t block_first = it->first;
  const std::uint32_t block_len = it->second;
  XRES_CHECK(best_start >= block_first && best_start + count <= block_first + block_len,
             "grouped placement outside its free block");
  free_blocks_.erase(it);
  if (best_start > block_first) {
    free_blocks_.emplace(block_first, best_start - block_first);
  }
  const std::uint32_t tail_first = best_start + count;
  const std::uint32_t tail_len = block_first + block_len - tail_first;
  if (tail_len > 0) free_blocks_.emplace(tail_first, tail_len);
  free_total_ -= count;
  return NodeRange{best_start, count};
}

void NodeAllocator::release(NodeRange range) {
  XRES_CHECK(range.count > 0, "cannot release an empty range");
  XRES_CHECK(range.end() <= capacity_, "release beyond machine capacity");

  // Find the first free block at or after the released range and its
  // predecessor, to detect overlap and coalesce.
  auto next = free_blocks_.lower_bound(range.first);
  if (next != free_blocks_.end()) {
    XRES_CHECK(range.end() <= next->first, "release overlaps a free block");
  }
  auto prev = next;
  if (prev != free_blocks_.begin()) {
    --prev;
    XRES_CHECK(prev->first + prev->second <= range.first,
               "release overlaps a free block");
  } else {
    prev = free_blocks_.end();
  }

  std::uint32_t first = range.first;
  std::uint32_t len = range.count;
  if (prev != free_blocks_.end() && prev->first + prev->second == range.first) {
    first = prev->first;
    len += prev->second;
    free_blocks_.erase(prev);
  }
  if (next != free_blocks_.end() && next->first == range.end()) {
    len += next->second;
    free_blocks_.erase(next);
  }
  free_blocks_.emplace(first, len);
  free_total_ += range.count;
  XRES_CHECK(free_total_ <= capacity_, "free count exceeds capacity (double free?)");
}

std::uint32_t NodeAllocator::largest_free_block() const {
  std::uint32_t best = 0;
  for (const auto& [first, len] : free_blocks_) best = std::max(best, len);
  return best;
}

bool NodeAllocator::is_free(std::uint32_t node) const {
  XRES_CHECK(node < capacity_, "node index out of range");
  auto it = free_blocks_.upper_bound(node);
  if (it == free_blocks_.begin()) return false;
  --it;
  return node < it->first + it->second;
}

void NodeAllocator::validate() const {
  std::uint32_t total = 0;
  std::uint32_t prev_end = 0;
  bool first_block = true;
  for (const auto& [first, len] : free_blocks_) {
    XRES_CHECK(len > 0, "empty free block");
    if (!first_block) {
      // Strictly greater: adjacent blocks must have been coalesced.
      XRES_CHECK(first > prev_end, "free blocks overlap or are uncoalesced");
    }
    prev_end = first + len;
    XRES_CHECK(prev_end <= capacity_, "free block beyond capacity");
    total += len;
    first_block = false;
  }
  XRES_CHECK(total == free_total_, "free total out of sync");
}

}  // namespace xres
