// Reproduces paper Figure 2: resilience-technique efficiency at increasing
// percentages of total system use for the high-memory, high-communication
// application D64, with a 10-year processor MTBF. The headline feature is
// the optimal-technique crossover from multilevel checkpointing to
// parallel recovery around 25% of the system.

#include "apps/app_type.hpp"
#include "study/figure.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("D64");
  config.resilience.node_mtbf = Duration::years(10.0);
  return study::run_efficiency_figure(
      "Figure 2: efficiency vs. system share, application D64, MTBF 10 y",
      config, ctx);
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "fig2_efficiency_d64";
  def.group = study::StudyGroup::kFigure;
  def.description =
      "paper Figure 2: efficiency vs. system share for D64, node MTBF 10 years";
  def.summary =
      "fig2_efficiency_d64 — paper Figure 2: efficiency vs. application size "
      "for D64 (high memory, 75% communication), node MTBF 10 years.";
  def.journal_id = "Figure 2: efficiency vs. system share, application D64, MTBF 10 y";
  def.options.csv = true;
  def.options.chart = true;
  def.options.report = true;
  def.params.integer("trials", "trials per bar (paper: 200)", 200).min(1);
  def.params.text("surrogate",
                  "sim | analytic | auto — answer cells from the analytic "
                  "surrogate with a per-cell error bound (docs/STUDIES.md)",
                  "sim");
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
