#pragma once

/// \file xres.hpp
/// Umbrella header: the full public API of the xres exascale-resilience
/// simulation library. Fine-grained headers remain available for faster
/// incremental builds; this is for quickstarts and downstream consumers
/// who prefer a single include.

// Utilities
#include "util/barchart.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

// Discrete-event engine
#include "sim/event_queue.hpp"
#include "sim/shared_channel.hpp"
#include "sim/simulation.hpp"

// Platform model
#include "platform/allocator.hpp"
#include "platform/machine.hpp"
#include "platform/spec.hpp"
#include "platform/transfer.hpp"

// Failure model
#include "failure/distribution.hpp"
#include "failure/process.hpp"
#include "failure/replay.hpp"
#include "failure/severity.hpp"
#include "failure/trace.hpp"

// Applications & workloads
#include "apps/app_type.hpp"
#include "apps/application.hpp"
#include "apps/swf.hpp"
#include "apps/workload.hpp"

// Resilience techniques
#include "resilience/analytic.hpp"
#include "resilience/config.hpp"
#include "resilience/interval.hpp"
#include "resilience/multilevel.hpp"
#include "resilience/plan.hpp"
#include "resilience/planner.hpp"
#include "resilience/renewal.hpp"
#include "resilience/selector.hpp"
#include "resilience/technique.hpp"

// Execution runtime
#include "runtime/app_runtime.hpp"
#include "runtime/power.hpp"
#include "runtime/result.hpp"
#include "runtime/timeline.hpp"
#include "runtime/transfer_service.hpp"

// Resource management
#include "rm/scheduler.hpp"

// Observability
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "obs/trial_obs.hpp"

// Crash safety (docs/ROBUSTNESS.md)
#include "recovery/journal.hpp"
#include "recovery/json_parse.hpp"
#include "recovery/options.hpp"
#include "recovery/shutdown.hpp"
#include "recovery/trial_record.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/deadline.hpp"

// Study drivers
#include "core/occupancy.hpp"
#include "core/policy.hpp"
#include "core/single_app_study.hpp"
#include "core/workload_engine.hpp"
#include "core/workload_record.hpp"
#include "core/workload_study.hpp"

// Study registry, shared harness, generic main and paper suite
#include "study/study.hpp"

namespace xres {

/// Library version (major.minor.patch).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace xres
