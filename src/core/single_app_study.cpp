#include "core/single_app_study.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xres {

EfficiencyStudyResult run_efficiency_study(const EfficiencyStudyConfig& config,
                                           const StudyProgress& progress) {
  XRES_CHECK(config.trials > 0, "study needs at least one trial");
  XRES_CHECK(!config.size_fractions.empty(), "study needs at least one size");
  XRES_CHECK(!config.techniques.empty(), "study needs at least one technique");

  EfficiencyStudyResult result;
  result.config = config;
  const std::size_t total_cells =
      config.size_fractions.size() * config.techniques.size();
  std::size_t done_cells = 0;

  const TrialExecutor executor{config.threads};

  const bool observing = config.collect_metrics || config.collect_trace;
  if (config.collect_metrics) {
    result.metrics.emplace();
    result.technique_metrics.resize(config.techniques.size());
  }

  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    const double fraction = config.size_fractions[si];
    XRES_CHECK(fraction > 0.0 && fraction <= 1.0, "size fraction must be in (0, 1]");
    const auto nodes = static_cast<std::uint32_t>(std::llround(
        fraction * static_cast<double>(config.machine.node_count)));
    const AppSpec app = AppSpec::from_baseline(config.app_type, std::max(1U, nodes),
                                               config.baseline);

    result.efficiency.emplace_back();
    result.mean_failures.emplace_back();
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      SingleAppTrialConfig trial;
      trial.app = app;
      trial.technique = config.techniques[ti];
      trial.machine = config.machine;
      trial.resilience = config.resilience;
      trial.failure_distribution = config.failure_distribution;

      // One batch per cell: trial t's seed is derive_seed(seed, si, ti, t),
      // exactly the historical serial derivation, so any bar can be
      // regenerated in isolation.
      std::vector<TrialSpec> specs;
      specs.reserve(config.trials);
      for (std::uint32_t t = 0; t < config.trials; ++t) {
        specs.push_back(TrialSpec{trial, {si, ti, t}});
      }
      // The journal batch label: stable across runs of the same sweep, and
      // the record's derived-seed fingerprint guards against a changed one.
      const std::string batch = "s" + std::to_string(si) + ".t" + std::to_string(ti);

      std::vector<ExecutionResult> outcomes;
      if (observing) {
        // One observer per trial; metrics on all, trace on trial 0 only
        // (a full-study trace would drown Perfetto in identical tracks).
        std::vector<obs::TrialObs> observers(specs.size());
        for (obs::TrialObs& o : observers) {
          if (config.collect_metrics) o.enable_metrics();
        }
        if (config.collect_trace) observers.front().enable_trace();
        outcomes = executor.run_batch(config.seed, specs, observers, config.recovery,
                                      batch, &result.recovery_report);
        if (config.collect_metrics) {
          // Merge in spec order: byte-identical for every thread count.
          for (const obs::TrialObs& o : observers) {
            result.metrics->merge(*o.metrics());
            result.technique_metrics[ti].merge(*o.metrics());
          }
        }
        if (config.collect_trace) {
          result.trace.add_track(
              fmt_percent(fraction, 0) + " " + to_string(config.techniques[ti]),
              std::move(*observers.front().trace()));
        }
      } else {
        outcomes = executor.run_batch(config.seed, specs, {}, config.recovery, batch,
                                      &result.recovery_report);
      }

      // Reduce in trial order: bit-identical for every thread count.
      RunningStats efficiency;
      RunningStats failures;
      for (const ExecutionResult& r : outcomes) {
        efficiency.add(r.efficiency);
        failures.add(static_cast<double>(r.failures_seen));
      }
      result.efficiency[si].push_back(efficiency.summary());
      result.mean_failures[si].push_back(failures.empty() ? 0.0 : failures.mean());
      ++done_cells;
      if (progress) progress(done_cells, total_cells);
    }
  }
  return result;
}

Table EfficiencyStudyResult::to_table() const {
  std::vector<std::string> headers{"system share"};
  for (TechniqueKind kind : config.techniques) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    std::vector<std::string> row{fmt_percent(config.size_fractions[si], 0)};
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const Summary& s = efficiency[si][ti];
      row.push_back(fmt_mean_std(s.mean, s.stddev));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table EfficiencyStudyResult::to_metrics_table() const {
  std::vector<std::string> headers{"metric"};
  for (TechniqueKind kind : config.techniques) headers.emplace_back(to_string(kind));
  headers.emplace_back("total");
  Table table{std::move(headers)};
  if (!metrics.has_value()) return table;

  const auto cell = [](const obs::MetricSet& set, const obs::MetricDesc& d) -> std::string {
    switch (d.id.kind()) {
      case obs::MetricKind::kCounter:
        return std::to_string(set.counter(d.id));
      case obs::MetricKind::kGauge:
        return fmt_double(set.gauge(d.id), 2);
      case obs::MetricKind::kHistogram: {
        const obs::HistogramData& h = set.histogram(d.id);
        if (h.count == 0) return "-";
        return fmt_double(h.mean(), 3) + " (n=" + std::to_string(h.count) + ")";
      }
    }
    return "?";
  };
  const auto is_zero = [](const obs::MetricSet& set, const obs::MetricDesc& d) {
    switch (d.id.kind()) {
      case obs::MetricKind::kCounter: return set.counter(d.id) == 0;
      case obs::MetricKind::kGauge: return set.gauge(d.id) == 0.0;
      case obs::MetricKind::kHistogram: return set.histogram(d.id).count == 0;
    }
    return true;
  };

  for (const obs::MetricDesc& d : obs::MetricRegistry::global().descriptors()) {
    if (is_zero(*metrics, d)) continue;  // keep the breakdown readable
    std::vector<std::string> row{d.name};
    for (const obs::MetricSet& set : technique_metrics) row.push_back(cell(set, d));
    row.push_back(cell(*metrics, d));
    table.add_row(std::move(row));
  }
  return table;
}

Table EfficiencyStudyResult::to_csv_table() const {
  Table table{{"size_fraction", "technique", "mean_efficiency", "stddev", "trials",
               "mean_failures"}};
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const Summary& s = efficiency[si][ti];
      table.add_row({fmt_double(config.size_fractions[si], 4),
                     to_string(config.techniques[ti]), fmt_double(s.mean, 6),
                     fmt_double(s.stddev, 6), std::to_string(s.count),
                     fmt_double(mean_failures[si][ti], 2)});
    }
  }
  return table;
}

}  // namespace xres
