// Tests for executor profiling (PhaseProfiler, progress rendering) and for
// the Logger's XRES_LOG parsing: a CLI typo throws, an environment typo
// warns and falls back to the default level.

#include <gtest/gtest.h>

#include <string>

#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace xres {
namespace {

TEST(ObsRenderProgress, BasicLineAndPercent) {
  const std::string line = obs::render_progress("cell", 12, 40, 3.0);
  EXPECT_NE(line.find("cell 12/40"), std::string::npos);
  EXPECT_NE(line.find("(30%)"), std::string::npos);
  EXPECT_NE(line.find("eta"), std::string::npos);
}

TEST(ObsRenderProgress, NoEtaAtStartOrEnd) {
  EXPECT_EQ(obs::render_progress("cell", 0, 10, 0.0).find("eta"), std::string::npos);
  EXPECT_EQ(obs::render_progress("cell", 10, 10, 5.0).find("eta"), std::string::npos);
}

TEST(ObsRenderProgress, EtaExtrapolatesRateAndSwitchesToMinutes) {
  // 2 done in 4 s => 2 s/unit => 16 s remaining for the other 8.
  EXPECT_NE(obs::render_progress("cell", 2, 10, 4.0).find("eta 16 s"),
            std::string::npos);
  // 1 done in 10 s, 99 to go => 990 s => minutes.
  EXPECT_NE(obs::render_progress("cell", 1, 100, 10.0).find("min"),
            std::string::npos);
}

TEST(ObsRenderProgress, RejectsBadState) {
  EXPECT_THROW((void)obs::render_progress("cell", 2, 0, 1.0), CheckError);
  EXPECT_THROW((void)obs::render_progress("cell", 11, 10, 1.0), CheckError);
}

TEST(ObsPhaseProfiler, AccumulatesNamedPhasesInFirstBeginOrder) {
  obs::PhaseProfiler profiler;
  EXPECT_EQ(profiler.summary(), "(no phases)");

  profiler.begin("setup");
  profiler.begin("run");
  profiler.begin("setup");  // re-entering accumulates into the same entry
  profiler.end();

  const auto phases = profiler.phases();
  ASSERT_EQ(phases.size(), 2U);
  EXPECT_EQ(phases[0].first, "setup");
  EXPECT_EQ(phases[1].first, "run");
  EXPECT_GE(phases[0].second, 0.0);
  EXPECT_GE(profiler.total_seconds(), phases[1].second);

  const std::string summary = profiler.summary();
  EXPECT_NE(summary.find("setup"), std::string::npos);
  EXPECT_NE(summary.find("run"), std::string::npos);
  EXPECT_NE(summary.find(" = "), std::string::npos);
}

TEST(ObsPhaseProfiler, EndWithoutBeginIsANoOp) {
  obs::PhaseProfiler profiler;
  profiler.end();
  EXPECT_TRUE(profiler.phases().empty());
  EXPECT_DOUBLE_EQ(profiler.total_seconds(), 0.0);
}

TEST(LogLevelParsing, TryParseAcceptsAnyCaseAndRejectsGarbage) {
  EXPECT_EQ(try_parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(try_parse_log_level("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(try_parse_log_level("Off"), LogLevel::kOff);
  EXPECT_FALSE(try_parse_log_level("verbose").has_value());
  EXPECT_FALSE(try_parse_log_level("").has_value());
}

TEST(LogLevelParsing, CliParseThrowsOnTypo) {
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_THROW((void)parse_log_level("wran"), CheckError);
}

TEST(LogLevelParsing, EnvFallsBackToWarnInsteadOfThrowing) {
  EXPECT_EQ(Logger::level_from_env(nullptr), LogLevel::kWarn);
  EXPECT_EQ(Logger::level_from_env("info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::level_from_env("ERROR"), LogLevel::kError);
  // A typo must not abort a long study at startup: default level + warning.
  EXPECT_EQ(Logger::level_from_env("debgu"), LogLevel::kWarn);
}

}  // namespace
}  // namespace xres
