#include "resilience/planner.hpp"

#include <cmath>

#include "platform/platform_model.hpp"
#include "resilience/interval.hpp"
#include "resilience/multilevel.hpp"
#include "util/check.hpp"

namespace xres {

double message_logging_slowdown(const AppType& type, const ResilienceConfig& config) {
  return 1.0 + config.comm_slowdown_per_tc * type.comm_fraction;
}

std::uint32_t replicated_node_count(std::uint32_t app_nodes, double degree) {
  XRES_CHECK(degree >= 1.0, "replication degree must be >= 1");
  return static_cast<std::uint32_t>(
      std::ceil(degree * static_cast<double>(app_nodes) - 1e-9));
}

DataSize checkpoint_image(const AppSpec& app, const ResilienceConfig& config) {
  return app.type.memory_per_node * config.checkpoint_compression;
}

namespace {

/// Highest severity level in the configuration (what a PFS checkpoint
/// covers).
SeverityLevel max_severity(const ResilienceConfig& config) {
  return static_cast<SeverityLevel>(config.severity_weights.size());
}

/// Attach the topology-aware transfer description to a PFS-backed level.
/// Intentionally a no-op under the flat model: legacy engines convert the
/// nominal duration themselves and must stay byte-identical.
void fill_pfs_transfer(CheckpointLevelSpec& level, const AppSpec& app,
                       const MachineSpec& machine, const PlatformModel& model,
                       const ResilienceConfig& config) {
  if (machine.platform.model == PlatformModelKind::kFlat) return;
  level.pfs_bytes =
      checkpoint_image(app, config) * static_cast<double>(app.nodes);
  level.pfs_rate_cap = model.pfs_effective_bandwidth(app.nodes);
}

ExecutionPlan base_plan(TechniqueKind kind, const AppSpec& app,
                        const ResilienceConfig& config) {
  ExecutionPlan plan;
  plan.kind = kind;
  plan.app = app;
  plan.physical_nodes = app.nodes;
  plan.baseline = app.baseline_time();
  plan.work_target = plan.baseline;
  plan.failure_rate =
      Rate::one_per(config.node_mtbf) * static_cast<double>(app.nodes);
  plan.max_wall_time = plan.baseline * config.max_slowdown;
  return plan;
}

ExecutionPlan plan_none(const AppSpec& app, const ResilienceConfig& config) {
  ExecutionPlan plan = base_plan(TechniqueKind::kNone, app, config);
  plan.failure_rate = Rate::zero();  // the ideal baseline assumes no failures
  plan.max_wall_time = Duration::infinity();
  return plan;
}

ExecutionPlan plan_checkpoint_restart(const AppSpec& app, const MachineSpec& machine,
                                      const PlatformModel& model,
                                      const ResilienceConfig& config) {
  ExecutionPlan plan = base_plan(TechniqueKind::kCheckpointRestart, app, config);
  const Duration cost =
      model.pfs_transfer_time(checkpoint_image(app, config), app.nodes);
  plan.levels = {
      CheckpointLevelSpec{cost, cost, max_severity(config), /*uses_shared_pfs=*/true}};
  fill_pfs_transfer(plan.levels.back(), app, machine, model, config);
  plan.nesting = {1};
  plan.checkpoint_quantum = daly_interval(cost, plan.failure_rate);
  plan.adaptive_interval = config.adaptive_interval;
  return plan;
}

ExecutionPlan plan_semi_blocking(const AppSpec& app, const MachineSpec& machine,
                                 const PlatformModel& model,
                                 const ResilienceConfig& config) {
  // Like checkpoint/restart, but execution continues at rate σ while the
  // checkpoint drains: the effective blocked time per checkpoint is
  // C·(1 − σ), which is what Eq. 4 should optimize against.
  ExecutionPlan plan = base_plan(TechniqueKind::kSemiBlockingCheckpoint, app, config);
  const Duration cost =
      model.pfs_transfer_time(checkpoint_image(app, config), app.nodes);
  plan.levels = {
      CheckpointLevelSpec{cost, cost, max_severity(config), /*uses_shared_pfs=*/true}};
  fill_pfs_transfer(plan.levels.back(), app, machine, model, config);
  plan.nesting = {1};
  plan.checkpoint_work_rate = config.semi_blocking_work_rate;
  const Duration effective_cost = cost * (1.0 - plan.checkpoint_work_rate);
  plan.checkpoint_quantum = daly_interval(effective_cost, plan.failure_rate);
  plan.adaptive_interval = config.adaptive_interval;
  return plan;
}

ExecutionPlan plan_multilevel(const AppSpec& app, const MachineSpec& machine,
                              const PlatformModel& model,
                              const ResilienceConfig& config) {
  ExecutionPlan plan = base_plan(TechniqueKind::kMultilevel, app, config);

  // Level costs: RAM (Eq. 5), partner copy (Eq. 6), PFS (Eq. 3), matched to
  // however many severity levels are configured (highest levels first when
  // fewer than three are in play).
  const Duration l1 = model.local_memory_time(checkpoint_image(app, config));
  const Duration l2 = model.partner_copy_time(checkpoint_image(app, config));
  const Duration l3 = model.pfs_transfer_time(checkpoint_image(app, config), app.nodes);
  const int severity_levels = max_severity(config);
  XRES_CHECK(severity_levels <= 3, "multilevel planner supports at most 3 severity levels");
  std::vector<Duration> costs;
  if (severity_levels >= 3) costs.push_back(l1);
  if (severity_levels >= 2) costs.push_back(l2);
  costs.push_back(l3);

  plan.levels.clear();
  std::vector<Rate> level_rates;
  for (int i = 0; i < severity_levels; ++i) {
    const double weight_sum = [&] {
      double s = 0.0;
      for (double w : config.severity_weights) s += w;
      return s;
    }();
    const double pmf = config.severity_weights[static_cast<std::size_t>(i)] / weight_sum;
    // The highest level is the PFS write (Eq. 3); lower levels stay within
    // node RAM / partner memory and never touch the shared file system.
    const bool is_pfs_level = (i + 1 == severity_levels);
    plan.levels.push_back(
        CheckpointLevelSpec{costs[static_cast<std::size_t>(i)],
                            costs[static_cast<std::size_t>(i)],
                            static_cast<SeverityLevel>(i + 1), is_pfs_level});
    if (is_pfs_level) {
      fill_pfs_transfer(plan.levels.back(), app, machine, model, config);
    }
    level_rates.push_back(plan.failure_rate * pmf);
  }

  const MultilevelSchedule schedule =
      optimize_multilevel(plan.levels, level_rates, config.max_nesting);
  plan.checkpoint_quantum = schedule.quantum;
  plan.nesting = schedule.nesting;
  return plan;
}

ExecutionPlan plan_parallel_recovery(const AppSpec& app, const MachineSpec& machine,
                                     const PlatformModel& model,
                                     const ResilienceConfig& config) {
  (void)machine;
  ExecutionPlan plan = base_plan(TechniqueKind::kParallelRecovery, app, config);
  // Eq. 7: message logging stretches the baseline by µ.
  const double mu = message_logging_slowdown(app.type, config);
  plan.work_target = plan.baseline * mu;
  plan.max_wall_time = plan.work_target * config.max_slowdown;

  // In-memory double checkpoint (Zheng et al. [33]) behaves like the
  // level-2 partner copy (Section IV-D).
  const Duration cost = model.partner_copy_time(checkpoint_image(app, config));
  plan.levels = {CheckpointLevelSpec{cost, cost, max_severity(config)}};
  plan.nesting = {1};
  plan.checkpoint_quantum = daly_interval(cost, plan.failure_rate);
  plan.rollback_on_failure = false;
  plan.recovery_parallelism = config.recovery_parallelism;
  plan.adaptive_interval = config.adaptive_interval;
  return plan;
}

ExecutionPlan plan_redundancy(TechniqueKind kind, const AppSpec& app,
                              const MachineSpec& machine, const PlatformModel& model,
                              const ResilienceConfig& config) {
  const double degree = kind == TechniqueKind::kRedundancyFull
                            ? config.full_redundancy
                            : config.partial_redundancy;
  ExecutionPlan plan = base_plan(kind, app, config);
  plan.replication_degree = degree;
  plan.physical_nodes = replicated_node_count(app.nodes, degree);
  plan.feasible = plan.physical_nodes <= machine.node_count;

  // Eq. 8: duplicated communication stretches each time step to
  // T_W + r·T_C.
  const double stretch = app.type.work_fraction() + degree * app.type.comm_fraction;
  plan.work_target = plan.baseline * stretch;
  plan.max_wall_time = plan.work_target * config.max_slowdown;

  // Raw failures arrive over all physical nodes.
  plan.failure_rate =
      Rate::one_per(config.node_mtbf) * static_cast<double>(plan.physical_nodes);

  const Duration cost =
      model.pfs_transfer_time(checkpoint_image(app, config), app.nodes);
  plan.levels = {
      CheckpointLevelSpec{cost, cost, max_severity(config), /*uses_shared_pfs=*/true}};
  fill_pfs_transfer(plan.levels.back(), app, machine, model, config);
  plan.nesting = {1};

  // Only replica-exhausting failures force a rollback, so the optimal
  // interval comes from the effective fatal hazard, which grows with the
  // interval (the longer replicas stay unhealed, the likelier a pair dies):
  //   λ_eff(τ) ≈ s·µ_n + d·µ_n²·τ
  // with µ_n the per-node rate, d duplicated and s unduplicated processes.
  const double node_rate = Rate::one_per(config.node_mtbf).per_second_value();
  const double duplicated = static_cast<double>(plan.physical_nodes - app.nodes);
  const double singles = static_cast<double>(app.nodes) - duplicated;
  XRES_CHECK(singles >= -1e-9, "replication degree above 2 is not modeled");
  auto hazard = [node_rate, duplicated, singles](Duration tau) {
    return Rate::per_second(std::max(singles, 0.0) * node_rate +
                            duplicated * node_rate * node_rate * tau.to_seconds());
  };
  plan.checkpoint_quantum = optimize_interval(cost, cost, hazard).interval;
  return plan;
}

}  // namespace

ExecutionPlan make_plan(TechniqueKind kind, const AppSpec& app, const MachineSpec& machine,
                        const ResilienceConfig& config) {
  app.validate();
  machine.validate();
  config.validate();
  XRES_CHECK(app.nodes <= machine.node_count || kind == TechniqueKind::kNone ||
                 kind == TechniqueKind::kRedundancyPartial ||
                 kind == TechniqueKind::kRedundancyFull,
             "application larger than machine");

  // All data-movement costs go through the machine's platform model; the
  // flat model delegates to the Eq. 3/5/6 free functions bit-identically.
  const std::unique_ptr<PlatformModel> model = make_platform_model(machine);

  ExecutionPlan plan;
  switch (kind) {
    case TechniqueKind::kNone:
      plan = plan_none(app, config);
      break;
    case TechniqueKind::kCheckpointRestart:
      plan = plan_checkpoint_restart(app, machine, *model, config);
      break;
    case TechniqueKind::kSemiBlockingCheckpoint:
      plan = plan_semi_blocking(app, machine, *model, config);
      break;
    case TechniqueKind::kMultilevel:
      plan = plan_multilevel(app, machine, *model, config);
      break;
    case TechniqueKind::kParallelRecovery:
      plan = plan_parallel_recovery(app, machine, *model, config);
      break;
    case TechniqueKind::kRedundancyPartial:
    case TechniqueKind::kRedundancyFull:
      plan = plan_redundancy(kind, app, machine, *model, config);
      break;
  }
  if (app.nodes > machine.node_count) plan.feasible = false;
  plan.validate();
  return plan;
}

}  // namespace xres
