#pragma once

/// \file spec.hpp
/// Runtime-defined studies: construct a `StudyDefinition` from a TOML or
/// JSON spec file instead of a compiled-in registration. A spec names a
/// registered *base* study and derives a new definition from it — same run
/// function and option surface, new name, optionally a new description,
/// seed and parameter defaults — so `xres run --from my_study.toml` and
/// `xres sweep --from my_study.toml` execute exactly the code path the
/// compiled-in study would, with byte-identical artifacts for identical
/// bindings.
///
/// TOML format (JSON mirrors it: {"study": {...}, "params": {...},
/// "sweep": {...}}):
///
///     [study]
///     name = "efficiency_c64_lowmtbf"   # new study name (artifact key)
///     base = "efficiency"               # registered study to derive from
///     description = "..."               # optional override
///     seed = 7                          # optional default-seed override
///
///     [params]                          # optional: new schema defaults
///     mtbf-years = 2.5                  # validated against the base schema
///
///     [sweep]                           # optional: axes for `xres sweep`
///     trials = [10, 20, 40]
///
/// Every malformed input — unknown section or key, unknown parameter,
/// out-of-range value, TOML/JSON syntax error — throws CheckError with a
/// message naming the offending key; the `_or_exit` wrapper turns that
/// into a one-line exit-2 usage error for the CLI.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "recovery/json_parse.hpp"
#include "study/registry.hpp"
#include "study/sweep.hpp"

namespace xres::study {

/// A parsed spec file, before base resolution.
struct StudySpec {
  std::string name;
  std::string base;
  std::string description;  ///< empty: inherit the base's
  std::optional<std::uint64_t> seed;
  /// `[params]` bindings in declaration order (raw value text).
  std::vector<std::pair<std::string, std::string>> params;
  /// `[sweep]` axes in declaration order.
  std::vector<SweepAxis> sweep;
};

/// Parse spec text; throws CheckError (or util::TomlParseError /
/// recovery::JsonParseError for syntax errors).
[[nodiscard]] StudySpec parse_spec_toml(const std::string& text);
[[nodiscard]] StudySpec parse_spec_json(const std::string& text);

/// Read + parse \p path, dispatching on its .toml/.json extension. All
/// errors surface as CheckError prefixed with the path.
[[nodiscard]] StudySpec load_study_spec(const std::string& path);

/// A materialized runtime definition. The definition lives outside the
/// registry; keep the shared_ptr alive while running it.
struct LoadedStudy {
  std::shared_ptr<StudyDefinition> def;
  std::vector<SweepAxis> sweep;  ///< the spec's `[sweep]` axes, if any
};

/// Resolve `spec.base` in the registry and derive the runtime definition:
/// base run function and options, spec name (also the journal identity),
/// `[params]` bindings re-validated and installed as schema defaults.
/// Throws CheckError on an unknown base, a bad name, or a bad binding.
[[nodiscard]] LoadedStudy materialize_spec(const StudySpec& spec);

/// load_study_spec + materialize_spec, errors prefixed with \p path.
[[nodiscard]] LoadedStudy load_study_from_file(const std::string& path);

/// CLI wrapper: any CheckError becomes a one-line exit-2 usage error.
[[nodiscard]] LoadedStudy load_study_from_file_or_exit(const std::string& path);

/// Emit \p schema as a JSON array — the serialization `xres describe
/// --json` embeds and `schema_from_json` parses back:
///     [{"key": "trials", "type": "int", "help": "...", "default": "200",
///       "min": 1}, ...]
void write_schema_json(obs::JsonWriter& json, const ParamSchema& schema);

/// The inverse of write_schema_json; throws CheckError on unknown fields,
/// an unknown type name, or a default that fails its own validation.
[[nodiscard]] ParamSchema schema_from_json(const recovery::JsonValue& json);

/// The `xres describe <study> --json` document (one object: study, group,
/// description, journal, options, params).
[[nodiscard]] std::string describe_study_json(const StudyDefinition& def);

/// The `xres list --json` document: {"studies": [<describe objects>]}.
[[nodiscard]] std::string catalog_json();

}  // namespace xres::study
