#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# rebuild the library + tests under ThreadSanitizer and run the executor
# tests (the only concurrent code path) plus the event-queue oracle under
# it. Also replays a small study twice (and across thread counts) and
# requires byte-identical artifacts — the determinism contract the event
# engine must uphold.
#
#   tools/tier1.sh [build-dir] [tsan-build-dir]
#
# Set XRES_PERF_GATE=1 to additionally run the engine microbenchmarks and
# diff them against bench/BENCH_engine.baseline.json (>15% regression or a
# batch-scaling collapse fails; see docs/PERFORMANCE.md for the policy and
# baseline procedure). Set XRES_SMOKE_ALL=1 to additionally byte-compare
# every registered study's artifacts across --threads 1 vs 2 and across
# trial engines, and to run the full surrogate differential matrix (tier-1
# ctest runs fast subsets; see tests/study_smoke_test.cpp and
# tests/surrogate_diff_test.cpp). Each stage prints its wall time.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"

# Per-stage wall time: call `stage_done <name>` at the end of each stage so
# a slow tier-1 run says where the minutes went.
STAGE_T0=$SECONDS
stage_done() {
  echo "stage ${1}: $((SECONDS - STAGE_T0))s"
  STAGE_T0=$SECONDS
}

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"
stage_done build
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
stage_done ctest

# TSAN pass: library + tests + the xres CLI (benches/examples just re-link
# the same library code and would double the build time for no extra
# coverage; the CLI is kept so the observed-executor path below runs under
# TSAN too).
cmake -B "$TSAN_BUILD" -S . -DXRES_TSAN=ON \
  -DXRES_BUILD_BENCH=OFF -DXRES_BUILD_EXAMPLES=OFF -DXRES_BUILD_TOOLS=ON
cmake --build "$TSAN_BUILD" -j "$(nproc)"
stage_done tsan-build
ctest --test-dir "$TSAN_BUILD" --output-on-failure \
  -R "TrialExecutor|Integration|Obs|SimOracle|Surrogate"
stage_done tsan-ctest

# Observability smoke under TSAN: a threaded study with per-trial metrics
# and tracing enabled exercises the observer hand-off between workers.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
"$TSAN_BUILD"/tools/xres efficiency --type A32 --trials 4 --threads 4 \
  --metrics "$OBS_TMP/m.json" --trace "$OBS_TMP/t.json" --log-level info \
  > /dev/null
test -s "$OBS_TMP/m.json" && test -s "$OBS_TMP/t.json"
stage_done tsan-obs-smoke

# Crash-safety (docs/ROBUSTNESS.md): SIGKILL a threaded, journaled study
# mid-run, resume it, and require the report and --metrics JSON to be
# byte-identical to an uninterrupted golden run. Also checks graceful
# SIGTERM: drain, flush, exit 75, then a resume that completes the study.
crash_resume_check() {
  local xres_bin="$1" tag="$2" trials="$3" kill_after="$4"
  local dir="$OBS_TMP/resume-$tag"
  mkdir -p "$dir"
  local args=(efficiency --type C64 --trials "$trials" --seed 99 --threads 4)

  "$xres_bin" "${args[@]}" --metrics "$dir/golden.json" > "$dir/golden.txt"

  # Hard kill mid-run. If the race is lost and the run finishes first, the
  # resume below degenerates to a full journal replay — still a valid check.
  "$xres_bin" "${args[@]}" --journal "$dir/j.jsonl" --metrics "$dir/void.json" \
    > /dev/null 2>&1 &
  local pid=$!
  sleep "$kill_after"
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  test -s "$dir/j.jsonl"

  "$xres_bin" "${args[@]}" --journal "$dir/j.jsonl" --resume \
    --metrics "$dir/resumed.json" > "$dir/resumed.txt"
  # Drop the recovery banner and the artifact-path line (the paths differ by
  # construction; the artifact bytes are compared with cmp below).
  local filter=(grep -v -e '^journal ' -e '^recovery: ' -e '^metrics written to ')
  "${filter[@]}" "$dir/golden.txt" > "$dir/golden-clean.txt"
  "${filter[@]}" "$dir/resumed.txt" > "$dir/resumed-clean.txt"
  cmp "$dir/golden-clean.txt" "$dir/resumed-clean.txt"
  cmp "$dir/golden.json" "$dir/resumed.json"
  "$xres_bin" journal "$dir/j.jsonl" > /dev/null

  # Graceful shutdown: SIGTERM must drain, flush and exit 75 (or win the
  # race and exit 0), and the journal must then resume cleanly.
  "$xres_bin" "${args[@]}" --journal "$dir/j2.jsonl" --metrics "$dir/void2.json" \
    > /dev/null 2>&1 &
  pid=$!
  sleep "$kill_after"
  kill -TERM "$pid" 2> /dev/null || true
  local rc=0
  wait "$pid" || rc=$?
  if [[ "$rc" != 75 && "$rc" != 0 ]]; then
    echo "crash+resume ($tag): expected exit 75 (interrupted) or 0, got $rc" >&2
    return 1
  fi
  # Resume under the event-queue engine: the journal was written by the
  # default (direct) engine, so this pins cross-engine resume identity too.
  XRES_TRIAL_ENGINE=event "$xres_bin" "${args[@]}" --journal "$dir/j2.jsonl" \
    --resume --metrics "$dir/resumed2.json" > /dev/null
  cmp "$dir/golden.json" "$dir/resumed2.json"
  echo "crash+resume ($tag): OK (SIGTERM exit $rc)"
}
crash_resume_check "$BUILD"/tools/xres normal 1500 1
crash_resume_check "$TSAN_BUILD"/tools/xres tsan 200 2
stage_done crash-resume

# Determinism golden check: the same seeded study must produce byte-for-byte
# identical report, metrics and trace on a repeat run, and the report +
# metrics must not depend on the worker-thread count. This is the replay
# contract every event-engine change has to preserve.
determinism_check() {
  local dir="$OBS_TMP/determinism"
  mkdir -p "$dir"
  local args=(efficiency --type A32 --trials 64 --seed 7)
  "$BUILD"/tools/xres "${args[@]}" --threads 1 \
    --metrics "$dir/m1a.json" --trace "$dir/t1a.json" > "$dir/r1a.txt"
  "$BUILD"/tools/xres "${args[@]}" --threads 1 \
    --metrics "$dir/m1b.json" --trace "$dir/t1b.json" > "$dir/r1b.txt"
  "$BUILD"/tools/xres "${args[@]}" --threads 4 \
    --metrics "$dir/m4.json" > "$dir/r4.txt"
  # Engine matrix: the unbatched event-queue engine must reproduce the
  # default (direct) engine's bytes at both thread counts.
  XRES_TRIAL_ENGINE=event "$BUILD"/tools/xres "${args[@]}" --threads 1 \
    --metrics "$dir/me1.json" --trace "$dir/te1.json" > "$dir/re1.txt"
  XRES_TRIAL_ENGINE=event "$BUILD"/tools/xres "${args[@]}" --threads 4 \
    --metrics "$dir/me4.json" > "$dir/re4.txt"
  # The reports differ only in the artifact-path lines (the file names are
  # different by construction); the artifact bytes themselves are compared
  # with cmp below.
  local filter=(grep -v -e '^metrics written to ' -e '^trace written to ')
  "${filter[@]}" "$dir/r1a.txt" > "$dir/r1a-clean.txt"
  "${filter[@]}" "$dir/r1b.txt" > "$dir/r1b-clean.txt"
  "${filter[@]}" "$dir/r4.txt" > "$dir/r4-clean.txt"
  "${filter[@]}" "$dir/re1.txt" > "$dir/re1-clean.txt"
  "${filter[@]}" "$dir/re4.txt" > "$dir/re4-clean.txt"
  cmp "$dir/r1a-clean.txt" "$dir/r1b-clean.txt"
  cmp "$dir/m1a.json" "$dir/m1b.json"
  cmp "$dir/t1a.json" "$dir/t1b.json"
  cmp "$dir/r1a-clean.txt" "$dir/r4-clean.txt"
  cmp "$dir/m1a.json" "$dir/m4.json"
  cmp "$dir/r1a-clean.txt" "$dir/re1-clean.txt"
  cmp "$dir/m1a.json" "$dir/me1.json"
  cmp "$dir/t1a.json" "$dir/te1.json"
  cmp "$dir/r1a-clean.txt" "$dir/re4-clean.txt"
  cmp "$dir/m1a.json" "$dir/me4.json"
  echo "determinism: OK (repeat + threads 1 vs 4 + event engine byte-identical)"
}
determinism_check
stage_done determinism

# Topology stage (docs/PLATFORM.md): the fat-tree platform must honor the
# same contracts as flat — artifacts invariant to --threads, an explicit
# `--platform.model flat` byte-identical to the default, and a SIGKILLed
# fattree run resuming to the golden bytes.
topology_check() {
  local dir="$OBS_TMP/topology"
  mkdir -p "$dir"
  # checkpoint-restart is the PFS-heavy technique: the storm actually hits
  # the queued device (the default parallel-recovery never touches the PFS).
  local args=(workload --patterns 3 --seed 11 --platform.model fattree
    --technique checkpoint-restart)
  "$BUILD"/tools/xres "${args[@]}" --threads 1 > "$dir/r1.txt"
  "$BUILD"/tools/xres "${args[@]}" --threads 4 > "$dir/r4.txt"
  cmp "$dir/r1.txt" "$dir/r4.txt"

  # The flat default is the pre-topology model: spelling it out must not
  # perturb a single byte.
  "$BUILD"/tools/xres workload --patterns 2 --seed 11 > "$dir/flat-default.txt"
  "$BUILD"/tools/xres workload --patterns 2 --seed 11 --platform.model flat \
    > "$dir/flat-explicit.txt"
  cmp "$dir/flat-default.txt" "$dir/flat-explicit.txt"

  # Unknown models must be a usage error (exit 2), not a crash.
  local rc=0
  "$BUILD"/tools/xres workload --patterns 1 --platform.model hypercube \
    > /dev/null 2>&1 || rc=$?
  if [[ "$rc" != 2 ]]; then
    echo "topology: expected exit 2 for bad --platform.model, got $rc" >&2
    return 1
  fi

  # SIGKILL a journaled fattree run mid-flight; --resume must reproduce the
  # golden bytes (if the race is lost the resume is a full replay — still a
  # valid check).
  "$BUILD"/tools/xres "${args[@]}" --threads 4 --journal "$dir/j.jsonl" \
    > /dev/null 2>&1 &
  local pid=$!
  sleep 1
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  "$BUILD"/tools/xres "${args[@]}" --threads 4 --journal "$dir/j.jsonl" --resume \
    > "$dir/resumed.txt"
  local filter=(grep -v -e '^journal ' -e '^recovery: ')
  "${filter[@]}" "$dir/r4.txt" > "$dir/r4-clean.txt"
  "${filter[@]}" "$dir/resumed.txt" > "$dir/resumed-clean.txt"
  cmp "$dir/r4-clean.txt" "$dir/resumed-clean.txt"
  echo "topology: OK (fattree threads 1 vs 4 + flat default + resume byte-identical)"
}
topology_check
stage_done topology

# Suite stage (docs/STUDIES.md): `xres suite paper` must regenerate every
# figure/table artifact deterministically, validate its manifest CRCs, and
# after a SIGKILL mid-suite complete byte-identically under --resume.
suite_check() {
  local dir="$OBS_TMP/suite"
  mkdir -p "$dir"
  "$BUILD"/tools/xres suite paper --out-dir "$dir/ref" --trials 2 > /dev/null
  "$BUILD"/tools/xres suite verify --out-dir "$dir/ref"

  # Hard kill mid-suite. If the race is lost and the suite finishes first,
  # the resume below degenerates to a full journal replay — still valid.
  "$BUILD"/tools/xres suite paper --out-dir "$dir/crash" --trials 2 \
    > /dev/null 2>&1 &
  local pid=$!
  sleep 0.25
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true

  "$BUILD"/tools/xres suite paper --out-dir "$dir/crash" --trials 2 --resume \
    > /dev/null
  "$BUILD"/tools/xres suite verify --out-dir "$dir/crash"
  # Journals hold the crashed run's partial progress and perf.json holds
  # wall-clock telemetry; both differ by design. Every artifact and the
  # manifest itself must match byte for byte.
  diff -r --exclude=journals --exclude=perf.json "$dir/ref" "$dir/crash"
  echo "suite: OK (manifest CRCs valid, SIGKILL + --resume byte-identical)"
}
suite_check
stage_done suite

# Sweep stage (docs/SPECS.md): a spec-file-defined study must produce the
# same bytes as the equivalent compiled-in invocation, and `xres sweep`
# must fan a 2x2 grid deterministically — manifest CRCs valid, artifacts
# invariant across --threads, and byte-identical after SIGKILL + --resume.
sweep_check() {
  local dir="$OBS_TMP/sweep"
  mkdir -p "$dir"

  cat > "$dir/eff_spec.toml" << 'EOF'
[study]
name = "eff_spec"
base = "efficiency"

[params]
type = "A32"
trials = 3
EOF
  "$BUILD"/tools/xres run --from "$dir/eff_spec.toml" > "$dir/spec.txt"
  "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=3 \
    > "$dir/compiled.txt"
  cmp "$dir/spec.txt" "$dir/compiled.txt"

  local axes=(--axis type=A32,C64 --axis mtbf-years=5,10 --set trials=2)
  "$BUILD"/tools/xres sweep efficiency "${axes[@]}" --threads 4 \
    --out-dir "$dir/ref" > /dev/null
  "$BUILD"/tools/xres suite verify --out-dir "$dir/ref"
  "$BUILD"/tools/xres sweep efficiency "${axes[@]}" --threads 1 \
    --out-dir "$dir/t1" > /dev/null
  diff -r --exclude=journals --exclude=perf.json "$dir/ref" "$dir/t1"

  # Hard kill mid-grid. If the race is lost and the sweep finishes first,
  # the resume below degenerates to a full journal replay — still valid.
  "$BUILD"/tools/xres sweep efficiency "${axes[@]}" --threads 4 \
    --out-dir "$dir/crash" > /dev/null 2>&1 &
  local pid=$!
  sleep 0.25
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true

  "$BUILD"/tools/xres sweep efficiency "${axes[@]}" --threads 4 \
    --out-dir "$dir/crash" --resume > /dev/null
  "$BUILD"/tools/xres suite verify --out-dir "$dir/crash"
  diff -r --exclude=journals --exclude=perf.json "$dir/ref" "$dir/crash"
  echo "sweep: OK (spec == compiled-in, 2x2 grid threads-invariant + resumable)"
}
sweep_check
stage_done sweep

# Ledger stage (docs/OBSERVABILITY.md): wall-clock telemetry must stay
# outside the determinism boundary — perf.json is not manifest-CRC'd, two
# identical-seed runs show zero deterministic drift in `xres compare`, and
# the run ledger stays readable after a SIGKILL mid-run leaves a torn tail.
ledger_check() {
  local dir="$OBS_TMP/ledger"
  mkdir -p "$dir"
  local ledger="$dir/ledger.jsonl"

  # perf.json is telemetry, not an artifact: it must exist next to the
  # manifest, never be listed in it, and corrupting it must not trip
  # `suite verify`.
  "$BUILD"/tools/xres sweep efficiency --axis type=A32,C64 --set trials=2 \
    --out-dir "$dir/grid" > /dev/null
  test -s "$dir/grid/perf.json"
  if grep -q 'perf\.json' "$dir/grid/manifest.json"; then
    echo "ledger: perf.json leaked into the manifest" >&2
    return 1
  fi
  echo corrupted >> "$dir/grid/perf.json"
  "$BUILD"/tools/xres suite verify --out-dir "$dir/grid"

  # Two identical-seed runs (different thread counts on purpose): compare
  # must exit 0 with zero deterministic drift.
  "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=3 \
    --threads 4 --ledger "$ledger" > /dev/null
  "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=3 \
    --threads 1 --ledger "$ledger" > /dev/null
  local a b
  a=$("$BUILD"/tools/xres log --ledger "$ledger" | awk 'NR==2 {print $1}')
  b=$("$BUILD"/tools/xres log --ledger "$ledger" | awk 'NR==3 {print $1}')
  "$BUILD"/tools/xres compare "$a" "$b" --ledger "$ledger"

  # SIGKILL mid-run: previously appended records must survive, a torn tail
  # must be skipped (not fatal), and the next run must still land readable.
  "$BUILD"/tools/xres run efficiency --set type=C64 --set trials=500 \
    --threads 4 --ledger "$ledger" > /dev/null 2>&1 &
  local pid=$!
  sleep 0.2
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  printf '{"c":"deadbeef","r":{"tr' >> "$ledger"  # simulated torn tail
  "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=3 \
    --threads 1 --ledger "$ledger" > /dev/null
  local shown
  shown=$("$BUILD"/tools/xres log --ledger "$ledger" | awk 'END {print $1}')
  if [[ "$shown" -lt 3 ]]; then
    echo "ledger: expected >=3 surviving records after SIGKILL, got $shown" >&2
    return 1
  fi
  echo "ledger: OK (perf.json outside CRCs, zero-drift compare, SIGKILL-safe)"
}
ledger_check
stage_done ledger

# Fault-injection stage (docs/ROBUSTNESS.md, "Fault injection & I/O
# policy"): the harness must survive its own failure model. A seeded
# deterministic fault plan (util/io.hpp) injects EIO / short writes /
# fsync failures into a small sweep — artifacts must come out
# byte-identical to a fault-free golden run. An ENOSPC one-shot mid-suite
# must exit 75 with the journal intact and --resume (faults off) must
# complete byte-identically. A crash-point matrix _exit()s at every Nth
# I/O op across a reduced op range and requires every resume to converge
# to the same bytes. Finally the exit-code contract (0/1/2/75/86) is
# pinned at the CLI boundary.
fault_injection_check() {
  local dir="$OBS_TMP/faults"
  mkdir -p "$dir"
  local args=(sweep efficiency --axis type=A32,C64 --set trials=2 --threads 1)

  # Golden run doubles as the op-count probe: a count-only plan (rate 0)
  # prints `io-faults: ops=N ...` at exit, which sizes the matrix below.
  "$BUILD"/tools/xres "${args[@]}" --out-dir "$dir/ref" --io-faults 7:0 \
    > /dev/null 2> "$dir/ref.err"
  "$BUILD"/tools/xres suite verify --out-dir "$dir/ref"
  local total_ops
  total_ops=$(sed -n 's/^io-faults: ops=\([0-9]*\).*/\1/p' "$dir/ref.err" | tail -1)
  if [[ -z "$total_ops" || "$total_ops" -lt 5 ]]; then
    echo "fault: count-only probe reported no plausible op count" >&2
    return 1
  fi

  # Deterministic EIO/short-write/fsync sweep: every injected fault is
  # transient, so the retry policy must absorb all of them — exit 0 and
  # byte-identical artifacts. Runs under the event-queue engine so the
  # injected-fault sweep doubles as an engine cross-check against the
  # direct-engine golden run.
  XRES_TRIAL_ENGINE=event "$BUILD"/tools/xres "${args[@]}" --out-dir "$dir/eio" \
    --io-faults 7:0.05:eio,short,fsync > /dev/null 2> "$dir/eio.err"
  "$BUILD"/tools/xres suite verify --out-dir "$dir/eio"
  diff -r --exclude=journals --exclude=perf.json "$dir/ref" "$dir/eio"
  if ! grep -q '^io-fault: ' "$dir/eio.err"; then
    echo "fault: the 5% EIO sweep injected nothing — dead injection path?" >&2
    return 1
  fi

  # The same sweep under TSAN with worker threads: concurrent wrapped ops
  # and retries must be race-free and still land thread-invariant bytes.
  "$TSAN_BUILD"/tools/xres "${args[@]}" --out-dir "$dir/tsan-ref" > /dev/null
  "$TSAN_BUILD"/tools/xres sweep efficiency --axis type=A32,C64 --set trials=2 \
    --threads 4 --out-dir "$dir/tsan-eio" --io-faults 7:0.05:eio,short,fsync \
    > /dev/null 2>&1
  "$TSAN_BUILD"/tools/xres suite verify --out-dir "$dir/tsan-eio"
  diff -r --exclude=journals --exclude=perf.json "$dir/tsan-ref" "$dir/tsan-eio"

  # ENOSPC mid-suite: full disks are not retried — the run must stop with
  # the clean resumable exit 75, journal intact, and a faults-off --resume
  # must finish byte-identically.
  local mid=$((total_ops / 2)) rc=0
  "$BUILD"/tools/xres "${args[@]}" --out-dir "$dir/enospc" \
    --io-faults "7:0:enospc@$mid" > /dev/null 2>&1 || rc=$?
  if [[ "$rc" != 75 ]]; then
    echo "fault: ENOSPC at op $mid: expected exit 75 (resumable), got $rc" >&2
    return 1
  fi
  "$BUILD"/tools/xres "${args[@]}" --out-dir "$dir/enospc" --resume > /dev/null
  "$BUILD"/tools/xres suite verify --out-dir "$dir/enospc"
  diff -r --exclude=journals --exclude=perf.json "$dir/ref" "$dir/enospc"

  # Crash-point matrix on a reduced op range (~12 points spread over the
  # whole run): _exit at op N simulates power loss mid-primitive; every
  # resume must converge to the golden bytes.
  local stride=$(((total_ops + 11) / 12)) n
  for ((n = 1; n <= total_ops; n += stride)); do
    rm -rf "$dir/crash"
    rc=0
    "$BUILD"/tools/xres "${args[@]}" --out-dir "$dir/crash" \
      --io-faults "7:0:crash@$n" > /dev/null 2>&1 || rc=$?
    if [[ "$rc" != 86 ]]; then
      echo "fault: crash@$n: expected injected-crash exit 86, got $rc" >&2
      return 1
    fi
    "$BUILD"/tools/xres "${args[@]}" --out-dir "$dir/crash" --resume > /dev/null
    "$BUILD"/tools/xres suite verify --out-dir "$dir/crash"
    diff -r --exclude=journals --exclude=perf.json "$dir/ref" "$dir/crash"
  done

  # Best-effort artifacts degrade, never fail the run: a ledger pointed at
  # an unwritable path must warn once and leave the exit code and artifact
  # bytes alone.
  echo blocker > "$dir/not-a-dir"
  "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=3 \
    --ledger "$dir/not-a-dir/ledger.jsonl" > "$dir/degraded.txt" 2> "$dir/degraded.err"
  grep -q 'run ledger degraded' "$dir/degraded.err"
  "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=3 \
    --ledger "$dir/ok-ledger.jsonl" > "$dir/plain.txt"
  # Only the ledger success banner may differ; study output must not.
  grep -v '^run recorded in ledger ' "$dir/plain.txt" > "$dir/plain-clean.txt"
  cmp "$dir/degraded.txt" "$dir/plain-clean.txt"

  # Exit-code contract (docs/ROBUSTNESS.md): 0 ok, 1 failure, 2 usage,
  # 75 resumable, 86 injected crash — pinned at the CLI boundary.
  check_rc() {
    local want="$1" rc=0
    shift
    "$@" > /dev/null 2>&1 || rc=$?
    if [[ "$rc" != "$want" ]]; then
      echo "fault: expected exit $want from '$*', got $rc" >&2
      return 1
    fi
  }
  echo "wholly corrupt, not a journal" > "$dir/corrupt.jsonl"
  check_rc 0 "$BUILD"/tools/xres run efficiency --set type=A32 --set trials=2
  check_rc 1 "$BUILD"/tools/xres run no-such-study
  check_rc 2 "$BUILD"/tools/xres run efficiency --no-such-flag
  check_rc 2 "$BUILD"/tools/xres run efficiency --io-faults bogus-spec
  check_rc 2 "$BUILD"/tools/xres journal /nonexistent/journal.jsonl
  check_rc 2 "$BUILD"/tools/xres journal "$dir/corrupt.jsonl"
  check_rc 2 "$BUILD"/tools/xres show some-run --ledger /nonexistent/ledger.jsonl
  check_rc 2 "$BUILD"/tools/xres compare a b --ledger "$dir/corrupt.jsonl"
  echo "fault injection: OK (EIO sweep byte-identical, ENOSPC exit 75 +" \
    "resume, crash matrix x$(((total_ops + stride - 1) / stride)) converged," \
    "exit codes pinned)"
}
fault_injection_check
stage_done fault-injection

# Surrogate stage (docs/STUDIES.md): the analytic surrogate must be wired
# end to end at the CLI boundary — `--surrogate analytic|auto` runs, prints
# the per-cell provenance table with its error bounds, and rejects unknown
# modes as a usage error. The numerical contract (anchors bit-identical to
# the simulator, interior cells within the reported bound) is enforced by
# surrogate_diff_test.cpp: a fast subset in the tier-1 ctest pass above,
# the full differential matrix under XRES_SMOKE_ALL=1 below.
surrogate_check() {
  local dir="$OBS_TMP/surrogate"
  mkdir -p "$dir"
  local args=(run efficiency --set type=A32 --set trials=6 --seed 11 --threads 2)
  "$BUILD"/tools/xres "${args[@]}" --set surrogate=analytic > "$dir/analytic.txt"
  grep -q 'Surrogate provenance' "$dir/analytic.txt"
  "$BUILD"/tools/xres "${args[@]}" --set surrogate=auto > "$dir/auto.txt"
  grep -q 'Surrogate provenance' "$dir/auto.txt"
  local rc=0
  "$BUILD"/tools/xres "${args[@]}" --set surrogate=bogus > /dev/null 2>&1 || rc=$?
  if [[ "$rc" != 2 ]]; then
    echo "surrogate: expected usage exit 2 for surrogate=bogus, got $rc" >&2
    return 1
  fi
  echo "surrogate: OK (analytic + auto provenance printed, bad mode exit 2)"
}
surrogate_check
stage_done surrogate

# Opt-in full-catalog smoke: every registered study at tiny trial counts,
# --threads 1 vs 2 and direct vs event engine, artifacts byte-compared,
# plus the full surrogate differential matrix and the 200-config property
# test (tier-1 ctest covers fast subsets of all three unconditionally).
if [[ "${XRES_SMOKE_ALL:-0}" == "1" ]]; then
  XRES_SMOKE_ALL=1 "$BUILD"/tests/xres_tests \
    --gtest_filter='StudySmoke.FullCatalog*:SurrogateDiff.*:SurrogateProperty.*'
  stage_done smoke-all
fi

# Opt-in perf gate: compare engine microbenchmarks against the committed
# baseline. Off by default — shared/loaded runners are too noisy to block
# every run on wall-clock numbers.
if [[ "${XRES_PERF_GATE:-0}" == "1" ]]; then
  cmake --build "$BUILD" -j "$(nproc)" --target perf_engine
  "$BUILD"/bench/perf_engine --benchmark_min_time=0.2 --benchmark_repetitions=5 \
    --benchmark_filter='BM_EventQueue|BM_Simulation|BM_SingleAppTrialFailureHeavy|BM_TrialBatchFailureHeavy|BM_TrialExecutorBatch|BM_WorkloadFattreeStorm' \
    --out "$OBS_TMP/BENCH_engine.json"
  python3 tools/perf_gate.py "$OBS_TMP/BENCH_engine.json" \
    --baseline bench/BENCH_engine.baseline.json
fi

echo "tier-1 OK"
