
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/app_runtime.cpp" "src/runtime/CMakeFiles/xres_runtime.dir/app_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/xres_runtime.dir/app_runtime.cpp.o.d"
  "/root/repo/src/runtime/power.cpp" "src/runtime/CMakeFiles/xres_runtime.dir/power.cpp.o" "gcc" "src/runtime/CMakeFiles/xres_runtime.dir/power.cpp.o.d"
  "/root/repo/src/runtime/result.cpp" "src/runtime/CMakeFiles/xres_runtime.dir/result.cpp.o" "gcc" "src/runtime/CMakeFiles/xres_runtime.dir/result.cpp.o.d"
  "/root/repo/src/runtime/timeline.cpp" "src/runtime/CMakeFiles/xres_runtime.dir/timeline.cpp.o" "gcc" "src/runtime/CMakeFiles/xres_runtime.dir/timeline.cpp.o.d"
  "/root/repo/src/runtime/transfer_service.cpp" "src/runtime/CMakeFiles/xres_runtime.dir/transfer_service.cpp.o" "gcc" "src/runtime/CMakeFiles/xres_runtime.dir/transfer_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/xres_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/xres_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xres_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
