file(REMOVE_RECURSE
  "CMakeFiles/xres_cli.dir/xres_cli.cpp.o"
  "CMakeFiles/xres_cli.dir/xres_cli.cpp.o.d"
  "xres"
  "xres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
