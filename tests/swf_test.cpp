// Tests for the Standard Workload Format importer.

#include <gtest/gtest.h>

#include "apps/swf.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

// A small hand-written SWF fragment: header comments, valid jobs, a
// cancelled job (run time -1) and a zero-processor record.
constexpr const char* kSampleSwf = R"(; SWF test fragment
; MaxNodes: 1024
;
1   0     10  3600  64   64  -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
2   120   5   600   128 128  -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
3   500   0   -1    32   32  -1 -1 -1 -1 0 1 1 1 -1 -1 -1 -1
4   900   7   90    0    0   -1 -1 -1 -1 0 1 1 1 -1 -1 -1 -1
5   1000  2   7200  512 512  -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1
)";

TEST(Swf, ImportsValidJobsAndSkipsInvalid) {
  SwfImportConfig config;
  config.machine_nodes = 10000;
  SwfImportStats stats;
  const ArrivalPattern pattern = import_swf(kSampleSwf, config, &stats);

  EXPECT_EQ(stats.comments, 3U);
  EXPECT_EQ(stats.imported, 3U);
  EXPECT_EQ(stats.skipped_invalid, 2U);
  ASSERT_EQ(pattern.size(), 3U);

  EXPECT_DOUBLE_EQ(pattern.jobs[0].arrival.to_seconds(), 0.0);
  EXPECT_EQ(pattern.jobs[0].spec.nodes, 64U);
  EXPECT_EQ(pattern.jobs[0].spec.time_steps, 60U);  // 3600 s = 60 min

  EXPECT_DOUBLE_EQ(pattern.jobs[1].arrival.to_seconds(), 120.0);
  EXPECT_EQ(pattern.jobs[1].spec.time_steps, 10U);

  EXPECT_EQ(pattern.jobs[2].spec.nodes, 512U);
  EXPECT_EQ(pattern.jobs[2].spec.time_steps, 120U);
}

TEST(Swf, DeadlinesFollowEquationOne) {
  SwfImportConfig config;
  config.machine_nodes = 10000;
  const ArrivalPattern pattern = import_swf(kSampleSwf, config);
  for (const Job& job : pattern.jobs) {
    const double factor = (job.deadline - job.arrival) / job.spec.baseline_time();
    EXPECT_GE(factor, 1.2);
    EXPECT_LT(factor, 2.0);
  }
}

TEST(Swf, NodeScalingAndClamping) {
  SwfImportConfig config;
  config.machine_nodes = 100;
  config.node_scale = 0.5;
  const ArrivalPattern pattern = import_swf(kSampleSwf, config);
  ASSERT_EQ(pattern.size(), 3U);
  EXPECT_EQ(pattern.jobs[0].spec.nodes, 32U);   // 64 x 0.5
  EXPECT_EQ(pattern.jobs[2].spec.nodes, 100U);  // 512 x 0.5 clamped to machine
}

TEST(Swf, SubMinuteRunTimesRoundUpToOneStep) {
  const std::string tiny = "1 0 0 30 4 4 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1\n";
  SwfImportConfig config;
  const ArrivalPattern pattern = import_swf(tiny, config);
  ASSERT_EQ(pattern.size(), 1U);
  EXPECT_EQ(pattern.jobs[0].spec.time_steps, 1U);
}

TEST(Swf, MaxJobsLimit) {
  SwfImportConfig config;
  config.max_jobs = 2;
  const ArrivalPattern pattern = import_swf(kSampleSwf, config);
  EXPECT_EQ(pattern.size(), 2U);
}

TEST(Swf, ImportIsDeterministicPerSeed) {
  SwfImportConfig config;
  config.seed = 5;
  const ArrivalPattern a = import_swf(kSampleSwf, config);
  const ArrivalPattern b = import_swf(kSampleSwf, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs[i].spec.type.name, b.jobs[i].spec.type.name);
    EXPECT_EQ(a.jobs[i].deadline, b.jobs[i].deadline);
  }
  config.seed = 6;
  const ArrivalPattern c = import_swf(kSampleSwf, config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference |= a.jobs[i].deadline != c.jobs[i].deadline;
    any_difference |= a.jobs[i].spec.type.name != c.jobs[i].spec.type.name;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Swf, BiasRestrictsTypes) {
  SwfImportConfig config;
  config.bias = WorkloadBias::kHighMemory;
  const ArrivalPattern pattern = import_swf(kSampleSwf, config);
  for (const Job& job : pattern.jobs) {
    EXPECT_DOUBLE_EQ(job.spec.type.memory_per_node.to_gigabytes(), 64.0);
  }
}

TEST(Swf, MalformedRecordThrows) {
  EXPECT_THROW(import_swf("not a number line\n", SwfImportConfig{}), CheckError);
  EXPECT_THROW(import_swf("1 2\n", SwfImportConfig{}), CheckError);
}

TEST(Swf, UnsortedSubmitTimesAreSorted) {
  const std::string unsorted =
      "1 500 0 600 4 4 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1\n"
      "2 100 0 600 4 4 -1 -1 -1 -1 1 1 1 1 -1 -1 -1 -1\n";
  const ArrivalPattern pattern = import_swf(unsorted, SwfImportConfig{});
  ASSERT_EQ(pattern.size(), 2U);
  EXPECT_LE(pattern.jobs[0].arrival, pattern.jobs[1].arrival);
  EXPECT_EQ(pattern.jobs[0].id, JobId{2});
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(load_swf("/nonexistent/path.swf", SwfImportConfig{}), CheckError);
}

}  // namespace
}  // namespace xres
