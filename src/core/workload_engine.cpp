#include "core/workload_engine.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "failure/process.hpp"
#include "failure/severity.hpp"
#include "obs/trial_obs.hpp"
#include "platform/machine.hpp"
#include "platform/platform_model.hpp"
#include "resilience/planner.hpp"
#include "sim/pfs_device.hpp"
#include "resilience/selector.hpp"
#include "runtime/app_runtime.hpp"
#include "runtime/transfer_service.hpp"
#include "sim/shared_channel.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace xres {

namespace {

OwnerId owner_of(JobId id) { return OwnerId{static_cast<std::uint64_t>(id)}; }

class WorkloadEngine final : public SchedulerContext {
 public:
  WorkloadEngine(const WorkloadEngineConfig& config, const ArrivalPattern& pattern)
      : config_{config},
        machine_{config.machine},
        severity_{config.resilience.severity_weights},
        scheduler_{make_scheduler(config.scheduler)},
        sched_rng_{derive_seed(config.seed, 0x7363686564ULL)},
        jobs_{pattern.jobs} {
    config_.resilience.validate();
    if (config_.policy.mode == TechniquePolicy::Mode::kSelection) {
      selector_.emplace(config_.machine, config_.resilience);
    }
    if (config_.policy.mode != TechniquePolicy::Mode::kIdealBaseline) {
      BurstFailureConfig bursts;
      bursts.probability = config_.burst_probability;
      bursts.width = config_.burst_width;
      failures_.emplace(
          sim_, machine_, config_.resilience.node_mtbf, severity_,
          Pcg32{derive_seed(config.seed, 0x73797366ULL)},
          [this](const Failure& f, const Machine::Victim& v) { deliver_failure(f, v); },
          bursts);
    }
    if (config_.machine.platform.model != PlatformModelKind::kFlat) {
      XRES_CHECK(!config_.model_pfs_contention,
                 "model_pfs_contention is the flat-model contention ablation; "
                 "a non-flat platform model routes transfers through its own "
                 "queued PFS device");
      platform_model_ = make_platform_model(config_.machine);
      pfs_device_.emplace(sim_, platform_model_->pfs_service_channels(),
                          platform_model_->pfs_channel_bandwidth());
      const Bandwidth aggregate =
          platform_model_->pfs_channel_bandwidth() *
          static_cast<double>(platform_model_->pfs_service_channels());
      device_service_.emplace(*pfs_device_, aggregate);
    } else if (config_.model_pfs_contention) {
      XRES_CHECK(config_.pfs_gateways > 0, "PFS gateway count must be positive");
      const Bandwidth per_stream =
          config_.machine.network.bandwidth *
          static_cast<double>(config_.machine.network.switch_connections);
      pfs_channel_.emplace(sim_, per_stream * static_cast<double>(config_.pfs_gateways),
                           per_stream);
      pfs_service_.emplace(*pfs_channel_, per_stream);
    }
    if (config_.scheduler == SchedulerKind::kTopoPack) {
      // Pack allocations under common leaf switches; inert for timing
      // under the flat model but minimizes spanned uplinks under fattree.
      machine_.set_placement_group(config_.machine.platform.fattree.leaf_radix);
    }
  }

  WorkloadRunResult run() {
    for (const Job& job : jobs_) {
      sim_.schedule_at(job.arrival, [this, id = job.id] { on_arrival(id); });
    }
    if (failures_.has_value()) failures_->start();
    sim_.run();

    if (config_.obs != nullptr) {
      const obs::BuiltinMetrics& m = obs::builtin_metrics();
      config_.obs->count(m.jobs_submitted, jobs_.size());
      config_.obs->count(m.jobs_completed, completed_);
      config_.obs->count(m.jobs_dropped, dropped_);
      config_.obs->count(m.sim_events, sim_.events_processed());
      config_.obs->observe(m.trial_events,
                           static_cast<double>(sim_.events_processed()));
    }

    WorkloadRunResult result;
    result.total_jobs = static_cast<std::uint32_t>(jobs_.size());
    result.completed = completed_;
    result.dropped = dropped_;
    XRES_CHECK(result.completed + result.dropped == result.total_jobs,
               "job accounting mismatch at end of workload run");
    result.dropped_fraction =
        result.total_jobs == 0
            ? 0.0
            : static_cast<double>(result.dropped) / static_cast<double>(result.total_jobs);
    result.failures_injected =
        failures_.has_value() ? failures_->failures_delivered() : 0;
    result.dropped_before_start = dropped_before_start_;
    result.dropped_while_running = dropped_while_running_;
    XRES_CHECK(result.dropped_before_start + result.dropped_while_running ==
                   result.dropped,
               "drop breakdown mismatch");
    result.completed_slowdown = slowdown_.summary();
    result.queue_wait_hours = queue_wait_.summary();
    result.makespan = last_departure_.since_origin();
    const double horizon = sim_.now().to_seconds();
    result.mean_utilization =
        horizon > 0.0
            ? busy_integral_ / (horizon * static_cast<double>(machine_.capacity()))
            : 0.0;
    result.selection_counts = selection_counts_;
    result.occupancy = std::move(occupancy_);
    if (pfs_device_.has_value()) {
      result.pfs_transfers = pfs_device_->completed_transfers();
      result.pfs_measured_s = pfs_device_->measured_seconds();
      result.pfs_nominal_s = pfs_device_->nominal_seconds();
    }
    return result;
  }

  // SchedulerContext ------------------------------------------------------

  [[nodiscard]] TimePoint now() const override { return sim_.now(); }

  [[nodiscard]] std::uint32_t free_nodes() const override { return machine_.idle_nodes(); }

  bool try_start(const Job& job) override {
    // Never start a job at or past its deadline: the concurrently firing
    // deadline event is about to drop it from the queue.
    if (job.deadline <= sim_.now()) return false;
    ExecutionPlan plan = plan_for(job.spec);
    if (!plan.feasible) return false;
    const OwnerId owner = owner_of(job.id);
    auto range = machine_.allocate(plan.physical_nodes, owner);
    if (!range.has_value()) return false;
    on_utilization_changed();
    if (config_.record_occupancy) occupancy_.record_start(job.id, *range, sim_.now());

    if (config_.policy.mode == TechniquePolicy::Mode::kSelection) {
      ++selection_counts_[plan.kind];
    }

    queue_wait_.add((sim_.now() - job.arrival).to_hours());
    if (platform_model_ != nullptr) {
      // Placement is now known: tighten each PFS level's rate cap to what
      // the fat tree grants the actual allocated range (a fragmented or
      // unaligned placement spans more switches and may inject less).
      for (CheckpointLevelSpec& level : plan.levels) {
        if (level.uses_shared_pfs && level.pfs_bytes > DataSize::zero()) {
          level.pfs_rate_cap =
              platform_model_->pfs_rate_cap_for_range(range->first, range->count);
        }
      }
    }
    auto runtime = std::make_unique<ResilientAppRuntime>(
        sim_, std::move(plan),
        derive_seed(config_.seed, static_cast<std::uint64_t>(job.id), 0x61707021ULL),
        [this, id = job.id](const ExecutionResult& r) { on_runtime_finished(id, r); });
    if (device_service_.has_value()) {
      runtime->set_pfs_transfer_service(&*device_service_);
    } else if (pfs_service_.has_value()) {
      runtime->set_pfs_transfer_service(&*pfs_service_);
    }
    runtime->set_observer(config_.obs);
    ResilientAppRuntime* raw = runtime.get();
    running_.emplace(job.id, std::move(runtime));
    remove_unmapped(job.id);
    raw->start();
    return true;
  }

  void drop(const Job& job) override {
    // Slack scheduler: deadline-infeasible, removed without executing.
    remove_unmapped(job.id);
    cancel_deadline(job.id);
    ++dropped_;
    ++dropped_before_start_;
    note_departure();
  }

 private:
  const Job& job_of(JobId id) const {
    for (const Job& job : jobs_) {
      if (job.id == id) return job;
    }
    XRES_CHECK(false, "unknown job id");
  }

  ExecutionPlan plan_for(const AppSpec& spec) {
    switch (config_.policy.mode) {
      case TechniquePolicy::Mode::kIdealBaseline:
        return make_plan(TechniqueKind::kNone, spec, config_.machine, config_.resilience);
      case TechniquePolicy::Mode::kFixed:
        return make_plan(config_.policy.fixed, spec, config_.machine, config_.resilience);
      case TechniquePolicy::Mode::kSelection:
        return selector_->select(spec).plan;
    }
    XRES_CHECK(false, "unhandled technique policy");
  }

  void on_arrival(JobId id) {
    unmapped_.push_back(id);
    const Job& job = job_of(id);
    deadline_events_[id] = sim_.schedule_at(job.deadline, [this, id] { on_deadline(id); });
    run_mapping();
  }

  void on_deadline(JobId id) {
    deadline_events_.erase(id);
    auto it = running_.find(id);
    if (it != running_.end()) {
      it->second->abort();
      retire_running(it);
      ++dropped_;
      ++dropped_while_running_;
      note_departure();
      run_mapping();
      return;
    }
    if (remove_unmapped(id)) {
      ++dropped_;
      ++dropped_before_start_;
      note_departure();
    }
    // Otherwise the job already completed and its deadline event was
    // cancelled; a stale fire is impossible, but harmless if it were.
  }

  void on_runtime_finished(JobId id, const ExecutionResult& result) {
    // Natural completion, or the wall-time-cap abort inside the runtime.
    auto it = running_.find(id);
    XRES_CHECK(it != running_.end(), "completion for a job that is not running");
    retire_running(it);
    cancel_deadline(id);
    if (result.completed) {
      ++completed_;
      if (result.baseline > Duration::zero()) {
        slowdown_.add(result.wall_time / result.baseline);
      }
    } else {
      ++dropped_;
      ++dropped_while_running_;
    }
    note_departure();
    run_mapping();
  }

  void deliver_failure(const Failure& failure, const Machine::Victim& victim) {
    const auto id = JobId{static_cast<std::uint64_t>(victim.owner)};
    auto it = running_.find(id);
    if (it == running_.end()) return;  // victim already left the machine
    it->second->on_failure(failure);
  }

  /// Release nodes and move the runtime to the retired list (it may be on
  /// the call stack; destruction is deferred to engine teardown).
  void retire_running(std::unordered_map<JobId, std::unique_ptr<ResilientAppRuntime>>::iterator it) {
    record_result_metrics(config_.obs, it->second->result());
    if (config_.record_occupancy) {
      occupancy_.record_end(it->first, sim_.now(),
                            it->second->result().completed);
    }
    machine_.release(owner_of(it->first));
    on_utilization_changed();
    retired_.push_back(std::move(it->second));
    running_.erase(it);
  }

  void run_mapping() {
    std::vector<const Job*> pending;
    pending.reserve(unmapped_.size());
    for (JobId id : unmapped_) pending.push_back(&job_of(id));
    scheduler_->map(pending, *this, sched_rng_);
  }

  bool remove_unmapped(JobId id) {
    auto it = std::find(unmapped_.begin(), unmapped_.end(), id);
    if (it == unmapped_.end()) return false;
    unmapped_.erase(it);
    return true;
  }

  void cancel_deadline(JobId id) {
    auto it = deadline_events_.find(id);
    if (it == deadline_events_.end()) return;
    sim_.cancel(it->second);
    deadline_events_.erase(it);
  }

  void on_utilization_changed() {
    const double now_s = sim_.now().to_seconds();
    busy_integral_ += static_cast<double>(last_busy_) * (now_s - last_busy_change_);
    last_busy_change_ = now_s;
    last_busy_ = machine_.busy_nodes();
    if (failures_.has_value()) failures_->notify_utilization_changed();
  }

  void note_departure() { last_departure_ = sim_.now(); }

  WorkloadEngineConfig config_;
  Simulation sim_;
  Machine machine_;
  SeverityModel severity_;
  std::unique_ptr<Scheduler> scheduler_;
  Pcg32 sched_rng_;
  std::vector<Job> jobs_;

  std::optional<ResilienceSelector> selector_;
  std::optional<SystemFailureProcess> failures_;
  std::optional<SharedChannel> pfs_channel_;
  std::optional<SharedChannelTransferService> pfs_service_;
  std::unique_ptr<PlatformModel> platform_model_;
  std::optional<PfsDevice> pfs_device_;
  std::optional<PfsDeviceTransferService> device_service_;

  std::vector<JobId> unmapped_;  // arrival order
  std::unordered_map<JobId, std::unique_ptr<ResilientAppRuntime>> running_;
  std::unordered_map<JobId, EventId> deadline_events_;
  std::vector<std::unique_ptr<ResilientAppRuntime>> retired_;

  std::uint32_t completed_{0};
  std::uint32_t dropped_{0};
  std::uint32_t dropped_before_start_{0};
  std::uint32_t dropped_while_running_{0};
  RunningStats slowdown_;
  RunningStats queue_wait_;
  OccupancyLog occupancy_;
  std::map<TechniqueKind, std::uint32_t> selection_counts_;
  TimePoint last_departure_{};
  double busy_integral_{0.0};
  double last_busy_change_{0.0};
  std::uint32_t last_busy_{0};
};

}  // namespace

WorkloadRunResult run_workload(const WorkloadEngineConfig& config,
                               const ArrivalPattern& pattern) {
  XRES_CHECK(!pattern.jobs.empty(), "workload pattern is empty");
  WorkloadEngine engine{config, pattern};
  return engine.run();
}

}  // namespace xres
