#pragma once

/// \file common.hpp
/// Shared plumbing for the figure-reproduction harnesses: CLI wiring and
/// the efficiency-figure runner used by Figures 1-3.

#include <string>

#include "core/single_app_study.hpp"
#include "util/cli.hpp"

namespace xres::bench {

/// Options every harness shares.
struct HarnessOptions {
  std::uint32_t trials{200};
  std::uint64_t seed{20170529};
  unsigned threads{0};  ///< trial worker threads; 0 = all hardware threads
  bool csv{false};
  bool chart{false};  ///< also render ASCII bars (the figure's visual shape)
  std::string csv_path;  ///< empty: print CSV to stdout when csv is set
  std::string report_path;  ///< non-empty: write a markdown StudyReport here
};

/// Registers --trials/--seed/--threads/--csv/--csv-path on \p cli.
void add_common_options(CliParser& cli, std::uint32_t default_trials);

/// Reads them back after parse().
[[nodiscard]] HarnessOptions read_common_options(const CliParser& cli);

/// Run one Figures-1-3 style efficiency figure and print it in the paper's
/// layout (rows: % of system; columns: technique; cells: mean ± σ over
/// trials). Returns 0.
int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          const HarnessOptions& options);

}  // namespace xres::bench
