#include "core/workload_record.hpp"

#include <cstdint>

#include "obs/json.hpp"
#include "recovery/json_parse.hpp"
#include "recovery/trial_record.hpp"

namespace xres {

namespace {

using obs::JsonWriter;
using recovery::JsonParseError;
using recovery::JsonValue;

// Summary as a fixed array [count, mean, stddev, min, max, ci95]: compact,
// and round-trips every double exactly (shortest-round-trip rendering).
void write_summary(JsonWriter& w, const Summary& s) {
  w.begin_array();
  w.value(static_cast<std::uint64_t>(s.count));
  w.value(s.mean);
  w.value(s.stddev);
  w.value(s.min);
  w.value(s.max);
  w.value(s.ci95_halfwidth);
  w.end_array();
}

Summary read_summary(const JsonValue& v) {
  const std::vector<JsonValue>& a = v.as_array();
  if (a.size() != 6) throw JsonParseError{"summary array must have 6 entries"};
  Summary s;
  s.count = a[0].as_u64();
  s.mean = a[1].as_double();
  s.stddev = a[2].as_double();
  s.min = a[3].as_double();
  s.max = a[4].as_double();
  s.ci95_halfwidth = a[5].as_double();
  return s;
}

void write_run(JsonWriter& w, const WorkloadRunResult& r) {
  w.begin_object();
  w.key("jobs").value(static_cast<std::uint64_t>(r.total_jobs));
  w.key("completed").value(static_cast<std::uint64_t>(r.completed));
  w.key("dropped").value(static_cast<std::uint64_t>(r.dropped));
  w.key("dropped_frac").value(r.dropped_fraction);
  w.key("dropped_before").value(static_cast<std::uint64_t>(r.dropped_before_start));
  w.key("dropped_running").value(static_cast<std::uint64_t>(r.dropped_while_running));
  w.key("slowdown");
  write_summary(w, r.completed_slowdown);
  w.key("queue_wait_h");
  write_summary(w, r.queue_wait_hours);
  w.key("failures").value(r.failures_injected);
  w.key("makespan_s").value(r.makespan.to_seconds());
  w.key("util").value(r.mean_utilization);
  // Selection counts as [kind, count] pairs (std::map iterates in key
  // order, so the rendering is deterministic).
  w.key("sel").begin_array();
  for (const auto& [kind, count] : r.selection_counts) {
    w.begin_array();
    w.value(static_cast<std::uint64_t>(kind));
    w.value(static_cast<std::uint64_t>(count));
    w.end_array();
  }
  w.end_array();
  // Queued-PFS-device accounting, emitted only when a device ran (non-flat
  // platforms): flat-platform payloads stay byte-identical to older builds.
  if (r.pfs_transfers > 0) {
    w.key("pfs").begin_array();
    w.value(r.pfs_transfers);
    w.value(r.pfs_measured_s);
    w.value(r.pfs_nominal_s);
    w.end_array();
  }
  w.end_object();
}

WorkloadRunResult read_run(const JsonValue& v) {
  WorkloadRunResult r;
  r.total_jobs = static_cast<std::uint32_t>(v.at("jobs").as_u64());
  r.completed = static_cast<std::uint32_t>(v.at("completed").as_u64());
  r.dropped = static_cast<std::uint32_t>(v.at("dropped").as_u64());
  r.dropped_fraction = v.at("dropped_frac").as_double();
  r.dropped_before_start = static_cast<std::uint32_t>(v.at("dropped_before").as_u64());
  r.dropped_while_running = static_cast<std::uint32_t>(v.at("dropped_running").as_u64());
  r.completed_slowdown = read_summary(v.at("slowdown"));
  r.queue_wait_hours = read_summary(v.at("queue_wait_h"));
  r.failures_injected = v.at("failures").as_u64();
  r.makespan = Duration::seconds(v.at("makespan_s").as_double());
  r.mean_utilization = v.at("util").as_double();
  for (const JsonValue& pair : v.at("sel").as_array()) {
    const std::vector<JsonValue>& kc = pair.as_array();
    if (kc.size() != 2) throw JsonParseError{"bad selection-count pair"};
    const std::uint64_t kind = kc[0].as_u64();
    if (kind > static_cast<std::uint64_t>(TechniqueKind::kSemiBlockingCheckpoint)) {
      throw JsonParseError{"selection-count technique out of range"};
    }
    r.selection_counts[static_cast<TechniqueKind>(kind)] =
        static_cast<std::uint32_t>(kc[1].as_u64());
  }
  if (const JsonValue* pfs = v.find("pfs"); pfs != nullptr) {
    const std::vector<JsonValue>& a = pfs->as_array();
    if (a.size() != 3) throw JsonParseError{"pfs array must have 3 entries"};
    r.pfs_transfers = a[0].as_u64();
    r.pfs_measured_s = a[1].as_double();
    r.pfs_nominal_s = a[2].as_double();
  }
  return r;
}

}  // namespace

std::string serialize_workload_outcome(const WorkloadOutcome& outcome) {
  JsonWriter w;
  w.begin_object();
  w.key("result");
  write_run(w, outcome.result);
  if (outcome.quarantined) {
    w.key("quarantined").value(true);
    w.key("reason").value(outcome.quarantine_reason);
  }
  if (outcome.metrics.has_value()) {
    w.key("metrics");
    recovery::write_metric_set(w, *outcome.metrics);
  }
  w.end_object();
  return w.str();
}

WorkloadOutcome parse_workload_outcome(const std::string& payload) {
  const JsonValue v = recovery::parse_json(payload);
  WorkloadOutcome out;
  out.result = read_run(v.at("result"));
  if (const JsonValue* q = v.find("quarantined"); q != nullptr && q->as_bool()) {
    out.quarantined = true;
    out.quarantine_reason = v.at("reason").as_string();
  }
  if (const JsonValue* m = v.find("metrics"); m != nullptr) {
    out.metrics = recovery::read_metric_set(*m);
  }
  return out;
}

}  // namespace xres
