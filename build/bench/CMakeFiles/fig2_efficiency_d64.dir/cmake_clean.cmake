file(REMOVE_RECURSE
  "CMakeFiles/fig2_efficiency_d64.dir/fig2_efficiency_d64.cpp.o"
  "CMakeFiles/fig2_efficiency_d64.dir/fig2_efficiency_d64.cpp.o.d"
  "fig2_efficiency_d64"
  "fig2_efficiency_d64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_efficiency_d64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
