#include "obs/trace.hpp"

#include <cmath>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace xres::obs {

namespace {

std::int64_t to_us(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

void append_event(JsonWriter& w, const TraceEvent& e, int tid) {
  w.begin_object();
  w.key("ph").value(std::string(1, e.ph));
  w.key("name").value(e.name);
  w.key("cat").value(e.category);
  w.key("ts").value(e.ts_us);
  if (e.ph == 'X') w.key("dur").value(e.dur_us);
  if (e.ph == 'i') w.key("s").value("t");  // thread-scoped instant
  w.key("pid").value(0);
  w.key("tid").value(tid);
  if (!e.args.empty()) {
    w.key("args").begin_object();
    for (const TraceArg& a : e.args) {
      w.key(a.key);
      if (a.quoted) {
        w.value(a.value);
      } else {
        w.raw(a.value);
      }
    }
    w.end_object();
  }
  w.end_object();
}

void append_thread_name(JsonWriter& w, const std::string& name, int tid) {
  w.begin_object();
  w.key("ph").value("M");
  w.key("name").value("thread_name");
  w.key("pid").value(0);
  w.key("tid").value(tid);
  w.key("args").begin_object().key("name").value(name).end_object();
  w.end_object();
}

}  // namespace

TraceArg trace_arg(std::string key, double value) {
  return TraceArg{std::move(key), json_number(value), false};
}

TraceArg trace_arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), json_number(value), false};
}

TraceArg trace_arg(std::string key, int value) {
  return TraceArg{std::move(key), json_number(static_cast<std::int64_t>(value)), false};
}

TraceArg trace_arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false", false};
}

TraceArg trace_arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), true};
}

void TraceBuffer::span(std::string name, std::string category, TimePoint start,
                       Duration length, std::vector<TraceArg> args) {
  XRES_CHECK(length >= Duration::zero(), "negative span length");
  events_.push_back(TraceEvent{'X', std::move(name), std::move(category),
                               to_us(start.to_seconds()), to_us(length.to_seconds()),
                               std::move(args)});
}

void TraceBuffer::instant(std::string name, std::string category, TimePoint at,
                          std::vector<TraceArg> args) {
  events_.push_back(TraceEvent{'i', std::move(name), std::move(category),
                               to_us(at.to_seconds()), 0, std::move(args)});
}

void TraceLog::add_track(std::string name, TraceBuffer buffer) {
  tracks_.push_back(Track{std::move(name), std::move(buffer)});
}

std::size_t TraceLog::event_count() const {
  std::size_t n = 0;
  for (const Track& t : tracks_) n += t.buffer.size();
  return n;
}

std::string TraceLog::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  w.begin_object();
  w.key("ph").value("M");
  w.key("name").value("process_name");
  w.key("pid").value(0);
  w.key("args").begin_object().key("name").value("xres simulation (sim time)").end_object();
  w.end_object();
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    append_thread_name(w, tracks_[i].name, static_cast<int>(i) + 1);
  }
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    for (const TraceEvent& e : tracks_[i].buffer.events()) {
      append_event(w, e, static_cast<int>(i) + 1);
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TraceLog::write(const std::string& path) const {
  JsonWriter w;
  w.raw(to_json());
  w.write(path);
}

}  // namespace xres::obs
