#include "study/study_main.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/ledger.hpp"
#include "obs/perf.hpp"
#include "recovery/shutdown.hpp"
#include "study/options.hpp"
#include "study/runlog.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace xres::study {

namespace {

/// Fill in everything about \p record that is only known after the study
/// ran, then stash it (for the suite's per-cell collection), append it to
/// the ledger, and print the status banner + wall-clock summary.
void finish_run_record(obs::RunRecord& record, const obs::PerfCounters& before,
                       std::chrono::steady_clock::time_point start,
                       const std::string& metrics_path, bool ledger_enabled,
                       const std::string& ledger_path) {
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const obs::PerfCounters delta = obs::perf_delta(before);
  record.counters = obs::perf_counter_items(delta);
  if (record.wall_seconds > 0) {
    record.trials_per_second =
        static_cast<double>(delta.trials_executed) / record.wall_seconds;
    record.events_per_second =
        static_cast<double>(delta.events_popped) / record.wall_seconds;
  }
  record.peak_rss = obs::peak_rss_bytes();
  if (record.status == 0 && !metrics_path.empty()) {
    std::ifstream in{metrics_path, std::ios::binary};
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      record.metrics_crc = crc32_hex(crc32(buf.str()));
    }
  }

  obs::set_last_run_record(record);
  if (ledger_enabled && obs::append_run_record(ledger_path, record)) {
    // Deterministic banner: the path only — never the study name, run id or
    // timings, so captured stdout stays byte-identical across runs and
    // between spec-file and compiled-in invocations.
    statusf("run recorded in ledger %s\n", ledger_path.c_str());
  }
  // Wall-clock telemetry is nondeterministic by design, so it goes to
  // stderr unconditionally (like the progress meter), never into a
  // captured or byte-compared stream.
  std::fprintf(stderr,
               "perf: %.2fs wall, %.1f trials/s, %.0f events/s, peak rss %.1f MiB\n",
               record.wall_seconds, record.trials_per_second,
               record.events_per_second,
               static_cast<double>(record.peak_rss) / (1024.0 * 1024.0));
}

}  // namespace

int study_main(const std::string& name, int argc, const char* const* argv) {
  const StudyDefinition* def = StudyRegistry::instance().find(name);
  if (def == nullptr) {
    std::fprintf(stderr, "unknown study '%s' — see `xres list` for the catalog\n",
                 name.c_str());
    return 1;
  }
  return study_main(*def, argc, argv);
}

int study_main(const StudyDefinition& def, int argc, const char* const* argv) {
  CliParser cli{def.help_summary()};
  add_study_options(cli, def);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  ParamSet params = read_study_params(cli, def);
  HarnessOptions options = read_harness_options(cli, def);
  return run_study(def, std::move(params), std::move(options));
}

int run_study(const StudyDefinition& def, ParamSet params, HarnessOptions options) {
  obs::RunRecord record;
  record.id = obs::mint_run_id();
  record.study = def.name;
  record.cell = options.run_label;
  record.suite = options.run_suite;
  record.seed = options.seed;
  record.threads =
      options.threads != 0 ? options.threads
                           : std::max(1U, std::thread::hardware_concurrency());
  record.build = build_describe();
  for (const auto& [key, value] : params.values()) {
    record.params.emplace_back(key, value);
  }
  {
    // The params digest excludes the registry-injected platform.* params so
    // it stays comparable with pre-topology ledger records; the platform
    // params get their own digest (platform_crc), which `xres compare`
    // reports as a warning, not drift — two runs on different platforms are
    // expected to produce different artifacts.
    std::vector<std::pair<std::string, std::string>> study_params;
    std::vector<std::pair<std::string, std::string>> platform_params;
    for (const auto& kv : record.params) {
      if (kv.first.rfind("platform.", 0) == 0) {
        platform_params.push_back(kv);
      } else {
        study_params.push_back(kv);
      }
    }
    record.params_digest = obs::params_digest(study_params);
    if (!platform_params.empty()) {
      record.platform_crc = obs::params_digest(platform_params);
    }
  }

  const bool ledger_enabled = options.ledger;
  const std::string ledger_path = options.ledger_path;
  const std::string metrics_path = options.obs.metrics_path;
  const obs::PerfCounters before = obs::perf_snapshot();
  const auto start = std::chrono::steady_clock::now();

  StudyContext ctx{def, std::move(params), std::move(options)};
  try {
    record.status = def.run(ctx);
  } catch (const io::IoError& e) {
    if (e.disk_full()) {
      // ENOSPC on a critical artifact (journal, CSV, metrics): the journal
      // is fsync'd up to the failure, so this is a *resumable* interruption
      // — exit 75, not 1, and tell the user how to finish the run.
      record.status = recovery::kExitInterrupted;
      finish_run_record(record, before, start, metrics_path, ledger_enabled,
                        ledger_path);
      std::fprintf(stderr,
                   "disk full: %s\nre-run with --journal <path> --resume once "
                   "space is available to complete the study (exit %d)\n",
                   e.what(), recovery::kExitInterrupted);
      return recovery::kExitInterrupted;
    }
    record.status = -1;
    finish_run_record(record, before, start, metrics_path, ledger_enabled,
                      ledger_path);
    throw;
  } catch (...) {
    // Record the failed run too (status -1): a crash that leaves no trace
    // is exactly what the ledger exists to prevent.
    record.status = -1;
    finish_run_record(record, before, start, metrics_path, ledger_enabled,
                      ledger_path);
    throw;
  }
  finish_run_record(record, before, start, metrics_path, ledger_enabled,
                    ledger_path);
  return record.status;
}

}  // namespace xres::study
