#include "core/report.hpp"

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace xres {

StudyReport::StudyReport(std::string title) : title_{std::move(title)} {
  XRES_CHECK(!title_.empty(), "report needs a title");
}

void StudyReport::add_paragraph(const std::string& text) { paragraphs_.push_back(text); }

void StudyReport::add_config(const std::string& key, const std::string& value) {
  XRES_CHECK(!key.empty(), "config key must be non-empty");
  config_.emplace_back(key, value);
}

void StudyReport::add_table(const std::string& caption, Table table) {
  tables_.push_back(CaptionedTable{caption, std::move(table)});
}

void StudyReport::add_metrics(const std::string& caption, const obs::MetricSet& metrics) {
  add_table(caption.empty() ? "Metrics" : caption, metrics.to_table());
}

std::string StudyReport::to_markdown() const {
  std::string out = "# " + title_ + "\n\n";
  if (!config_.empty()) {
    out += "## Configuration\n\n";
    for (const auto& [key, value] : config_) {
      out += "* **" + key + "**: " + value + "\n";
    }
    out += '\n';
  }
  for (const std::string& paragraph : paragraphs_) {
    out += paragraph;
    out += "\n\n";
  }
  for (const CaptionedTable& entry : tables_) {
    if (!entry.caption.empty()) out += "## " + entry.caption + "\n\n";
    out += entry.table.to_markdown();
    out += '\n';
  }
  return out;
}

void StudyReport::write(const std::string& path) const {
  // Atomic (temp + rename): a crash mid-write never leaves a torn report.
  write_file_atomic(path, to_markdown());
}

}  // namespace xres
