// Integration tests for the workload engine: mapping, deadlines, drops,
// failures, and the study orchestration (Sections VI-VII mechanics at
// testbed scale).

#include <gtest/gtest.h>

#include "core/workload_engine.hpp"
#include "core/workload_study.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

/// Small machine so tests run fast: 1000 nodes, short jobs.
MachineSpec small_machine() { return MachineSpec::testbed(1000); }

WorkloadConfig small_workload() {
  WorkloadConfig config;
  config.machine_nodes = 1000;
  config.arrival_count = 20;
  config.mean_interarrival = Duration::hours(1.0);
  config.size_fractions = {0.05, 0.10, 0.20};
  config.baseline_hours = {3.0, 6.0};
  return config;
}

Job simple_job(std::uint64_t id, std::uint32_t nodes, double baseline_h,
               double arrival_h, double deadline_h) {
  Job job;
  job.id = JobId{id};
  job.spec = AppSpec::from_baseline(app_type_by_name("B32"), nodes,
                                    Duration::hours(baseline_h));
  job.arrival = TimePoint::at(Duration::hours(arrival_h));
  job.deadline = TimePoint::at(Duration::hours(deadline_h));
  return job;
}

TEST(WorkloadEngine, IdealBaselineCompletesEverythingWithLooseDeadlines) {
  ArrivalPattern pattern;
  for (std::uint64_t i = 0; i < 5; ++i) {
    pattern.jobs.push_back(simple_job(i + 1, 100, 3.0, static_cast<double>(i), 100.0));
  }
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  const WorkloadRunResult result = run_workload(config, pattern);
  EXPECT_EQ(result.total_jobs, 5U);
  EXPECT_EQ(result.completed, 5U);
  EXPECT_EQ(result.dropped, 0U);
  EXPECT_DOUBLE_EQ(result.dropped_fraction, 0.0);
  EXPECT_EQ(result.failures_injected, 0U);
}

TEST(WorkloadEngine, ImpossibleDeadlineIsDropped) {
  ArrivalPattern pattern;
  // Needs 3 h but the deadline is 1 h after arrival.
  pattern.jobs.push_back(simple_job(1, 100, 3.0, 0.0, 1.0));
  pattern.jobs.push_back(simple_job(2, 100, 3.0, 0.0, 50.0));
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  const WorkloadRunResult result = run_workload(config, pattern);
  EXPECT_EQ(result.completed, 1U);
  EXPECT_EQ(result.dropped, 1U);
}

TEST(WorkloadEngine, OversubscriptionDropsUnderFcfs) {
  // Ten simultaneous jobs each needing 400 of 1000 nodes, 3 h each, with
  // deadlines at 7 h: only ~2 waves of 2 can finish in time.
  ArrivalPattern pattern;
  for (std::uint64_t i = 0; i < 10; ++i) {
    pattern.jobs.push_back(simple_job(i + 1, 400, 3.0, 0.0, 7.0));
  }
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  config.scheduler = SchedulerKind::kFcfs;
  const WorkloadRunResult result = run_workload(config, pattern);
  EXPECT_EQ(result.completed, 4U);
  EXPECT_EQ(result.dropped, 6U);
}

TEST(WorkloadEngine, SlackDropsProactively) {
  ArrivalPattern pattern;
  for (std::uint64_t i = 0; i < 10; ++i) {
    pattern.jobs.push_back(simple_job(i + 1, 400, 3.0, 0.0, 7.0));
  }
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  config.scheduler = SchedulerKind::kSlack;
  const WorkloadRunResult result = run_workload(config, pattern);
  EXPECT_EQ(result.completed + result.dropped, 10U);
  EXPECT_GE(result.completed, 4U);
}

TEST(WorkloadEngine, FailuresCauseAdditionalDrops) {
  // Same workload; with checkpoint/restart under an aggressive failure
  // rate, some runs stretch past their deadlines.
  ArrivalPattern pattern;
  for (std::uint64_t i = 0; i < 8; ++i) {
    pattern.jobs.push_back(
        simple_job(i + 1, 200, 3.0, static_cast<double>(i) * 0.5, 6.5 + static_cast<double>(i) * 0.5));
  }
  WorkloadEngineConfig ideal;
  ideal.machine = small_machine();
  ideal.policy = TechniquePolicy::ideal_baseline();
  const WorkloadRunResult base = run_workload(ideal, pattern);

  WorkloadEngineConfig faulty = ideal;
  faulty.policy = TechniquePolicy::fixed_technique(TechniqueKind::kCheckpointRestart);
  faulty.resilience.node_mtbf = Duration::days(10.0);  // extreme unreliability
  const WorkloadRunResult result = run_workload(faulty, pattern);

  EXPECT_GT(result.failures_injected, 0U);
  EXPECT_GE(result.dropped, base.dropped);
  EXPECT_EQ(result.completed + result.dropped, result.total_jobs);
}

TEST(WorkloadEngine, SelectionPolicyRecordsCounts) {
  ArrivalPattern pattern;
  for (std::uint64_t i = 0; i < 6; ++i) {
    pattern.jobs.push_back(simple_job(i + 1, 100, 3.0, static_cast<double>(i), 100.0));
  }
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::selection();
  config.resilience.node_mtbf = Duration::years(1.0);
  const WorkloadRunResult result = run_workload(config, pattern);
  std::uint32_t selected = 0;
  for (const auto& [kind, count] : result.selection_counts) {
    EXPECT_NE(kind, TechniqueKind::kNone);
    selected += count;
  }
  EXPECT_EQ(selected, result.completed + 0U);  // every started job was selected for
  EXPECT_EQ(result.completed, 6U);
}

TEST(WorkloadEngine, UtilizationIsTracked) {
  ArrivalPattern pattern;
  pattern.jobs.push_back(simple_job(1, 500, 6.0, 0.0, 100.0));
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  const WorkloadRunResult result = run_workload(config, pattern);
  // One job: 500/1000 nodes busy for the whole horizon.
  EXPECT_NEAR(result.mean_utilization, 0.5, 0.01);
  EXPECT_NEAR(result.makespan.to_hours(), 6.0, 1e-9);
}

TEST(WorkloadEngine, DropBreakdownAndPerAppStats) {
  // Two jobs can run; the rest drop in the queue (FCFS blocking).
  ArrivalPattern pattern;
  for (std::uint64_t i = 0; i < 5; ++i) {
    pattern.jobs.push_back(simple_job(i + 1, 400, 3.0, 0.0, 4.0));
  }
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  config.scheduler = SchedulerKind::kFcfs;
  const WorkloadRunResult result = run_workload(config, pattern);
  // Wave 1 (jobs 1, 2) completes at 3 h; wave 2 (jobs 3, 4) starts at 3 h
  // and is aborted at the 4 h deadline; job 5 never starts (it would start
  // exactly at its deadline, which the engine refuses).
  EXPECT_EQ(result.completed, 2U);
  EXPECT_EQ(result.dropped, 3U);
  EXPECT_EQ(result.dropped_before_start, 1U);
  EXPECT_EQ(result.dropped_while_running, 2U);
  ASSERT_EQ(result.completed_slowdown.count, 2U);
  EXPECT_NEAR(result.completed_slowdown.mean, 1.0, 1e-9);  // ideal: no delays
  ASSERT_EQ(result.queue_wait_hours.count, 4U);
  EXPECT_NEAR(result.queue_wait_hours.mean, 1.5, 1e-9);  // (0+0+3+3)/4
}

TEST(WorkloadEngine, MidRunDropsCountedSeparately) {
  // One job whose deadline lands mid-execution: dropped while running.
  ArrivalPattern pattern;
  pattern.jobs.push_back(simple_job(1, 100, 6.0, 0.0, 3.0));
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  const WorkloadRunResult result = run_workload(config, pattern);
  EXPECT_EQ(result.dropped_while_running, 1U);
  EXPECT_EQ(result.dropped_before_start, 0U);
}

TEST(WorkloadEngine, SlowdownReflectsResilienceOverhead) {
  ArrivalPattern pattern;
  pattern.jobs.push_back(simple_job(1, 200, 6.0, 0.0, 100.0));
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::fixed_technique(TechniqueKind::kParallelRecovery);
  const WorkloadRunResult result = run_workload(config, pattern);
  ASSERT_EQ(result.completed, 1U);
  // B32 under message logging: slowdown at least µ = 1.025.
  EXPECT_GE(result.completed_slowdown.mean, 1.025 - 1e-9);
}

TEST(WorkloadEngine, ExtensionSchedulersRun) {
  const ArrivalPattern pattern = generate_pattern(small_workload(), 13, 0);
  for (SchedulerKind kind : {SchedulerKind::kFirstFit, SchedulerKind::kSjf}) {
    WorkloadEngineConfig config;
    config.machine = small_machine();
    config.policy = TechniquePolicy::fixed_technique(TechniqueKind::kMultilevel);
    config.scheduler = kind;
    const WorkloadRunResult result = run_workload(config, pattern);
    EXPECT_EQ(result.completed + result.dropped, result.total_jobs);
  }
}

TEST(WorkloadEngine, FirstFitNeverDropsMoreThanFcfsOnBlockedQueues) {
  // Backfilling strictly helps this blocking-prone workload shape: job 1
  // (900 nodes, 6 h) blocks job 2 (800 nodes) until both 5 h deadlines
  // pass; only FirstFit lets the small job 3 slip through at arrival.
  ArrivalPattern pattern;
  pattern.jobs.push_back(simple_job(1, 900, 6.0, 0.0, 50.0));
  pattern.jobs.push_back(simple_job(2, 800, 3.0, 0.1, 5.0));
  pattern.jobs.push_back(simple_job(3, 100, 3.0, 0.2, 5.0));
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::ideal_baseline();
  config.scheduler = SchedulerKind::kFcfs;
  const WorkloadRunResult fcfs = run_workload(config, pattern);
  config.scheduler = SchedulerKind::kFirstFit;
  const WorkloadRunResult ff = run_workload(config, pattern);
  EXPECT_EQ(fcfs.dropped, 2U);
  EXPECT_EQ(ff.dropped, 1U);
  EXPECT_EQ(ff.completed, 2U);
}

TEST(WorkloadEngine, EmptyPatternRejected) {
  WorkloadEngineConfig config;
  config.machine = small_machine();
  EXPECT_THROW(run_workload(config, ArrivalPattern{}), CheckError);
}

TEST(WorkloadEngine, DeterministicForFixedSeeds) {
  const ArrivalPattern pattern = generate_pattern(small_workload(), 42, 0);
  WorkloadEngineConfig config;
  config.machine = small_machine();
  config.policy = TechniquePolicy::fixed_technique(TechniqueKind::kMultilevel);
  config.resilience.node_mtbf = Duration::years(1.0);
  config.seed = 7;
  const WorkloadRunResult a = run_workload(config, pattern);
  const WorkloadRunResult b = run_workload(config, pattern);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_DOUBLE_EQ(a.makespan.to_seconds(), b.makespan.to_seconds());
}

TEST(WorkloadStudy, RunsCombosOverSharedPatterns) {
  WorkloadStudyConfig study;
  study.machine = small_machine();
  study.workload = small_workload();
  study.patterns = 3;
  study.resilience.node_mtbf = Duration::years(2.0);

  const std::vector<WorkloadCombo> combos{
      WorkloadCombo{SchedulerKind::kFcfs, TechniquePolicy::ideal_baseline()},
      WorkloadCombo{SchedulerKind::kFcfs,
                    TechniquePolicy::fixed_technique(TechniqueKind::kParallelRecovery)},
  };
  std::size_t progress_calls = 0;
  const auto results = run_workload_study(
      study, combos, [&](std::size_t done, std::size_t total) {
        ++progress_calls;
        EXPECT_LE(done, total);
      });
  ASSERT_EQ(results.size(), 2U);
  EXPECT_EQ(progress_calls, 6U);
  for (const auto& r : results) {
    EXPECT_EQ(r.dropped_fraction.count, 3U);
    EXPECT_GE(r.dropped_fraction.mean, 0.0);
    EXPECT_LE(r.dropped_fraction.mean, 1.0);
  }
  // The ideal baseline cannot drop more than the failure-prone run on the
  // same patterns (statistically; exact with shared arrival patterns and
  // no failures in baseline).
  EXPECT_LE(results[0].dropped_fraction.mean, results[1].dropped_fraction.mean + 1e-9);
}

TEST(WorkloadStudy, ComboSetsMatchPaperFigures) {
  const auto fig4 = figure4_combos();
  // 1 ideal baseline + 3 schedulers × 3 techniques = 10 bars.
  EXPECT_EQ(fig4.size(), 10U);
  const auto fig5 = figure5_combos();
  // 3 schedulers × {parallel recovery, selection} = 6 bars per pattern type.
  EXPECT_EQ(fig5.size(), 6U);
}

TEST(WorkloadStudy, ResultsTableRenders) {
  WorkloadStudyConfig study;
  study.machine = small_machine();
  study.workload = small_workload();
  study.patterns = 2;
  const auto results = run_workload_study(
      study, {WorkloadCombo{SchedulerKind::kRandom, TechniquePolicy::ideal_baseline()}});
  const Table table = workload_results_table(results);
  EXPECT_EQ(table.row_count(), 1U);
  EXPECT_NE(table.to_text().find("Random"), std::string::npos);
}

}  // namespace
}  // namespace xres
