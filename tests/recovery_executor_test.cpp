// Tests for the executor's crash-safety envelope (for_each_controlled and
// the controlled run_batch): resume determinism, watchdog timeouts, bounded
// same-seed retry with quarantine, and graceful shutdown draining — the
// invariants docs/ROBUSTNESS.md promises.

#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "recovery/journal.hpp"
#include "recovery/shutdown.hpp"
#include "util/deadline.hpp"

namespace xres {
namespace {

using recovery::BatchReport;
using recovery::JournalMeta;
using recovery::ResumeIndex;
using recovery::TrialJournal;
using recovery::TrialRecoveryOptions;

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name) : path{"/tmp/xres_" + name} {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JournalMeta test_meta() {
  JournalMeta meta;
  meta.study = "executor-test";
  meta.root_seed = 7;
  return meta;
}

std::vector<TrialSpec> small_specs(std::size_t count) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 360};
  config.technique = TechniqueKind::kMultilevel;
  std::vector<TrialSpec> specs;
  specs.reserve(count);
  for (std::uint64_t t = 0; t < count; ++t) {
    specs.push_back(TrialSpec{config, {t}});
  }
  return specs;
}

TEST(ForEachControlled, PlainLoopBehaviorWhenDefaulted) {
  const TrialExecutor executor{2};
  std::vector<int> hits(16, 0);
  BatchReport report;
  executor.for_each_controlled(
      hits.size(), [&](std::size_t i) { hits[i] = 1; }, TrialLoopControl{}, &report);
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(report.executed, 16U);
  EXPECT_EQ(report.resumed, 0U);
  EXPECT_FALSE(report.interrupted);
}

TEST(ForEachControlled, AlreadyDoneSkipsAndCounts) {
  const TrialExecutor executor{2};
  std::vector<int> hits(10, 0);
  TrialLoopControl control;
  control.already_done = [](std::size_t i) { return i % 2 == 0; };
  BatchReport report;
  executor.for_each_controlled(
      hits.size(), [&](std::size_t i) { hits[i] = 1; }, control, &report);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i % 2 == 0 ? 0 : 1);
  EXPECT_EQ(report.executed, 5U);
  EXPECT_EQ(report.resumed, 5U);
}

TEST(ForEachControlled, RetriesTransientFailuresWithSameIndex) {
  const TrialExecutor executor{2};
  std::vector<std::atomic<int>> attempts(8);
  TrialLoopControl control;
  control.trial_attempts = 3;
  control.quarantine = [](std::size_t, const std::string&) { FAIL(); };
  BatchReport report;
  executor.for_each_controlled(
      attempts.size(),
      [&](std::size_t i) {
        // Index 5 fails twice, then succeeds within its attempt budget.
        if (i == 5 && attempts[i].fetch_add(1) < 2) {
          throw std::runtime_error{"transient"};
        }
      },
      control, &report);
  EXPECT_EQ(attempts[5].load(), 3);
  EXPECT_EQ(report.executed, 8U);
  EXPECT_EQ(report.retried, 2U);
  EXPECT_EQ(report.quarantined, 0U);
}

TEST(ForEachControlled, QuarantinesAfterAttemptBudget) {
  const TrialExecutor executor{2};
  TrialLoopControl control;
  control.trial_attempts = 2;
  std::atomic<std::size_t> quarantined_index{999};
  std::string reason;
  control.quarantine = [&](std::size_t i, const std::string& r) {
    quarantined_index = i;
    reason = r;  // the hook is serialized by the executor
  };
  BatchReport report;
  executor.for_each_controlled(
      6,
      [&](std::size_t i) {
        if (i == 3) throw std::runtime_error{"deterministic model bug"};
      },
      control, &report);
  EXPECT_EQ(quarantined_index.load(), 3U);
  EXPECT_NE(reason.find("deterministic model bug"), std::string::npos);
  EXPECT_EQ(report.executed, 5U);
  EXPECT_EQ(report.retried, 1U);
  EXPECT_EQ(report.quarantined, 1U);
}

TEST(ForEachControlled, WithoutQuarantineExceptionsPropagate) {
  // Historical behavior: no hook, no retries — the failure fails the loop.
  const TrialExecutor executor{2};
  EXPECT_THROW(
      executor.for_each_controlled(
          4,
          [](std::size_t i) {
            if (i == 1) throw std::runtime_error{"boom"};
          },
          TrialLoopControl{}),
      std::runtime_error);
}

TEST(ForEachControlled, WatchdogAbortsHungUnitThenRetrySucceeds) {
  const TrialExecutor executor{2};
  TrialLoopControl control;
  control.trial_timeout_seconds = 0.1;
  control.trial_attempts = 2;
  control.quarantine = [](std::size_t, const std::string&) {};
  std::atomic<int> first_attempt{1};
  BatchReport report;
  executor.for_each_controlled(
      3,
      [&](std::size_t i) {
        if (i == 1 && first_attempt.exchange(0) == 1) {
          // A diverged trial: spins forever, but polls the deadline the way
          // the sim engine does. The armed watchdog must unwind it.
          while (true) deadline_poll();
        }
      },
      control, &report);
  EXPECT_EQ(report.executed, 3U);
  EXPECT_EQ(report.retried, 1U);
  EXPECT_EQ(report.quarantined, 0U);
}

TEST(ForEachControlled, DrainsOnShutdownSignal) {
  recovery::clear_shutdown_for_tests();
  recovery::request_shutdown_for_tests();
  const TrialExecutor executor{2};
  std::atomic<std::size_t> ran{0};
  BatchReport report;
  executor.for_each_controlled(
      64, [&](std::size_t) { ran.fetch_add(1); }, TrialLoopControl{}, &report);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(ran.load(), report.executed);
  EXPECT_LT(report.executed, 64U);

  // Plain for_each never drains: its callers reduce the full result vector.
  std::atomic<std::size_t> plain{0};
  executor.for_each(16, [&](std::size_t) { plain.fetch_add(1); });
  EXPECT_EQ(plain.load(), 16U);
  recovery::clear_shutdown_for_tests();
}

TEST(ControlledRunBatch, JournalThenResumeIsByteIdentical) {
  const TempPath tmp{"executor_resume.jsonl"};
  const std::vector<TrialSpec> specs = small_specs(12);

  // Uninterrupted reference.
  const TrialExecutor serial{1};
  const std::vector<ExecutionResult> reference = serial.run_batch(7, specs);

  // First run journals everything.
  BatchReport first;
  {
    TrialJournal journal{tmp.path, test_meta()};
    TrialRecoveryOptions rec;
    rec.journal = &journal;
    const std::vector<ExecutionResult> run = TrialExecutor{3}.run_batch(
        7, specs, {}, rec, "batch", &first);
    ASSERT_EQ(run.size(), reference.size());
  }
  EXPECT_EQ(first.executed, 12U);
  const std::string journal_after_first = read_file(tmp.path);

  // Second run resumes: nothing re-simulates, results match exactly, and
  // re-journaling the restored outcomes reproduces identical records.
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  ASSERT_EQ(index.size(), 12U);
  BatchReport second;
  std::vector<ExecutionResult> resumed;
  {
    TrialJournal journal{tmp.path, test_meta()};
    TrialRecoveryOptions rec;
    rec.journal = &journal;
    rec.resume = &index;
    resumed = TrialExecutor{2}.run_batch(7, specs, {}, rec, "batch", &second);
  }
  EXPECT_EQ(second.executed, 0U);
  EXPECT_EQ(second.resumed, 12U);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(resumed[i].efficiency, reference[i].efficiency) << "trial " << i;
    EXPECT_EQ(resumed[i].wall_time.to_seconds(), reference[i].wall_time.to_seconds());
    EXPECT_EQ(resumed[i].failures_seen, reference[i].failures_seen);
    EXPECT_EQ(resumed[i].checkpoints_completed, reference[i].checkpoints_completed);
  }
  // The resume run appended nothing new (all trials were restored), so the
  // journal is byte-identical to the post-crash state.
  EXPECT_EQ(read_file(tmp.path), journal_after_first);
}

TEST(ControlledRunBatch, PartialJournalResumesOnlyTheMissingTail) {
  const TempPath tmp{"executor_partial.jsonl"};
  const std::vector<TrialSpec> specs = small_specs(10);
  const std::vector<ExecutionResult> reference = TrialExecutor{1}.run_batch(7, specs);

  // Simulate a crash after 4 trials: journal only a prefix.
  {
    TrialJournal journal{tmp.path, test_meta()};
    TrialRecoveryOptions rec;
    rec.journal = &journal;
    const std::vector<TrialSpec> prefix{specs.begin(), specs.begin() + 4};
    (void)TrialExecutor{1}.run_batch(7, prefix, {}, rec, "batch");
  }

  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  ASSERT_EQ(index.size(), 4U);
  TrialJournal journal{tmp.path, test_meta()};
  TrialRecoveryOptions rec;
  rec.journal = &journal;
  rec.resume = &index;
  BatchReport report;
  const std::vector<ExecutionResult> resumed =
      TrialExecutor{2}.run_batch(7, specs, {}, rec, "batch", &report);
  EXPECT_EQ(report.resumed, 4U);
  EXPECT_EQ(report.executed, 6U);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(resumed[i].efficiency, reference[i].efficiency) << "trial " << i;
  }
}

TEST(ControlledRunBatch, StaleSeedRecordsAreReRunNotTrusted) {
  const TempPath tmp{"executor_stale.jsonl"};
  const std::vector<TrialSpec> specs = small_specs(6);
  {
    TrialJournal journal{tmp.path, test_meta()};
    TrialRecoveryOptions rec;
    rec.journal = &journal;
    (void)TrialExecutor{1}.run_batch(7, specs, {}, rec, "batch");
  }

  // The sweep changed: same (batch, index) slots, different seed keys. The
  // journal's fingerprints no longer match, so every record is stale.
  std::vector<TrialSpec> edited = specs;
  for (std::size_t i = 0; i < edited.size(); ++i) {
    edited[i].seed_keys = {i + 100};
  }
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  TrialRecoveryOptions rec;
  rec.resume = &index;
  BatchReport report;
  const std::vector<ExecutionResult> results =
      TrialExecutor{1}.run_batch(7, edited, {}, rec, "batch", &report);
  EXPECT_EQ(report.resumed, 0U);
  EXPECT_EQ(report.executed, 6U);
  EXPECT_EQ(report.stale_records, 6U);
  // And the results are the *edited* sweep's, not the journaled ones.
  const std::vector<ExecutionResult> reference = TrialExecutor{1}.run_batch(7, edited);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(results[i].efficiency, reference[i].efficiency);
  }
}

TEST(ControlledRunBatch, ResumedMetricsMatchUninterruptedByteForByte) {
  const TempPath tmp{"executor_metrics.jsonl"};
  const TempPath json_a{"metrics_uninterrupted.json"};
  const TempPath json_b{"metrics_resumed.json"};
  const std::vector<TrialSpec> specs = small_specs(8);

  const auto run_observed = [&](const TrialRecoveryOptions& rec, BatchReport* report) {
    std::vector<obs::TrialObs> observers(specs.size());
    for (obs::TrialObs& o : observers) o.enable_metrics();
    (void)TrialExecutor{2}.run_batch(7, specs, observers, rec, "batch", report);
    obs::MetricSet merged;
    for (const obs::TrialObs& o : observers) merged.merge(*o.metrics());
    return merged;
  };

  BatchReport first;
  {
    TrialJournal journal{tmp.path, test_meta()};
    TrialRecoveryOptions rec;
    rec.journal = &journal;
    run_observed(rec, &first).write_json(json_a.path);
  }
  EXPECT_EQ(first.executed, 8U);

  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  TrialRecoveryOptions rec;
  rec.resume = &index;
  BatchReport second;
  run_observed(rec, &second).write_json(json_b.path);
  EXPECT_EQ(second.resumed, 8U);
  EXPECT_EQ(second.executed, 0U);

  const std::string a = read_file(json_a.path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, read_file(json_b.path));
}

TEST(ControlledRunBatch, TraceObserverTrialsReRunOnResume) {
  const TempPath tmp{"executor_trace.jsonl"};
  const std::vector<TrialSpec> specs = small_specs(4);
  {
    TrialJournal journal{tmp.path, test_meta()};
    TrialRecoveryOptions rec;
    rec.journal = &journal;
    (void)TrialExecutor{1}.run_batch(7, specs, {}, rec, "batch");
  }
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  TrialRecoveryOptions rec;
  rec.resume = &index;

  // Trial 0 carries a trace observer; traces are not journaled, so it must
  // re-simulate (deterministically) while the rest restore.
  std::vector<obs::TrialObs> observers(specs.size());
  observers[0].enable_trace();
  BatchReport report;
  (void)TrialExecutor{1}.run_batch(7, specs, observers, rec, "batch", &report);
  EXPECT_EQ(report.executed, 1U);
  EXPECT_EQ(report.resumed, 3U);
  ASSERT_NE(observers[0].trace(), nullptr);
  EXPECT_FALSE(observers[0].trace()->empty());
}

TEST(ControlledRunBatch, QuarantinedTrialYieldsZeroPlaceholderAndRecord) {
  // Force every attempt to time out instantly via an impossible watchdog.
  const TempPath tmp{"executor_quarantine.jsonl"};
  const std::vector<TrialSpec> specs = small_specs(3);
  TrialJournal journal{tmp.path, test_meta()};
  TrialRecoveryOptions rec;
  rec.journal = &journal;
  rec.trial_timeout_seconds = 1e-9;
  rec.trial_attempts = 2;
  ASSERT_TRUE(rec.quarantine_enabled());
  BatchReport report;
  const std::vector<ExecutionResult> results =
      TrialExecutor{1}.run_batch(7, specs, {}, rec, "batch", &report);
  journal.flush();

  // Whether a 1ns deadline fires before any poll is timing-dependent, but
  // every trial either completed honestly or was quarantined with a zero
  // placeholder — and the journal holds exactly one record per trial.
  EXPECT_EQ(report.executed + report.quarantined, 3U);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GE(results[i].efficiency, 0.0);
  }
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.size(), 3U);
}

}  // namespace
}  // namespace xres
