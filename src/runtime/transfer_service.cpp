#include "runtime/transfer_service.hpp"

#include "util/check.hpp"

namespace xres {

TransferService::TransferHandle FixedTransferService::begin(
    Duration nominal, CompletionCallback on_complete) {
  XRES_CHECK(nominal >= Duration::zero(), "transfer duration must be non-negative");
  const EventId id = sim_.schedule_after(nominal, std::move(on_complete));
  return static_cast<TransferHandle>(id);
}

void FixedTransferService::cancel(TransferHandle handle) {
  sim_.cancel(static_cast<EventId>(handle));
}

SharedChannelTransferService::SharedChannelTransferService(SharedChannel& channel,
                                                           Bandwidth per_stream_cap)
    : channel_{channel}, per_stream_cap_bps_{per_stream_cap.to_bytes_per_second()} {
  XRES_CHECK(per_stream_cap_bps_ > 0.0, "per-stream cap must be positive");
}

TransferService::TransferHandle SharedChannelTransferService::begin(
    Duration nominal, CompletionCallback on_complete) {
  XRES_CHECK(nominal >= Duration::zero(), "transfer duration must be non-negative");
  const DataSize size = DataSize::bytes(nominal.to_seconds() * per_stream_cap_bps_);
  return channel_.begin_transfer(size, std::move(on_complete));
}

void SharedChannelTransferService::cancel(TransferHandle handle) {
  channel_.cancel(handle);
}

}  // namespace xres
