// Tests for the processor-sharing SharedChannel, the transfer services,
// and PFS-contention integration with the runtime and workload engine.

#include <gtest/gtest.h>

#include "core/workload_engine.hpp"
#include "runtime/app_runtime.hpp"
#include "runtime/transfer_service.hpp"
#include "sim/shared_channel.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

Bandwidth bps(double v) { return Bandwidth::bytes_per_second(v); }

TEST(SharedChannel, LoneTransferRunsAtPerStreamCap) {
  Simulation sim;
  SharedChannel channel{sim, bps(100.0), bps(10.0)};
  double done_at = -1.0;
  channel.begin_transfer(DataSize::bytes(50.0), [&] { done_at = sim.now().to_seconds(); });
  EXPECT_EQ(channel.active_transfers(), 1U);
  EXPECT_DOUBLE_EQ(channel.current_per_transfer_rate().to_bytes_per_second(), 10.0);
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);  // 50 bytes at 10 B/s
  EXPECT_EQ(channel.completed_transfers(), 1U);
}

TEST(SharedChannel, CapacitySharedBeyondSaturation) {
  // Capacity 20, cap 10: two transfers still run at 10 each; four run at 5.
  Simulation sim;
  SharedChannel channel{sim, bps(20.0), bps(10.0)};
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    channel.begin_transfer(DataSize::bytes(100.0),
                           [&] { done.push_back(sim.now().to_seconds()); });
  }
  EXPECT_DOUBLE_EQ(channel.current_per_transfer_rate().to_bytes_per_second(), 5.0);
  sim.run();
  ASSERT_EQ(done.size(), 4U);
  // All four start together and share equally throughout: 4 x 100 bytes /
  // 20 B/s = 20 s each.
  for (double t : done) EXPECT_NEAR(t, 20.0, 1e-9);
}

TEST(SharedChannel, RatesRecomputeOnCompletion) {
  // Two transfers of different sizes at capacity 10 (cap 10): both run at
  // 5 until the small one finishes, then the big one speeds to 10.
  // Small: 50 bytes -> t = 10. Big: 150 bytes: 50 done by t=10, remaining
  // 100 at 10 B/s -> t = 20.
  Simulation sim;
  SharedChannel channel{sim, bps(10.0), bps(10.0)};
  double small_done = -1.0;
  double big_done = -1.0;
  channel.begin_transfer(DataSize::bytes(150.0), [&] { big_done = sim.now().to_seconds(); });
  channel.begin_transfer(DataSize::bytes(50.0), [&] { small_done = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(small_done, 10.0, 1e-9);
  EXPECT_NEAR(big_done, 20.0, 1e-9);
}

TEST(SharedChannel, LateArrivalSlowsInFlightTransfer) {
  // Transfer A (100 bytes) alone at 10 B/s; at t=5 transfer B (25 bytes)
  // arrives, both drop to 5 B/s. B finishes at t=10; A has 25 left ->
  // finishes at t=12.5.
  Simulation sim;
  SharedChannel channel{sim, bps(10.0), bps(10.0)};
  double a_done = -1.0;
  double b_done = -1.0;
  channel.begin_transfer(DataSize::bytes(100.0), [&] { a_done = sim.now().to_seconds(); });
  sim.schedule_at(TimePoint::at(Duration::seconds(5.0)), [&] {
    channel.begin_transfer(DataSize::bytes(25.0), [&] { b_done = sim.now().to_seconds(); });
  });
  sim.run();
  EXPECT_NEAR(b_done, 10.0, 1e-9);
  EXPECT_NEAR(a_done, 12.5, 1e-9);
}

TEST(SharedChannel, CancelFreesBandwidth) {
  // A and B share 10 B/s; at t=5, B is cancelled and A speeds back up.
  // A: 100 bytes; 25 done by t=5, 75 at 10 B/s -> t = 12.5.
  Simulation sim;
  SharedChannel channel{sim, bps(10.0), bps(10.0)};
  double a_done = -1.0;
  bool b_done = false;
  channel.begin_transfer(DataSize::bytes(100.0), [&] { a_done = sim.now().to_seconds(); });
  const auto b = channel.begin_transfer(DataSize::bytes(500.0), [&] { b_done = true; });
  sim.schedule_at(TimePoint::at(Duration::seconds(5.0)), [&] {
    EXPECT_TRUE(channel.cancel(b));
    EXPECT_FALSE(channel.cancel(b));  // second cancel is a no-op
  });
  sim.run();
  EXPECT_NEAR(a_done, 12.5, 1e-9);
  EXPECT_FALSE(b_done);
}

TEST(SharedChannel, RemainingQueryTracksProgress) {
  Simulation sim;
  SharedChannel channel{sim, bps(10.0), bps(10.0)};
  const auto id = channel.begin_transfer(DataSize::bytes(100.0), [] {});
  sim.run_until(TimePoint::at(Duration::seconds(4.0)));
  EXPECT_NEAR(channel.remaining(id).to_bytes(), 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(channel.remaining(SharedChannel::TransferId{999}).to_bytes(), 0.0);
}

TEST(SharedChannel, ZeroSizeTransferCompletesImmediately) {
  Simulation sim;
  SharedChannel channel{sim, bps(10.0), bps(10.0)};
  bool done = false;
  channel.begin_transfer(DataSize::zero(), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 0.0);
}

TEST(FixedTransferService, BehavesLikeTimer) {
  Simulation sim;
  FixedTransferService service{sim};
  double done_at = -1.0;
  service.begin(Duration::seconds(7.0), [&] { done_at = sim.now().to_seconds(); });
  const auto cancelled = service.begin(Duration::seconds(3.0), [] { FAIL(); });
  service.cancel(cancelled);
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 7.0);
}

TEST(SharedChannelTransferService, NominalDurationHoldsUncontended) {
  Simulation sim;
  SharedChannel channel{sim, bps(400.0), bps(100.0)};
  SharedChannelTransferService service{channel, bps(100.0)};
  double done_at = -1.0;
  service.begin(Duration::seconds(9.0), [&] { done_at = sim.now().to_seconds(); });
  sim.run();
  EXPECT_NEAR(done_at, 9.0, 1e-9);
}

/// Two runtimes checkpointing simultaneously through a single-gateway PFS:
/// both checkpoints take twice their nominal time.
TEST(PfsContention, ConcurrentCheckpointsStretch) {
  Simulation sim;
  SharedChannel channel{sim, bps(100.0), bps(100.0)};  // one gateway
  SharedChannelTransferService service{channel, bps(100.0)};

  auto make_plan_local = [] {
    ExecutionPlan plan;
    plan.kind = TechniqueKind::kCheckpointRestart;
    plan.app = AppSpec{app_type_by_name("A32"), 10, 100};
    plan.physical_nodes = 10;
    plan.baseline = Duration::seconds(100.0);
    plan.work_target = Duration::seconds(100.0);
    plan.checkpoint_quantum = Duration::seconds(10.0);
    plan.levels = {CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(3.0), 3,
                                       /*uses_shared_pfs=*/true}};
    plan.nesting = {1};
    plan.failure_rate = Rate::zero();
    return plan;
  };

  ExecutionResult r1;
  ExecutionResult r2;
  ResilientAppRuntime a{sim, make_plan_local(), 1, [&](const ExecutionResult& r) { r1 = r; }};
  ResilientAppRuntime b{sim, make_plan_local(), 2, [&](const ExecutionResult& r) { r2 = r; }};
  a.set_pfs_transfer_service(&service);
  b.set_pfs_transfer_service(&service);
  a.start();
  b.start();
  sim.run();

  // In lockstep, every checkpoint is contended: 9 checkpoints x 4 s
  // instead of x 2 s -> wall 136 s for both.
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_DOUBLE_EQ(r1.wall_time.to_seconds(), 136.0);
  EXPECT_DOUBLE_EQ(r2.wall_time.to_seconds(), 136.0);
  EXPECT_DOUBLE_EQ(r1.time_checkpointing.to_seconds(), 36.0);
}

TEST(PfsContention, SoloRuntimeUnaffected) {
  Simulation sim;
  SharedChannel channel{sim, bps(100.0), bps(100.0)};
  SharedChannelTransferService service{channel, bps(100.0)};
  ExecutionPlan plan;
  plan.kind = TechniqueKind::kCheckpointRestart;
  plan.app = AppSpec{app_type_by_name("A32"), 10, 100};
  plan.physical_nodes = 10;
  plan.baseline = Duration::seconds(100.0);
  plan.work_target = Duration::seconds(100.0);
  plan.checkpoint_quantum = Duration::seconds(10.0);
  plan.levels = {CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(3.0), 3, true}};
  plan.nesting = {1};
  plan.failure_rate = Rate::zero();

  ExecutionResult result;
  ResilientAppRuntime runtime{sim, std::move(plan), 1,
                              [&](const ExecutionResult& r) { result = r; }};
  runtime.set_pfs_transfer_service(&service);
  runtime.start();
  sim.run();
  EXPECT_DOUBLE_EQ(result.wall_time.to_seconds(), 118.0);  // same as uncontended
}

TEST(PfsContention, WorkloadEngineTogglesCleanly) {
  // The same pattern with contention modeling on cannot drop fewer jobs,
  // and accounting invariants must hold either way.
  WorkloadConfig wconfig;
  wconfig.machine_nodes = 1000;
  wconfig.arrival_count = 15;
  wconfig.mean_interarrival = Duration::hours(1.0);
  wconfig.size_fractions = {0.10, 0.20};
  wconfig.baseline_hours = {3.0, 6.0};
  const ArrivalPattern pattern = generate_pattern(wconfig, 21, 0);

  WorkloadEngineConfig config;
  config.machine = MachineSpec::testbed(1000);
  config.policy = TechniquePolicy::fixed_technique(TechniqueKind::kCheckpointRestart);
  config.resilience.node_mtbf = Duration::years(1.0);

  const WorkloadRunResult without = run_workload(config, pattern);
  config.model_pfs_contention = true;
  config.pfs_gateways = 1;
  const WorkloadRunResult with = run_workload(config, pattern);

  EXPECT_EQ(with.completed + with.dropped, with.total_jobs);
  EXPECT_GE(with.dropped, without.dropped);
  if (with.completed_slowdown.count > 0 && without.completed_slowdown.count > 0) {
    EXPECT_GE(with.completed_slowdown.mean, without.completed_slowdown.mean - 1e-9);
  }
}

}  // namespace
}  // namespace xres
