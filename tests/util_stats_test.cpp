// Unit tests for streaming statistics, histogram and quantiles.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace xres {
namespace {

TEST(RunningStats, EmptyStateAndErrors) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0U);
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.min(), CheckError);
  EXPECT_THROW(s.max(), CheckError);
  EXPECT_EQ(s.summary().count, 0U);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i * i % 17) - 4.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, SummaryConfidenceInterval) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 2));  // mean .5, sd ~.5
  const Summary sum = s.summary();
  EXPECT_EQ(sum.count, 100U);
  EXPECT_DOUBLE_EQ(sum.mean, 0.5);
  EXPECT_NEAR(sum.ci95_halfwidth, 1.96 * sum.stddev / 10.0, 1e-3);
}

TEST(Histogram, BinningAndEdges) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // underflow -> bin 0
  h.add(10.0);  // overflow -> bin 4
  EXPECT_EQ(h.total(), 6U);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.count_in_bin(0), 3U);
  EXPECT_EQ(h.count_in_bin(1), 1U);
  EXPECT_EQ(h.count_in_bin(4), 2U);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Histogram, TextRenderingIsNonEmpty) {
  Histogram h{0.0, 1.0, 4};
  for (int i = 0; i < 10; ++i) h.add(0.3);
  const std::string text = h.to_text();
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{1.0, 0.0, 4}), CheckError);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), CheckError);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, RejectsEmptyAndBadFraction) {
  EXPECT_THROW(quantile({}, 0.5), CheckError);
  EXPECT_THROW(quantile({1.0}, 1.5), CheckError);
}

TEST(Welch, ClearlySeparatedMeansAreSignificant) {
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 30; ++i) {
    a.add(10.0 + 0.1 * (i % 3));
    b.add(12.0 + 0.1 * (i % 3));
  }
  const WelchResult r = welch_t_test(a.summary(), b.summary());
  EXPECT_LT(r.t, 0.0);  // mean_a < mean_b
  EXPECT_TRUE(r.significant_95);
}

TEST(Welch, OverlappingSamplesAreNotSignificant) {
  RunningStats a;
  RunningStats b;
  Pcg32 rng{12};
  for (int i = 0; i < 30; ++i) {
    a.add(rng.uniform(0.0, 10.0));
    b.add(rng.uniform(0.0, 10.0));
  }
  const WelchResult r = welch_t_test(a.summary(), b.summary());
  EXPECT_FALSE(r.significant_95);
}

TEST(Welch, EqualVarianceEqualCountDofIsClassic) {
  // With equal variances and counts n, Welch dof == 2n - 2.
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 10; ++i) {
    a.add(i % 2 == 0 ? 1.0 : 3.0);
    b.add(i % 2 == 0 ? 5.0 : 7.0);
  }
  const WelchResult r = welch_t_test(a.summary(), b.summary());
  EXPECT_NEAR(r.degrees_of_freedom, 18.0, 1e-9);
}

TEST(Welch, RejectsDegenerateInputs) {
  RunningStats single;
  single.add(1.0);
  RunningStats pairc;
  pairc.add(1.0);
  pairc.add(1.0);
  EXPECT_THROW(welch_t_test(single.summary(), pairc.summary()), CheckError);
  // Zero variance on both sides.
  EXPECT_THROW(welch_t_test(pairc.summary(), pairc.summary()), CheckError);
}

TEST(SummaryMerge, MatchesSinglePassWelford) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 80; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0 + 3.0;
    all.add(x);
    (i < 30 ? a : b).add(x);
  }
  Summary pooled = a.summary();
  pooled.merge(b.summary());
  const Summary reference = all.summary();
  EXPECT_EQ(pooled.count, reference.count);
  EXPECT_NEAR(pooled.mean, reference.mean, 1e-12);
  EXPECT_NEAR(pooled.stddev, reference.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(pooled.min, reference.min);
  EXPECT_DOUBLE_EQ(pooled.max, reference.max);
  EXPECT_NEAR(pooled.ci95_halfwidth, reference.ci95_halfwidth, 1e-9);
}

TEST(SummaryMerge, EmptySidesAreIdentity) {
  RunningStats s;
  for (double x : {2.0, 4.0, 9.0}) s.add(x);
  const Summary full = s.summary();

  Summary left = full;
  left.merge(Summary{});
  EXPECT_EQ(left.count, full.count);
  EXPECT_DOUBLE_EQ(left.mean, full.mean);
  EXPECT_DOUBLE_EQ(left.stddev, full.stddev);

  Summary right;
  right.merge(full);
  EXPECT_EQ(right.count, full.count);
  EXPECT_DOUBLE_EQ(right.mean, full.mean);
  EXPECT_DOUBLE_EQ(right.stddev, full.stddev);
  EXPECT_DOUBLE_EQ(right.min, full.min);
  EXPECT_DOUBLE_EQ(right.max, full.max);
}

TEST(SummaryMerge, SingletonSidesPoolCorrectly) {
  // stddev is zero for singletons, so the pooled variance must come
  // entirely from the between-groups delta term.
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  b.add(5.0);
  Summary pooled = a.summary();
  pooled.merge(b.summary());

  RunningStats reference;
  reference.add(1.0);
  reference.add(5.0);
  EXPECT_EQ(pooled.count, 2U);
  EXPECT_NEAR(pooled.mean, reference.mean(), 1e-12);
  EXPECT_NEAR(pooled.stddev, reference.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(pooled.min, 1.0);
  EXPECT_DOUBLE_EQ(pooled.max, 5.0);
}

TEST(SummaryMerge, ManyPartitionsPoolToSameMoments) {
  // Pool eight chunk summaries sequentially and compare against one pass.
  RunningStats all;
  std::vector<RunningStats> chunks(8);
  for (int i = 0; i < 400; ++i) {
    const double x = static_cast<double>((i * 37) % 101) / 7.0;
    all.add(x);
    chunks[static_cast<std::size_t>(i) % 8].add(x);
  }
  Summary pooled = chunks[0].summary();
  for (std::size_t c = 1; c < chunks.size(); ++c) pooled.merge(chunks[c].summary());
  EXPECT_EQ(pooled.count, all.count());
  EXPECT_NEAR(pooled.mean, all.mean(), 1e-10);
  EXPECT_NEAR(pooled.stddev, all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(pooled.min, all.min());
  EXPECT_DOUBLE_EQ(pooled.max, all.max());
}

}  // namespace
}  // namespace xres
