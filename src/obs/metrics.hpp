#pragma once

/// \file metrics.hpp
/// Deterministic simulation metrics: counters, gauges and log2-bucket
/// histograms.
///
/// ## Model
///
/// A process-wide `MetricRegistry` assigns each named metric a `MetricId`
/// (kind + slot, packed so the hot path never consults the registry). A
/// `MetricSet` is one trial's worth of values — a plain array per kind,
/// owned by a single thread, with no locks anywhere. Studies allocate one
/// `MetricSet` per trial, let the trial fill it, and `merge` the per-trial
/// sets *in spec order* afterwards. Because each trial's values are
/// independent of scheduling and the reduction order is fixed, the merged
/// set — and its JSON rendering — is **byte-identical for every
/// `--threads` value**, the same contract `TrialExecutor` gives results
/// (core/executor.hpp).
///
/// ## Cost when disabled
///
/// Instrumented components hold an `obs::TrialObs*` that is null when
/// observation is off; every metric site is one pointer test. With metrics
/// on, a counter increment is a bounds check plus an array add.
///
/// ## Semantics under merge
///
///  * counter — monotone event count; merge sums.
///  * gauge   — summable quantity (hours, node-hours); merge adds in call
///              order, so double rounding is reproducible.
///  * histogram — log2 buckets: bucket 0 holds values < 1, bucket i holds
///              [2^(i-1), 2^i); merge sums buckets and pools count/sum/
///              min/max. Exact enough for "where does time go" questions
///              while merging losslessly (bucket counts are integers).

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace xres::obs {

enum class MetricKind { kCounter = 0, kGauge = 1, kHistogram = 2 };

[[nodiscard]] const char* to_string(MetricKind kind);

/// Opaque metric handle: kind plus slot within that kind's array.
class MetricId {
 public:
  constexpr MetricId() = default;

  [[nodiscard]] constexpr MetricKind kind() const {
    return static_cast<MetricKind>(packed_ >> 30);
  }
  [[nodiscard]] constexpr std::uint32_t slot() const { return packed_ & 0x3fffffffU; }
  [[nodiscard]] constexpr bool valid() const { return packed_ != kInvalid; }

 private:
  friend class MetricRegistry;
  constexpr MetricId(MetricKind kind, std::uint32_t slot)
      : packed_{(static_cast<std::uint32_t>(kind) << 30) | slot} {}

  static constexpr std::uint32_t kInvalid = 0xffffffffU;
  std::uint32_t packed_{kInvalid};
};

struct MetricDesc {
  std::string name;
  std::string help;
  MetricId id{};
};

/// Process-wide metric catalog. Registration order is fixed (built-ins
/// first, in builtin_metrics() field order) and determines JSON field
/// order — part of the determinism contract. Registration is mutex-
/// guarded; reads take the same mutex but only happen at MetricSet
/// construction and serialization, never per sample.
class MetricRegistry {
 public:
  static MetricRegistry& global();

  MetricId counter(const std::string& name, const std::string& help);
  MetricId gauge(const std::string& name, const std::string& help);
  MetricId histogram(const std::string& name, const std::string& help);

  /// Registered metrics in registration order (copy: safe to iterate
  /// without holding the registry's lock).
  [[nodiscard]] std::vector<MetricDesc> descriptors() const;

  /// Id of a registered metric by name.
  [[nodiscard]] std::optional<MetricId> find(const std::string& name) const;

  /// Slots currently allocated per kind.
  [[nodiscard]] std::uint32_t slots(MetricKind kind) const;

 private:
  MetricRegistry() = default;
  MetricId add(MetricKind kind, const std::string& name, const std::string& help);

  mutable std::mutex mutex_;
  std::vector<MetricDesc> metrics_;
  std::array<std::uint32_t, 3> slots_{0, 0, 0};
};

/// One histogram's accumulated state.
struct HistogramData {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};  ///< valid when count > 0
  double max{0.0};  ///< valid when count > 0
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// The log2 bucket for \p value: 0 for values below 1 (and non-finite
/// inputs), else min(63, floor(log2(value)) + 1).
[[nodiscard]] std::size_t log2_bucket(double value);

/// Inclusive upper edge of bucket \p index (1, 2, 4, ... 2^63).
[[nodiscard]] double log2_bucket_upper_edge(std::size_t index);

/// One trial's metric values. NOT thread-safe: owned by exactly one trial
/// (thread) at a time; cross-trial aggregation goes through merge() on the
/// reducing thread.
class MetricSet {
 public:
  /// Sized to the global registry at construction time.
  MetricSet();

  void inc(MetricId id, std::uint64_t delta = 1);
  void add(MetricId id, double delta);
  void observe(MetricId id, double value);

  [[nodiscard]] std::uint64_t counter(MetricId id) const;
  [[nodiscard]] double gauge(MetricId id) const;
  [[nodiscard]] const HistogramData& histogram(MetricId id) const;

  /// Accumulate \p other into this set (sum counters/gauges/buckets, pool
  /// histogram moments). Deterministic given a fixed merge order.
  void merge(const MetricSet& other);

  // Restore entry points for the trial journal (recovery/trial_record.cpp):
  // a resumed trial's MetricSet is rebuilt exactly — same counters, gauges
  // and pooled histogram state — so merged study metrics stay byte-identical
  // with an uninterrupted run. Not for instrumentation sites.
  void set_counter(MetricId id, std::uint64_t value);
  void set_gauge(MetricId id, double value);
  void restore_histogram(MetricId id, const HistogramData& data);

  /// Deterministic JSON rendering (registry registration order; all
  /// registered metrics appear, including zeros, so the shape is stable).
  [[nodiscard]] std::string to_json() const;

  /// to_json() to \p path (trailing newline); throws CheckError on I/O
  /// failure.
  void write_json(const std::string& path) const;

  /// Non-zero metrics as a table: metric | kind | value. Used by the
  /// StudyReport metrics section.
  [[nodiscard]] Table to_table() const;

 private:
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<HistogramData> histograms_;
};

/// Built-in metric catalog. Registered on first use, before any dynamic
/// registrations, in this exact field order. docs/OBSERVABILITY.md is the
/// human-readable version — keep them in sync.
struct BuiltinMetrics {
  // Executor-level counters.
  MetricId trials_run;         ///< trials executed (incl. infeasible)
  MetricId trials_infeasible;  ///< plans rejected without simulating
  MetricId sim_events;         ///< simulation events across all trials
  // Runtime counters.
  MetricId app_runs_completed;
  MetricId app_runs_aborted;  ///< wall-time cap or external abort
  MetricId failures_seen;
  MetricId failures_masked;
  MetricId rollbacks;
  MetricId restarts;    ///< restart phases entered
  MetricId recoveries;  ///< parallel-recovery phases entered
  MetricId checkpoints_completed;
  MetricId pfs_phases;  ///< phases routed through the shared PFS channel
  // Workload-engine counters.
  MetricId jobs_submitted;
  MetricId jobs_completed;
  MetricId jobs_dropped;
  // Gauges (simulated hours / node-hours; summed across trials).
  MetricId work_hours;
  MetricId checkpoint_hours;
  MetricId restart_hours;
  MetricId recovery_hours;
  MetricId rework_hours;
  MetricId wall_hours;
  MetricId node_hours;
  // Histograms.
  MetricId checkpoint_cost_seconds;
  MetricId rollback_rework_minutes;
  MetricId failure_severity;
  MetricId trial_events;
  MetricId trial_wall_hours;
  MetricId checkpoint_level;
};

[[nodiscard]] const BuiltinMetrics& builtin_metrics();

}  // namespace xres::obs
