file(REMOVE_RECURSE
  "libxres_failure.a"
)
