#pragma once

/// \file rng.hpp
/// Deterministic random number generation for simulation studies.
///
/// We implement PCG32 (O'Neill, "PCG: A Family of Simple Fast
/// Space-Efficient Statistically Good Algorithms for Random Number
/// Generation") from scratch rather than using std::mt19937 so that:
///  * every stream is cheap to construct (two u64s of state),
///  * independent streams can be derived by key, enabling any single trial
///    of any figure to be regenerated in isolation (see DESIGN.md §6),
///  * results are reproducible across standard libraries (std distributions
///    are not specified bit-for-bit; ours are).

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace xres {

/// Mixes an arbitrary sequence of 64-bit keys into a single seed
/// (splitmix64-based). Used to derive independent per-trial RNG streams from
/// (root_seed, configuration index, trial index, ...).
[[nodiscard]] std::uint64_t hash_seed(std::span<const std::uint64_t> keys);

/// Convenience overload for a short fixed list of keys.
template <typename... Keys>
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, Keys... keys) {
  const std::uint64_t arr[] = {root, static_cast<std::uint64_t>(keys)...};
  return hash_seed(std::span<const std::uint64_t>{arr});
}

/// PCG32: 64-bit LCG state with xorshift-rotate output. Period 2^64 per
/// stream; the stream selector picks one of 2^63 distinct sequences.
class Pcg32 {
 public:
  /// Seeds the generator. Different (seed, stream) pairs give statistically
  /// independent sequences.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32 random bits.
  std::uint32_t next_u32();

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability \p p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed duration with the given event rate.
  /// Returns Duration::infinity() for a zero rate.
  Duration exponential(Rate rate);

  /// Weibull-distributed duration with shape k and scale lambda. Shape 1
  /// reduces to exponential with mean = scale.
  Duration weibull(double shape, Duration scale);

  /// Standard normal variate (Box–Muller; one value per call, the pair's
  /// second value is cached).
  double normal();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

/// Samples indices 0..n-1 from a fixed discrete probability distribution in
/// O(1) per draw using Walker's alias method. Weights need not be
/// normalized; they must be non-negative with a positive sum.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::span<const double> weights);

  /// Number of categories.
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Normalized probability of category \p i.
  [[nodiscard]] double probability(std::size_t i) const;

  /// Draw a category index.
  [[nodiscard]] std::size_t sample(Pcg32& rng) const;

 private:
  std::vector<double> prob_;        // normalized probabilities (for queries)
  std::vector<double> threshold_;   // alias-table acceptance thresholds
  std::vector<std::size_t> alias_;  // alias-table fallback categories
};

}  // namespace xres
