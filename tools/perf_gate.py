#!/usr/bin/env python3
"""CI perf gate: diff a BENCH_engine.json run against the committed baseline.

Usage:
    tools/perf_gate.py BENCH_engine.json [--baseline bench/BENCH_engine.baseline.json]
                       [--threshold 0.15]

Compares cpu_s_per_iter per benchmark and fails (exit 1) when any benchmark
regresses by more than the threshold (default 15%, chosen to sit above
shared-runner noise — see docs/PERFORMANCE.md for the gate policy and the
baseline update procedure). Benchmarks present in the baseline but missing
from the run also fail; new benchmarks are reported but pass (commit a
refreshed baseline to start tracking them).

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_rows(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "xres-bench-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    rows: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        if row.get("error"):
            raise SystemExit(f"{path}: benchmark {row.get('name')!r} recorded an error")
        name = row["name"]
        cpu = row.get("cpu_s_per_iter", 0.0)
        if cpu <= 0.0:
            raise SystemExit(f"{path}: benchmark {name!r} has no positive cpu_s_per_iter")
        # With --benchmark_repetitions the summary holds one row per
        # repetition under the same name; keep the fastest. Wall-clock noise
        # is one-sided (co-runners only slow you down), so min-of-N is the
        # stable estimator on a shared machine.
        rows[name] = min(cpu, rows.get(name, cpu))
    if not rows:
        raise SystemExit(f"{path}: no benchmarks recorded")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run", help="BENCH_engine.json produced by bench/perf_engine")
    parser.add_argument(
        "--baseline",
        default="bench/BENCH_engine.baseline.json",
        help="committed baseline summary (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated slowdown fraction, e.g. 0.15 = 15%% (default: %(default)s)",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    run = load_rows(args.run)

    failures: list[str] = []
    width = max(len(name) for name in baseline.keys() | run.keys())
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'run':>12}  {'delta':>8}")
    for name in sorted(baseline):
        base_cpu = baseline[name]
        if name not in run:
            print(f"{name:<{width}}  {base_cpu:>12.3e}  {'MISSING':>12}  {'':>8}")
            failures.append(f"{name}: present in baseline but missing from run")
            continue
        cpu = run[name]
        delta = cpu / base_cpu - 1.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            failures.append(
                f"{name}: {cpu:.3e}s vs baseline {base_cpu:.3e}s "
                f"(+{delta:.1%} > {args.threshold:.0%})"
            )
        print(f"{name:<{width}}  {base_cpu:>12.3e}  {cpu:>12.3e}  {delta:>+7.1%}{marker}")
    for name in sorted(run.keys() - baseline.keys()):
        print(f"{name:<{width}}  {'(new)':>12}  {run[name]:>12.3e}  {'':>8}")

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
