#include <algorithm>

#include "rm/scheduler.hpp"

namespace xres {

void TopoPackScheduler::map(const std::vector<const Job*>& pending,
                            SchedulerContext& ctx, Pcg32& /*rng*/) {
  // Largest applications first: they need the big aligned regions, and
  // placing them before smaller jobs fragment the machine keeps their
  // spanned-switch count (and hence their fat-tree injection cap) minimal.
  std::vector<const Job*> order = pending;
  std::stable_sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    return a->spec.nodes > b->spec.nodes;
  });
  for (const Job* job : order) {
    ctx.try_start(*job);
  }
}

}  // namespace xres
