#pragma once

/// \file cli.hpp
/// Tiny command-line option parser for the bench harnesses and examples.
/// Supports `--key value`, `--key=value` and boolean flags `--flag`, plus
/// self-documenting `--help` output. Unknown options are an error so typos
/// in sweep parameters cannot silently run the wrong experiment.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xres {

/// Declarative option set + parsed values.
class CliParser {
 public:
  /// \p program_summary is printed at the top of --help.
  explicit CliParser(std::string program_summary);

  /// Declare options before parse(). \p key includes the dashes ("--trials").
  void add_flag(const std::string& key, const std::string& help);
  void add_option(const std::string& key, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Returns false if --help was requested (help text already
  /// printed to stdout); throws CheckError on unknown/malformed options.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// parse() for driver main()s: unknown options, missing values and other
  /// usage errors print one clear line to stderr (plus a --help hint) and
  /// exit with kExitUsage instead of throwing. Returns false if --help was
  /// requested.
  [[nodiscard]] bool parse_or_exit(int argc, const char* const* argv);

  /// Report a post-parse usage error (an invalid value or flag combination)
  /// the same way parse_or_exit reports parse errors: one line to stderr,
  /// then exit(kExitUsage).
  [[noreturn]] static void usage_error(const std::string& message);

  /// Exit code for CLI usage errors (distinct from 1 = runtime error and
  /// recovery::kExitInterrupted = 75).
  static constexpr int kExitUsage = 2;

  /// True when \p key was declared via add_flag/add_option (lets shared
  /// option readers cope with harnesses that register a subset).
  [[nodiscard]] bool has_option(const std::string& key) const;

  [[nodiscard]] bool flag(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key) const;
  [[nodiscard]] std::int64_t integer(const std::string& key) const;
  [[nodiscard]] double real(const std::string& key) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string key;
    std::string help;
    std::string value;
    bool is_flag{false};
    bool flag_set{false};
  };

  Option* find(const std::string& key);
  const Option& get(const std::string& key) const;

  std::string summary_;
  std::vector<Option> options_;
};

/// Registers the standard `--threads` option ("auto" default) on \p cli.
void add_threads_option(CliParser& cli);

/// Reads `--threads` back after parse(): "auto" maps to 0 (all hardware
/// threads, TrialExecutor's convention); otherwise the value must be a
/// positive integer. Anything else — including an explicit `--threads 0`,
/// which used to alias "auto" — exits via CliParser::usage_error.
[[nodiscard]] unsigned parse_threads_option(const CliParser& cli);

}  // namespace xres
