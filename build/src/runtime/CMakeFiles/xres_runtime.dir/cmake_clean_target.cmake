file(REMOVE_RECURSE
  "libxres_runtime.a"
)
