#pragma once

/// \file platform_params.hpp
/// The shared `--platform.*` parameter surface (docs/PLATFORM.md).
///
/// StudyRegistry::add injects these parameters into every study's schema,
/// so `--platform.model fattree` (or `set platform.model fattree` in a
/// spec file, or `--set platform.model=fattree` in a sweep) works
/// uniformly. Studies that build a MachineSpec call
/// `apply_platform_params` before using it.
///
/// Materialization is where validation happens: schema-level min/max
/// checks cannot see cross-field topology constraints, and historically
/// spec-file/`--set` overrides could bypass `MachineSpec::validate()`
/// entirely. `materialize_platform` therefore re-validates the fully
/// overridden machine and throws CheckError naming the offending key;
/// `apply_platform_params` converts that to the standard usage-error exit
/// (code 2) per the ParamSchema diagnostic contract.

#include "platform/spec.hpp"
#include "study/registry.hpp"

namespace xres::study {

/// Parameter keys injected into every study schema.
inline constexpr const char* kPlatformModelKey = "platform.model";
inline constexpr const char* kPlatformRadixKey = "platform.fattree.radix";
inline constexpr const char* kPlatformTaperKey = "platform.fattree.taper";
inline constexpr const char* kPlatformPfsChannelsKey = "platform.pfs.channels";

/// Adds the platform parameters to \p schema unless already present
/// (idempotent: studies may pre-declare one to change its default).
void add_platform_params(ParamSchema& schema);

/// Applies the platform parameters from \p params onto \p machine and
/// validates the result. Throws CheckError (message names the offending
/// key) on a bad value or an inconsistent machine.
void materialize_platform(MachineSpec& machine, const ParamSet& params);

/// `materialize_platform`, reporting failure as a CLI usage error
/// (exit code 2) — the form study run functions call.
void apply_platform_params(MachineSpec& machine, const ParamSet& params);

}  // namespace xres::study
