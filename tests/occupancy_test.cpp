// Tests for the occupancy log and its integration with the workload
// engine.

#include <gtest/gtest.h>

#include "core/occupancy.hpp"
#include "core/workload_engine.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TimePoint at_h(double hours) { return TimePoint::at(Duration::hours(hours)); }

TEST(OccupancyLog, RecordsAndClosesSpans) {
  OccupancyLog log;
  log.record_start(JobId{1}, NodeRange{0, 100}, at_h(0.0));
  log.record_start(JobId{2}, NodeRange{100, 50}, at_h(1.0));
  EXPECT_TRUE(log.has_open_spans());
  log.record_end(JobId{1}, at_h(3.0), /*completed=*/true);
  log.record_end(JobId{2}, at_h(2.0), /*completed=*/false);
  EXPECT_FALSE(log.has_open_spans());

  ASSERT_EQ(log.spans().size(), 2U);
  EXPECT_EQ(log.spans()[0].id, JobId{1});  // sorted by start
  EXPECT_TRUE(log.spans()[0].completed);
  EXPECT_FALSE(log.spans()[1].completed);
  EXPECT_DOUBLE_EQ(log.spans()[0].length().to_hours(), 3.0);
  // 100 nodes x 3 h + 50 nodes x 1 h.
  EXPECT_DOUBLE_EQ(log.busy_node_seconds(), (300.0 + 50.0) * 3600.0);
}

TEST(OccupancyLog, RejectsBadUsage) {
  OccupancyLog log;
  log.record_start(JobId{1}, NodeRange{0, 10}, at_h(1.0));
  EXPECT_THROW(log.record_start(JobId{1}, NodeRange{10, 10}, at_h(2.0)), CheckError);
  EXPECT_THROW(log.record_end(JobId{2}, at_h(2.0), true), CheckError);
  EXPECT_THROW(log.record_end(JobId{1}, at_h(0.5), true), CheckError);
  EXPECT_THROW(log.record_start(JobId{3}, NodeRange{0, 0}, at_h(1.0)), CheckError);
}

TEST(OccupancyLog, RenderShowsLoadGradient) {
  OccupancyLog log;
  // Full machine for the first half of the window, empty after.
  log.record_start(JobId{1}, NodeRange{0, 100}, at_h(0.0));
  log.record_end(JobId{1}, at_h(5.0), true);
  const std::string chart = log.render(100, at_h(10.0), /*width=*/10, /*rows=*/2);
  // First half columns are solid '#', second half blank.
  const std::size_t first_row = chart.find('\n');
  const std::string row = chart.substr(0, first_row);
  EXPECT_EQ(row, "|#####     |");
}

TEST(OccupancyLog, EmptyRenderIsBlank) {
  OccupancyLog log;
  const std::string chart = log.render(10, at_h(1.0), 8, 2);
  EXPECT_NE(chart.find("|        |"), std::string::npos);
}

TEST(OccupancyLog, EngineRecordsWhenEnabled) {
  ArrivalPattern pattern;
  Job job;
  job.id = JobId{1};
  job.spec = AppSpec::from_baseline(app_type_by_name("A32"), 100, Duration::hours(3.0));
  job.arrival = TimePoint::origin();
  job.deadline = at_h(100.0);
  pattern.jobs.push_back(job);

  WorkloadEngineConfig config;
  config.machine = MachineSpec::testbed(1000);
  config.policy = TechniquePolicy::ideal_baseline();
  config.record_occupancy = true;
  const WorkloadRunResult result = run_workload(config, pattern);
  ASSERT_EQ(result.occupancy.spans().size(), 1U);
  const JobSpan& span = result.occupancy.spans()[0];
  EXPECT_EQ(span.nodes.count, 100U);
  EXPECT_TRUE(span.completed);
  EXPECT_DOUBLE_EQ(span.length().to_hours(), 3.0);
  EXPECT_FALSE(result.occupancy.has_open_spans());

  // The occupancy integral must agree with the engine's utilization.
  const double machine_seconds =
      static_cast<double>(config.machine.node_count) * result.makespan.to_seconds();
  EXPECT_NEAR(result.occupancy.busy_node_seconds() / machine_seconds,
              result.mean_utilization, 1e-9);

  // Disabled by default.
  WorkloadEngineConfig quiet = config;
  quiet.record_occupancy = false;
  EXPECT_TRUE(run_workload(quiet, pattern).occupancy.spans().empty());
}

}  // namespace
}  // namespace xres
