#pragma once

/// \file swf.hpp
/// Import real cluster job logs in the Standard Workload Format (SWF,
/// Feitelson's Parallel Workloads Archive) as arrival patterns.
///
/// The paper evaluates synthetic arrival patterns; replaying a real log is
/// the natural validation extension. SWF records are whitespace-separated
/// lines of 18 fields (';' starts a comment); we consume the fields the
/// engine needs — submit time, run time, processor count — and synthesize
/// the paper-specific attributes (Table-I type, Eq.-1 deadline) from a
/// seeded stream. Unknown values are -1 per the SWF convention.

#include <cstdint>
#include <string>

#include "apps/workload.hpp"

namespace xres {

struct SwfImportConfig {
  /// Multiply the SWF processor count to get simulated nodes (logs often
  /// count cores; e.g. use 1/1028 to map cores onto exascale nodes).
  double node_scale{1.0};
  /// Clamp node requests to the machine size.
  std::uint32_t machine_nodes{120000};
  /// Import at most this many valid jobs (0 = all).
  std::uint32_t max_jobs{0};
  /// Seed for drawing each job's Table-I type and Eq.-1 deadline factor.
  std::uint64_t seed{1};
  /// Restrict drawn types (same semantics as workload generation).
  WorkloadBias bias{WorkloadBias::kUnbiased};
};

struct SwfImportStats {
  std::uint32_t lines_total{0};
  std::uint32_t comments{0};
  std::uint32_t imported{0};
  std::uint32_t skipped_invalid{0};  ///< non-positive run time or processors
};

/// Parse SWF text. Throws CheckError on malformed (non-comment,
/// non-empty) lines that do not contain the mandatory numeric fields.
[[nodiscard]] ArrivalPattern import_swf(const std::string& swf_text,
                                        const SwfImportConfig& config,
                                        SwfImportStats* stats = nullptr);

/// Read and parse an SWF file from disk.
[[nodiscard]] ArrivalPattern load_swf(const std::string& path,
                                      const SwfImportConfig& config,
                                      SwfImportStats* stats = nullptr);

}  // namespace xres
