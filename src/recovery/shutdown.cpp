#include "recovery/shutdown.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace xres::recovery {

namespace {

// The flag must be safe against BOTH reentrancy (the handler may interrupt
// any thread at any point) and cross-thread visibility (worker threads poll
// it between trials). A lock-free atomic satisfies both — atomics are
// async-signal-safe exactly when lock-free, where volatile sig_atomic_t
// alone would be a data race against the pollers.
std::atomic<int> g_shutdown_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "shutdown flag must be async-signal-safe");

extern "C" void on_shutdown_signal(int sig) {
  const int exit_code = note_shutdown_signal(sig);
  if (exit_code != 0) {
    // _Exit is async-signal-safe; the escalation code matches shell
    // convention for fatal signals.
    std::_Exit(exit_code);
  }
}

}  // namespace

int note_shutdown_signal(int sig) {
  if (g_shutdown_signal.exchange(sig, std::memory_order_relaxed) != 0) {
    // Repeat signal: the user is done waiting for the drain. Every signal
    // of a storm after the first escalates — there is no state in which a
    // third or tenth signal is quietly absorbed.
    return 128 + sig;
  }
  return 0;
}

void install_shutdown_handlers() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool shutdown_requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() { return g_shutdown_signal.load(std::memory_order_relaxed); }

void request_shutdown_for_tests() {
  g_shutdown_signal.store(SIGINT, std::memory_order_relaxed);
}

void clear_shutdown_for_tests() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace xres::recovery
