// Reproduces paper Table II: the resilience-technique modeling parameters,
// with the concrete values this reproduction resolves them to.

#include <cstdio>

#include "platform/spec.hpp"
#include "resilience/config.hpp"
#include "study/registry.hpp"
#include "util/table.hpp"

namespace {
using namespace xres;

int run(study::StudyContext&) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;

  std::printf("Table II: resilience technique parameters\n\n");
  Table table{{"parameter", "use in modeling", "value in this reproduction"}};
  table.add_row({"T_S", "application length (time steps)",
                 "360-2880 steps of 1 min (6 h - 2 d)"});
  table.add_row({"T_C", "portion of each time step spent on communication",
                 "0 / 0.25 / 0.5 / 0.75 (Table I)"});
  table.add_row({"T_W", "portion of each time step spent on computation",
                 "1 - T_C"});
  table.add_row({"N_m", "memory used by the application (per node)", "32 or 64 GB"});
  table.add_row({"N_a", "number of system nodes used by the application",
                 "1% - 100% of 120,000"});
  table.add_row({"L", "network latency", to_string(machine.network.latency)});
  table.add_row({"B_N", "communication bandwidth",
                 fmt_double(machine.network.bandwidth.to_gigabytes_per_second(), 0) +
                     " GB/s"});
  table.add_row({"B_M", "memory bandwidth",
                 fmt_double(machine.node.memory_bandwidth.to_gigabytes_per_second(), 0) +
                     " GB/s"});
  table.add_row({"N_S", "number of network switch connections",
                 std::to_string(machine.network.switch_connections)});
  table.add_row({"lambda_a", "application failure rate", "N_a / M_n (Eq. 2 per app)"});
  table.add_row({"M_n", "system component MTBF",
                 to_string(config.node_mtbf) + " (2.5 y in Fig. 3)"});
  table.add_row({"tau", "optimal checkpoint period",
                 "Eq. 4 (Daly); multilevel/redundancy via numeric optimizer"});
  table.add_row({"T_C_PFS", "time required to checkpoint to a PFS", "Eq. 3"});
  table.add_row({"T_C_L1", "time required for a level one checkpoint", "Eq. 5"});
  table.add_row({"T_C_L2", "time required for a level two checkpoint", "Eq. 6"});
  table.add_row({"mu", "message logging slowdown",
                 "1 + T_C x " + fmt_double(config.comm_slowdown_per_tc, 2) + " (Eq. 7)"});
  table.add_row({"r", "degree of redundancy",
                 fmt_double(config.partial_redundancy, 1) + " (partial) / " +
                     fmt_double(config.full_redundancy, 1) + " (full)"});
  std::printf("%s", table.to_text().c_str());

  std::printf("\nSeverity PMF (BlueGene/L-informed, see DESIGN.md): ");
  for (double w : config.severity_weights) std::printf("%.2f ", w);
  std::printf("\nParallel-recovery parallelism P = %.0f\n", config.recovery_parallelism);
  return 0;
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "table2_parameters";
  def.group = study::StudyGroup::kTable;
  def.description =
      "paper Table II: resilience-technique modeling parameters and resolved values";
  def.summary = "table2_parameters — paper Table II: modeling parameters with the "
                "values this reproduction resolves them to.";
  def.options.seed = false;
  def.options.threads = false;
  def.options.obs = study::StudyOptionsSpec::Obs::kNone;
  def.options.recovery = false;
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
