#pragma once

/// \file transfer_service.hpp
/// How the runtime executes checkpoint/restart data movement.
///
/// The base plan gives every checkpoint level a fixed nominal duration
/// (Eqs. 3, 5, 6). By default those durations are taken literally
/// (FixedTransferService). When the workload engine models PFS contention,
/// PFS-backed phases are routed through a SharedChannelTransferService
/// instead: the nominal duration is converted back into bytes at the
/// per-stream cap and pushed through a processor-sharing SharedChannel,
/// so concurrent checkpoints from different applications slow each other
/// down.

#include <cstdint>

#include "sim/pfs_device.hpp"
#include "sim/shared_channel.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace xres {

/// Everything the platform model knows about one checkpoint transfer.
/// `nominal` is always set (the plan's closed-form duration); `bytes` and
/// `rate_cap` are set when the plan was built by a topology-aware model
/// (resilience/plan.hpp) so a queued device can serve actual data at the
/// application's injection bandwidth.
struct TransferRequest {
  Duration nominal{Duration::zero()};
  DataSize bytes{DataSize::zero()};
  Bandwidth rate_cap{Bandwidth::bytes_per_second(0.0)};

  [[nodiscard]] bool has_topology_info() const {
    return bytes > DataSize::zero() && rate_cap > Bandwidth::bytes_per_second(0.0);
  }
};

class TransferService {
 public:
  using TransferHandle = std::uint64_t;
  using CompletionCallback = EventCallback;

  virtual ~TransferService() = default;

  /// Start a transfer whose uncontended duration is \p nominal; the
  /// callback fires when it completes (possibly later under load).
  virtual TransferHandle begin(Duration nominal, CompletionCallback on_complete) = 0;

  /// Start a transfer described by \p request. The default implementation
  /// ignores topology info and delegates to the nominal-duration overload;
  /// topology-aware services (PfsDeviceTransferService) serve the actual
  /// bytes at the request's rate cap instead.
  virtual TransferHandle begin(const TransferRequest& request,
                               CompletionCallback on_complete) {
    return begin(request.nominal, std::move(on_complete));
  }

  /// Abort an in-flight transfer (no-op if already complete).
  virtual void cancel(TransferHandle handle) = 0;
};

/// Takes nominal durations literally (no cross-application contention).
class FixedTransferService final : public TransferService {
 public:
  explicit FixedTransferService(Simulation& sim) : sim_{sim} {}

  TransferHandle begin(Duration nominal, CompletionCallback on_complete) override;
  void cancel(TransferHandle handle) override;

 private:
  Simulation& sim_;
};

/// Routes transfers through a processor-sharing SharedChannel.
class SharedChannelTransferService final : public TransferService {
 public:
  /// \p channel must outlive the service. Nominal durations are converted
  /// to bytes at the channel's uncontended (per-stream-cap) rate so a lone
  /// transfer takes exactly its nominal time.
  SharedChannelTransferService(SharedChannel& channel, Bandwidth per_stream_cap);

  TransferHandle begin(Duration nominal, CompletionCallback on_complete) override;
  void cancel(TransferHandle handle) override;

 private:
  SharedChannel& channel_;
  double per_stream_cap_bps_;
};

/// Routes transfers through a queued PfsDevice (sim/pfs_device.hpp): FIFO
/// admission to N_S service channels, fair-shared aggregate bandwidth,
/// per-transfer rate caps from the interconnect model. Requests without
/// topology info (bytes/rate_cap unset) fall back to converting the
/// nominal duration to bytes at the device's aggregate rate.
class PfsDeviceTransferService final : public TransferService {
 public:
  /// \p device must outlive the service. \p aggregate is the device's
  /// total service bandwidth (channels × channel bandwidth), used both as
  /// the fallback byte conversion rate and the fallback rate cap.
  PfsDeviceTransferService(PfsDevice& device, Bandwidth aggregate);

  TransferHandle begin(Duration nominal, CompletionCallback on_complete) override;
  TransferHandle begin(const TransferRequest& request,
                       CompletionCallback on_complete) override;
  void cancel(TransferHandle handle) override;

 private:
  PfsDevice& device_;
  double aggregate_bps_;
};

}  // namespace xres
