#pragma once

/// \file occupancy.hpp
/// Machine-occupancy recording for workload runs: which node range each
/// job held and when. Powers an ASCII node×time occupancy chart (a
/// Gantt-style view of the oversubscribed machine) and gives tests an
/// independent way to audit the engine's allocation behavior.

#include <cstdint>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "platform/allocator.hpp"
#include "util/units.hpp"

namespace xres {

/// One job's tenancy on the machine.
struct JobSpan {
  JobId id{};
  NodeRange nodes{};
  TimePoint start{};
  TimePoint end{};
  bool completed{false};  ///< false: aborted/dropped mid-run

  [[nodiscard]] Duration length() const { return end - start; }
};

class OccupancyLog {
 public:
  /// Record a job starting on \p nodes now.
  void record_start(JobId id, NodeRange nodes, TimePoint start);

  /// Record the departure of a previously started job.
  void record_end(JobId id, TimePoint end, bool completed);

  /// Closed spans (jobs that have departed), in start order.
  [[nodiscard]] const std::vector<JobSpan>& spans() const { return spans_; }

  /// True if some job is recorded as still running.
  [[nodiscard]] bool has_open_spans() const { return !open_.empty(); }

  /// Node-seconds integral over all closed spans.
  [[nodiscard]] double busy_node_seconds() const;

  /// Render an ASCII node×time occupancy chart: rows are node bands,
  /// columns are time buckets across [origin, horizon]; glyph density
  /// encodes the band's occupied fraction in that bucket.
  [[nodiscard]] std::string render(std::uint32_t machine_nodes, TimePoint horizon,
                                   std::size_t width = 72, std::size_t rows = 16) const;

 private:
  struct Open {
    JobId id{};
    NodeRange nodes{};
    TimePoint start{};
  };
  std::vector<JobSpan> spans_;
  std::vector<Open> open_;
};

}  // namespace xres
