#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# rebuild the library + tests under ThreadSanitizer and run the executor
# tests (the only concurrent code path) under it.
#
#   tools/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# TSAN pass: library + tests only (benches/examples just re-link the same
# library code and would double the build time for no extra coverage).
cmake -B "$TSAN_BUILD" -S . -DXRES_TSAN=ON \
  -DXRES_BUILD_BENCH=OFF -DXRES_BUILD_EXAMPLES=OFF -DXRES_BUILD_TOOLS=OFF
cmake --build "$TSAN_BUILD" -j "$(nproc)"
ctest --test-dir "$TSAN_BUILD" --output-on-failure -R "TrialExecutor|Integration"

echo "tier-1 OK"
