// Tests for the sim-time Chrome trace writer: event construction, document
// structure, and a golden-file check that pins the exact serialized trace
// of one deterministic trial (regenerate with XRES_REGEN_GOLDEN=1 after an
// intentional format change).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/app_type.hpp"
#include "core/executor.hpp"
#include "obs/trace.hpp"
#include "obs/trial_obs.hpp"

namespace xres {
namespace {

TEST(ObsTraceBuffer, RecordsSpansAndInstants) {
  obs::TraceBuffer buffer;
  buffer.span("work", "phase", TimePoint::at(Duration::seconds(1.0)),
              Duration::seconds(2.5));
  buffer.instant("failure", "failure", TimePoint::at(Duration::seconds(2.0)),
                 {obs::trace_arg("severity", 1)});
  ASSERT_EQ(buffer.size(), 2U);
  EXPECT_EQ(buffer.events()[0].ph, 'X');
  EXPECT_EQ(buffer.events()[0].ts_us, 1000000);
  EXPECT_EQ(buffer.events()[0].dur_us, 2500000);
  EXPECT_EQ(buffer.events()[1].ph, 'i');
  EXPECT_EQ(buffer.events()[1].ts_us, 2000000);
  ASSERT_EQ(buffer.events()[1].args.size(), 1U);
  EXPECT_EQ(buffer.events()[1].args[0].key, "severity");
}

TEST(ObsTraceLog, ChromeDocumentStructure) {
  obs::TraceBuffer buffer;
  buffer.span("work", "phase", TimePoint::at(Duration::seconds(0.0)),
              Duration::seconds(1.0));
  obs::TraceLog log;
  log.add_track("track \"one\"", std::move(buffer));

  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Metadata: a process name plus one thread_name record per track, with
  // the track name escaped.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("track \\\"one\\\""), std::string::npos);
  // The span itself: complete event on pid 0 / tid 1.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);

  // Naive structural validity: braces and brackets balance and the
  // document is a single object.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// One small deterministic trial, serialized: any change to the trace format
// or to the runtime's span emission shows up as a diff against the golden.
TEST(ObsTraceGolden, TinyTrialTraceIsStable) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("A32"), 1200, 1440};
  config.technique = TechniqueKind::kCheckpointRestart;

  obs::TrialObs obs;
  obs.enable_trace();
  const ExecutionResult result = run_trial(config, 7, &obs);
  EXPECT_TRUE(result.completed);
  ASSERT_NE(obs.trace(), nullptr);
  EXPECT_FALSE(obs.trace()->empty());

  obs::TraceLog log;
  log.add_track("A32 @ 1200 nodes", std::move(*obs.trace()));
  const std::string json = log.to_json();

  const std::string golden_path =
      std::string{XRES_TEST_DATA_DIR} + "/tiny_trial_trace.json";
  if (std::getenv("XRES_REGEN_GOLDEN") != nullptr) {
    std::ofstream out{golden_path, std::ios::binary};
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << json;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in{golden_path, std::ios::binary};
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with XRES_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(json, want.str())
      << "trace format drifted; regenerate the golden with "
         "XRES_REGEN_GOLDEN=1 if the change is intentional";
}

}  // namespace
}  // namespace xres
