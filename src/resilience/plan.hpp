#pragma once

/// \file plan.hpp
/// ExecutionPlan: the technique-agnostic contract between the resilience
/// planners (Section IV models) and the ResilientAppRuntime state machine.
///
/// A plan says *what* an application's resilient execution looks like —
/// how much stretched work must be done, how often checkpoints of which
/// level are taken and what they cost, what a failure of each severity
/// rolls back, and how recovery is parallelized — without prescribing the
/// event mechanics, which live in runtime/.

#include <cstdint>
#include <vector>

#include "apps/application.hpp"
#include "failure/severity.hpp"
#include "resilience/technique.hpp"
#include "util/units.hpp"

namespace xres {

/// One checkpoint level available to the technique, cheapest/least durable
/// first.
struct CheckpointLevelSpec {
  Duration save_cost{};     ///< blocking time to take a checkpoint
  Duration restore_cost{};  ///< blocking time to restart from it (symmetric in the paper)
  SeverityLevel coverage{1};  ///< highest failure severity it can recover from
  /// True when the level moves data through the machine-wide parallel file
  /// system: under a contention-modeling engine these transfers share PFS
  /// bandwidth with other applications (RAM/partner levels never do).
  bool uses_shared_pfs{false};
  /// Topology-aware transfer description (platform/platform_model.hpp),
  /// filled by the planner for PFS-backed levels: total checkpoint bytes
  /// across the application and the aggregate rate the interconnect grants
  /// it. Zero under the flat model — the nominal costs above are taken
  /// literally (byte-identical legacy behavior).
  DataSize pfs_bytes{DataSize::zero()};
  Bandwidth pfs_rate_cap{Bandwidth::bytes_per_second(0.0)};
};

struct ExecutionPlan {
  TechniqueKind kind{TechniqueKind::kNone};
  AppSpec app{};

  /// Nodes the technique physically occupies (⌈r · N_a⌉ for redundancy).
  std::uint32_t physical_nodes{1};

  /// Unstretched baseline T_B (the efficiency numerator, Figures 1–3).
  Duration baseline{};

  /// Stretched execution requirement: µ·T_B for parallel recovery (Eq. 7),
  /// T_S(T_W + r·T_C) for redundancy (Eq. 8), T_B otherwise.
  Duration work_target{};

  /// Work time between consecutive checkpoints (the τ of Eq. 4, or the
  /// multilevel quantum w). Infinity means "never checkpoint" (kNone).
  Duration checkpoint_quantum{Duration::infinity()};

  /// Checkpoint levels, cheapest first. Empty for kNone.
  std::vector<CheckpointLevelSpec> levels;

  /// Hierarchical schedule: nesting[i] = number of level-(i+1) periods per
  /// level-(i+2) period, for i in [0, levels-1); the last entry is unused
  /// and kept at 1. Example 3-level plan {4, 8}: every checkpoint is L1,
  /// every 4th is L2, every 32nd is L3.
  std::vector<int> nesting;

  /// Parallel recovery fans the failed node's rework across this many
  /// helpers; 1 for every other technique.
  double recovery_parallelism{1.0};

  /// True (CR/ML/redundancy): a non-masked failure rolls global progress
  /// back to a saved checkpoint. False (parallel recovery): progress is
  /// retained and only the failed node's work since the last checkpoint is
  /// recomputed (in parallel) while the rest of the system idles.
  bool rollback_on_failure{true};

  /// Replication degree r; 1 when the technique does not replicate.
  double replication_degree{1.0};

  /// False when the machine cannot host the technique (redundancy needing
  /// more nodes than exist): the study reports efficiency 0 without
  /// simulating.
  bool feasible{true};

  /// Extension (semi-blocking checkpointing): fraction of the normal work
  /// rate sustained *while* a checkpoint is in flight. 0 = fully blocking
  /// (every paper technique); work accrued concurrently is NOT covered by
  /// the in-flight checkpoint (its snapshot is taken at phase entry).
  double checkpoint_work_rate{0.0};

  /// Extension: re-estimate the failure rate online and re-derive the
  /// Eq.-4 interval after every completed checkpoint (Gamma-prior MLE with
  /// the planned rate as prior mean). Protects against a misspecified
  /// M_n. Only meaningful for single-level plans.
  bool adaptive_interval{false};

  /// Application failure rate λ over the plan's *physical* nodes.
  Rate failure_rate{};

  /// Abort cap: executions exceeding this wall time report efficiency 0.
  Duration max_wall_time{Duration::infinity()};

  /// Severity level of the k-th checkpoint (k counts from 1) under the
  /// nesting odometer; returns a 0-based index into `levels`.
  [[nodiscard]] std::size_t level_index_for_checkpoint(std::uint64_t k) const;

  /// The cheapest level able to recover from \p severity; throws if no
  /// level covers it (planner bug).
  [[nodiscard]] std::size_t recovery_level_for(SeverityLevel severity) const;

  void validate() const;
};

}  // namespace xres
