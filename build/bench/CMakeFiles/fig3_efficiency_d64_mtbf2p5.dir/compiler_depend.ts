# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_efficiency_d64_mtbf2p5.
