#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"
#include "util/io.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace xres {

namespace {

/// One full attempt: write + fsync + close the temp, then rename it over
/// the target. Returns false with errno set on any failure (the temp is
/// removed first, so a retry always starts from scratch and a torn temp
/// never reaches the rename).
bool write_attempt(const std::string& path, const std::string& tmp,
                   std::string_view content) {
  std::FILE* f = io::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = io::fwrite(content.data(), content.size(), f,
                                         tmp.c_str());
  const bool flushed = written == content.size() && io::fsync_stream(f, tmp.c_str());
  int err = errno;
  const bool closed = io::fclose(f, tmp.c_str()) == 0;
  if (written != content.size() || !flushed || !closed) {
    if (flushed && !closed) err = errno;
    io::remove(tmp.c_str());
    errno = err != 0 ? err : EIO;
    return false;
  }
#if defined(_WIN32)
  // rename() does not replace on Windows; remove the target first.
  io::remove(path.c_str());
#endif
  if (io::rename(tmp.c_str(), path.c_str()) != 0) {
    err = errno;
    io::remove(tmp.c_str());
    errno = err;
    return false;
  }
  return true;
}

bool write_file_atomic_impl(const std::string& path, std::string_view content) {
  XRES_CHECK(!path.empty(), "atomic write needs a non-empty path");
#if defined(_WIN32)
  const std::string tmp = path + ".tmp";
#else
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#endif
  return io::retry_io(path.c_str(),
                      [&] { return write_attempt(path, tmp, content); });
}

}  // namespace

bool flush_to_disk(std::FILE* file) {
  if (file == nullptr) return false;
  return io::fsync_stream(file, "<stream>");
}

void write_file_atomic(const std::string& path, std::string_view content) {
  if (!write_file_atomic_impl(path, content)) {
    const int err = errno;
    throw io::IoError{"cannot write " + path + ": " + std::strerror(err), err};
  }
}

bool try_write_file_atomic(const std::string& path,
                           std::string_view content) noexcept {
  try {
    return write_file_atomic_impl(path, content);
  } catch (...) {
    return false;
  }
}

}  // namespace xres
