# Empty compiler generated dependencies file for xres_cli.
# This may be replaced when dependencies are built.
