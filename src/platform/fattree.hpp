#pragma once

/// \file fattree.hpp
/// k-ary fat-tree interconnect zone over a MachineSpec (docs/PLATFORM.md).
///
/// Nodes are leaves of a k-ary tree (k = platform.fattree.leaf_radix).
/// Each node injects at most B_N onto its leaf link; a level-l subtree
/// (radix^l nodes, strictly smaller than the machine — the root's hop to
/// the PFS is the queued device itself) drains through an uplink of
/// capacity N_S · B_N · taper^(l-1), so with taper = 1 a full leaf of
/// k = N_S nodes exactly saturates its uplink and the tree is
/// non-blocking.
///
/// An application's aggregate PFS injection bandwidth is
///
///   min( N_a · B_N,  min over levels l of  spanned(l) · uplink(l) )
///
/// where spanned(l) counts the distinct level-l subtrees its nodes touch.
/// The PFS device itself serves N_S channels of B_N each (aggregate
/// B_N · N_S — Eq. 3's constant), so:
///
///  * any contiguous application with N_a ≥ N_S is PFS-bound and its
///    uncongested transfer time equals Eq. 3 *exactly* (the flat model);
///  * an application with N_a < N_S is injection-bound — slower than
///    Eq. 3 by a factor of N_S / N_a. That gap is the model's
///    measured-vs-Eq.-3 divergence, reported by the
///    ablation_pfs_contention_topology study;
///  * under taper < 1 or fragmented placement, upper-level uplinks bind
///    and placement sensitivity becomes a runnable experiment (the
///    TopoPack scheduler packs applications under common switches).

#include <cstdint>
#include <vector>

#include "platform/platform_model.hpp"
#include "platform/spec.hpp"
#include "util/units.hpp"

namespace xres {

/// Geometry of the fat-tree zone: levels, subtree sizes, uplink capacities.
class FatTreeTopology {
 public:
  FatTreeTopology(std::uint32_t node_count, const NetworkSpec& net,
                  const FatTreeParams& params);

  /// Uplink levels above the nodes (level 1 = leaf switches). The root is
  /// not a level: its hop to the PFS is the queued device's aggregate, so
  /// a machine that fits one leaf has zero levels.
  [[nodiscard]] std::uint32_t levels() const {
    return static_cast<std::uint32_t>(uplink_bps_.size());
  }

  /// Nodes under one level-l subtree (radix^l, saturating).
  [[nodiscard]] std::uint64_t subtree_size(std::uint32_t level) const;

  /// Uplink capacity of one level-l subtree: N_S · B_N · taper^(l-1).
  [[nodiscard]] Bandwidth uplink(std::uint32_t level) const;

  /// Distinct level-`level` subtrees touched by nodes [first, first+count).
  [[nodiscard]] std::uint64_t spanned_subtrees(std::uint32_t level, std::uint32_t first,
                                               std::uint32_t count) const;

  /// Aggregate injection bandwidth of nodes [first, first+count): per-node
  /// links and every uplink level considered.
  [[nodiscard]] Bandwidth injection_bandwidth(std::uint32_t first,
                                              std::uint32_t count) const;

 private:
  std::uint32_t radix_;
  double per_node_bps_;
  /// uplink_bps_[l-1] = capacity of one level-l subtree's uplink.
  std::vector<double> uplink_bps_;
};

/// Topology-aware PlatformModel: PFS costs from fat-tree injection caps and
/// the shared PFS device; RAM and partner-copy costs identical to flat
/// (they never cross the tree's upper levels).
class FatTreePlatformModel final : public PlatformModel {
 public:
  explicit FatTreePlatformModel(const MachineSpec& machine);

  [[nodiscard]] const char* name() const override { return "fattree"; }
  [[nodiscard]] Duration pfs_transfer_time(DataSize memory_per_node,
                                           std::uint32_t app_nodes) const override;
  [[nodiscard]] Bandwidth pfs_effective_bandwidth(std::uint32_t app_nodes) const override;
  [[nodiscard]] Bandwidth pfs_rate_cap_for_range(std::uint32_t first_node,
                                                 std::uint32_t count) const override;
  [[nodiscard]] Duration local_memory_time(DataSize memory_per_node) const override;
  [[nodiscard]] Duration partner_copy_time(DataSize memory_per_node) const override;
  [[nodiscard]] std::uint32_t pfs_service_channels() const override;
  [[nodiscard]] Bandwidth pfs_channel_bandwidth() const override;

  [[nodiscard]] const FatTreeTopology& topology() const { return topology_; }

 private:
  MachineSpec machine_;
  FatTreeTopology topology_;
};

}  // namespace xres
