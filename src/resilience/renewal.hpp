#pragma once

/// \file renewal.hpp
/// Exact renewal-theory expectations for single-level checkpointing under
/// exponential failures.
///
/// The first-order overhead model of interval.hpp (C/τ + λ(τ/2 + R)) is
/// what the paper's Eq. 4 optimizes, but it is an approximation: it
/// ignores failures that strike during checkpoints, restarts, and rework.
/// For exponential (memoryless) failures the exact expectation has a
/// closed form. For an attempt of length d executed under failure rate λ,
/// where every failure costs a restart of length R (itself failure-prone)
/// before retrying from the segment start, the expected time to get
/// through d successfully is
///
///   E[segment(d)] = (1/λ + E[restart]) · (e^{λ d} − 1)
///   E[restart]    = (e^{λ R} − 1) / λ        (restart retried on failure)
///
/// (first attempt pays no restart, hence the (e^{λd} − 1) factor applies
/// to the full "cycle cost" 1/λ + E[restart]). A run of total work W with
/// interval τ and checkpoint cost C is N = ⌈W/τ⌉ segments of length
/// τ + C (the last one shortened), giving an exact expected wall time and
/// efficiency. These formulas anchor property tests: the event-driven
/// simulator's mean must converge to them.

#include "util/units.hpp"

namespace xres {

/// Expected time for one failure-prone restart of nominal length
/// \p restore under rate \p lambda (retried from scratch on each failure).
[[nodiscard]] Duration expected_restart_time(Duration restore, Rate lambda);

/// Expected time to complete an atomic segment of length \p d (work +
/// checkpoint) with restart cost \p restore on every failure.
[[nodiscard]] Duration expected_segment_time(Duration d, Duration restore, Rate lambda);

/// Exact expected wall time to complete \p work of useful work with
/// checkpoints of cost \p save every \p tau of work, restore cost
/// \p restore, under exponential failures at \p lambda. The final segment
/// omits the checkpoint (matching the runtime, which completes at the
/// work target without a trailing checkpoint).
[[nodiscard]] Duration expected_completion_time_exact(Duration work, Duration tau,
                                                      Duration save, Duration restore,
                                                      Rate lambda);

/// Exact expected efficiency: work / expected_completion_time_exact.
[[nodiscard]] double expected_efficiency_exact(Duration work, Duration tau,
                                               Duration save, Duration restore,
                                               Rate lambda);

}  // namespace xres
