// Unit tests for the failure subsystem: severity PMF, inter-arrival
// distributions, both failure processes, and traces.

#include <gtest/gtest.h>

#include <vector>

#include "failure/distribution.hpp"
#include "failure/process.hpp"
#include "failure/severity.hpp"
#include "failure/trace.hpp"
#include "platform/machine.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace xres {
namespace {

TEST(SeverityModel, DefaultsNormalizeAndQuery) {
  const SeverityModel model = SeverityModel::bluegene_default();
  EXPECT_EQ(model.level_count(), 3);
  EXPECT_DOUBLE_EQ(model.probability(1), 0.55);
  EXPECT_DOUBLE_EQ(model.probability(2), 0.35);
  EXPECT_DOUBLE_EQ(model.probability(3), 0.10);
  EXPECT_DOUBLE_EQ(model.probability_at_least(1), 1.0);
  EXPECT_NEAR(model.probability_at_least(2), 0.45, 1e-12);
  EXPECT_DOUBLE_EQ(model.probability_at_least(3), 0.10);
}

TEST(SeverityModel, UnnormalizedWeightsAccepted) {
  const SeverityModel model{{11.0, 7.0, 2.0}};
  EXPECT_DOUBLE_EQ(model.probability(1), 0.55);
}

TEST(SeverityModel, RejectsZeroTopLevel) {
  EXPECT_THROW(SeverityModel({0.5, 0.5, 0.0}), CheckError);
  EXPECT_THROW(SeverityModel({}), CheckError);
  EXPECT_THROW(SeverityModel({-1.0, 2.0}), CheckError);
  EXPECT_THROW((void)SeverityModel::bluegene_default().probability(4), CheckError);
}

TEST(SeverityModel, SamplingMatchesPmf) {
  const SeverityModel model = SeverityModel::bluegene_default();
  Pcg32 rng{77};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const SeverityLevel level = model.sample(rng);
    ASSERT_GE(level, 1);
    ASSERT_LE(level, 3);
    counts[static_cast<std::size_t>(level)]++;
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.55, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.35, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.10, 0.01);
}

TEST(SeverityModel, SingleLevelAlwaysSamplesOne) {
  const SeverityModel model = SeverityModel::single_level();
  Pcg32 rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(rng), 1);
}

TEST(FailureDistribution, ExponentialIsMemorylessFlagged) {
  EXPECT_TRUE(FailureDistribution::exponential().memoryless());
  EXPECT_FALSE(FailureDistribution::weibull(0.7).memoryless());
}

TEST(FailureDistribution, MeansMatchAcrossKinds) {
  // The Weibull parameterization must preserve the target mean.
  Pcg32 rng{5};
  const Rate rate = Rate::per_hour(4.0);
  for (const FailureDistribution dist :
       {FailureDistribution::exponential(), FailureDistribution::weibull(0.7),
        FailureDistribution::weibull(2.0)}) {
    RunningStats stats;
    for (int i = 0; i < 60000; ++i) stats.add(dist.draw(rng, rate).to_minutes());
    EXPECT_NEAR(stats.mean(), 15.0, 0.6) << "shape " << dist.shape();
  }
}

TEST(FailureDistribution, ZeroRateNeverFails) {
  Pcg32 rng{5};
  EXPECT_FALSE(FailureDistribution::exponential().draw(rng, Rate::zero()).is_finite());
}

TEST(AppFailureProcess, DeliversAtExpectedRate) {
  Simulation sim;
  const SeverityModel severity = SeverityModel::bluegene_default();
  int delivered = 0;
  AppFailureProcess process{sim,
                            Rate::per_hour(1.0),
                            severity,
                            FailureDistribution::exponential(),
                            Pcg32{42},
                            [&](const Failure& f) {
                              ++delivered;
                              EXPECT_GE(f.severity, 1);
                              EXPECT_LE(f.severity, 3);
                            }};
  process.start();
  sim.run_until(TimePoint::at(Duration::hours(1000.0)));
  process.stop();
  // ~1000 expected; Poisson sd ~32.
  EXPECT_NEAR(delivered, 1000, 150);
  EXPECT_EQ(process.failures_delivered(), static_cast<std::uint64_t>(delivered));
}

TEST(AppFailureProcess, StopHaltsDelivery) {
  Simulation sim;
  const SeverityModel severity = SeverityModel::single_level();
  int delivered = 0;
  AppFailureProcess process{sim,
                            Rate::per_hour(100.0),
                            severity,
                            FailureDistribution::exponential(),
                            Pcg32{1},
                            [&](const Failure&) { ++delivered; }};
  process.start();
  sim.run_until(TimePoint::at(Duration::hours(1.0)));
  const int count_at_stop = delivered;
  EXPECT_GT(count_at_stop, 0);
  process.stop();
  sim.run_until(TimePoint::at(Duration::hours(2.0)));
  EXPECT_EQ(delivered, count_at_stop);
}

TEST(AppFailureProcess, ZeroRateProducesNoEvents) {
  Simulation sim;
  const SeverityModel severity = SeverityModel::single_level();
  AppFailureProcess process{sim,
                            Rate::zero(),
                            severity,
                            FailureDistribution::exponential(),
                            Pcg32{1},
                            [&](const Failure&) { FAIL() << "unexpected failure"; }};
  process.start();
  sim.run();
  EXPECT_EQ(process.failures_delivered(), 0U);
}

TEST(SystemFailureProcess, RateTracksUtilization) {
  Simulation sim;
  Machine machine{MachineSpec::testbed(1000)};
  const SeverityModel severity = SeverityModel::bluegene_default();
  int delivered = 0;
  SystemFailureProcess process{sim,
                               machine,
                               Duration::years(1.0),
                               severity,
                               Pcg32{9},
                               [&](const Failure&, const Machine::Victim& victim) {
                                 ++delivered;
                                 EXPECT_EQ(victim.owner, OwnerId{5});
                               }};
  // Eq. 2: with nothing busy the rate is zero.
  EXPECT_EQ(process.current_rate(), Rate::zero());
  process.start();
  sim.run_until(TimePoint::at(Duration::days(100.0)));
  EXPECT_EQ(delivered, 0);

  ASSERT_TRUE(machine.allocate(500, OwnerId{5}).has_value());
  process.notify_utilization_changed();
  EXPECT_NEAR(process.current_rate().per_second_value(),
              500.0 / Duration::years(1.0).to_seconds(), 1e-15);
  // 500 node-years per year -> ~137 failures in 100 days.
  sim.run_until(TimePoint::at(Duration::days(200.0)));
  EXPECT_NEAR(delivered, 137, 50);

  machine.release(OwnerId{5});
  process.notify_utilization_changed();
  const int before = delivered;
  sim.run_until(TimePoint::at(Duration::days(300.0)));
  EXPECT_EQ(delivered, before);
  process.stop();
}

TEST(SystemFailureProcess, VictimsDistributedAcrossOwners) {
  Simulation sim;
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(25, OwnerId{1}).has_value());
  ASSERT_TRUE(machine.allocate(75, OwnerId{2}).has_value());
  const SeverityModel severity = SeverityModel::single_level();
  int owner1 = 0;
  int total = 0;
  SystemFailureProcess process{sim,
                               machine,
                               Duration::days(10.0),
                               severity,
                               Pcg32{4},
                               [&](const Failure&, const Machine::Victim& victim) {
                                 ++total;
                                 if (victim.owner == OwnerId{1}) ++owner1;
                               }};
  process.start();
  sim.run_until(TimePoint::at(Duration::days(400.0)));
  process.stop();
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(static_cast<double>(owner1) / total, 0.25, 0.04);
}

TEST(FailureTrace, GenerateSortsAndRespectsHorizon) {
  Pcg32 rng{3};
  const SeverityModel severity = SeverityModel::bluegene_default();
  const FailureTrace trace =
      FailureTrace::generate(Rate::per_hour(10.0), Duration::days(2.0), severity,
                             FailureDistribution::exponential(), rng);
  ASSERT_FALSE(trace.empty());
  EXPECT_NEAR(static_cast<double>(trace.size()), 480.0, 150.0);
  TimePoint prev = TimePoint::origin();
  for (const Failure& f : trace.failures()) {
    EXPECT_GE(f.time, prev);
    EXPECT_LT(f.time.since_origin(), Duration::days(2.0));
    prev = f.time;
  }
  EXPECT_NEAR(trace.empirical_rate().per_hour_value(), 10.0, 2.0);
}

TEST(FailureTrace, CsvRoundTrip) {
  Pcg32 rng{8};
  const SeverityModel severity = SeverityModel::bluegene_default();
  const FailureTrace trace =
      FailureTrace::generate(Rate::per_hour(5.0), Duration::hours(20.0), severity,
                             FailureDistribution::exponential(), rng);
  const FailureTrace round = FailureTrace::from_csv(trace.to_csv());
  ASSERT_EQ(round.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(round.failures()[i].time.to_seconds(),
                trace.failures()[i].time.to_seconds(), 1e-6);
    EXPECT_EQ(round.failures()[i].severity, trace.failures()[i].severity);
  }
}

TEST(FailureTrace, RejectsMalformedCsv) {
  EXPECT_THROW(FailureTrace::from_csv(""), CheckError);
  EXPECT_THROW(FailureTrace::from_csv("wrong,header\n1,2\n"), CheckError);
  EXPECT_THROW(FailureTrace::from_csv("time_seconds,severity\nnot-a-number\n"),
               CheckError);
  EXPECT_THROW(FailureTrace::from_csv("time_seconds,severity\n1.0,0\n"), CheckError);
}

TEST(FailureTrace, UnsortedConstructionRejected) {
  std::vector<Failure> out_of_order{
      Failure{TimePoint::at(Duration::seconds(10.0)), 1},
      Failure{TimePoint::at(Duration::seconds(5.0)), 1}};
  EXPECT_THROW(FailureTrace{out_of_order}, CheckError);
}

}  // namespace
}  // namespace xres
