// Quickstart: simulate one application on the exascale machine under a
// resilience technique, and inspect the planned schedule and the outcome.
//
//   $ ./quickstart
//
// Walks through the library's three core steps:
//   1. describe the machine and the application,
//   2. plan a resilient execution (make_plan),
//   3. simulate it under failures (run_trial).

#include <cstdio>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "failure/severity.hpp"
#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"

int main() {
  using namespace xres;

  // 1. The machine (the paper's TaihuLight-extrapolated exascale system)
  //    and an application: type C64 (50% communication, 64 GB/node)
  //    occupying 10% of the machine for one day of baseline execution.
  const MachineSpec machine = MachineSpec::exascale();
  const AppSpec app =
      AppSpec::from_baseline(app_type_by_name("C64"), 12000, Duration::hours(24.0));
  std::printf("machine: %s\n", machine.describe().c_str());
  std::printf("application: %s\n\n", app.describe().c_str());

  // 2. Plan a multilevel-checkpointing execution. The planner computes the
  //    per-level checkpoint costs (Eqs. 3, 5, 6) and optimizes the
  //    hierarchical schedule.
  ResilienceConfig resilience;  // 10-year node MTBF, paper defaults
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kMultilevel, app, machine, resilience);
  std::printf("planned schedule for %s:\n", to_string(plan.kind));
  std::printf("  work quantum between checkpoints: %s\n",
              to_string(plan.checkpoint_quantum).c_str());
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    std::printf("  level %zu: save %s, restore %s, covers severity <= %d\n", i + 1,
                to_string(plan.levels[i].save_cost).c_str(),
                to_string(plan.levels[i].restore_cost).c_str(),
                plan.levels[i].coverage);
  }
  std::printf("  nesting: every %d-th checkpoint is L2, every %d-th L2 is L3\n",
              plan.nesting[0], plan.nesting[1]);
  std::printf("  application failure rate: one failure every %s\n",
              to_string(plan.failure_rate.mean_interval()).c_str());
  std::printf("  predicted efficiency: %.3f\n\n",
              predict_efficiency(plan, resilience));

  // 3. Simulate a few trials under Poisson failures.
  std::printf("simulated trials:\n");
  RunningStats efficiency;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ExecutionResult result =
        run_trial(PlanTrialSpec{plan, resilience, FailureDistribution::exponential()}, seed);
    std::printf("  seed %llu: %s\n", static_cast<unsigned long long>(seed),
                result.describe().c_str());
    efficiency.add(result.efficiency);
  }
  std::printf("\nmean efficiency over 5 trials: %.3f (predicted %.3f)\n",
              efficiency.mean(), predict_efficiency(plan, resilience));

  // 4. Record and render one execution's timeline (= work, C checkpoint,
  //    R restart, ! recovery).
  {
    Simulation sim;
    ExecutionResult result;
    ResilientAppRuntime runtime{sim, plan, /*seed=*/42,
                                [&](const ExecutionResult& r) {
                                  result = r;
                                  sim.request_stop();
                                }};
    runtime.enable_timeline();
    const SeverityModel severity{resilience.severity_weights};
    AppFailureProcess failures{sim,
                               plan.failure_rate,
                               severity,
                               FailureDistribution::exponential(),
                               Pcg32{42},
                               [&runtime](const Failure& f) { runtime.on_failure(f); }};
    failures.start();
    runtime.start();
    sim.run();
    std::printf("\ntimeline of one execution (%s wall time):\n%s\n",
                to_string(result.wall_time).c_str(),
                runtime.timeline()->render(76).c_str());
  }
  return 0;
}
