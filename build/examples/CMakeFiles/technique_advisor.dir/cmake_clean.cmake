file(REMOVE_RECURSE
  "CMakeFiles/technique_advisor.dir/technique_advisor.cpp.o"
  "CMakeFiles/technique_advisor.dir/technique_advisor.cpp.o.d"
  "technique_advisor"
  "technique_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technique_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
