#pragma once

/// \file analytic.hpp
/// Closed-form (first-order) efficiency prediction for a plan.
///
/// Used by Resilience Selection (paper Section VII): the resource manager
/// needs a fast estimate of each technique's efficiency for an arriving
/// application without simulating it. The prediction mirrors the overhead
/// models the planners optimize, so it is consistent with the chosen
/// checkpoint intervals; integration tests check it tracks simulated
/// efficiency.

#include "resilience/config.hpp"
#include "resilience/plan.hpp"

namespace xres {

/// Predicted efficiency in [0, 1]: baseline time / expected wall time.
/// Infeasible plans predict 0.
[[nodiscard]] double predict_efficiency(const ExecutionPlan& plan,
                                        const ResilienceConfig& config);

/// Predicted expected wall time (baseline / efficiency; infinite when the
/// prediction is 0).
[[nodiscard]] Duration predict_wall_time(const ExecutionPlan& plan,
                                         const ResilienceConfig& config);

}  // namespace xres
