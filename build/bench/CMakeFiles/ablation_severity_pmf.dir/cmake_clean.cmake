file(REMOVE_RECURSE
  "CMakeFiles/ablation_severity_pmf.dir/ablation_severity_pmf.cpp.o"
  "CMakeFiles/ablation_severity_pmf.dir/ablation_severity_pmf.cpp.o.d"
  "ablation_severity_pmf"
  "ablation_severity_pmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_severity_pmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
