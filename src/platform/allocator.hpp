#pragma once

/// \file allocator.hpp
/// Contiguous first-fit node allocator.
///
/// The paper assumes application nodes are contiguous ("Application nodes
/// are assumed to be contiguous allowing for minimum latency between
/// checkpoints sent between nodes", Section IV-C), so the machine hands out
/// contiguous node ranges. Free space is a sorted map of disjoint,
/// coalesced blocks; allocation is lowest-address first fit.

#include <cstdint>
#include <map>
#include <optional>

#include "util/check.hpp"

namespace xres {

/// A contiguous range of node indices [first, first + count).
struct NodeRange {
  std::uint32_t first{0};
  std::uint32_t count{0};

  [[nodiscard]] std::uint32_t end() const { return first + count; }
  [[nodiscard]] bool contains(std::uint32_t node) const {
    return node >= first && node < end();
  }
  friend bool operator==(const NodeRange&, const NodeRange&) = default;
};

class NodeAllocator {
 public:
  explicit NodeAllocator(std::uint32_t node_count);

  /// Allocate a contiguous block of \p count nodes (first fit, lowest
  /// address). Returns nullopt when no free block is large enough.
  std::optional<NodeRange> allocate(std::uint32_t count);

  /// Topology-aware variant: among feasible placements, pick one touching
  /// the fewest distinct \p group_size-aligned node groups (leaf switches
  /// of the fat tree), tie-broken by lowest address. Considered placements
  /// per free block: the block start and the first group boundary inside
  /// it — aligning to a boundary can only reduce the spanned-group count
  /// further, so this covers the optimum. group_size <= 1 degrades to
  /// plain first fit.
  std::optional<NodeRange> allocate_grouped(std::uint32_t count,
                                            std::uint32_t group_size);

  /// Return a previously allocated range. Throws CheckError if the range
  /// was not allocated (double free / overlap detection).
  void release(NodeRange range);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t free_count() const { return free_total_; }
  [[nodiscard]] std::uint32_t busy_count() const { return capacity_ - free_total_; }

  /// Size of the largest allocatable contiguous block.
  [[nodiscard]] std::uint32_t largest_free_block() const;

  /// True if \p node is currently unallocated.
  [[nodiscard]] bool is_free(std::uint32_t node) const;

  /// Verify internal invariants (blocks disjoint, sorted, coalesced, total
  /// matches). Throws CheckError on violation. Used by tests and debug runs.
  void validate() const;

 private:
  std::uint32_t capacity_;
  std::uint32_t free_total_;
  /// first-node -> block length; disjoint and fully coalesced.
  std::map<std::uint32_t, std::uint32_t> free_blocks_;
};

}  // namespace xres
