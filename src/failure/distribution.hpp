#pragma once

/// \file distribution.hpp
/// Inter-arrival time model for failures.
///
/// The paper models failure inter-arrivals as a Poisson process
/// (exponential gaps, Section III-E). Field studies also report
/// Weibull-shaped inter-arrivals (decreasing hazard, shape < 1); we support
/// that as an ablation. The distribution is parameterized by the target
/// *mean* so swapping shapes keeps the average failure rate fixed.

#include "util/rng.hpp"
#include "util/units.hpp"

namespace xres {

/// Which inter-arrival distribution to draw from.
enum class FailureDistributionKind { kExponential, kWeibull };

class FailureDistribution {
 public:
  /// Exponential gaps (memoryless) — the paper's model.
  [[nodiscard]] static FailureDistribution exponential();

  /// Weibull gaps with the given shape (shape 1 == exponential; shape < 1
  /// models infant-mortality / bursty failures). Mean is preserved.
  [[nodiscard]] static FailureDistribution weibull(double shape);

  [[nodiscard]] FailureDistributionKind kind() const { return kind_; }
  [[nodiscard]] double shape() const { return shape_; }

  /// True if the distribution is memoryless, i.e. a pending draw may be
  /// discarded and re-drawn when the event rate changes without biasing
  /// the process.
  [[nodiscard]] bool memoryless() const {
    return kind_ == FailureDistributionKind::kExponential;
  }

  /// Draw one inter-arrival gap with expected value rate.mean_interval().
  /// Returns Duration::infinity() for a zero rate.
  [[nodiscard]] Duration draw(Pcg32& rng, Rate rate) const;

 private:
  FailureDistribution(FailureDistributionKind kind, double shape)
      : kind_{kind}, shape_{shape} {}
  FailureDistributionKind kind_;
  double shape_;
};

}  // namespace xres
