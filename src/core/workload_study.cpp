#include "core/workload_study.hpp"

#include <atomic>

#include "core/workload_record.hpp"
#include "recovery/journal.hpp"
#include "recovery/json_parse.hpp"
#include "util/check.hpp"

namespace xres {

namespace {

/// FNV-1a over the combo's display name: a content fingerprint that makes
/// journal records from an edited or reordered combo list read as stale.
std::uint64_t combo_fingerprint(const WorkloadCombo& combo) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : combo.name()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string WorkloadCombo::name() const {
  return std::string{to_string(scheduler)} + " + " + policy.name();
}

std::vector<WorkloadComboResult> run_workload_study(
    const WorkloadStudyConfig& config, const std::vector<WorkloadCombo>& combos,
    const WorkloadProgress& progress, recovery::BatchReport* report) {
  XRES_CHECK(config.patterns > 0, "study needs at least one pattern");
  XRES_CHECK(!combos.empty(), "study needs at least one combo");

  // Generate the patterns once; every combo replays the identical
  // workloads (paper Section VI).
  std::vector<ArrivalPattern> patterns;
  patterns.reserve(config.patterns);
  for (std::uint32_t p = 0; p < config.patterns; ++p) {
    patterns.push_back(generate_pattern(config.workload, config.seed, p));
  }

  // Every (combo, pattern) run is independent: execute the flat grid on
  // the worker pool, each run writing its own slot, then reduce serially in
  // (combo, pattern) order so summaries are identical for any thread count.
  const std::size_t total_runs = combos.size() * config.patterns;
  std::vector<WorkloadRunResult> runs(total_runs);
  std::vector<obs::TrialObs> observers;
  if (config.collect_metrics) {
    observers.resize(total_runs);
    for (obs::TrialObs& o : observers) o.enable_metrics();
  }
  const TrialExecutor executor{config.threads};
  const recovery::TrialRecoveryOptions& rec = config.recovery;
  const std::string& kBatch = config.recovery_batch;
  std::atomic<std::size_t> stale{0};

  // Journal fingerprint for run idx: study seed x combo content x pattern.
  const auto fingerprint = [&](std::size_t idx) {
    return derive_seed(config.seed, combo_fingerprint(combos[idx / config.patterns]),
                       idx % config.patterns);
  };
  const auto journal_outcome = [&](std::size_t idx, WorkloadOutcome outcome) {
    recovery::JournalRecord record;
    record.batch = kBatch;
    record.index = idx;
    record.seed = fingerprint(idx);
    record.payload = serialize_workload_outcome(outcome);
    rec.journal->append(record);
  };

  TrialLoopControl control;
  control.progress = progress;
  control.trial_timeout_seconds = rec.trial_timeout_seconds;
  control.trial_attempts = rec.trial_attempts;
  control.drain_on_shutdown = rec.drain_on_shutdown;
  if (rec.resume != nullptr) {
    control.already_done = [&](std::size_t idx) {
      const recovery::JournalRecord* record = rec.resume->find(kBatch, idx);
      if (record == nullptr) return false;
      if (record->seed != fingerprint(idx)) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      WorkloadOutcome outcome;
      try {
        outcome = parse_workload_outcome(record->payload);
      } catch (const recovery::JsonParseError&) {
        stale.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (config.collect_metrics) {
        if (!outcome.metrics.has_value()) return false;  // journaled unobserved: re-run
        *observers[idx].metrics() = *outcome.metrics;
      }
      runs[idx] = outcome.result;
      return true;
    };
  }
  if (rec.quarantine_enabled()) {
    control.quarantine = [&](std::size_t idx, const std::string& reason) {
      runs[idx] = WorkloadRunResult{};  // zero jobs: reduces as a no-op-ish run
      if (config.collect_metrics) observers[idx].enable_metrics();
      if (rec.journal != nullptr) {
        WorkloadOutcome outcome;
        outcome.quarantined = true;
        outcome.quarantine_reason = reason;
        if (config.collect_metrics) outcome.metrics.emplace();
        journal_outcome(idx, std::move(outcome));
      }
    };
  }

  executor.for_each_controlled(
      total_runs,
      [&](std::size_t idx) {
        const WorkloadCombo& combo = combos[idx / config.patterns];
        const auto p = static_cast<std::uint32_t>(idx % config.patterns);
        WorkloadEngineConfig engine;
        engine.machine = config.machine;
        engine.resilience = config.resilience;
        engine.policy = combo.policy;
        engine.scheduler = combo.scheduler;
        // The engine seed varies per pattern but NOT per combo: combos see
        // identical failure sequences for a given pattern (variance
        // reduction, mirroring the paper's shared arrival patterns).
        engine.seed = derive_seed(config.seed, 0x656e67696eULL, p);
        if (config.collect_metrics) {
          observers[idx].enable_metrics();  // fresh set, also on a retry
          engine.obs = &observers[idx];
        }
        runs[idx] = run_workload(engine, patterns[p]);
        if (rec.journal != nullptr) {
          WorkloadOutcome outcome;
          outcome.result = runs[idx];
          if (config.collect_metrics) outcome.metrics = *observers[idx].metrics();
          journal_outcome(idx, std::move(outcome));
        }
      },
      control, report);
  if (report != nullptr) {
    report->stale_records += stale.load(std::memory_order_relaxed);
  }

  std::vector<WorkloadComboResult> results;
  results.reserve(combos.size());
  for (std::size_t ci = 0; ci < combos.size(); ++ci) {
    WorkloadComboResult out;
    out.combo = combos[ci];
    RunningStats dropped;
    RunningStats utilization;
    RunningStats failures;
    for (std::uint32_t p = 0; p < config.patterns; ++p) {
      const WorkloadRunResult& r = runs[ci * config.patterns + p];
      dropped.add(r.dropped_fraction);
      utilization.add(r.mean_utilization);
      failures.add(static_cast<double>(r.failures_injected));
      for (const auto& [kind, count] : r.selection_counts) {
        out.selection_counts[kind] += count;
      }
    }
    out.dropped_fraction = dropped.summary();
    out.mean_utilization = utilization.summary();
    out.mean_failures = failures.empty() ? 0.0 : failures.mean();
    if (config.collect_metrics) {
      // Merge in pattern order: byte-identical for every thread count.
      out.metrics.emplace();
      for (std::uint32_t p = 0; p < config.patterns; ++p) {
        out.metrics->merge(*observers[ci * config.patterns + p].metrics());
      }
    }
    results.push_back(std::move(out));
  }
  return results;
}

std::vector<WorkloadCombo> figure4_combos() {
  std::vector<WorkloadCombo> combos;
  combos.push_back(WorkloadCombo{SchedulerKind::kFcfs, TechniquePolicy::ideal_baseline()});
  for (SchedulerKind sched : all_schedulers()) {
    for (TechniqueKind kind : workload_techniques()) {
      combos.push_back(WorkloadCombo{sched, TechniquePolicy::fixed_technique(kind)});
    }
  }
  return combos;
}

std::vector<WorkloadCombo> figure5_combos() {
  std::vector<WorkloadCombo> combos;
  for (SchedulerKind sched : all_schedulers()) {
    combos.push_back(WorkloadCombo{
        sched, TechniquePolicy::fixed_technique(TechniqueKind::kParallelRecovery)});
    combos.push_back(WorkloadCombo{sched, TechniquePolicy::selection()});
  }
  return combos;
}

Table workload_results_table(const std::vector<WorkloadComboResult>& results) {
  Table table{{"scheduler", "resilience", "dropped %", "std %", "utilization %",
               "failures/pattern"}};
  for (const WorkloadComboResult& r : results) {
    table.add_row({to_string(r.combo.scheduler), r.combo.policy.name(),
                   fmt_double(r.dropped_fraction.mean * 100.0, 2),
                   fmt_double(r.dropped_fraction.stddev * 100.0, 2),
                   fmt_double(r.mean_utilization.mean * 100.0, 1),
                   fmt_double(r.mean_failures, 1)});
  }
  return table;
}

}  // namespace xres
