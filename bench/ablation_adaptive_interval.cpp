// Ablation: adaptive checkpoint-interval retuning under misspecified
// component reliability. The planner derives its Eq.-4 interval from an
// assumed node MTBF; this sweep executes those plans on machines whose
// true MTBF differs, with and without online retuning. Adaptation should
// cost nothing when the assumption is right and recover most of the loss
// when it is wrong — an extension experiment suggested by the paper's
// Figure-3 sensitivity analysis.

#include <cstdio>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "resilience/planner.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const auto trials = ctx.params().u32("trials");
  const std::uint64_t seed = ctx.seed();
  const TrialExecutor executor = ctx.make_executor();
  study::ObsCollector& collector = ctx.collector();
  study::RecoveryCoordinator& coordinator = ctx.recovery();

  MachineSpec machine = MachineSpec::exascale();
  study::apply_platform_params(machine, ctx.params());
  const AppSpec app{app_type_by_name("B32"), 60000, 1440};
  ResilienceConfig assumed;  // the planner always assumes a 10-year MTBF

  std::printf("Ablation: adaptive vs. static checkpoint interval\n");
  std::printf("application %s; planner assumes MTBF 10 y; %u trials per cell\n\n",
              app.describe().c_str(), trials);

  Table table{{"true node MTBF", "static efficiency", "adaptive efficiency", "delta"}};
  for (double true_years : {1.0, 2.5, 5.0, 10.0, 20.0}) {
    ExecutionPlan static_plan =
        make_plan(TechniqueKind::kCheckpointRestart, app, machine, assumed);
    ExecutionPlan adaptive_plan = static_plan;
    adaptive_plan.adaptive_interval = true;

    // Execute under the *true* failure rate.
    ResilienceConfig actual = assumed;
    actual.node_mtbf = Duration::years(true_years);
    const Rate true_rate =
        Rate::one_per(actual.node_mtbf) * static_cast<double>(app.nodes);
    static_plan.failure_rate = true_rate;
    adaptive_plan.failure_rate = true_rate;

    // Both plans replay the same per-trial seeds (paired comparison).
    std::vector<TrialSpec> st_specs;
    std::vector<TrialSpec> ad_specs;
    for (std::uint32_t t = 0; t < trials; ++t) {
      st_specs.push_back(TrialSpec{
          PlanTrialSpec{static_plan, actual, FailureDistribution::exponential()},
          {0, t}});
      ad_specs.push_back(TrialSpec{
          PlanTrialSpec{adaptive_plan, actual, FailureDistribution::exponential()},
          {0, t}});
    }
    RunningStats st;
    RunningStats ad;
    const std::string cell = "MTBF " + fmt_double(true_years, 1) + " y";
    for (const ExecutionResult& r :
         collector.run_batch(executor, seed, st_specs, cell + " [static]", coordinator)) {
      st.add(r.efficiency);
    }
    for (const ExecutionResult& r :
         collector.run_batch(executor, seed, ad_specs, cell + " [adaptive]", coordinator)) {
      ad.add(r.efficiency);
    }
    table.add_row({fmt_double(true_years, 1) + " y",
                   fmt_mean_std(st.mean(), st.stddev()),
                   fmt_mean_std(ad.mean(), ad.stddev()),
                   fmt_double(ad.mean() - st.mean(), 3)});
  }
  std::printf("%s", table.to_text().c_str());
  if (coordinator.interrupted()) return coordinator.finish();
  collector.finish();
  std::printf("(positive deltas where the 10-year assumption is wrong; ~0 where "
              "it is right)\n");
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "ablation_adaptive_interval";
  def.group = study::StudyGroup::kAblation;
  def.description =
      "static vs. adaptive Eq.-4 checkpoint interval under misspecified MTBF";
  def.summary = "ablation_adaptive_interval — static vs adaptive Eq.-4 interval "
                "under misspecified MTBF";
  def.options.default_seed = 15;
  def.params.integer("trials", "trials per cell", 40).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
