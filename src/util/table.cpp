#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace xres {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  XRES_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  XRES_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  XRES_CHECK(i < rows_.size(), "row index out of range");
  return rows_[i];
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }

  auto emit_row = [&](std::string& out, const std::vector<std::string>& cells) {
    out += '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += ' ';
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string rule = "+";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule;
  emit_row(out, headers_);
  out += rule;
  for (const auto& r : rows_) emit_row(out, r);
  out += rule;
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += ',';
      out += csv_escape(cells[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string Table::to_markdown() const {
  auto escape = [](const std::string& cell) {
    std::string out;
    out.reserve(cell.size());
    for (char ch : cell) {
      if (ch == '|') out += '\\';
      out += ch;
    }
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out += '|';
    for (const std::string& cell : cells) {
      out += ' ';
      out += escape(cell);
      out += " |";
    }
    out += '\n';
  };
  emit(headers_);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& r : rows_) emit(r);
  return out;
}

void Table::write_csv(const std::string& path) const {
  // Atomic (temp + rename): a crash mid-write never leaves a torn CSV.
  write_file_atomic(path, to_csv());
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_mean_std(double mean, double stddev, int precision) {
  return fmt_double(mean, precision) + " ± " + fmt_double(stddev, precision);
}

}  // namespace xres
