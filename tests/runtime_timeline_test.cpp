// Tests for timeline recording/rendering and the energy model.

#include <gtest/gtest.h>

#include "runtime/app_runtime.hpp"
#include "runtime/power.hpp"
#include "runtime/timeline.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

TEST(Timeline, SpansMustBeContiguous) {
  Timeline tl;
  tl.add(SpanKind::kWork, TimePoint::origin(), Duration::seconds(10.0));
  tl.add(SpanKind::kCheckpoint, TimePoint::at(Duration::seconds(10.0)),
         Duration::seconds(2.0));
  EXPECT_THROW(tl.add(SpanKind::kWork, TimePoint::at(Duration::seconds(20.0)),
                      Duration::seconds(1.0)),
               CheckError);
}

TEST(Timeline, AdjacentSameKindSpansMerge) {
  Timeline tl;
  tl.add(SpanKind::kWork, TimePoint::origin(), Duration::seconds(5.0));
  tl.add(SpanKind::kWork, TimePoint::at(Duration::seconds(5.0)), Duration::seconds(5.0));
  EXPECT_EQ(tl.spans().size(), 1U);
  EXPECT_DOUBLE_EQ(tl.spans()[0].length.to_seconds(), 10.0);
}

TEST(Timeline, ZeroLengthSpansDropped) {
  Timeline tl;
  tl.add(SpanKind::kRestart, TimePoint::origin(), Duration::zero());
  EXPECT_TRUE(tl.empty());
}

TEST(Timeline, TotalsByKind) {
  Timeline tl;
  tl.add(SpanKind::kWork, TimePoint::origin(), Duration::seconds(10.0));
  tl.add(SpanKind::kCheckpoint, TimePoint::at(Duration::seconds(10.0)),
         Duration::seconds(2.0));
  tl.add(SpanKind::kWork, TimePoint::at(Duration::seconds(12.0)), Duration::seconds(8.0));
  EXPECT_DOUBLE_EQ(tl.total(SpanKind::kWork).to_seconds(), 18.0);
  EXPECT_DOUBLE_EQ(tl.total(SpanKind::kCheckpoint).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(tl.total(SpanKind::kRecovery).to_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(tl.total().to_seconds(), 20.0);
}

TEST(Timeline, RenderShowsDominantKindPerColumn) {
  Timeline tl;
  tl.add(SpanKind::kWork, TimePoint::origin(), Duration::seconds(50.0));
  tl.add(SpanKind::kRestart, TimePoint::at(Duration::seconds(50.0)),
         Duration::seconds(50.0));
  const std::string chart = tl.render(10);
  EXPECT_EQ(chart, "|=====RRRRR|");
  EXPECT_EQ(tl.render(2), "|=R|");
}

TEST(Timeline, SpanKindNames) {
  EXPECT_STREQ(to_string(SpanKind::kWork), "work");
  EXPECT_STREQ(to_string(SpanKind::kRecovery), "recovery");
}

ExecutionPlan timeline_plan() {
  ExecutionPlan plan;
  plan.kind = TechniqueKind::kCheckpointRestart;
  plan.app = AppSpec{app_type_by_name("A32"), 10, 100};
  plan.physical_nodes = 10;
  plan.baseline = Duration::seconds(100.0);
  plan.work_target = Duration::seconds(100.0);
  plan.checkpoint_quantum = Duration::seconds(10.0);
  plan.levels = {CheckpointLevelSpec{Duration::seconds(2.0), Duration::seconds(3.0), 3}};
  plan.nesting = {1};
  plan.failure_rate = Rate::zero();
  return plan;
}

TEST(Timeline, RuntimeRecordsConsistentTimeline) {
  Simulation sim;
  ExecutionResult result;
  ResilientAppRuntime runtime{sim, timeline_plan(), 1,
                              [&](const ExecutionResult& r) { result = r; }};
  runtime.enable_timeline();
  sim.schedule_at(TimePoint::at(Duration::seconds(25.0)),
                  [&] { runtime.on_failure(Failure{sim.now(), 1}); });
  runtime.start();
  sim.run();

  const Timeline* tl = runtime.timeline();
  ASSERT_NE(tl, nullptr);
  // Timeline totals must match the result's per-phase buckets exactly.
  EXPECT_DOUBLE_EQ(tl->total(SpanKind::kWork).to_seconds(),
                   result.time_working.to_seconds());
  EXPECT_DOUBLE_EQ(tl->total(SpanKind::kCheckpoint).to_seconds(),
                   result.time_checkpointing.to_seconds());
  EXPECT_DOUBLE_EQ(tl->total(SpanKind::kRestart).to_seconds(),
                   result.time_restarting.to_seconds());
  EXPECT_DOUBLE_EQ(tl->total().to_seconds(), result.wall_time.to_seconds());
  // One restart span from the injected failure.
  EXPECT_DOUBLE_EQ(tl->total(SpanKind::kRestart).to_seconds(), 3.0);
}

TEST(Timeline, DisabledByDefault) {
  Simulation sim;
  ResilientAppRuntime runtime{sim, timeline_plan(), 1, [](const ExecutionResult&) {}};
  runtime.start();
  sim.run();
  EXPECT_EQ(runtime.timeline(), nullptr);
}

TEST(Timeline, EnableAfterStartThrows) {
  Simulation sim;
  ResilientAppRuntime runtime{sim, timeline_plan(), 1, [](const ExecutionResult&) {}};
  runtime.start();
  EXPECT_THROW(runtime.enable_timeline(), CheckError);
}

TEST(Power, EnergySplitsActiveAndIdle) {
  ExecutionResult result;
  result.wall_time = Duration::seconds(100.0);
  result.node_seconds = 800.0;  // of 10 nodes x 100 s = 1000 allocated
  NodePowerSpec power;
  power.active_watts = 300.0;
  power.idle_watts = 100.0;
  const EnergyReport report = execution_energy(result, 10, power);
  EXPECT_DOUBLE_EQ(report.active_node_seconds, 800.0);
  EXPECT_DOUBLE_EQ(report.idle_node_seconds, 200.0);
  EXPECT_DOUBLE_EQ(report.joules, 800.0 * 300.0 + 200.0 * 100.0);
  EXPECT_NEAR(report.kilowatt_hours(), report.joules / 3.6e6, 1e-12);
}

TEST(Power, ValidationCatchesBadSpecs) {
  NodePowerSpec power;
  power.idle_watts = power.active_watts + 1.0;
  EXPECT_THROW(power.validate(), CheckError);
  power = NodePowerSpec{};
  power.active_watts = 0.0;
  EXPECT_THROW(power.validate(), CheckError);
}

TEST(Power, ParallelRecoveryIdlesNodesDuringRecovery) {
  // PR plan with one failure: during recovery only (1 + P) of the 10 nodes
  // are active, so energy is strictly below the all-active alternative.
  ExecutionPlan plan = timeline_plan();
  plan.kind = TechniqueKind::kParallelRecovery;
  plan.rollback_on_failure = false;
  plan.recovery_parallelism = 2.0;

  Simulation sim;
  ExecutionResult result;
  ResilientAppRuntime runtime{sim, std::move(plan), 1,
                              [&](const ExecutionResult& r) { result = r; }};
  sim.schedule_at(TimePoint::at(Duration::seconds(25.0)),
                  [&] { runtime.on_failure(Failure{sim.now(), 1}); });
  runtime.start();
  sim.run();

  ASSERT_TRUE(result.completed);
  const EnergyReport report = execution_energy(result, 10);
  // Recovery lasted 3.5 s with 3 active nodes -> 7 x 3.5 idle node-seconds.
  EXPECT_NEAR(report.idle_node_seconds, 7.0 * 3.5, 1e-9);
  EXPECT_LT(report.active_node_seconds,
            10.0 * result.wall_time.to_seconds());
}

}  // namespace
}  // namespace xres
