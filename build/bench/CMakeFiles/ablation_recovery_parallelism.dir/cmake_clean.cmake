file(REMOVE_RECURSE
  "CMakeFiles/ablation_recovery_parallelism.dir/ablation_recovery_parallelism.cpp.o"
  "CMakeFiles/ablation_recovery_parallelism.dir/ablation_recovery_parallelism.cpp.o.d"
  "ablation_recovery_parallelism"
  "ablation_recovery_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recovery_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
