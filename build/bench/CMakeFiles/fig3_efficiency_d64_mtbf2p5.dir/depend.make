# Empty dependencies file for fig3_efficiency_d64_mtbf2p5.
# This may be replaced when dependencies are built.
