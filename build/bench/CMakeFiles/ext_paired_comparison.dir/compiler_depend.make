# Empty compiler generated dependencies file for ext_paired_comparison.
# This may be replaced when dependencies are built.
