#pragma once

/// \file suite.hpp
/// The suite runner: execute a list of (study, params) cells in one
/// deterministic, resumable invocation. Each cell runs with its artifact
/// paths pointed into --out-dir, its stdout captured to `<cell>.txt`, and
/// its trial journal under `journals/`; a final `manifest.json` records
/// what was produced (study, params, seed, git-describe, relative artifact
/// paths + CRC32s). `xres suite verify` re-checksums an output directory
/// against its manifest.
///
/// Two entry points build cell lists: `xres suite paper` (every figure and
/// table study, catalog order) and `xres sweep` (one study fanned across a
/// parameter grid, sweep.hpp). Both share this runner, so the capture,
/// manifest, journal/--resume and threads-invariance behavior is identical.
///
/// Determinism contract: two suite runs with the same options produce
/// byte-identical artifacts and manifest, whatever --threads says and
/// whether or not a run was killed and resumed — run status (banners,
/// progress, wall-clock timings) goes to stderr, never into an artifact.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "study/registry.hpp"

namespace xres::study {

struct SuiteOptions {
  std::string out_dir;
  /// 0 = every study's own default; otherwise overrides the study's
  /// trials/patterns/traces parameter (whichever it declares) — how CI runs
  /// the whole suite in seconds.
  std::uint32_t trials{0};
  unsigned threads{0};  ///< forwarded to every study that takes --threads
  bool resume{false};   ///< resume from the journals of a killed run
};

/// One cell of a suite run: a study definition plus the exact parameter
/// bindings to execute it with. `name` keys every per-cell artifact
/// (`<name>.txt`, `<name>.metrics.json`, `journals/<name>.jsonl`); the
/// paper suite uses the study name, a sweep uses the grid-point label.
struct SuiteCell {
  const StudyDefinition* def{nullptr};
  ParamSet params;
  std::string name;
};

/// The manifest file name inside --out-dir.
inline constexpr const char* kManifestName = "manifest.json";

/// Run \p cells under the shared artifact/manifest contract. \p tag is the
/// manifest's "suite" field and the stderr progress prefix;
/// \p manifest_extras, when set, emits extra top-level manifest members
/// (keys+values) between "git" and "studies". Returns 0, or the first
/// failing cell's exit code.
int run_suite_cells(const std::string& tag, const std::vector<SuiteCell>& cells,
                    const SuiteOptions& options,
                    const std::function<void(obs::JsonWriter&)>& manifest_extras = {});

/// Run the paper suite (figure + table studies, catalog order). Returns 0,
/// or the first failing study's exit code.
int run_suite_paper(const SuiteOptions& options);

/// Verify \p out_dir against its manifest: every artifact present with a
/// matching CRC32. Prints one line per problem; returns 0 when clean, 1
/// otherwise.
int verify_suite(const std::string& out_dir);

}  // namespace xres::study
