// Unit and property tests for the platform model: machine spec, the
// paper's transfer-time equations (Eqs. 3, 5, 6), the contiguous
// allocator, and the machine allocation index.

#include <gtest/gtest.h>

#include <set>

#include "platform/allocator.hpp"
#include "platform/machine.hpp"
#include "platform/spec.hpp"
#include "platform/transfer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xres {
namespace {

TEST(MachineSpec, ExascaleDefaultsMatchPaper) {
  const MachineSpec spec = MachineSpec::exascale();
  EXPECT_EQ(spec.node_count, 120000U);
  EXPECT_DOUBLE_EQ(spec.node.tflops, 12.0);
  EXPECT_EQ(spec.node.cores, 1028U);
  EXPECT_DOUBLE_EQ(spec.node.memory.to_gigabytes(), 128.0);
  EXPECT_DOUBLE_EQ(spec.node.memory_bandwidth.to_gigabytes_per_second(), 320.0);
  EXPECT_DOUBLE_EQ(spec.network.latency.to_seconds(), 5e-7);
  EXPECT_DOUBLE_EQ(spec.network.bandwidth.to_gigabytes_per_second(), 600.0);
  EXPECT_EQ(spec.network.switch_connections, 12U);
  // 120,000 × 12 TFLOPS = 1.44 EFLOPS; ~123 M cores.
  EXPECT_NEAR(spec.total_pflops(), 1440.0, 1e-9);
  EXPECT_EQ(spec.total_cores(), 123360000ULL);
  EXPECT_NO_THROW(spec.validate());
}

TEST(MachineSpec, ValidationCatchesBadValues) {
  MachineSpec spec = MachineSpec::exascale();
  spec.node_count = 0;
  EXPECT_THROW(spec.validate(), CheckError);
  spec = MachineSpec::exascale();
  spec.network.switch_connections = 0;
  EXPECT_THROW(spec.validate(), CheckError);
}

TEST(Transfer, Equation3PfsCheckpointTime) {
  // T_C_PFS = (N_m/B_N)(N_a/N_S): 32 GB, full machine -> 533.3 s;
  // 64 GB -> 1066.7 s (the paper's "17-35 min" scale).
  const MachineSpec spec = MachineSpec::exascale();
  const Duration t32 =
      pfs_checkpoint_time(DataSize::gigabytes(32.0), 120000, spec.network);
  EXPECT_NEAR(t32.to_seconds(), 32.0 / 600.0 * 120000.0 / 12.0, 1e-9);
  const Duration t64 =
      pfs_checkpoint_time(DataSize::gigabytes(64.0), 120000, spec.network);
  EXPECT_NEAR(t64.to_minutes(), 17.78, 0.01);
  // Linear in application size (PFS contention).
  const Duration half = pfs_checkpoint_time(DataSize::gigabytes(64.0), 60000, spec.network);
  EXPECT_NEAR(t64 / half, 2.0, 1e-12);
}

TEST(Transfer, Equation5LocalMemoryCheckpointTime) {
  const MachineSpec spec = MachineSpec::exascale();
  // 32 GB at 320 GB/s = 0.1 s, independent of application size.
  EXPECT_NEAR(
      local_memory_checkpoint_time(DataSize::gigabytes(32.0), spec.node).to_seconds(),
      0.1, 1e-12);
  EXPECT_NEAR(
      local_memory_checkpoint_time(DataSize::gigabytes(64.0), spec.node).to_seconds(),
      0.2, 1e-12);
}

TEST(Transfer, Equation6PartnerCopyCheckpointTime) {
  const MachineSpec spec = MachineSpec::exascale();
  // 2 × (0.1 + 0.5 µs + 0.1) s.
  const Duration t =
      partner_copy_checkpoint_time(DataSize::gigabytes(32.0), spec.node, spec.network);
  EXPECT_NEAR(t.to_seconds(), 2.0 * (0.1 + 5e-7 + 0.1), 1e-12);
}

TEST(Allocator, FirstFitLowestAddress) {
  NodeAllocator alloc{100};
  const auto a = alloc.allocate(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, 0U);
  const auto b = alloc.allocate(20);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first, 10U);
  alloc.release(*a);
  // A 10-node hole exists at 0; an 8-node request takes it (first fit).
  const auto c = alloc.allocate(8);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->first, 0U);
  // An 11-node request skips the remaining 2-node hole.
  const auto d = alloc.allocate(11);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->first, 30U);
  alloc.validate();
}

TEST(Allocator, ExhaustionReturnsNullopt) {
  NodeAllocator alloc{10};
  EXPECT_TRUE(alloc.allocate(10).has_value());
  EXPECT_FALSE(alloc.allocate(1).has_value());
  EXPECT_EQ(alloc.free_count(), 0U);
  EXPECT_EQ(alloc.busy_count(), 10U);
}

TEST(Allocator, CoalescingMergesNeighbors) {
  NodeAllocator alloc{30};
  const auto a = alloc.allocate(10);
  const auto b = alloc.allocate(10);
  const auto c = alloc.allocate(10);
  ASSERT_TRUE(a && b && c);
  alloc.release(*a);
  alloc.release(*c);
  EXPECT_EQ(alloc.largest_free_block(), 10U);
  alloc.release(*b);  // merges all three into one block
  EXPECT_EQ(alloc.largest_free_block(), 30U);
  alloc.validate();
}

TEST(Allocator, DoubleFreeAndOverlapDetected) {
  NodeAllocator alloc{20};
  const auto a = alloc.allocate(10);
  ASSERT_TRUE(a.has_value());
  alloc.release(*a);
  EXPECT_THROW(alloc.release(*a), CheckError);
  EXPECT_THROW(alloc.release(NodeRange{15, 10}), CheckError);  // beyond capacity
}

TEST(Allocator, IsFreeTracksState) {
  NodeAllocator alloc{10};
  const auto a = alloc.allocate(4);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(alloc.is_free(0));
  EXPECT_FALSE(alloc.is_free(3));
  EXPECT_TRUE(alloc.is_free(4));
  EXPECT_THROW((void)alloc.is_free(10), CheckError);
}

class AllocatorRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorRandomOps, InvariantsHoldUnderRandomWorkload) {
  // Property test: random allocate/release sequences preserve the
  // allocator invariants and never hand out overlapping ranges.
  Pcg32 rng{GetParam()};
  NodeAllocator alloc{500};
  std::vector<NodeRange> held;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.bernoulli(0.55)) {
      const auto count = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
      const auto range = alloc.allocate(count);
      if (range.has_value()) {
        for (const NodeRange& other : held) {
          EXPECT_TRUE(range->end() <= other.first || other.end() <= range->first)
              << "overlapping allocation";
        }
        held.push_back(*range);
      }
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint32_t>(held.size())));
      alloc.release(held[idx]);
      held[idx] = held.back();
      held.pop_back();
    }
    alloc.validate();
    std::uint32_t held_total = 0;
    for (const NodeRange& r : held) held_total += r.count;
    EXPECT_EQ(alloc.busy_count(), held_total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorRandomOps,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

TEST(Machine, AllocateReleaseAndIndexes) {
  Machine machine{MachineSpec::testbed(100)};
  const auto r1 = machine.allocate(30, OwnerId{1});
  const auto r2 = machine.allocate(50, OwnerId{2});
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(machine.busy_nodes(), 80U);
  EXPECT_EQ(machine.allocation_count(), 2U);
  EXPECT_EQ(machine.allocation_of(OwnerId{1}), r1);
  EXPECT_FALSE(machine.allocation_of(OwnerId{3}).has_value());
  EXPECT_FALSE(machine.allocate(30, OwnerId{3}).has_value());
  machine.validate();
  machine.release(OwnerId{1});
  EXPECT_EQ(machine.busy_nodes(), 50U);
  EXPECT_THROW(machine.release(OwnerId{1}), CheckError);
  machine.validate();
}

TEST(Machine, OwnerCannotDoubleAllocate) {
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(10, OwnerId{7}).has_value());
  EXPECT_THROW(machine.allocate(10, OwnerId{7}), CheckError);
}

TEST(Machine, VictimSelectionUniformOverBusyNodes) {
  Machine machine{MachineSpec::testbed(100)};
  ASSERT_TRUE(machine.allocate(20, OwnerId{1}).has_value());  // nodes 0-19
  ASSERT_TRUE(machine.allocate(60, OwnerId{2}).has_value());  // nodes 20-79
  Pcg32 rng{11};
  int hits_owner1 = 0;
  std::set<std::uint32_t> nodes_seen;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto victim = machine.pick_random_busy_node(rng);
    ASSERT_TRUE(victim.has_value());
    EXPECT_LT(victim->node, 80U);
    nodes_seen.insert(victim->node);
    if (victim->owner == OwnerId{1}) {
      EXPECT_LT(victim->node, 20U);
      ++hits_owner1;
    } else {
      EXPECT_EQ(victim->owner, OwnerId{2});
      EXPECT_GE(victim->node, 20U);
    }
  }
  // Owner 1 holds 25% of busy nodes.
  EXPECT_NEAR(static_cast<double>(hits_owner1) / n, 0.25, 0.02);
  EXPECT_GT(nodes_seen.size(), 70U);  // nearly every busy node gets hit
}

TEST(Machine, NoVictimWhenIdle) {
  Machine machine{MachineSpec::testbed(10)};
  Pcg32 rng{1};
  EXPECT_FALSE(machine.pick_random_busy_node(rng).has_value());
}

}  // namespace
}  // namespace xres
