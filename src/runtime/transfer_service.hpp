#pragma once

/// \file transfer_service.hpp
/// How the runtime executes checkpoint/restart data movement.
///
/// The base plan gives every checkpoint level a fixed nominal duration
/// (Eqs. 3, 5, 6). By default those durations are taken literally
/// (FixedTransferService). When the workload engine models PFS contention,
/// PFS-backed phases are routed through a SharedChannelTransferService
/// instead: the nominal duration is converted back into bytes at the
/// per-stream cap and pushed through a processor-sharing SharedChannel,
/// so concurrent checkpoints from different applications slow each other
/// down.

#include <cstdint>

#include "sim/shared_channel.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace xres {

class TransferService {
 public:
  using TransferHandle = std::uint64_t;
  using CompletionCallback = EventCallback;

  virtual ~TransferService() = default;

  /// Start a transfer whose uncontended duration is \p nominal; the
  /// callback fires when it completes (possibly later under load).
  virtual TransferHandle begin(Duration nominal, CompletionCallback on_complete) = 0;

  /// Abort an in-flight transfer (no-op if already complete).
  virtual void cancel(TransferHandle handle) = 0;
};

/// Takes nominal durations literally (no cross-application contention).
class FixedTransferService final : public TransferService {
 public:
  explicit FixedTransferService(Simulation& sim) : sim_{sim} {}

  TransferHandle begin(Duration nominal, CompletionCallback on_complete) override;
  void cancel(TransferHandle handle) override;

 private:
  Simulation& sim_;
};

/// Routes transfers through a processor-sharing SharedChannel.
class SharedChannelTransferService final : public TransferService {
 public:
  /// \p channel must outlive the service. Nominal durations are converted
  /// to bytes at the channel's uncontended (per-stream-cap) rate so a lone
  /// transfer takes exactly its nominal time.
  SharedChannelTransferService(SharedChannel& channel, Bandwidth per_stream_cap);

  TransferHandle begin(Duration nominal, CompletionCallback on_complete) override;
  void cancel(TransferHandle handle) override;

 private:
  SharedChannel& channel_;
  double per_stream_cap_bps_;
};

}  // namespace xres
