#pragma once

/// \file single_app_study.hpp
/// Application-scaling efficiency studies (paper Section V, Figures 1–3):
/// one application at a time, scaled from 1% of the machine to the full
/// machine, executed under each resilience technique for many seeded
/// trials, reporting mean ± σ efficiency.

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/application.hpp"
#include "failure/distribution.hpp"
#include "failure/trace.hpp"
#include "platform/spec.hpp"
#include "resilience/config.hpp"
#include "resilience/plan.hpp"
#include "resilience/technique.hpp"
#include "runtime/result.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace xres {

/// One simulated execution of one application under one technique.
struct SingleAppTrialConfig {
  AppSpec app{};
  TechniqueKind technique{TechniqueKind::kCheckpointRestart};
  MachineSpec machine{};
  ResilienceConfig resilience{};
  FailureDistribution failure_distribution{FailureDistribution::exponential()};
};

/// Run one trial. Infeasible plans (redundancy larger than the machine)
/// return a zero-efficiency result without simulating, as in the paper's
/// zero-height bars.
[[nodiscard]] ExecutionResult run_single_app_trial(const SingleAppTrialConfig& config,
                                                   std::uint64_t seed);

/// Lower-level entry point: execute an explicit (possibly hand-modified)
/// plan under its own failure rate. Used by ablation harnesses that
/// override planner decisions such as the checkpoint interval.
[[nodiscard]] ExecutionResult run_plan_trial(const ExecutionPlan& plan,
                                             const ResilienceConfig& resilience,
                                             FailureDistribution failure_distribution,
                                             std::uint64_t seed);

/// Execute a plan against a *replayed* failure trace (common random
/// numbers): every technique compared against the same trace sees
/// byte-identical failure times and severities, which removes
/// failure-sampling variance from technique deltas. \p seed still drives
/// the runtime's internal randomness (redundancy victim classification).
[[nodiscard]] ExecutionResult run_plan_trial_with_trace(const ExecutionPlan& plan,
                                                        const ResilienceConfig& resilience,
                                                        const FailureTrace& trace,
                                                        std::uint64_t seed);

/// A full figure: sweep application size × technique.
struct EfficiencyStudyConfig {
  MachineSpec machine{MachineSpec::exascale()};
  ResilienceConfig resilience{};
  AppType app_type{};
  /// T_B = 1440 min (one day) in Figures 1–3.
  Duration baseline{Duration::minutes(1440.0)};
  /// Fractions of the machine the application occupies (figure x-axis).
  std::vector<double> size_fractions{0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00};
  std::vector<TechniqueKind> techniques{evaluated_techniques().begin(),
                                        evaluated_techniques().end()};
  std::uint32_t trials{200};
  std::uint64_t seed{20170529};
  FailureDistribution failure_distribution{FailureDistribution::exponential()};
};

struct EfficiencyStudyResult {
  EfficiencyStudyConfig config{};
  /// cell[size_index][technique_index]: efficiency summary over trials.
  std::vector<std::vector<Summary>> efficiency;
  /// Mean failures seen per trial, same indexing (diagnostics).
  std::vector<std::vector<double>> mean_failures;

  /// The figure's series as an aligned table (rows: size; columns:
  /// technique "mean ± σ").
  [[nodiscard]] Table to_table() const;
  /// Raw CSV: size_fraction, technique, mean, stddev, trials.
  [[nodiscard]] Table to_csv_table() const;
};

/// Progress callback: (completed cells, total cells).
using StudyProgress = std::function<void(std::size_t, std::size_t)>;

[[nodiscard]] EfficiencyStudyResult run_efficiency_study(
    const EfficiencyStudyConfig& config, const StudyProgress& progress = {});

}  // namespace xres
