// Technique advisor: given an application's characteristics, compare every
// resilience technique (predicted and simulated efficiency) and recommend
// one — the paper's Resilience Selection (Section VII) as an interactive
// tool.
//
//   $ ./technique_advisor --type D64 --system-share 0.25 --mtbf-years 10

#include <cstdio>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"
#include "resilience/selector.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"technique_advisor — recommend a resilience technique for an "
                "application on the exascale machine"};
  cli.add_option("--type", "application type (A32..D64, Table I)", "C64");
  cli.add_option("--system-share", "fraction of the machine used (0, 1]", "0.25");
  cli.add_option("--baseline-hours", "delay-free execution time", "24");
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--trials", "simulated trials per technique", "20");
  add_threads_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const TrialExecutor executor{parse_threads_option(cli)};

  const MachineSpec machine = MachineSpec::exascale();
  const double share = cli.real("--system-share");
  XRES_CHECK(share > 0.0 && share <= 1.0, "--system-share must be in (0, 1]");
  const auto nodes = static_cast<std::uint32_t>(share * machine.node_count);
  const AppSpec app = AppSpec::from_baseline(
      app_type_by_name(cli.str("--type")), std::max(1U, nodes),
      Duration::hours(cli.real("--baseline-hours")));

  ResilienceConfig resilience;
  resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));
  const auto trials = static_cast<std::uint32_t>(cli.integer("--trials"));

  std::printf("application: %s (T_C = %.0f%%, N_m = %s)\n", app.describe().c_str(),
              app.type.comm_fraction * 100.0, to_string(app.type.memory_per_node).c_str());
  std::printf("node MTBF: %s -> application MTBF: %s\n\n",
              to_string(resilience.node_mtbf).c_str(),
              to_string((Rate::one_per(resilience.node_mtbf) *
                         static_cast<double>(app.nodes))
                            .mean_interval())
                  .c_str());

  Table table{{"technique", "predicted eff", "simulated eff", "nodes needed", "note"}};
  for (TechniqueKind kind : evaluated_techniques()) {
    const ExecutionPlan plan = make_plan(kind, app, machine, resilience);
    const double predicted = predict_efficiency(plan, resilience);
    std::string simulated = "-";
    std::string note;
    if (!plan.feasible) {
      note = "infeasible: needs " + std::to_string(plan.physical_nodes) + " nodes";
    } else {
      SingleAppTrialConfig config;
      config.app = app;
      config.technique = kind;
      config.machine = machine;
      config.resilience = resilience;
      std::vector<TrialSpec> specs;
      specs.reserve(trials);
      for (std::uint32_t t = 0; t < trials; ++t) {
        specs.push_back(TrialSpec{config, {t}});
      }
      RunningStats stats;
      for (const ExecutionResult& r : executor.run_batch(1337, specs)) {
        stats.add(r.efficiency);
      }
      simulated = fmt_mean_std(stats.mean(), stats.stddev());
      if (stats.mean() < 0.05) note = "fails to make progress";
    }
    table.add_row({to_string(kind), fmt_double(predicted, 3), simulated,
                   std::to_string(plan.physical_nodes), note});
  }
  std::printf("%s\n", table.to_text().c_str());

  const ResilienceSelector selector{machine, resilience};
  const auto selection = selector.select(app);
  std::printf("recommendation (workload candidates): %s (predicted efficiency %.3f)\n",
              to_string(selection.kind), selection.predicted_efficiency);
  return 0;
}
