# Empty dependencies file for xres_rm.
# This may be replaced when dependencies are built.
