#pragma once

/// \file log.hpp
/// Minimal leveled logging. Studies run hundreds of thousands of simulated
/// events; logging must be cheap when disabled (level check before
/// formatting) and redirectable (tests capture a sink).

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

namespace xres {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the canonical lowercase name ("trace", ..., "off").
[[nodiscard]] const char* to_string(LogLevel level);

/// Parses a level name (case-insensitive); throws CheckError on unknown names.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

/// Non-throwing variant: nullopt on unknown names.
[[nodiscard]] std::optional<LogLevel> try_parse_log_level(const std::string& name);

/// Process-wide logger. Defaults to kWarn on stderr; honors the XRES_LOG
/// environment variable ("debug", "info", ...) at first use.
///
/// Thread-safe: `TrialExecutor` runs trials on worker threads, so the level
/// is atomic (cheap `enabled` checks stay lock-free on the hot path) and
/// sink replacement/emission are serialized by a mutex — messages from
/// concurrent trials never interleave mid-line.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// The global logger instance.
  static Logger& global();

  /// The level an XRES_LOG-style environment value selects: the parsed
  /// level, or kWarn with a one-line stderr warning when \p env names no
  /// known level (a bad environment variable must not crash a study).
  /// \p env may be null (unset). Exposed for tests.
  [[nodiscard]] static LogLevel level_from_env(const char* env);

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Replace the output sink (default writes to stderr). Pass nullptr to
  /// restore the default sink.
  void set_sink(Sink sink);

  /// Emit a message if \p level is enabled.
  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_;
  std::mutex sink_mutex_;
  Sink sink_;
};

}  // namespace xres

#define XRES_LOG(level, msg)                                        \
  do {                                                              \
    if (::xres::Logger::global().enabled(level)) {                  \
      ::xres::Logger::global().log(level, (msg));                   \
    }                                                               \
  } while (false)

#define XRES_LOG_DEBUG(msg) XRES_LOG(::xres::LogLevel::kDebug, msg)
#define XRES_LOG_INFO(msg) XRES_LOG(::xres::LogLevel::kInfo, msg)
#define XRES_LOG_WARN(msg) XRES_LOG(::xres::LogLevel::kWarn, msg)
#define XRES_LOG_ERROR(msg) XRES_LOG(::xres::LogLevel::kError, msg)
