#include "failure/replay.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace xres {

TraceFailureProcess::TraceFailureProcess(Simulation& sim, const FailureTrace& trace,
                                         Callback on_failure)
    : sim_{sim}, trace_{trace}, on_failure_{std::move(on_failure)} {
  XRES_CHECK(static_cast<bool>(on_failure_), "failure callback must be non-empty");
}

TraceFailureProcess::~TraceFailureProcess() { stop(); }

void TraceFailureProcess::start() {
  XRES_CHECK(!active_, "trace replay already started");
  active_ = true;
  pending_.reserve(trace_.size());
  for (const Failure& failure : trace_.failures()) {
    if (failure.time < sim_.now()) {
      ++skipped_;
      continue;
    }
    pending_.push_back(sim_.schedule_at(failure.time, [this, failure] {
      ++delivered_;
      on_failure_(failure);
    }));
  }
  if (skipped_ > 0) {
    XRES_LOG_WARN("trace replay skipped " + std::to_string(skipped_) +
                  " failures that predate the current simulation time");
  }
}

void TraceFailureProcess::stop() {
  if (!active_) return;
  active_ = false;
  for (EventId id : pending_) sim_.cancel(id);
  pending_.clear();
}

}  // namespace xres
