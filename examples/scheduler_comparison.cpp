// Scheduler comparison: run the same oversubscribed workload under each
// resource-management heuristic and a chosen resilience policy, and report
// dropped applications and utilization — a compact version of the paper's
// Section-VI study for exploring scheduler behavior.
//
//   $ ./scheduler_comparison --patterns 5 --technique parallel-recovery

#include <cstdio>

#include "core/workload_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"scheduler_comparison — FCFS vs. Random vs. Slack on an "
                "oversubscribed exascale workload"};
  cli.add_option("--patterns", "arrival patterns to average", "5");
  cli.add_option("--technique",
                 "resilience technique (checkpoint-restart, multilevel, "
                 "parallel-recovery) or 'selection'",
                 "parallel-recovery");
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--seed", "root RNG seed", "20170530");
  add_threads_option(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;

  WorkloadStudyConfig study;
  study.patterns = static_cast<std::uint32_t>(cli.integer("--patterns"));
  study.seed = static_cast<std::uint64_t>(cli.integer("--seed"));
  study.threads = parse_threads_option(cli);
  study.resilience.node_mtbf = Duration::years(cli.real("--mtbf-years"));

  const std::string technique = cli.str("--technique");
  const TechniquePolicy policy =
      technique == "selection"
          ? TechniquePolicy::selection()
          : TechniquePolicy::fixed_technique(technique_from_string(technique));

  std::printf("workload: full initial fill + %u arrivals (mean gap %s), "
              "%u patterns, resilience policy '%s'\n\n",
              study.workload.arrival_count,
              to_string(study.workload.mean_interarrival).c_str(), study.patterns,
              policy.name().c_str());

  std::vector<WorkloadCombo> combos;
  combos.push_back(WorkloadCombo{SchedulerKind::kFcfs, TechniquePolicy::ideal_baseline()});
  for (SchedulerKind sched : all_schedulers()) {
    combos.push_back(WorkloadCombo{sched, policy});
  }

  const auto results = run_workload_study(
      study, combos, [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r  pattern-run %zu/%zu", done, total);
        if (done == total) std::fprintf(stderr, "\n");
        std::fflush(stderr);
      });
  std::printf("%s", workload_results_table(results).to_text().c_str());

  if (policy.mode == TechniquePolicy::Mode::kSelection) {
    std::printf("\nResilience Selection picks (summed over schedulers):\n");
    std::map<TechniqueKind, std::uint32_t> totals;
    for (const auto& r : results) {
      for (const auto& [kind, count] : r.selection_counts) totals[kind] += count;
    }
    for (const auto& [kind, count] : totals) {
      std::printf("  %-20s %u applications\n", to_string(kind), count);
    }
  }
  return 0;
}
