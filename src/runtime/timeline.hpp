#pragma once

/// \file timeline.hpp
/// Execution timeline recording and rendering.
///
/// When enabled on a ResilientAppRuntime, every phase transition is
/// recorded as a contiguous span. The spans reconstruct exactly how an
/// execution spent its wall-clock time (work / checkpoint / restart /
/// recovery), power the quickstart example's visualization, and give tests
/// a strong invariant: spans are contiguous and sum to the wall time.

#include <string>
#include <vector>

#include "util/units.hpp"

namespace xres {

/// Phase kind mirrored from ResilientAppRuntime::Phase (kept as a distinct
/// small enum so the timeline module does not depend on the runtime
/// header).
enum class SpanKind { kWork, kCheckpoint, kRestart, kRecovery };

[[nodiscard]] const char* to_string(SpanKind kind);

struct PhaseSpan {
  SpanKind kind{SpanKind::kWork};
  TimePoint start{};
  Duration length{};

  [[nodiscard]] TimePoint end() const { return start + length; }
};

class Timeline {
 public:
  /// Append a span; must begin exactly where the previous span ended
  /// (checked). Zero-length spans are dropped.
  void add(SpanKind kind, TimePoint start, Duration length);

  [[nodiscard]] const std::vector<PhaseSpan>& spans() const { return spans_; }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

  /// Total recorded time per kind.
  [[nodiscard]] Duration total(SpanKind kind) const;

  /// Sum of all spans.
  [[nodiscard]] Duration total() const;

  /// Render an ASCII strip chart, e.g.
  ///   |====C====C==R!==C====| (= work, C checkpoint, R restart, ! recovery)
  /// \p width columns cover the whole recorded window; each column shows
  /// the kind that dominates it.
  [[nodiscard]] std::string render(std::size_t width = 80) const;

 private:
  std::vector<PhaseSpan> spans_;
};

}  // namespace xres
