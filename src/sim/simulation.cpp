#include "sim/simulation.hpp"

#include "obs/perf.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"

namespace xres {

Simulation::~Simulation() { obs::perf_add_watchdog_polls(watchdog_polls_); }

EventId Simulation::schedule_at(TimePoint when, EventCallback callback) {
  XRES_CHECK(when >= now_, "cannot schedule an event in the past (t=" +
                               to_string(when) + " < now=" + to_string(now_) + ")");
  return queue_.schedule(when, std::move(callback));
}

EventId Simulation::schedule_after(Duration delay, EventCallback callback) {
  XRES_CHECK(delay >= Duration::zero(), "negative scheduling delay: " + to_string(delay));
  return queue_.schedule(now_ + delay, std::move(callback));
}

bool Simulation::step() {
  auto fired = queue_.pop();
  if (!fired.has_value()) return false;
  XRES_CHECK(fired->time >= now_, "event queue produced a past event");
  now_ = fired->time;
  ++events_processed_;
  fired->callback();
  return true;
}

void Simulation::run(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_) {
    if (max_events != 0 && executed >= max_events) break;
    // Watchdog poll (util/deadline.hpp): cheap thread-local check; throws
    // TrialTimeoutError past the executor-armed per-trial deadline. Every
    // 4096 events keeps the clock_gettime cost out of the hot loop.
    if ((executed & 0xFFFU) == 0) {
      ++watchdog_polls_;
      deadline_poll();
    }
    if (!step()) break;
    ++executed;
  }
}

void Simulation::run_until(TimePoint until) {
  XRES_CHECK(until >= now_, "run_until target is in the past");
  stop_requested_ = false;
  while (!stop_requested_) {
    const auto next = queue_.next_time();
    if (!next.has_value() || *next > until) break;
    step();
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

}  // namespace xres
