// Tests for the xres::study registry: the catalog is complete and
// well-formed, parameter schemas validate, and the generic study_main
// rejects bad invocations with the usage exit code.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "study/options.hpp"
#include "study/registry.hpp"
#include "study/study_main.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace xres::study {
namespace {

TEST(StudyRegistry, CatalogIsEnumerableAndWellFormed) {
  const StudyRegistry& registry = StudyRegistry::instance();
  const std::vector<const StudyDefinition*> all = registry.all();
  EXPECT_GE(all.size(), 21u);
  EXPECT_EQ(all.size(), registry.size());

  std::set<std::string> names;
  for (const StudyDefinition* def : all) {
    ASSERT_NE(def, nullptr);
    EXPECT_FALSE(def->name.empty());
    EXPECT_TRUE(names.insert(def->name).second) << "duplicate name: " << def->name;
    EXPECT_FALSE(def->description.empty()) << def->name;
    EXPECT_TRUE(static_cast<bool>(def->run)) << def->name;
    EXPECT_EQ(registry.find(def->name), def);
  }
}

TEST(StudyRegistry, CatalogOrderedByGroupThenName) {
  const std::vector<const StudyDefinition*> all = StudyRegistry::instance().all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    const StudyDefinition& a = *all[i - 1];
    const StudyDefinition& b = *all[i];
    const bool ordered =
        a.group < b.group || (a.group == b.group && a.name < b.name);
    EXPECT_TRUE(ordered) << a.name << " before " << b.name;
  }
}

TEST(StudyRegistry, PaperStudiesArePresent) {
  const StudyRegistry& registry = StudyRegistry::instance();
  for (const char* name :
       {"fig1_efficiency_a32", "fig2_efficiency_d64", "fig3_efficiency_d64_mtbf2p5",
        "fig4_resource_management", "fig5_resilience_selection", "table1_app_types",
        "table2_parameters", "efficiency", "workload"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("no_such_study"), nullptr);

  // The suite membership: every paper figure and table, nothing else.
  const auto suite =
      registry.group_members({StudyGroup::kFigure, StudyGroup::kTable});
  EXPECT_EQ(suite.size(), 7u);
}

TEST(StudyRegistry, JournalIdsKeepHistoricalIdentities) {
  const StudyRegistry& registry = StudyRegistry::instance();
  // Figure 1-3 journals are identified by their historical title strings so
  // pre-registry journals stay resumable.
  EXPECT_EQ(registry.find("fig1_efficiency_a32")->journal_study(),
            "Figure 1: efficiency vs. system share, application A32, MTBF 10 y");
  EXPECT_EQ(registry.find("fig2_efficiency_d64")->journal_study(),
            "Figure 2: efficiency vs. system share, application D64, MTBF 10 y");
  EXPECT_EQ(registry.find("fig3_efficiency_d64_mtbf2p5")->journal_study(),
            "Figure 3: efficiency vs. system share, application D64, MTBF 2.5 y");
  EXPECT_EQ(registry.find("efficiency")->journal_study(), "xres efficiency");
  EXPECT_EQ(registry.find("workload")->journal_study(), "xres workload");
  // Everything else journals under its own name.
  EXPECT_EQ(registry.find("ablation_severity_pmf")->journal_study(),
            "ablation_severity_pmf");
}

TEST(StudyRegistry, SchemaDefaultsParseThroughAccessors) {
  for (const StudyDefinition* def : StudyRegistry::instance().all()) {
    const StudyParams params{*def};
    EXPECT_EQ(params.values().size(), def->params.size()) << def->name;
    for (const ParamSpec& spec : def->params) {
      EXPECT_FALSE(spec.help.empty()) << def->name << " --" << spec.key;
      switch (spec.type) {
        case ParamSpec::Type::kInt:
          EXPECT_NO_THROW((void)params.integer(spec.key))
              << def->name << " --" << spec.key;
          break;
        case ParamSpec::Type::kReal:
          EXPECT_NO_THROW((void)params.real(spec.key))
              << def->name << " --" << spec.key;
          break;
        case ParamSpec::Type::kString:
          EXPECT_NO_THROW((void)params.str(spec.key))
              << def->name << " --" << spec.key;
          break;
      }
      // The default must satisfy the spec's own validation.
      EXPECT_NO_THROW(validate_param_value(spec, spec.default_value))
          << def->name << " --" << spec.key;
    }
  }
}

TEST(StudyRegistry, ParamBindingValidation) {
  const StudyDefinition* def = StudyRegistry::instance().find("fig1_efficiency_a32");
  ASSERT_NE(def, nullptr);
  StudyParams params{*def};

  EXPECT_NO_THROW(params.set("trials", "80"));
  EXPECT_EQ(params.u32("trials"), 80u);

  EXPECT_THROW(params.set("no_such_key", "1"), CheckError);
  EXPECT_THROW(params.set("trials", "bogus"), CheckError);
  EXPECT_THROW(params.set("trials", "0"), CheckError);  // below the minimum
}

TEST(StudyRegistry, CsvPathImpliesCsv) {
  const StudyDefinition* def = StudyRegistry::instance().find("fig1_efficiency_a32");
  ASSERT_NE(def, nullptr);
  CliParser cli{def->help_summary()};
  add_study_options(cli, *def);
  const char* argv[] = {"prog", "--csv-path", "/tmp/implied.csv"};
  ASSERT_TRUE(cli.parse(3, argv));
  const HarnessOptions options = read_harness_options(cli, *def);
  EXPECT_TRUE(options.csv);
  EXPECT_EQ(options.csv_path, "/tmp/implied.csv");
}

using StudyMainDeathTest = ::testing::Test;

TEST(StudyMainDeathTest, UnknownStudyReturnsOne) {
  const char* argv[] = {"prog"};
  EXPECT_EQ(study_main("no_such_study", 1, argv), 1);
}

TEST(StudyMainDeathTest, UnknownOptionExitsUsage) {
  // `xres run <study> --set nonexistent=5` lowers into exactly this argv, so
  // this is the unknown-`--set`-key exit path.
  const char* argv[] = {"prog", "--nonexistent=5"};
  EXPECT_EXIT(study_main("fig1_efficiency_a32", 2, argv),
              ::testing::ExitedWithCode(CliParser::kExitUsage),
              "unknown option");
}

TEST(StudyMainDeathTest, BadParamValueExitsUsage) {
  const char* argv[] = {"prog", "--trials=bogus"};
  EXPECT_EXIT(study_main("fig1_efficiency_a32", 2, argv),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "trials");
}

TEST(StudyMainDeathTest, ResumeWithoutJournalExitsUsage) {
  const char* argv[] = {"prog", "--resume"};
  EXPECT_EXIT(study_main("fig1_efficiency_a32", 2, argv),
              ::testing::ExitedWithCode(CliParser::kExitUsage), "--resume");
}

}  // namespace
}  // namespace xres::study
