#include "study/spec.hpp"

#include <fstream>
#include <sstream>

#include "study/options.hpp"
#include "util/check.hpp"
#include "util/toml.hpp"

namespace xres::study {

namespace {

/// The human-readable part of a CheckError ("check failed: <expr> at
/// <file>:<line> — <msg>" → "<msg>"), for re-prefixing with the spec path.
std::string check_message(const CheckError& e) {
  std::string message = e.what();
  const std::string sep = " — ";
  if (const std::size_t pos = message.find(sep); pos != std::string::npos) {
    message = message.substr(pos + sep.size());
  }
  return message;
}

[[noreturn]] void fail_spec(const std::string& path, const std::string& what) {
  XRES_CHECK(false, path + ": " + what);
}

bool valid_study_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Scalar value text for a [params] binding or sweep-axis element. Strings
/// contribute their decoded content, numbers/bools their raw token.
std::string toml_scalar_text(const util::TomlValue& value, const std::string& key) {
  XRES_CHECK(value.is_scalar(),
             "parameter '" + key + "' must be a scalar (use [sweep] for value lists)");
  return value.text;
}

std::string json_scalar_text(const recovery::JsonValue& value, const std::string& key) {
  switch (value.kind()) {
    case recovery::JsonValue::Kind::kString: return value.as_string();
    case recovery::JsonValue::Kind::kNumber: return value.number_text();
    case recovery::JsonValue::Kind::kBool: return value.as_bool() ? "true" : "false";
    default:
      XRES_CHECK(false, "parameter '" + key + "' must be a scalar");
      return {};
  }
}

std::uint64_t parse_seed_text(const std::string& text) {
  XRES_CHECK(!text.empty() && text.find_first_not_of("0123456789") == std::string::npos,
             "seed must be a non-negative integer, got '" + text + "'");
  return std::stoull(text);
}

}  // namespace

StudySpec parse_spec_toml(const std::string& text) {
  const util::TomlDocument doc = util::TomlDocument::parse(text);
  StudySpec spec;

  for (const util::TomlTable& table : doc.tables()) {
    if (table.name.empty()) {
      XRES_CHECK(table.entries.empty(),
                 "top-level key '" + table.entries.front().key +
                     "' outside a section (expected [study], [params], [sweep])");
      continue;
    }
    if (table.name == "study") {
      for (const util::TomlEntry& entry : table.entries) {
        if (entry.key == "name") {
          spec.name = toml_scalar_text(entry.value, entry.key);
        } else if (entry.key == "base") {
          spec.base = toml_scalar_text(entry.value, entry.key);
        } else if (entry.key == "description") {
          spec.description = toml_scalar_text(entry.value, entry.key);
        } else if (entry.key == "seed") {
          spec.seed = parse_seed_text(toml_scalar_text(entry.value, entry.key));
        } else {
          XRES_CHECK(false, "unknown [study] key '" + entry.key + "'");
        }
      }
    } else if (table.name == "params") {
      for (const util::TomlEntry& entry : table.entries) {
        spec.params.emplace_back(entry.key, toml_scalar_text(entry.value, entry.key));
      }
    } else if (table.name == "sweep") {
      for (const util::TomlEntry& entry : table.entries) {
        XRES_CHECK(entry.value.kind == util::TomlValue::Kind::kArray,
                   "sweep axis '" + entry.key + "' must be an array of values");
        SweepAxis axis;
        axis.key = entry.key;
        for (const util::TomlValue& item : entry.value.items) {
          XRES_CHECK(item.is_scalar(),
                     "sweep axis '" + entry.key + "' must hold scalar values");
          axis.values.push_back(item.text);
        }
        XRES_CHECK(!axis.values.empty(), "sweep axis '" + entry.key + "' is empty");
        spec.sweep.push_back(std::move(axis));
      }
    } else {
      XRES_CHECK(false, "unknown section [" + table.name + "]");
    }
  }

  XRES_CHECK(!spec.name.empty(), "[study] needs a 'name'");
  XRES_CHECK(!spec.base.empty(), "[study] needs a 'base' (a registered study)");
  return spec;
}

StudySpec parse_spec_json(const std::string& text) {
  const recovery::JsonValue doc = recovery::parse_json(text);
  StudySpec spec;

  for (const recovery::JsonMember& section : doc.as_object()) {
    if (section.first == "study") {
      for (const recovery::JsonMember& m : section.second.as_object()) {
        if (m.first == "name") {
          spec.name = m.second.as_string();
        } else if (m.first == "base") {
          spec.base = m.second.as_string();
        } else if (m.first == "description") {
          spec.description = m.second.as_string();
        } else if (m.first == "seed") {
          spec.seed = parse_seed_text(m.second.number_text());
        } else {
          XRES_CHECK(false, "unknown \"study\" key '" + m.first + "'");
        }
      }
    } else if (section.first == "params") {
      for (const recovery::JsonMember& m : section.second.as_object()) {
        spec.params.emplace_back(m.first, json_scalar_text(m.second, m.first));
      }
    } else if (section.first == "sweep") {
      for (const recovery::JsonMember& m : section.second.as_object()) {
        SweepAxis axis;
        axis.key = m.first;
        for (const recovery::JsonValue& item : m.second.as_array()) {
          axis.values.push_back(json_scalar_text(item, m.first));
        }
        XRES_CHECK(!axis.values.empty(), "sweep axis '" + m.first + "' is empty");
        spec.sweep.push_back(std::move(axis));
      }
    } else {
      XRES_CHECK(false, "unknown top-level key '" + section.first +
                            "' (expected \"study\", \"params\", \"sweep\")");
    }
  }

  XRES_CHECK(!spec.name.empty(), "\"study\" needs a \"name\"");
  XRES_CHECK(!spec.base.empty(), "\"study\" needs a \"base\" (a registered study)");
  return spec;
}

StudySpec load_study_spec(const std::string& path) {
  const bool is_toml = path.size() > 5 && path.rfind(".toml") == path.size() - 5;
  const bool is_json = path.size() > 5 && path.rfind(".json") == path.size() - 5;
  if (!is_toml && !is_json) {
    fail_spec(path, "spec files must end in .toml or .json");
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) fail_spec(path, "cannot read spec file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  try {
    return is_toml ? parse_spec_toml(text) : parse_spec_json(text);
  } catch (const util::TomlParseError& e) {
    fail_spec(path, e.what());
  } catch (const recovery::JsonParseError& e) {
    fail_spec(path, e.what());
  } catch (const CheckError& e) {
    fail_spec(path, check_message(e));
  }
}

LoadedStudy materialize_spec(const StudySpec& spec) {
  XRES_CHECK(valid_study_name(spec.name),
             "study name '" + spec.name +
                 "' must be non-empty [A-Za-z0-9._-] (it keys artifacts)");
  const StudyDefinition* base = StudyRegistry::instance().find(spec.base);
  XRES_CHECK(base != nullptr,
             "unknown base study '" + spec.base + "' (see `xres list`)");

  auto def = std::make_shared<StudyDefinition>();
  def->name = spec.name;
  def->group = base->group;
  def->description = spec.description.empty() ? base->description : spec.description;
  // summary left empty: help_summary() falls back to "<name> — <description>".
  def->journal_id = spec.name;
  def->options = base->options;
  if (spec.seed.has_value()) def->options.default_seed = *spec.seed;
  def->params = base->params;
  def->run = base->run;

  for (const auto& [key, value] : spec.params) {
    XRES_CHECK(def->params.find(key) != nullptr,
               "unknown parameter '" + key + "' for study '" + spec.base + "'");
    def->params.set_default(key, value);
  }
  for (const SweepAxis& axis : spec.sweep) {
    const ParamSpec* param = def->params.find(axis.key);
    XRES_CHECK(param != nullptr,
               "unknown sweep axis '" + axis.key + "' for study '" + spec.base + "'");
    for (const std::string& value : axis.values) validate_param_value(*param, value);
  }

  LoadedStudy out;
  out.def = std::move(def);
  out.sweep = spec.sweep;
  return out;
}

LoadedStudy load_study_from_file(const std::string& path) {
  const StudySpec spec = load_study_spec(path);  // errors already path-prefixed
  try {
    return materialize_spec(spec);
  } catch (const CheckError& e) {
    fail_spec(path, check_message(e));
  }
}

LoadedStudy load_study_from_file_or_exit(const std::string& path) {
  try {
    return load_study_from_file(path);
  } catch (const CheckError& e) {
    usage_error_from(e);
  }
}

void write_schema_json(obs::JsonWriter& json, const ParamSchema& schema) {
  json.begin_array();
  for (const ParamSpec& p : schema) {
    json.begin_object();
    json.key("key").value(p.key);
    json.key("type").value(p.type_name());
    json.key("help").value(p.help);
    json.key("default").value(p.default_value);
    if (p.min_value.has_value()) json.key("min").value(*p.min_value);
    if (p.max_value.has_value()) json.key("max").value(*p.max_value);
    json.end_object();
  }
  json.end_array();
}

ParamSchema schema_from_json(const recovery::JsonValue& json) {
  ParamSchema schema;
  for (const recovery::JsonValue& entry : json.as_array()) {
    ParamSpec spec;
    for (const recovery::JsonMember& m : entry.as_object()) {
      if (m.first == "key") {
        spec.key = m.second.as_string();
      } else if (m.first == "type") {
        const auto type = ParamSpec::type_from_name(m.second.as_string());
        XRES_CHECK(type.has_value(),
                   "unknown parameter type '" + m.second.as_string() + "'");
        spec.type = *type;
      } else if (m.first == "help") {
        spec.help = m.second.as_string();
      } else if (m.first == "default") {
        spec.default_value = m.second.as_string();
      } else if (m.first == "min") {
        spec.min_value = m.second.as_double();
      } else if (m.first == "max") {
        spec.max_value = m.second.as_double();
      } else {
        XRES_CHECK(false, "unknown schema field '" + m.first + "'");
      }
    }
    ParamSpec& added = schema.add(std::move(spec));
    validate_param_value(added, added.default_value);
  }
  return schema;
}

namespace {

const char* obs_name(StudyOptionsSpec::Obs obs) {
  switch (obs) {
    case StudyOptionsSpec::Obs::kNone: return "none";
    case StudyOptionsSpec::Obs::kWithTrace: return "trace";
    case StudyOptionsSpec::Obs::kNoTrace: return "no-trace";
  }
  return "?";
}

void write_describe_object(obs::JsonWriter& w, const StudyDefinition& def) {
  w.begin_object();
  w.key("study").value(def.name);
  w.key("group").value(to_string(def.group));
  w.key("description").value(def.description);
  w.key("journal").value(def.journal_study());
  w.key("options").begin_object();
  w.key("seed").value(def.options.seed);
  w.key("default_seed").value(static_cast<std::uint64_t>(def.options.default_seed));
  w.key("threads").value(def.options.threads);
  w.key("csv").value(def.options.csv);
  w.key("chart").value(def.options.chart);
  w.key("report").value(def.options.report);
  w.key("obs").value(obs_name(def.options.obs));
  w.key("recovery").value(def.options.recovery);
  w.end_object();
  w.key("params");
  write_schema_json(w, def.params);
  w.end_object();
}

}  // namespace

std::string describe_study_json(const StudyDefinition& def) {
  obs::JsonWriter w;
  write_describe_object(w, def);
  return w.str();
}

std::string catalog_json() {
  obs::JsonWriter w;
  w.begin_object();
  w.key("studies").begin_array();
  for (const StudyDefinition* def : StudyRegistry::instance().all()) {
    write_describe_object(w, *def);
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace xres::study
