#include "core/single_app_study.hpp"

#include <cmath>

#include "obs/perf.hpp"
#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"
#include "util/check.hpp"

namespace xres {

namespace {

/// The application spec for one size fraction (the historical rounding).
AppSpec cell_app(const EfficiencyStudyConfig& config, double fraction) {
  XRES_CHECK(fraction > 0.0 && fraction <= 1.0, "size fraction must be in (0, 1]");
  const auto nodes = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(config.machine.node_count)));
  return AppSpec::from_baseline(config.app_type, std::max(1U, nodes), config.baseline);
}

SingleAppTrialConfig cell_trial(const EfficiencyStudyConfig& config, const AppSpec& app,
                                std::size_t ti) {
  SingleAppTrialConfig trial;
  trial.app = app;
  trial.technique = config.techniques[ti];
  trial.machine = config.machine;
  trial.resilience = config.resilience;
  trial.failure_distribution = config.failure_distribution;
  return trial;
}

struct SimulatedCell {
  Summary efficiency;
  double mean_failures{0.0};
};

/// One simulated (size × technique) cell, exactly as the historical study
/// loop ran it: one batch with per-trial seeds derive_seed(seed, si, ti, t)
/// and journal label "s<si>.t<ti>", observers when requested, reduction in
/// trial order (bit-identical for every thread count).
SimulatedCell simulate_cell(const EfficiencyStudyConfig& config,
                            const TrialExecutor& executor,
                            const SingleAppTrialConfig& trial, double fraction,
                            std::size_t si, std::size_t ti,
                            EfficiencyStudyResult& result) {
  const bool observing = config.collect_metrics || config.collect_trace;

  std::vector<TrialSpec> specs;
  specs.reserve(config.trials);
  for (std::uint32_t t = 0; t < config.trials; ++t) {
    specs.push_back(TrialSpec{trial, {si, ti, t}});
  }
  // The journal batch label: stable across runs of the same sweep, and
  // the record's derived-seed fingerprint guards against a changed one.
  const std::string batch = "s" + std::to_string(si) + ".t" + std::to_string(ti);

  std::vector<ExecutionResult> outcomes;
  if (observing) {
    // One observer per trial; metrics on all, trace on trial 0 only
    // (a full-study trace would drown Perfetto in identical tracks).
    std::vector<obs::TrialObs> observers(specs.size());
    for (obs::TrialObs& o : observers) {
      if (config.collect_metrics) o.enable_metrics();
    }
    if (config.collect_trace) observers.front().enable_trace();
    outcomes = executor.run_batch(config.seed, specs, observers, config.recovery,
                                  batch, &result.recovery_report);
    if (config.collect_metrics) {
      // Merge in spec order: byte-identical for every thread count.
      for (const obs::TrialObs& o : observers) {
        result.metrics->merge(*o.metrics());
        result.technique_metrics[ti].merge(*o.metrics());
      }
    }
    if (config.collect_trace) {
      result.trace.add_track(
          fmt_percent(fraction, 0) + " " + to_string(config.techniques[ti]),
          std::move(*observers.front().trace()));
    }
  } else {
    outcomes = executor.run_batch(config.seed, specs, {}, config.recovery, batch,
                                  &result.recovery_report);
  }

  // Reduce in trial order: bit-identical for every thread count.
  RunningStats efficiency;
  RunningStats failures;
  for (const ExecutionResult& r : outcomes) {
    efficiency.add(r.efficiency);
    failures.add(static_cast<double>(r.failures_seen));
  }
  return {efficiency.summary(), failures.empty() ? 0.0 : failures.mean()};
}

/// The surrogate study loop (config.surrogate != kSim): simulate the
/// anchor sizes (endpoints + every second interior point), answer interior
/// cells from the analytic prediction corrected by the interpolated anchor
/// residual, and — in auto mode — fall back to full simulation for cells
/// whose reported bound exceeds kAutoBoundThreshold. Simulated cells are
/// byte-identical to the kSim path (same seeds, same batch labels).
EfficiencyStudyResult run_surrogate_study(const EfficiencyStudyConfig& config,
                                          const StudyProgress& progress) {
  EfficiencyStudyResult result;
  result.config = config;
  const std::size_t sizes = config.size_fractions.size();
  const std::size_t techs = config.techniques.size();
  const std::size_t total_cells = sizes * techs;
  std::size_t done_cells = 0;

  const TrialExecutor executor{config.threads};
  if (config.collect_metrics) {
    result.metrics.emplace();
    result.technique_metrics.resize(techs);
  }
  // Observed or journaled trials have per-trial side effects a memo hit
  // would skip; bypass the anchor memo entirely for those runs.
  const bool memoizable = !config.collect_metrics && !config.collect_trace &&
                          !config.recovery.active();

  result.efficiency.assign(sizes, std::vector<Summary>(techs));
  result.mean_failures.assign(sizes, std::vector<double>(techs, 0.0));
  result.surrogate_cells.assign(sizes, std::vector<SurrogateCell>(techs));

  // Closed-form predictions for every cell, and the anchor grid.
  std::vector<AppSpec> apps;
  apps.reserve(sizes);
  for (double fraction : config.size_fractions) apps.push_back(cell_app(config, fraction));
  std::vector<std::vector<SurrogateAnchor>> anchors(sizes);
  std::uint64_t hits = 0;
  std::uint64_t fallbacks = 0;

  const auto simulate = [&](std::size_t si, std::size_t ti) -> SimulatedCell {
    const SingleAppTrialConfig trial = cell_trial(config, apps[si], ti);
    return simulate_cell(config, executor, trial, config.size_fractions[si], si, ti,
                         result);
  };

  // Pass 1: anchors (memoized when side-effect free).
  for (std::size_t si = 0; si < sizes; ++si) {
    if (!surrogate_anchor_index(si, sizes)) continue;
    anchors[si].resize(techs);
    for (std::size_t ti = 0; ti < techs; ++ti) {
      const SingleAppTrialConfig trial = cell_trial(config, apps[si], ti);
      const ExecutionPlan plan =
          make_plan(trial.technique, trial.app, trial.machine, trial.resilience);
      const double analytic = predict_efficiency(plan, trial.resilience);

      const std::string key =
          memoizable ? surrogate_cell_key(trial, config.seed, si, ti, config.trials)
                     : std::string{};
      std::optional<SurrogateAnchor> memo =
          memoizable ? surrogate_memo_find(key) : std::nullopt;
      SurrogateAnchor anchor;
      if (memo.has_value()) {
        anchor = *memo;
      } else {
        const SimulatedCell cell = simulate(si, ti);
        anchor.fraction = config.size_fractions[si];
        anchor.analytic = analytic;
        anchor.mean = cell.efficiency.mean;
        anchor.sem = cell.efficiency.count > 0
                         ? cell.efficiency.stddev /
                               std::sqrt(static_cast<double>(cell.efficiency.count))
                         : 0.0;
        anchor.mean_failures = cell.mean_failures;
        result.efficiency[si][ti] = cell.efficiency;
        if (memoizable) surrogate_memo_store(key, anchor);
      }
      if (memo.has_value()) {
        // Anchor restored from the memo: report the memoized statistics
        // (count 0 marks it as not re-simulated in this run's CSV).
        result.efficiency[si][ti] = Summary{};
        result.efficiency[si][ti].mean = anchor.mean;
      }
      anchors[si][ti] = anchor;
      result.mean_failures[si][ti] = anchor.mean_failures;
      SurrogateCell& cell = result.surrogate_cells[si][ti];
      cell.simulated = true;
      cell.anchor = true;
      cell.analytic = analytic;
      cell.predicted = anchor.mean;
      cell.bound = 2.0 * anchor.sem;
      ++done_cells;
      if (progress) progress(done_cells, total_cells);
    }
  }

  // Pass 2: interior cells, interpolated between the bracketing anchors.
  for (std::size_t si = 0; si < sizes; ++si) {
    if (surrogate_anchor_index(si, sizes)) continue;
    std::size_t lo = si;
    while (lo > 0 && !surrogate_anchor_index(--lo, sizes)) {}
    std::size_t hi = si;
    while (hi + 1 < sizes && !surrogate_anchor_index(++hi, sizes)) {}
    for (std::size_t ti = 0; ti < techs; ++ti) {
      const SingleAppTrialConfig trial = cell_trial(config, apps[si], ti);
      const ExecutionPlan plan =
          make_plan(trial.technique, trial.app, trial.machine, trial.resilience);
      const double analytic = predict_efficiency(plan, trial.resilience);
      const SurrogateEstimate est = surrogate_estimate(
          anchors[lo][ti], anchors[hi][ti], config.size_fractions[si], analytic);

      SurrogateCell& cell = result.surrogate_cells[si][ti];
      cell.analytic = analytic;
      cell.predicted = est.predicted;
      cell.bound = est.bound;
      if (config.surrogate == SurrogateMode::kAuto && est.bound > kAutoBoundThreshold) {
        const SimulatedCell sim = simulate(si, ti);
        cell.simulated = true;
        cell.fallback = true;
        result.efficiency[si][ti] = sim.efficiency;
        result.mean_failures[si][ti] = sim.mean_failures;
        ++fallbacks;
      } else {
        cell.simulated = false;
        result.efficiency[si][ti] = Summary{};
        result.efficiency[si][ti].mean = est.predicted;
        result.mean_failures[si][ti] = est.mean_failures;
        ++hits;
      }
      ++done_cells;
      if (progress) progress(done_cells, total_cells);
    }
  }

  obs::perf_add_surrogate(hits, fallbacks);
  return result;
}

}  // namespace

EfficiencyStudyResult run_efficiency_study(const EfficiencyStudyConfig& config,
                                           const StudyProgress& progress) {
  XRES_CHECK(config.trials > 0, "study needs at least one trial");
  XRES_CHECK(!config.size_fractions.empty(), "study needs at least one size");
  XRES_CHECK(!config.techniques.empty(), "study needs at least one technique");

  if (config.surrogate != SurrogateMode::kSim) {
    return run_surrogate_study(config, progress);
  }

  EfficiencyStudyResult result;
  result.config = config;
  const std::size_t total_cells =
      config.size_fractions.size() * config.techniques.size();
  std::size_t done_cells = 0;

  const TrialExecutor executor{config.threads};

  if (config.collect_metrics) {
    result.metrics.emplace();
    result.technique_metrics.resize(config.techniques.size());
  }

  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    const double fraction = config.size_fractions[si];
    const AppSpec app = cell_app(config, fraction);

    result.efficiency.emplace_back();
    result.mean_failures.emplace_back();
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const SingleAppTrialConfig trial = cell_trial(config, app, ti);
      const SimulatedCell cell =
          simulate_cell(config, executor, trial, fraction, si, ti, result);
      result.efficiency[si].push_back(cell.efficiency);
      result.mean_failures[si].push_back(cell.mean_failures);
      ++done_cells;
      if (progress) progress(done_cells, total_cells);
    }
  }
  return result;
}

Table EfficiencyStudyResult::to_table() const {
  std::vector<std::string> headers{"system share"};
  for (TechniqueKind kind : config.techniques) headers.emplace_back(to_string(kind));
  Table table{std::move(headers)};
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    std::vector<std::string> row{fmt_percent(config.size_fractions[si], 0)};
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const Summary& s = efficiency[si][ti];
      row.push_back(fmt_mean_std(s.mean, s.stddev));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table EfficiencyStudyResult::to_metrics_table() const {
  std::vector<std::string> headers{"metric"};
  for (TechniqueKind kind : config.techniques) headers.emplace_back(to_string(kind));
  headers.emplace_back("total");
  Table table{std::move(headers)};
  if (!metrics.has_value()) return table;

  const auto cell = [](const obs::MetricSet& set, const obs::MetricDesc& d) -> std::string {
    switch (d.id.kind()) {
      case obs::MetricKind::kCounter:
        return std::to_string(set.counter(d.id));
      case obs::MetricKind::kGauge:
        return fmt_double(set.gauge(d.id), 2);
      case obs::MetricKind::kHistogram: {
        const obs::HistogramData& h = set.histogram(d.id);
        if (h.count == 0) return "-";
        return fmt_double(h.mean(), 3) + " (n=" + std::to_string(h.count) + ")";
      }
    }
    return "?";
  };
  const auto is_zero = [](const obs::MetricSet& set, const obs::MetricDesc& d) {
    switch (d.id.kind()) {
      case obs::MetricKind::kCounter: return set.counter(d.id) == 0;
      case obs::MetricKind::kGauge: return set.gauge(d.id) == 0.0;
      case obs::MetricKind::kHistogram: return set.histogram(d.id).count == 0;
    }
    return true;
  };

  for (const obs::MetricDesc& d : obs::MetricRegistry::global().descriptors()) {
    if (is_zero(*metrics, d)) continue;  // keep the breakdown readable
    std::vector<std::string> row{d.name};
    for (const obs::MetricSet& set : technique_metrics) row.push_back(cell(set, d));
    row.push_back(cell(*metrics, d));
    table.add_row(std::move(row));
  }
  return table;
}

Table EfficiencyStudyResult::to_surrogate_table() const {
  Table table{{"system share", "technique", "source", "analytic", "predicted",
               "bound"}};
  if (surrogate_cells.empty()) return table;
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const SurrogateCell& cell = surrogate_cells[si][ti];
      const char* source = cell.anchor     ? "anchor"
                           : cell.fallback ? "fallback"
                           : cell.simulated ? "sim"
                                            : "surrogate";
      table.add_row({fmt_percent(config.size_fractions[si], 0),
                     to_string(config.techniques[ti]), source,
                     fmt_double(cell.analytic, 4), fmt_double(cell.predicted, 4),
                     fmt_double(cell.bound, 4)});
    }
  }
  return table;
}

Table EfficiencyStudyResult::to_csv_table() const {
  Table table{{"size_fraction", "technique", "mean_efficiency", "stddev", "trials",
               "mean_failures"}};
  for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
    for (std::size_t ti = 0; ti < config.techniques.size(); ++ti) {
      const Summary& s = efficiency[si][ti];
      table.add_row({fmt_double(config.size_fractions[si], 4),
                     to_string(config.techniques[ti]), fmt_double(s.mean, 6),
                     fmt_double(s.stddev, 6), std::to_string(s.count),
                     fmt_double(mean_failures[si][ti], 2)});
    }
  }
  return table;
}

}  // namespace xres
