// Tests for the deterministic I/O fault-injection layer (util/io.hpp): the
// spec grammar, the pure per-op fault plan (replayability), the retry /
// fail-fast policy split, and the hardened atomic-write path surviving
// every single injected fault while persistent failures surface as
// io::IoError (ENOSPC immediately, flagged disk_full for the resumable
// exit). Crash-points are pinned with a death test: the process must die
// with kCrashExitCode and leave no complete artifact behind.

#include "util/io.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace xres {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in{path};
  return in.good();
}

/// Every test arms process-wide injection; teardown must disarm it so
/// failures here cannot cascade into unrelated tests of the same binary.
class IoFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    io::clear_faults();
    io::reset_degraded_warnings_for_tests();
  }
};

TEST_F(IoFaultTest, ParseFaultSpecGrammar) {
  const io::FaultConfig basic = io::parse_fault_spec("7:0.25");
  EXPECT_EQ(basic.seed, 7U);
  EXPECT_DOUBLE_EQ(basic.rate, 0.25);
  EXPECT_EQ(basic.kinds, io::kFaultAll);  // kinds default to all
  EXPECT_EQ(basic.crash_at, 0U);
  EXPECT_FALSE(basic.trace);

  const io::FaultConfig kinds = io::parse_fault_spec("1:0.5:eio,short");
  EXPECT_EQ(kinds.kinds, io::kFaultEio | io::kFaultShort);

  const io::FaultConfig shots =
      io::parse_fault_spec("9:0:enospc@4,fsync@2,crash@11,trace");
  EXPECT_EQ(shots.seed, 9U);
  EXPECT_DOUBLE_EQ(shots.rate, 0.0);
  EXPECT_EQ(shots.crash_at, 11U);
  EXPECT_TRUE(shots.trace);
  ASSERT_EQ(shots.one_shots.size(), 2U);
  EXPECT_EQ(shots.one_shots[0].op, 4U);
  EXPECT_EQ(shots.one_shots[0].kind, io::kFaultEnospc);
  EXPECT_EQ(shots.one_shots[1].op, 2U);
  EXPECT_EQ(shots.one_shots[1].kind, io::kFaultFsync);

  EXPECT_EQ(io::parse_fault_spec("3:1:all").kinds, io::kFaultAll);
}

TEST_F(IoFaultTest, ParseFaultSpecRejectsMalformed) {
  EXPECT_THROW(io::parse_fault_spec(""), CheckError);
  EXPECT_THROW(io::parse_fault_spec("7"), CheckError);          // no rate
  EXPECT_THROW(io::parse_fault_spec("x:0.5"), CheckError);      // bad seed
  EXPECT_THROW(io::parse_fault_spec("7:"), CheckError);         // empty rate
  EXPECT_THROW(io::parse_fault_spec("7:1.5"), CheckError);      // rate > 1
  EXPECT_THROW(io::parse_fault_spec("7:-0.1"), CheckError);     // rate < 0
  EXPECT_THROW(io::parse_fault_spec("7:0.5:bogus"), CheckError);
  EXPECT_THROW(io::parse_fault_spec("7:0.5:eio,,short"), CheckError);
  EXPECT_THROW(io::parse_fault_spec("7:0:crash@0"), CheckError);  // 1-based
  EXPECT_THROW(io::parse_fault_spec("7:0:eio@"), CheckError);
  EXPECT_THROW(io::parse_fault_spec("7:0:wat@3"), CheckError);
  // A nonzero rate with only non-rate tokens has nothing to inject.
  EXPECT_THROW(io::parse_fault_spec("7:0.5:trace"), CheckError);
}

TEST_F(IoFaultTest, PlannedFaultIsPureAndSeedSensitive) {
  io::FaultConfig config;
  config.seed = 42;
  config.rate = 0.3;
  // Replayability: the same (config, op) always plans the same fault.
  for (std::uint64_t op = 1; op <= 200; ++op) {
    EXPECT_EQ(io::planned_fault(config, op), io::planned_fault(config, op));
  }
  // Different seeds plan different faults somewhere in a short window.
  io::FaultConfig other = config;
  other.seed = 43;
  bool differs = false;
  for (std::uint64_t op = 1; op <= 200 && !differs; ++op) {
    differs = io::planned_fault(config, op) != io::planned_fault(other, op);
  }
  EXPECT_TRUE(differs);

  // rate 0 plans nothing; rate 1 plans a fault (within the mask) every op.
  config.rate = 0.0;
  EXPECT_EQ(io::planned_fault(config, 1), 0U);
  config.rate = 1.0;
  config.kinds = io::kFaultEio | io::kFaultFsync;
  for (std::uint64_t op = 1; op <= 50; ++op) {
    const unsigned kind = io::planned_fault(config, op);
    EXPECT_TRUE(kind == io::kFaultEio || kind == io::kFaultFsync);
  }
}

TEST_F(IoFaultTest, PlannedFaultRateIsCalibrated) {
  io::FaultConfig config;
  config.seed = 1234;
  config.rate = 0.2;
  std::uint64_t injected = 0;
  constexpr std::uint64_t kOps = 20000;
  for (std::uint64_t op = 1; op <= kOps; ++op) {
    if (io::planned_fault(config, op) != 0) ++injected;
  }
  const double fraction = static_cast<double>(injected) / kOps;
  EXPECT_NEAR(fraction, 0.2, 0.02);
}

TEST_F(IoFaultTest, OneShotFiresExactlyAtItsOp) {
  io::FaultConfig config;
  config.one_shots.push_back({5, io::kFaultEnospc});
  EXPECT_EQ(io::planned_fault(config, 4), 0U);
  EXPECT_EQ(io::planned_fault(config, 5), io::kFaultEnospc);
  EXPECT_EQ(io::planned_fault(config, 6), 0U);
}

/// Ops one write_file_atomic costs with nothing injected — the count-only
/// probe scripts use to size crash matrices (seed:0, read the stats line).
std::uint64_t ops_per_atomic_write(const std::string& path) {
  io::install_faults(io::FaultConfig{});
  write_file_atomic(path, "probe\n");
  const std::uint64_t ops = io::ops_performed();
  io::clear_faults();
  return ops;
}

TEST_F(IoFaultTest, AtomicWriteSurvivesEverySingleTransientFault) {
  const std::string path = temp_path("io_fault_single.txt");
  std::remove(path.c_str());
  const std::uint64_t total = ops_per_atomic_write(path);
  ASSERT_GE(total, 5U);  // open, write, fsync, close, rename

  // One transient fault of each kind at each op of the sequence: the retry
  // policy must absorb all of them and land byte-identical content.
  for (const unsigned kind : {io::kFaultEio, io::kFaultShort, io::kFaultFsync}) {
    for (std::uint64_t op = 1; op <= total; ++op) {
      std::remove(path.c_str());
      io::FaultConfig config;
      config.one_shots.push_back({op, kind});
      io::install_faults(config);
      write_file_atomic(path, "payload\n");
      io::clear_faults();
      EXPECT_EQ(read_file(path), "payload\n")
          << "kind " << kind << " at op " << op;
    }
  }
}

TEST_F(IoFaultTest, AtomicWritePersistentEioThrowsAndLeavesNoArtifact) {
  const std::string path = temp_path("io_fault_persistent.txt");
  std::remove(path.c_str());
  io::install_faults(io::parse_fault_spec("3:1:eio"));
  try {
    write_file_atomic(path, "doomed\n");
    FAIL() << "persistent EIO must throw io::IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_FALSE(e.disk_full());
    EXPECT_NE(std::string{e.what()}.find(path), std::string::npos);
  }
  io::clear_faults();
  EXPECT_FALSE(file_exists(path));
}

TEST_F(IoFaultTest, EnospcFailsFastAsDiskFull) {
  const std::string path = temp_path("io_fault_enospc.txt");
  std::remove(path.c_str());
  io::install_faults(io::parse_fault_spec("3:0:enospc@1"));
  try {
    write_file_atomic(path, "doomed\n");
    FAIL() << "injected ENOSPC must throw io::IoError";
  } catch (const io::IoError& e) {
    EXPECT_TRUE(e.disk_full());
  }
  // A full disk is never retried: the failing open plus at most the
  // best-effort temp cleanup — no backoff loop re-attempting the write.
  EXPECT_LE(io::ops_performed(), 2U);
  EXPECT_EQ(io::faults_injected(), 1U);
}

TEST_F(IoFaultTest, TryWriteDegradesToFalseWithoutThrowing) {
  const std::string path = temp_path("io_fault_try.txt");
  std::remove(path.c_str());
  io::install_faults(io::parse_fault_spec("3:1:eio"));
  EXPECT_FALSE(try_write_file_atomic(path, "best-effort\n"));
  io::clear_faults();
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(try_write_file_atomic(path, "best-effort\n"));
  EXPECT_EQ(read_file(path), "best-effort\n");
}

TEST_F(IoFaultTest, CrashPointDiesWithInjectedExitCode) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("io_fault_crash.txt");
  std::remove(path.c_str());
  // Op 2 is the temp file's fwrite: the child dies mid-write, before the
  // rename, so no complete artifact may appear at the target path.
  EXPECT_EXIT(
      {
        io::install_faults(io::parse_fault_spec("3:0:crash@2"));
        write_file_atomic(path, "never lands\n");
      },
      ::testing::ExitedWithCode(io::kCrashExitCode), "crash");
  EXPECT_FALSE(file_exists(path));
}

TEST_F(IoFaultTest, DisarmedWrappersPassThrough) {
  io::clear_faults();
  EXPECT_FALSE(io::faults_active());
  const std::string path = temp_path("io_fault_off.txt");
  write_file_atomic(path, "plain\n");
  EXPECT_EQ(read_file(path), "plain\n");
  std::remove(path.c_str());
}

TEST_F(IoFaultTest, RetryPolicyRetriesTransientAbortsPermanent) {
  // Transient EIO: fails twice, then succeeds — retried to success.
  int attempts = 0;
  EXPECT_TRUE(io::retry_io(
      "transient", [&] {
        ++attempts;
        if (attempts < 3) {
          errno = EIO;
          return false;
        }
        return true;
      },
      io::RetryPolicy{4, 0}));
  EXPECT_EQ(attempts, 3);

  // ENOSPC aborts on the first attempt, errno preserved for the caller.
  attempts = 0;
  EXPECT_FALSE(io::retry_io(
      "disk-full", [&] {
        ++attempts;
        errno = ENOSPC;
        return false;
      },
      io::RetryPolicy{4, 0}));
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(errno, ENOSPC);

  // Non-transient errors (EACCES) likewise never burn the retry budget.
  attempts = 0;
  EXPECT_FALSE(io::retry_io(
      "denied", [&] {
        ++attempts;
        errno = EACCES;
        return false;
      },
      io::RetryPolicy{4, 0}));
  EXPECT_EQ(attempts, 1);

  // Exhausted retries report the last errno.
  EXPECT_FALSE(io::retry_io(
      "hopeless", [] {
        errno = EIO;
        return false;
      },
      io::RetryPolicy{2, 0}));
  EXPECT_EQ(errno, EIO);
}

TEST_F(IoFaultTest, WarnOnceDegradedWarnsOncePerArtifact) {
  io::reset_degraded_warnings_for_tests();
  ::testing::internal::CaptureStderr();
  io::warn_once_degraded("test artifact", "first failure");
  io::warn_once_degraded("test artifact", "second failure");
  io::warn_once_degraded("other artifact", "first failure");
  const std::string log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("test artifact degraded"), std::string::npos);
  EXPECT_EQ(log.find("second failure"), std::string::npos);
  EXPECT_NE(log.find("other artifact degraded"), std::string::npos);
  EXPECT_NE(log.find("exit code are unaffected"), std::string::npos);
}

}  // namespace
}  // namespace xres
