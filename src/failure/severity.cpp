#include "failure/severity.hpp"

#include "util/check.hpp"

namespace xres {

namespace {

std::vector<double> normalize(std::vector<double> weights) {
  XRES_CHECK(!weights.empty(), "severity model needs at least one level");
  double total = 0.0;
  for (double w : weights) {
    XRES_CHECK(w >= 0.0, "severity weights must be non-negative");
    total += w;
  }
  XRES_CHECK(total > 0.0, "severity weights must have positive sum");
  XRES_CHECK(weights.back() > 0.0,
             "highest severity level must have positive probability");
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

SeverityModel::SeverityModel(std::vector<double> level_weights)
    : weights_{normalize(std::move(level_weights))},
      dist_{std::span<const double>{weights_}} {}

SeverityModel SeverityModel::bluegene_default() {
  return SeverityModel{{0.55, 0.35, 0.10}};
}

SeverityModel SeverityModel::single_level() { return SeverityModel{{1.0}}; }

double SeverityModel::probability(SeverityLevel level) const {
  XRES_CHECK(level >= 1 && level <= level_count(), "severity level out of range");
  return weights_[static_cast<std::size_t>(level - 1)];
}

double SeverityModel::probability_at_least(SeverityLevel level) const {
  XRES_CHECK(level >= 1 && level <= level_count(), "severity level out of range");
  double p = 0.0;
  for (std::size_t i = static_cast<std::size_t>(level - 1); i < weights_.size(); ++i) {
    p += weights_[i];
  }
  return p;
}

SeverityLevel SeverityModel::sample(Pcg32& rng) const {
  return static_cast<SeverityLevel>(dist_.sample(rng)) + 1;
}

}  // namespace xres
