#include "runtime/timeline.hpp"

#include <array>
#include <cmath>

#include "util/check.hpp"

namespace xres {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kWork: return "work";
    case SpanKind::kCheckpoint: return "checkpoint";
    case SpanKind::kRestart: return "restart";
    case SpanKind::kRecovery: return "recovery";
  }
  return "?";
}

void Timeline::add(SpanKind kind, TimePoint start, Duration length) {
  XRES_CHECK(length >= Duration::zero(), "span length must be non-negative");
  if (length == Duration::zero()) return;
  if (!spans_.empty()) {
    const double gap = std::abs((start - spans_.back().end()).to_seconds());
    XRES_CHECK(gap < 1e-6, "timeline spans must be contiguous");
  }
  // Merge adjacent same-kind spans (e.g. work resumed after a masked
  // failure) to keep the record compact.
  if (!spans_.empty() && spans_.back().kind == kind) {
    spans_.back().length += length;
    return;
  }
  spans_.push_back(PhaseSpan{kind, start, length});
}

Duration Timeline::total(SpanKind kind) const {
  Duration sum = Duration::zero();
  for (const PhaseSpan& span : spans_) {
    if (span.kind == kind) sum += span.length;
  }
  return sum;
}

Duration Timeline::total() const {
  Duration sum = Duration::zero();
  for (const PhaseSpan& span : spans_) sum += span.length;
  return sum;
}

std::string Timeline::render(std::size_t width) const {
  XRES_CHECK(width >= 2, "render width too small");
  if (spans_.empty()) return "(empty timeline)";

  constexpr std::array<char, 4> kGlyphs{'=', 'C', 'R', '!'};
  const TimePoint origin = spans_.front().start;
  const Duration window = total();
  const double column = window.to_seconds() / static_cast<double>(width);

  std::string chart;
  chart.reserve(width + 2);
  chart += '|';
  std::size_t span_index = 0;
  double consumed_in_span = 0.0;
  for (std::size_t col = 0; col < width; ++col) {
    // Pick the kind occupying the majority of this column.
    std::array<double, 4> share{};
    double remaining = column;
    while (remaining > 0.0 && span_index < spans_.size()) {
      const PhaseSpan& span = spans_[span_index];
      const double left = span.length.to_seconds() - consumed_in_span;
      const double take = std::min(left, remaining);
      share[static_cast<std::size_t>(span.kind)] += take;
      consumed_in_span += take;
      remaining -= take;
      if (consumed_in_span >= span.length.to_seconds() - 1e-12) {
        ++span_index;
        consumed_in_span = 0.0;
      }
    }
    std::size_t best = 0;
    for (std::size_t k = 1; k < share.size(); ++k) {
      if (share[k] > share[best]) best = k;
    }
    chart += kGlyphs[best];
  }
  chart += '|';
  (void)origin;
  return chart;
}

}  // namespace xres
