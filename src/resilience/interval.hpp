#pragma once

/// \file interval.hpp
/// Optimal checkpoint-interval selection.
///
/// Two tools: the closed-form first-order optimum the paper uses (Eq. 4,
/// after Daly/Young), and a generic numeric optimizer for techniques whose
/// effective failure rate depends on the interval itself (redundancy's
/// replica-exhaustion hazard grows with the interval; Section IV-E).

#include <functional>

#include "util/units.hpp"

namespace xres {

/// Eq. 4: τ = sqrt(2 T_C / λ) − T_C.
///
/// When the checkpoint cost approaches (or exceeds) the failure MTBF the
/// closed form goes non-positive — checkpointing can no longer keep up. We
/// clamp to a small positive interval (cost/10) so the simulation proceeds
/// and exhibits the paper's observed behavior: the application thrashes
/// between checkpoints and restarts and fails to make progress.
[[nodiscard]] Duration daly_interval(Duration checkpoint_cost, Rate failure_rate);

/// Daly's higher-order optimum (Daly 2006, the paper's reference [32]):
/// for δ = checkpoint cost and M = 1/λ,
///   τ = sqrt(2δM)·[1 + (1/3)√(δ/2M) + (1/9)(δ/2M)] − δ   when δ < 2M,
///   τ = M                                                 otherwise.
/// More accurate than Eq. 4 when the checkpoint cost is a sizable fraction
/// of the MTBF (exactly the exascale regime); exposed for the
/// interval-selection ablation bench.
[[nodiscard]] Duration daly_higher_order_interval(Duration checkpoint_cost,
                                                  Rate failure_rate);

/// First-order expected overhead per unit of useful work for checkpointing
/// with interval \p tau: cost/τ + λ(τ)·(τ/2 + restore). Exposed for tests
/// and the analytic efficiency model.
[[nodiscard]] double checkpoint_overhead(Duration tau, Duration save_cost,
                                         Duration restore_cost,
                                         const std::function<Rate(Duration)>& hazard);

struct IntervalOptimum {
  Duration interval{};
  double overhead{0.0};  ///< predicted overhead fraction at the optimum
};

/// Minimize checkpoint_overhead over τ by golden-section search on log τ
/// in [max(save_cost/100, 1 ms), 365 d]. \p hazard maps a candidate
/// interval to the effective failure rate the application experiences with
/// that interval (constant λ_a for CR; interval-dependent for redundancy).
[[nodiscard]] IntervalOptimum optimize_interval(
    Duration save_cost, Duration restore_cost,
    const std::function<Rate(Duration)>& hazard);

}  // namespace xres
