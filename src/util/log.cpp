#include "util/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace xres {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (LogLevel l : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError, LogLevel::kOff}) {
    if (lower == to_string(l)) return l;
  }
  XRES_CHECK(false, "unknown log level: " + name);
}

Logger::Logger() : level_{LogLevel::kWarn} {
  if (const char* env = std::getenv("XRES_LOG")) {
    level_ = parse_log_level(env);
  }
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock{sink_mutex_};
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock{sink_mutex_};
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::fprintf(stderr, "[xres %-5s] %s\n", to_string(level), message.c_str());
}

}  // namespace xres
