#include "resilience/config.hpp"

#include "util/check.hpp"

namespace xres {

void ResilienceConfig::validate() const {
  XRES_CHECK(node_mtbf > Duration::zero(), "node MTBF must be positive");
  XRES_CHECK(!severity_weights.empty(), "severity weights must be non-empty");
  XRES_CHECK(comm_slowdown_per_tc >= 0.0, "comm slowdown must be non-negative");
  XRES_CHECK(recovery_parallelism >= 1.0, "recovery parallelism must be >= 1");
  XRES_CHECK(partial_redundancy > 1.0 && partial_redundancy <= 2.0,
             "partial redundancy degree must be in (1, 2]");
  XRES_CHECK(full_redundancy >= partial_redundancy,
             "full redundancy must be >= partial redundancy");
  XRES_CHECK(max_slowdown > 1.0, "max slowdown cap must exceed 1");
  XRES_CHECK(max_nesting >= 1, "max nesting must be >= 1");
  XRES_CHECK(checkpoint_compression > 0.0 && checkpoint_compression <= 1.0,
             "checkpoint compression must be in (0, 1]");
  XRES_CHECK(semi_blocking_work_rate >= 0.0 && semi_blocking_work_rate < 1.0,
             "semi-blocking work rate must be in [0, 1)");
}

}  // namespace xres
