#include "rm/scheduler.hpp"

namespace xres {

void FcfsScheduler::map(const std::vector<const Job*>& pending, SchedulerContext& ctx,
                        Pcg32& /*rng*/) {
  // Strict arrival order; the first job that does not fit blocks everything
  // behind it until a future mapping event (Section III-D1).
  for (const Job* job : pending) {
    if (!ctx.try_start(*job)) break;
  }
}

}  // namespace xres
