#include "platform/allocator.hpp"

#include <algorithm>

namespace xres {

NodeAllocator::NodeAllocator(std::uint32_t node_count)
    : capacity_{node_count}, free_total_{node_count} {
  XRES_CHECK(node_count > 0, "allocator needs at least one node");
  free_blocks_.emplace(0U, node_count);
}

std::optional<NodeRange> NodeAllocator::allocate(std::uint32_t count) {
  XRES_CHECK(count > 0, "cannot allocate zero nodes");
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second < count) continue;
    const NodeRange range{it->first, count};
    if (it->second == count) {
      free_blocks_.erase(it);
    } else {
      const std::uint32_t new_first = it->first + count;
      const std::uint32_t new_len = it->second - count;
      free_blocks_.erase(it);
      free_blocks_.emplace(new_first, new_len);
    }
    free_total_ -= count;
    return range;
  }
  return std::nullopt;
}

void NodeAllocator::release(NodeRange range) {
  XRES_CHECK(range.count > 0, "cannot release an empty range");
  XRES_CHECK(range.end() <= capacity_, "release beyond machine capacity");

  // Find the first free block at or after the released range and its
  // predecessor, to detect overlap and coalesce.
  auto next = free_blocks_.lower_bound(range.first);
  if (next != free_blocks_.end()) {
    XRES_CHECK(range.end() <= next->first, "release overlaps a free block");
  }
  auto prev = next;
  if (prev != free_blocks_.begin()) {
    --prev;
    XRES_CHECK(prev->first + prev->second <= range.first,
               "release overlaps a free block");
  } else {
    prev = free_blocks_.end();
  }

  std::uint32_t first = range.first;
  std::uint32_t len = range.count;
  if (prev != free_blocks_.end() && prev->first + prev->second == range.first) {
    first = prev->first;
    len += prev->second;
    free_blocks_.erase(prev);
  }
  if (next != free_blocks_.end() && next->first == range.end()) {
    len += next->second;
    free_blocks_.erase(next);
  }
  free_blocks_.emplace(first, len);
  free_total_ += range.count;
  XRES_CHECK(free_total_ <= capacity_, "free count exceeds capacity (double free?)");
}

std::uint32_t NodeAllocator::largest_free_block() const {
  std::uint32_t best = 0;
  for (const auto& [first, len] : free_blocks_) best = std::max(best, len);
  return best;
}

bool NodeAllocator::is_free(std::uint32_t node) const {
  XRES_CHECK(node < capacity_, "node index out of range");
  auto it = free_blocks_.upper_bound(node);
  if (it == free_blocks_.begin()) return false;
  --it;
  return node < it->first + it->second;
}

void NodeAllocator::validate() const {
  std::uint32_t total = 0;
  std::uint32_t prev_end = 0;
  bool first_block = true;
  for (const auto& [first, len] : free_blocks_) {
    XRES_CHECK(len > 0, "empty free block");
    if (!first_block) {
      // Strictly greater: adjacent blocks must have been coalesced.
      XRES_CHECK(first > prev_end, "free blocks overlap or are uncoalesced");
    }
    prev_end = first + len;
    XRES_CHECK(prev_end <= capacity_, "free block beyond capacity");
    total += len;
    first_block = false;
  }
  XRES_CHECK(total == free_total_, "free total out of sync");
}

}  // namespace xres
