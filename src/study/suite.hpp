#pragma once

/// \file suite.hpp
/// `xres suite paper`: regenerate every paper figure/table artifact in one
/// deterministic, resumable invocation. Each figure/table study runs with
/// its artifact paths pointed into --out-dir, its stdout captured to
/// `<study>.txt`, and its trial journal under `journals/`; a final
/// `manifest.json` records what was produced (study, params, seed,
/// git-describe, relative artifact paths + CRC32s). `xres suite verify`
/// re-checksums an output directory against its manifest.
///
/// Determinism contract: two suite runs with the same options produce
/// byte-identical artifacts and manifest, whatever --threads says and
/// whether or not a run was killed and resumed — run status (banners,
/// progress, wall-clock timings) goes to stderr, never into an artifact.

#include <cstdint>
#include <string>

namespace xres::study {

struct SuiteOptions {
  std::string out_dir;
  /// 0 = every study's own default; otherwise overrides the study's
  /// trials/patterns/traces parameter (whichever it declares) — how CI runs
  /// the whole suite in seconds.
  std::uint32_t trials{0};
  unsigned threads{0};  ///< forwarded to every study that takes --threads
  bool resume{false};   ///< resume from the journals of a killed run
};

/// The manifest file name inside --out-dir.
inline constexpr const char* kManifestName = "manifest.json";

/// Run the paper suite (figure + table studies, catalog order). Returns 0,
/// or the first failing study's exit code.
int run_suite_paper(const SuiteOptions& options);

/// Verify \p out_dir against its manifest: every artifact present with a
/// matching CRC32. Prints one line per problem; returns 0 when clean, 1
/// otherwise.
int verify_suite(const std::string& out_dir);

}  // namespace xres::study
