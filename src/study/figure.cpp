#include "study/figure.hpp"

#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "obs/profile.hpp"
#include "study/platform_params.hpp"
#include "util/barchart.hpp"

namespace xres::study {

int run_efficiency_figure(const std::string& title, EfficiencyStudyConfig config,
                          StudyContext& ctx) {
  const HarnessOptions& options = ctx.options();
  obs::PhaseProfiler profiler;
  profiler.begin("setup");
  config.trials = ctx.params().u32("trials");
  try {
    config.surrogate = surrogate_mode_from_string(ctx.params().str("surrogate"));
  } catch (const CheckError& e) {
    usage_error_from(e);
  }
  config.seed = options.seed;
  config.threads = options.threads;
  config.collect_metrics = options.obs.metrics();
  config.collect_trace = options.obs.trace();
  apply_platform_params(config.machine, ctx.params());

  std::printf("%s\n", title.c_str());
  std::printf("machine: %s\n", config.machine.describe().c_str());
  std::printf("node MTBF: %s; baseline T_B: %s; %u trials per bar",
              to_string(config.resilience.node_mtbf).c_str(),
              to_string(config.baseline).c_str(), config.trials);
  // The worker-thread count is run status, not experiment data — results
  // are byte-identical for every --threads value. Direct runs keep the
  // historical "; N threads" suffix; the suite routes it to stderr so the
  // captured artifact stays threads-invariant.
  if (status_stream() == stdout) {
    std::printf("; %u threads", TrialExecutor{options.threads}.threads());
  } else {
    statusf("(%u worker threads)\n", TrialExecutor{options.threads}.threads());
  }
  std::printf("\n\n");

  RecoveryCoordinator& coordinator = ctx.recovery();
  config.recovery = coordinator.options();

  profiler.begin("run");
  obs::ProgressMeter meter{"cell"};
  const EfficiencyStudyResult result = run_efficiency_study(config, meter.callback());
  coordinator.absorb(result.recovery_report);

  if (coordinator.interrupted()) {
    // Partial progress only: completed cells are journaled, artifacts are
    // withheld so nothing half-reduced reaches downstream tooling.
    return coordinator.finish();
  }

  profiler.begin("reduce");
  std::printf("%s", result.to_table().to_text().c_str());
  if (!result.surrogate_cells.empty()) {
    std::printf("\nSurrogate provenance (bound = max |predicted - simulated mean|):\n%s",
                result.to_surrogate_table().to_text().c_str());
  }

  if (options.chart) {
    std::vector<std::string> series;
    for (TechniqueKind kind : config.techniques) series.emplace_back(to_string(kind));
    BarChart chart{series};
    for (std::size_t si = 0; si < config.size_fractions.size(); ++si) {
      std::vector<double> values;
      for (const Summary& s : result.efficiency[si]) values.push_back(s.mean);
      chart.add_category(fmt_percent(config.size_fractions[si], 0), values);
    }
    std::printf("\n%s", chart.render(50, 1.0).c_str());
  }

  ctx.emit_csv(result.to_csv_table());

  if (options.obs.metrics()) {
    std::printf("\nInstrumented breakdown (per technique, whole study):\n%s",
                result.to_metrics_table().to_text().c_str());
    result.metrics->write_json(options.obs.metrics_path);
    statusf("metrics written to %s\n", options.obs.metrics_path.c_str());
  }
  if (options.obs.trace()) {
    result.trace.write(options.obs.trace_path);
    statusf("trace written to %s (%zu tracks, %zu events; open in Perfetto)\n",
            options.obs.trace_path.c_str(), result.trace.track_count(),
            result.trace.event_count());
  }

  if (!options.report_path.empty()) {
    StudyReport report{title};
    report.add_config("machine", config.machine.describe());
    report.add_config("node MTBF", to_string(config.resilience.node_mtbf));
    report.add_config("application type", config.app_type.name);
    report.add_config("baseline T_B", to_string(config.baseline));
    report.add_config("trials per bar", std::to_string(config.trials));
    report.add_config("seed", std::to_string(config.seed));
    report.add_paragraph(
        "Efficiency = delay-free baseline execution time divided by the "
        "simulated execution time with failures and resilience overhead "
        "(mean ± sample standard deviation across trials).");
    report.add_table("Efficiency by system share", result.to_table());
    report.add_table("Raw data", result.to_csv_table());
    if (!result.surrogate_cells.empty()) {
      report.add_table("Surrogate provenance", result.to_surrogate_table());
    }
    if (result.metrics.has_value()) {
      report.add_table("Instrumented breakdown", result.to_metrics_table());
    }
    report.write(options.report_path);
    statusf("report written to %s\n", options.report_path.c_str());
  }

  profiler.end();
  statusf("(efficiency = baseline / simulated execution time; phases: %s)\n",
          profiler.summary().c_str());
  return coordinator.finish();
}

}  // namespace xres::study
