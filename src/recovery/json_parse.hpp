#pragma once

/// \file json_parse.hpp
/// Minimal recursive-descent JSON reader for the trial journal. The
/// library's JSON *writer* (obs/json.hpp) streams; resuming a study needs
/// the inverse: parse the records our own writer produced. This is a strict
/// parser for that closed world — UTF-8 pass-through strings, objects,
/// arrays, numbers, booleans, null — not a general-purpose JSON library.
///
/// Numbers keep their raw token text: journal payloads carry full-width
/// 64-bit counters and shortest-round-trip doubles, and deciding u64 vs
/// double at parse time would lose precision one way or the other. Callers
/// ask for the interpretation they stored (`as_u64`, `as_double`).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xres::recovery {

/// Thrown on malformed input. Derives from std::runtime_error (not
/// CheckError): a corrupt journal is an expected operational condition the
/// loader handles record by record, not a programming error.
class JsonParseError final : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue;
using JsonMember = std::pair<std::string, JsonValue>;

/// One parsed JSON value. Object member order is preserved (the writer is
/// deterministic, so round-trips are byte-stable).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Raw number token text, exactly as it appeared in the document.
  [[nodiscard]] const std::string& number_text() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<JsonMember>& as_object() const;

  /// Object member lookup; throws JsonParseError when missing (journal
  /// records are ours — a missing field means corruption).
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Nullptr when missing (for optional fields).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_{Kind::kNull};
  bool bool_{false};
  std::string scalar_;  ///< raw number token, or decoded string
  std::vector<JsonValue> array_;
  std::vector<JsonMember> object_;
};

/// Parse exactly one JSON document from \p text (surrounding whitespace
/// allowed, trailing garbage rejected). Throws JsonParseError.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace xres::recovery
