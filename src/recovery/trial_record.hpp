#pragma once

/// \file trial_record.hpp
/// Journal payload for one trial: the full `ExecutionResult`, an optional
/// per-trial `MetricSet`, and the quarantine marker. Everything needed to
/// make a resumed study indistinguishable from an uninterrupted one:
/// numbers are rendered in shortest-round-trip form (obs/json.hpp) and
/// parsed back to the exact same doubles, and the metric set is restored
/// slot for slot, so spec-order reductions and `--metrics` JSON come out
/// byte-identical.

#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/result.hpp"

namespace xres::obs {
class JsonWriter;
}

namespace xres::recovery {

class JsonValue;

/// One journaled trial outcome.
struct TrialOutcome {
  ExecutionResult result{};
  /// Set when the trial exhausted its watchdog/retry budget; the stored
  /// result is the zero-efficiency placeholder the study reduced.
  bool quarantined{false};
  std::string quarantine_reason;
  /// The trial's metrics when the run collected them (resume restores the
  /// observer from this instead of re-simulating).
  std::optional<obs::MetricSet> metrics;
  /// Wall-clock telemetry (nondeterministic, for the `xres journal`
  /// inspector only — journals are never byte-compared). Serialized as the
  /// optional "w"/"a" keys; old journals without them parse fine.
  double wall_seconds{0};
  unsigned attempts{1};  ///< tries this outcome took (retries = attempts-1)
};

/// Serialize \p outcome as one JSON object (the journal record's "p" field).
[[nodiscard]] std::string serialize_trial_outcome(const TrialOutcome& outcome);

/// Inverse of serialize_trial_outcome. Throws JsonParseError on malformed
/// payloads and on metric payloads that do not fit the current registry
/// (e.g. a journal written by a different binary) — callers treat either as
/// "re-run this trial".
[[nodiscard]] TrialOutcome parse_trial_outcome(const std::string& payload);

/// MetricSet (de)serialization shared by every journal payload type: values
/// by slot in registry order, histograms with sparse [bucket, count] pairs.
/// read_metric_set throws JsonParseError when the payload does not fit this
/// binary's metric registry.
void write_metric_set(obs::JsonWriter& w, const obs::MetricSet& set);
[[nodiscard]] obs::MetricSet read_metric_set(const JsonValue& v);

}  // namespace xres::recovery
