file(REMOVE_RECURSE
  "CMakeFiles/xres_util.dir/barchart.cpp.o"
  "CMakeFiles/xres_util.dir/barchart.cpp.o.d"
  "CMakeFiles/xres_util.dir/check.cpp.o"
  "CMakeFiles/xres_util.dir/check.cpp.o.d"
  "CMakeFiles/xres_util.dir/cli.cpp.o"
  "CMakeFiles/xres_util.dir/cli.cpp.o.d"
  "CMakeFiles/xres_util.dir/log.cpp.o"
  "CMakeFiles/xres_util.dir/log.cpp.o.d"
  "CMakeFiles/xres_util.dir/rng.cpp.o"
  "CMakeFiles/xres_util.dir/rng.cpp.o.d"
  "CMakeFiles/xres_util.dir/stats.cpp.o"
  "CMakeFiles/xres_util.dir/stats.cpp.o.d"
  "CMakeFiles/xres_util.dir/table.cpp.o"
  "CMakeFiles/xres_util.dir/table.cpp.o.d"
  "CMakeFiles/xres_util.dir/units.cpp.o"
  "CMakeFiles/xres_util.dir/units.cpp.o.d"
  "libxres_util.a"
  "libxres_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xres_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
