#include "util/framed_line.hpp"

#include "util/crc32.hpp"

namespace xres {

namespace {

constexpr std::string_view kFramePrefix = "{\"c\":\"";   // then 8 hex chars
constexpr std::string_view kFrameMiddle = "\",\"r\":";   // then record JSON
constexpr char kFrameSuffix = '}';

bool is_hex8(std::string_view s) {
  if (s.size() != 8) return false;
  for (char c : s) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string frame_crc_line(std::string_view record_json) {
  std::string line;
  line.reserve(record_json.size() + 24);
  line += kFramePrefix;
  line += crc32_hex(crc32(record_json));
  line += kFrameMiddle;
  line += record_json;
  line += kFrameSuffix;
  line += '\n';
  return line;
}

bool unframe_crc_line(std::string_view line, std::string& record_json) {
  // Layout: {"c":"xxxxxxxx","r":<record>}
  const std::size_t head = kFramePrefix.size() + 8 + kFrameMiddle.size();
  if (line.size() < head + 1) return false;
  if (line.substr(0, kFramePrefix.size()) != kFramePrefix) return false;
  const std::string_view crc_hex = line.substr(kFramePrefix.size(), 8);
  if (!is_hex8(crc_hex)) return false;
  if (line.substr(kFramePrefix.size() + 8, kFrameMiddle.size()) != kFrameMiddle) {
    return false;
  }
  if (line.back() != kFrameSuffix) return false;
  const std::string_view record = line.substr(head, line.size() - head - 1);
  if (crc32_hex(crc32(record)) != crc_hex) return false;
  record_json.assign(record);
  return true;
}

}  // namespace xres
