// google-benchmark microbenchmarks of the simulator substrates: event
// queue, allocator, RNG/distributions, failure process, interval
// optimizers, and end-to-end trial throughput. These guard the simulation
// engine's performance (a full Figure 1-5 reproduction executes tens of
// millions of events).
//
// Besides the usual console table, every run writes a machine-readable
// summary (default BENCH_engine.json, override with --out) so CI can diff
// engine throughput across commits without scraping stdout.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "core/workload_study.hpp"
#include "failure/process.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "platform/allocator.hpp"
#include "resilience/multilevel.hpp"
#include "resilience/planner.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace xres;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  Pcg32 rng{1};
  for (auto _ : state) {
    EventQueue queue;
    for (std::uint64_t i = 0; i < batch; ++i) {
      queue.schedule(TimePoint::at(Duration::seconds(rng.next_double() * 1e6)), [] {});
    }
    while (auto e = queue.pop()) benchmark::DoNotOptimize(e->time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The runtime cancels its pending event on every failure; measure the
  // lazy-deletion path.
  Pcg32 rng{2};
  for (auto _ : state) {
    EventQueue queue;
    std::vector<EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(
          queue.schedule(TimePoint::at(Duration::seconds(rng.next_double())), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) queue.cancel(ids[i]);
    while (auto e = queue.pop()) benchmark::DoNotOptimize(e->id);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_EventQueueFailureStorm(benchmark::State& state) {
  // The failure-storm shape: every failure cancels the victim's pending
  // phase-completion event and schedules the replacement further out, with
  // pops interleaved. Exercises schedule/cancel/pop together plus the
  // compaction path that keeps dead entries from accumulating.
  constexpr std::uint32_t kApps = 256;
  Pcg32 rng{6};
  for (auto _ : state) {
    EventQueue queue;
    std::array<EventId, kApps> pending{};
    double now = 0.0;
    for (auto& id : pending) {
      id = queue.schedule(TimePoint::at(Duration::seconds(rng.next_double() * 100.0)),
                          [] {});
    }
    for (int i = 0; i < 20000; ++i) {
      const std::uint32_t victim = rng.next_below(kApps);
      queue.cancel(pending[victim]);  // stale (already fired) ids are fine
      pending[victim] = queue.schedule(
          TimePoint::at(Duration::seconds(now + 1.0 + rng.next_double() * 100.0)), [] {});
      if ((i & 3) == 0) {
        if (auto e = queue.pop()) {
          now = e->time.to_seconds();
          benchmark::DoNotOptimize(e->id);
        }
      }
    }
    while (auto e = queue.pop()) benchmark::DoNotOptimize(e->id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_EventQueueFailureStorm);

void BM_SimulationSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    std::uint64_t remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_after(Duration::seconds(1.0), tick);
    };
    sim.schedule_after(Duration::seconds(1.0), tick);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_SimulationSelfScheduling);

void BM_AllocatorChurn(benchmark::State& state) {
  Pcg32 rng{3};
  for (auto _ : state) {
    NodeAllocator alloc{120000};
    std::vector<NodeRange> held;
    for (int i = 0; i < 5000; ++i) {
      if (held.empty() || rng.bernoulli(0.6)) {
        if (auto r = alloc.allocate(static_cast<std::uint32_t>(rng.uniform_int(100, 5000)))) {
          held.push_back(*r);
        }
      } else {
        const auto idx = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint32_t>(held.size())));
        alloc.release(held[idx]);
        held[idx] = held.back();
        held.pop_back();
      }
    }
    benchmark::DoNotOptimize(alloc.busy_count());
  }
}
BENCHMARK(BM_AllocatorChurn);

void BM_Pcg32Doubles(benchmark::State& state) {
  Pcg32 rng{4};
  double acc = 0.0;
  for (auto _ : state) acc += rng.next_double();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Pcg32Doubles);

void BM_DiscreteDistributionSample(benchmark::State& state) {
  const std::vector<double> weights{0.55, 0.35, 0.10};
  DiscreteDistribution dist{weights};
  Pcg32 rng{5};
  std::size_t acc = 0;
  for (auto _ : state) acc += dist.sample(rng);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DiscreteDistributionSample);

void BM_MultilevelOptimizer(benchmark::State& state) {
  const std::vector<CheckpointLevelSpec> levels{
      CheckpointLevelSpec{Duration::seconds(0.2), Duration::seconds(0.2), 1},
      CheckpointLevelSpec{Duration::seconds(0.8), Duration::seconds(0.8), 2},
      CheckpointLevelSpec{Duration::seconds(1067.0), Duration::seconds(1067.0), 3}};
  const Rate total = Rate::one_per(Duration::minutes(44.0));
  const std::vector<Rate> rates{total * 0.55, total * 0.35, total * 0.10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_multilevel(levels, rates, 128));
  }
}
BENCHMARK(BM_MultilevelOptimizer);

void BM_MakePlan(benchmark::State& state) {
  const MachineSpec machine = MachineSpec::exascale();
  const ResilienceConfig config;
  const AppSpec app{app_type_by_name("D64"), 30000, 1440};
  const auto kind = static_cast<TechniqueKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_plan(kind, app, machine, config));
  }
}
BENCHMARK(BM_MakePlan)
    ->Arg(static_cast<int>(TechniqueKind::kCheckpointRestart))
    ->Arg(static_cast<int>(TechniqueKind::kMultilevel))
    ->Arg(static_cast<int>(TechniqueKind::kRedundancyPartial));

void BM_SingleAppTrial(benchmark::State& state) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 1440};
  config.technique = static_cast<TechniqueKind>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trial(config, ++seed));
  }
}
BENCHMARK(BM_SingleAppTrial)
    ->Arg(static_cast<int>(TechniqueKind::kCheckpointRestart))
    ->Arg(static_cast<int>(TechniqueKind::kMultilevel))
    ->Arg(static_cast<int>(TechniqueKind::kParallelRecovery))
    ->Unit(benchmark::kMillisecond);

void BM_SingleAppTrialFailureHeavy(benchmark::State& state) {
  // End-to-end trial throughput under a 10x failure rate (1-year node
  // MTBF): failure handling — cancel the pending completion, schedule
  // recovery — dominates, so this tracks the whole engine's cancel/
  // reschedule path, not just forward simulation.
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 1440};
  config.technique = TechniqueKind::kMultilevel;
  config.resilience.node_mtbf = Duration::years(1.0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trial(config, ++seed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["trials_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SingleAppTrialFailureHeavy)->Unit(benchmark::kMillisecond);

void BM_TrialBatchFailureHeavy(benchmark::State& state) {
  // The batched successor of BM_SingleAppTrialFailureHeavy: the same
  // failure-heavy cell executed as one TrialExecutor batch, the shape every
  // study cell actually runs as. Pre-derived seeds, the parked worker pool
  // and the per-worker caches all engage here; trials_per_second is the
  // acceptance number the perf gate tracks against the committed baseline.
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 1440};
  config.technique = TechniqueKind::kMultilevel;
  config.resilience.node_mtbf = Duration::years(1.0);
  std::vector<TrialSpec> specs;
  specs.reserve(64);
  for (std::uint64_t t = 0; t < 64; ++t) specs.push_back(TrialSpec{config, {t}});
  const TrialExecutor executor{static_cast<unsigned>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run_batch(20170529, specs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["trials_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 64.0,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrialBatchFailureHeavy)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TrialExecutorBatch(benchmark::State& state) {
  // Parallel scaling of a fixed 64-trial batch; compare Arg(1) against
  // Arg(N) to read the executor's speedup on this machine.
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 1440};
  config.technique = TechniqueKind::kMultilevel;
  std::vector<TrialSpec> specs;
  specs.reserve(64);
  for (std::uint64_t t = 0; t < 64; ++t) specs.push_back(TrialSpec{config, {t}});
  const TrialExecutor executor{static_cast<unsigned>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run_batch(20170529, specs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_TrialExecutorBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FullStudyFig1Efficiency(benchmark::State& state) {
  // End-to-end throughput of the Figure 1 workload (A32, full 8-point size
  // sweep, every technique) at a reduced trial count: what `xres run
  // fig1_efficiency_a32` actually spends its time on, journal and figure
  // rendering excluded. trials_per_second here is directly comparable to
  // the ledger's number for the same study.
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("A32");
  config.resilience.node_mtbf = Duration::years(10.0);
  config.trials = 4;
  config.threads = static_cast<unsigned>(state.range(0));
  const auto trials_per_run = static_cast<std::int64_t>(
      config.size_fractions.size() * config.techniques.size() * config.trials);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_efficiency_study(config));
  }
  state.SetItemsProcessed(state.iterations() * trials_per_run);
  state.counters["trials_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * trials_per_run),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullStudyFig1Efficiency)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FullStudyResilienceSelection(benchmark::State& state) {
  // End-to-end throughput of one Figure 5 bias (unbiased arrivals, the
  // full scheduler x policy combo set including per-application Resilience
  // Selection) at a reduced pattern count. Pattern-runs are the executor's
  // trial unit here, so trials_per_second matches the ledger's unit for
  // `xres run fig5_resilience_selection`.
  WorkloadStudyConfig config;
  config.patterns = 2;
  config.threads = static_cast<unsigned>(state.range(0));
  const std::vector<WorkloadCombo> combos = figure5_combos();
  const auto runs_per_iter =
      static_cast<std::int64_t>(combos.size() * config.patterns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload_study(config, combos));
  }
  state.SetItemsProcessed(state.iterations() * runs_per_iter);
  state.counters["trials_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * runs_per_iter),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullStudyResilienceSelection)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_WorkloadFattreeStorm(benchmark::State& state) {
  // Topology benchmark: one oversubscribed arrival pattern on the fat-tree
  // platform, checkpoint/restart everywhere — the initial fill's first
  // coordinated checkpoints all land on the queued PFS device at once (an
  // 8-application checkpoint storm), exercising admission, fair-share rate
  // recomputation and exact completion rescheduling under contention.
  WorkloadStudyConfig study_config;
  WorkloadEngineConfig engine;
  engine.machine = study_config.machine;
  engine.machine.platform.model = PlatformModelKind::kFattree;
  engine.resilience = study_config.resilience;
  engine.policy = TechniquePolicy::fixed_technique(TechniqueKind::kCheckpointRestart);
  engine.scheduler = SchedulerKind::kSlack;
  engine.seed = derive_seed(20170530, 0x656e67696eULL, 0);
  const ArrivalPattern pattern = generate_pattern(study_config.workload, 20170530, 0);
  std::uint64_t transfers = 0;
  for (auto _ : state) {
    const WorkloadRunResult result = run_workload(engine, pattern);
    transfers += result.pfs_transfers;
    benchmark::DoNotOptimize(result.dropped_fraction);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(transfers));
  state.counters["pfs_transfers_per_second"] = benchmark::Counter(
      static_cast<double>(transfers), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WorkloadFattreeStorm)->Unit(benchmark::kMillisecond);

/// Prints the normal console table while also collecting every finished
/// run for the JSON summary.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    std::int64_t iterations{0};
    double real_s_per_iter{0.0};  ///< wall seconds per iteration
    double cpu_s_per_iter{0.0};
    std::vector<std::pair<std::string, double>> counters;
    bool error{false};
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      // With --benchmark_repetitions the library also emits aggregate rows
      // (_mean/_median/_stddev/_cv); the summary keeps the raw repetitions
      // and lets the consumer aggregate (the perf gate takes the minimum).
      if (run.run_type == Run::RT_Aggregate) {
        continue;
      }
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      row.error = run.error_occurred;
      if (run.iterations > 0) {
        row.real_s_per_iter =
            run.real_accumulated_time / static_cast<double>(run.iterations);
        row.cpu_s_per_iter =
            run.cpu_accumulated_time / static_cast<double>(run.iterations);
      }
      for (const auto& [key, counter] : run.counters) {
        row.counters.emplace_back(key, counter.value);
      }
      rows_.push_back(std::move(row));
    }
  }

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

void write_summary(const std::string& path, const std::vector<CapturingReporter::Row>& rows,
                   double wall_seconds) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("schema");
  json.value("xres-bench-v1");
  json.key("wall_seconds");
  json.value(wall_seconds);
  json.key("benchmarks");
  json.begin_array();
  for (const CapturingReporter::Row& row : rows) {
    json.begin_object();
    json.key("name");
    json.value(row.name);
    json.key("iterations");
    json.value(static_cast<std::uint64_t>(row.iterations));
    json.key("real_s_per_iter");
    json.value(row.real_s_per_iter);
    json.key("cpu_s_per_iter");
    json.value(row.cpu_s_per_iter);
    if (row.error) {
      json.key("error");
      json.value(true);
    }
    for (const auto& [key, value] : row.counters) {
      json.key(key);
      json.value(value);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.write(path);
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --out flag before google-benchmark sees the args.
  std::string out_path = "BENCH_engine.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
      continue;
    }
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;

  obs::PhaseProfiler profiler;
  profiler.begin("benchmarks");
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  profiler.end();

  if (!out_path.empty()) {
    write_summary(out_path, reporter.rows(), profiler.total_seconds());
    std::printf("benchmark summary written to %s (%zu rows)\n", out_path.c_str(),
                reporter.rows().size());
  }
  benchmark::Shutdown();
  return 0;
}
