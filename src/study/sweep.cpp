#include "study/sweep.hpp"

#include <cstdio>
#include <cstdlib>

#include "study/options.hpp"
#include "study/spec.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace xres::study {

namespace {

/// Cell labels become file names; map anything outside the portable set to
/// '_' so `--axis type=C64,D64` and `--axis share=0.25,0.5` both yield
/// readable, unique artifact names.
std::string sanitize_label(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

SweepAxis parse_axis(const std::string& text) {
  const std::size_t eq = text.find('=');
  XRES_CHECK(eq != std::string::npos && eq != 0,
             "malformed --axis '" + text + "' (want key=v1,v2,...)");
  SweepAxis axis;
  axis.key = text.substr(0, eq);
  std::size_t start = eq + 1;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string value = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    XRES_CHECK(!value.empty(), "empty value in --axis '" + text + "'");
    for (const std::string& prev : axis.values) {
      XRES_CHECK(prev != value,
                 "repeated value '" + value + "' in --axis '" + text + "'");
    }
    axis.values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return axis;
}

SweepPlan plan_sweep(
    const StudyDefinition& def, std::vector<SweepAxis> axes,
    const std::vector<std::pair<std::string, std::string>>& base_bindings) {
  XRES_CHECK(!axes.empty(), "sweep needs at least one --axis");

  for (const auto& [key, value] : base_bindings) {
    const ParamSpec* spec = def.find_param(key);
    XRES_CHECK(spec != nullptr,
               "unknown parameter '" + key + "' for study '" + def.name + "'");
    validate_param_value(*spec, value);
  }
  std::size_t total = 1;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const SweepAxis& axis = axes[i];
    for (std::size_t j = 0; j < i; ++j) {
      XRES_CHECK(axes[j].key != axis.key, "duplicate axis '" + axis.key + "'");
    }
    const ParamSpec* spec = def.find_param(axis.key);
    XRES_CHECK(spec != nullptr,
               "unknown sweep axis '" + axis.key + "' for study '" + def.name + "'");
    XRES_CHECK(!axis.values.empty(), "axis '" + axis.key + "' has no values");
    for (const std::string& value : axis.values) validate_param_value(*spec, value);
    total *= axis.values.size();
    XRES_CHECK(total <= 4096, "sweep grid exceeds 4096 cells");
  }

  SweepPlan plan;
  plan.def = &def;
  plan.axes = std::move(axes);
  plan.points.reserve(total);

  // Odometer over the axes, last axis fastest (declaration order).
  std::vector<std::size_t> index(plan.axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    SweepPoint point;
    point.bindings = base_bindings;
    point.name = def.name;
    for (std::size_t a = 0; a < plan.axes.size(); ++a) {
      const std::string& value = plan.axes[a].values[index[a]];
      point.bindings.emplace_back(plan.axes[a].key, value);
      point.name += "__" + sanitize_label(plan.axes[a].key) + "=" +
                    sanitize_label(value);
    }
    plan.points.push_back(std::move(point));
    for (std::size_t a = plan.axes.size(); a-- > 0;) {
      if (++index[a] < plan.axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return plan;
}

int run_sweep(const SweepPlan& plan, const SuiteOptions& options) {
  XRES_CHECK(plan.def != nullptr && !plan.points.empty(), "empty sweep plan");
  std::vector<SuiteCell> cells;
  cells.reserve(plan.points.size());
  for (const SweepPoint& point : plan.points) {
    SuiteCell cell;
    cell.def = plan.def;
    cell.name = point.name;
    cell.params = ParamSet{*plan.def};
    for (const auto& [key, value] : point.bindings) cell.params.set(key, value);
    cells.push_back(std::move(cell));
  }
  return run_suite_cells("sweep", cells, options, [&](obs::JsonWriter& w) {
    w.key("study").value(plan.def->name);
    w.key("axes").begin_array();
    for (const SweepAxis& axis : plan.axes) {
      w.begin_object();
      w.key("key").value(axis.key);
      w.key("values").begin_array();
      for (const std::string& value : axis.values) w.value(value);
      w.end_array();
      w.end_object();
    }
    w.end_array();
  });
}

namespace {

constexpr const char* kSweepUsage =
    "usage: xres sweep <study> --axis key=v1,v2,... [--axis ...] --out-dir <dir>\n"
    "                  [--set key=value ...] [--threads N] [--resume]\n"
    "       xres sweep --from <spec.toml|spec.json> --out-dir <dir> [--axis ...]\n\n"
    "fan one study across the cross-product of axis values. Every grid\n"
    "point runs as a suite cell: stdout captured to <cell>.txt, metrics and\n"
    "trial journal per cell, everything checksummed into manifest.json\n"
    "(verify with `xres suite verify`). Grid order is deterministic — axes\n"
    "in declaration order, last axis fastest — and artifacts are\n"
    "byte-identical for every --threads value; after a SIGKILL, --resume\n"
    "completes the grid from the journals with identical artifacts.\n"
    "With --from, the study (and any [sweep] axes) come from a spec file;\n"
    "command-line --axis adds further dimensions.\n";

}  // namespace

int sweep_main(int argc, const char* const* argv) {
  std::string study_name;
  std::string from_path;
  std::vector<SweepAxis> axes;
  std::vector<std::pair<std::string, std::string>> bindings;
  SuiteOptions options;
  std::string threads_text = "auto";

  // Manual parse: --axis and --set repeat, which CliParser does not model.
  // Same conventions otherwise: --key value, --key=value, one positional.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kSweepUsage, stdout);
      return 0;
    }
    std::string value;
    bool has_value = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_value = true;
      }
    }
    const auto need_value = [&](const char* key) {
      if (has_value) return;
      if (i + 1 >= argc) CliParser::usage_error(std::string{key} + " needs a value");
      value = argv[++i];
    };
    if (arg == "--axis") {
      need_value("--axis");
      try {
        axes.push_back(parse_axis(value));
      } catch (const CheckError& e) {
        usage_error_from(e);
      }
    } else if (arg == "--set") {
      need_value("--set");
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        CliParser::usage_error("--set expects key=value, got '" + value + "'");
      }
      bindings.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (arg == "--from") {
      need_value("--from");
      from_path = value;
    } else if (arg == "--out-dir") {
      need_value("--out-dir");
      options.out_dir = value;
    } else if (arg == "--threads") {
      need_value("--threads");
      threads_text = value;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--", 0) == 0) {
      CliParser::usage_error("unknown option for xres sweep: " + arg);
    } else if (study_name.empty()) {
      study_name = arg;
    } else {
      CliParser::usage_error("unexpected argument: " + arg);
    }
  }

  if (study_name.empty() && from_path.empty()) {
    std::fputs(kSweepUsage, stderr);
    return 1;
  }
  if (!study_name.empty() && !from_path.empty()) {
    CliParser::usage_error("give a study name or --from <spec>, not both");
  }
  if (options.out_dir.empty()) CliParser::usage_error("--out-dir is required");
  if (threads_text == "auto") {
    options.threads = 0;
  } else {
    char* end = nullptr;
    const long parsed = std::strtol(threads_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed <= 0) {
      CliParser::usage_error("--threads expects 'auto' or a positive integer, got '" +
                             threads_text + "'");
    }
    options.threads = static_cast<unsigned>(parsed);
  }

  LoadedStudy loaded;  // keeps a spec-defined definition alive for the run
  const StudyDefinition* def = nullptr;
  if (!from_path.empty()) {
    loaded = load_study_from_file_or_exit(from_path);
    def = loaded.def.get();
    // Spec axes fan out first; command-line --axis adds inner dimensions.
    std::vector<SweepAxis> combined = std::move(loaded.sweep);
    for (SweepAxis& axis : axes) combined.push_back(std::move(axis));
    axes = std::move(combined);
  } else {
    def = StudyRegistry::instance().find(study_name);
    if (def == nullptr) {
      std::fprintf(stderr, "unknown study '%s' — see `xres list` for the catalog\n",
                   study_name.c_str());
      return 1;
    }
  }

  SweepPlan plan;
  try {
    plan = plan_sweep(*def, std::move(axes), bindings);
  } catch (const CheckError& e) {
    usage_error_from(e);
  }
  return run_sweep(plan, options);
}

}  // namespace xres::study
