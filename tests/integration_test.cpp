// End-to-end integration tests: miniature versions of the paper's
// headline results with fixed seeds and tolerance bands on the *shape*
// claims (Sections V-VII). Trial counts are reduced from the paper's 200
// to keep the suite fast; the bench harnesses run the full configuration.

#include <gtest/gtest.h>

#include "core/single_app_study.hpp"
#include "core/workload_engine.hpp"
#include "core/workload_study.hpp"
#include "resilience/analytic.hpp"
#include "resilience/planner.hpp"

namespace xres {
namespace {

SingleAppTrialConfig trial_config(const std::string& type, std::uint32_t nodes,
                                  TechniqueKind technique,
                                  Duration mtbf = Duration::years(10.0)) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name(type), nodes, 1440};
  config.technique = technique;
  config.machine = MachineSpec::exascale();
  config.resilience.node_mtbf = mtbf;
  return config;
}

double mean_efficiency(const SingleAppTrialConfig& config, int trials,
                       std::uint64_t seed = 99) {
  RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    stats.add(run_trial(config, derive_seed(seed, t)).efficiency);
  }
  return stats.mean();
}

TEST(Integration, TrialIsDeterministicPerSeed) {
  const SingleAppTrialConfig config =
      trial_config("C64", 30000, TechniqueKind::kMultilevel);
  const ExecutionResult a = run_trial(config, 1234);
  const ExecutionResult b = run_trial(config, 1234);
  EXPECT_DOUBLE_EQ(a.wall_time.to_seconds(), b.wall_time.to_seconds());
  EXPECT_EQ(a.failures_seen, b.failures_seen);
  EXPECT_EQ(a.checkpoints_completed, b.checkpoints_completed);
  const ExecutionResult c = run_trial(config, 1235);
  EXPECT_NE(a.wall_time.to_seconds(), c.wall_time.to_seconds());
}

TEST(Integration, EfficiencyIsAlwaysAProbability) {
  for (TechniqueKind kind : evaluated_techniques()) {
    const ExecutionResult r =
        run_trial(trial_config("B64", 12000, kind), 5);
    EXPECT_GE(r.efficiency, 0.0) << to_string(kind);
    EXPECT_LE(r.efficiency, 1.0) << to_string(kind);
  }
}

TEST(Integration, TimeBucketsSumToWallTime) {
  for (TechniqueKind kind :
       {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
        TechniqueKind::kParallelRecovery}) {
    const ExecutionResult r =
        run_trial(trial_config("C32", 60000, kind), 17);
    ASSERT_TRUE(r.completed);
    const double buckets = r.time_working.to_seconds() +
                           r.time_checkpointing.to_seconds() +
                           r.time_restarting.to_seconds() +
                           r.time_recovering.to_seconds();
    EXPECT_NEAR(buckets, r.wall_time.to_seconds(), 1e-6) << to_string(kind);
  }
}

TEST(Integration, Figure1ShapeParallelRecoveryDominatesLowComm) {
  // A32 at exascale: parallel recovery clearly beats every alternative
  // (Figure 1's headline claim at the largest sizes).
  const int trials = 12;
  const double pr =
      mean_efficiency(trial_config("A32", 120000, TechniqueKind::kParallelRecovery), trials);
  for (TechniqueKind other :
       {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
        TechniqueKind::kRedundancyPartial, TechniqueKind::kRedundancyFull}) {
    const double eff = mean_efficiency(trial_config("A32", 120000, other), trials);
    EXPECT_GT(pr, eff + 0.02) << to_string(other);
  }
  EXPECT_GT(pr, 0.9);
}

TEST(Integration, Figure1ShapeCheckpointRestartDegradesFastest) {
  const int trials = 10;
  double prev = 1.0;
  for (std::uint32_t nodes : {1200U, 30000U, 120000U}) {
    const double eff =
        mean_efficiency(trial_config("A32", nodes, TechniqueKind::kCheckpointRestart), trials);
    EXPECT_LT(eff, prev);
    prev = eff;
  }
  EXPECT_LT(prev, 0.6);  // heavily degraded at exascale
}

TEST(Integration, Figure1ShapeRedundancyInfeasibleAtScale) {
  // Zero-efficiency bars: r=2 above 50%, r=1.5 above ~67%.
  EXPECT_DOUBLE_EQ(
      mean_efficiency(trial_config("A32", 120000, TechniqueKind::kRedundancyFull), 3), 0.0);
  EXPECT_DOUBLE_EQ(
      mean_efficiency(trial_config("A32", 90000, TechniqueKind::kRedundancyPartial), 3), 0.0);
  EXPECT_GT(
      mean_efficiency(trial_config("A32", 30000, TechniqueKind::kRedundancyFull), 3), 0.3);
}

TEST(Integration, Figure2ShapeMultilevelToParallelRecoveryCrossover) {
  // D64: multilevel wins at small sizes, parallel recovery at exascale
  // (the paper's crossover near 25% of the system).
  const int trials = 12;
  const double ml_small =
      mean_efficiency(trial_config("D64", 1200, TechniqueKind::kMultilevel), trials);
  const double pr_small =
      mean_efficiency(trial_config("D64", 1200, TechniqueKind::kParallelRecovery), trials);
  EXPECT_GT(ml_small, pr_small + 0.02);

  const double ml_big =
      mean_efficiency(trial_config("D64", 120000, TechniqueKind::kMultilevel), trials);
  const double pr_big =
      mean_efficiency(trial_config("D64", 120000, TechniqueKind::kParallelRecovery), trials);
  EXPECT_GT(pr_big, ml_big + 0.02);
}

TEST(Integration, Figure3ShapeLowerMtbfHurtsEveryone) {
  const int trials = 8;
  for (TechniqueKind kind :
       {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
        TechniqueKind::kParallelRecovery}) {
    const double at_10y =
        mean_efficiency(trial_config("D64", 60000, kind, Duration::years(10.0)), trials);
    const double at_2p5y =
        mean_efficiency(trial_config("D64", 60000, kind, Duration::years(2.5)), trials);
    EXPECT_LT(at_2p5y, at_10y + 1e-9) << to_string(kind);
  }
}

TEST(Integration, Figure3ShapeCheckpointRestartCollapsesAtExascale) {
  // With a 2.5-year node MTBF the traditional technique barely progresses
  // (the paper: applications "unable to even complete execution").
  const double eff = mean_efficiency(
      trial_config("D64", 120000, TechniqueKind::kCheckpointRestart, Duration::years(2.5)),
      5);
  EXPECT_LT(eff, 0.15);
  const double pr = mean_efficiency(
      trial_config("D64", 120000, TechniqueKind::kParallelRecovery, Duration::years(2.5)),
      5);
  EXPECT_GT(pr, eff + 0.3);
}

TEST(Integration, AnalyticModelTracksSimulation) {
  // The selector's closed-form prediction must be close to the simulated
  // mean: it is what makes Resilience Selection credible.
  const ResilienceConfig resilience;
  const MachineSpec machine = MachineSpec::exascale();
  for (TechniqueKind kind :
       {TechniqueKind::kCheckpointRestart, TechniqueKind::kMultilevel,
        TechniqueKind::kParallelRecovery}) {
    const SingleAppTrialConfig config = trial_config("B32", 12000, kind);
    const double simulated = mean_efficiency(config, 20);
    const double predicted =
        predict_efficiency(make_plan(kind, config.app, machine, resilience), resilience);
    EXPECT_NEAR(simulated, predicted, 0.05) << to_string(kind);
  }
}

TEST(Integration, EfficiencyStudySweepsGrid) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("A32");
  config.size_fractions = {0.01, 0.50};
  config.techniques = {TechniqueKind::kCheckpointRestart,
                       TechniqueKind::kParallelRecovery};
  config.trials = 4;
  std::size_t last_done = 0;
  const EfficiencyStudyResult result =
      run_efficiency_study(config, [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 4U);
        last_done = done;
      });
  EXPECT_EQ(last_done, 4U);
  ASSERT_EQ(result.efficiency.size(), 2U);
  ASSERT_EQ(result.efficiency[0].size(), 2U);
  EXPECT_EQ(result.efficiency[0][0].count, 4U);

  const Table table = result.to_table();
  EXPECT_EQ(table.row_count(), 2U);
  const Table csv = result.to_csv_table();
  EXPECT_EQ(csv.row_count(), 4U);
}

TEST(Integration, WorkloadMiniFigure4Ordering) {
  // Tiny Figure-4: the ideal baseline never drops more than the same
  // scheduler under failures + resilience overhead.
  WorkloadStudyConfig study;
  study.machine = MachineSpec::exascale();
  study.workload.machine_nodes = study.machine.node_count;
  study.workload.arrival_count = 15;
  study.patterns = 2;

  const auto results = run_workload_study(
      study,
      {WorkloadCombo{SchedulerKind::kFcfs, TechniquePolicy::ideal_baseline()},
       WorkloadCombo{SchedulerKind::kFcfs,
                     TechniquePolicy::fixed_technique(TechniqueKind::kCheckpointRestart)},
       WorkloadCombo{SchedulerKind::kFcfs,
                     TechniquePolicy::fixed_technique(TechniqueKind::kParallelRecovery)}});
  ASSERT_EQ(results.size(), 3U);
  const double ideal = results[0].dropped_fraction.mean;
  EXPECT_LE(ideal, results[1].dropped_fraction.mean + 1e-9);
  EXPECT_LE(ideal, results[2].dropped_fraction.mean + 1e-9);
}

}  // namespace
}  // namespace xres
