// Tests for the crash-safety layer's storage primitives: CRC-32, atomic
// file replacement, journal line framing, the tolerant ResumeIndex loader
// (torn tails, corrupt records, duplicates, foreign journals), and the
// trial/workload outcome payload round-trips that make resumed studies
// byte-identical (docs/ROBUSTNESS.md).

#include "recovery/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/app_type.hpp"
#include "core/single_app_study.hpp"
#include "core/workload_record.hpp"
#include "recovery/json_parse.hpp"
#include "recovery/trial_record.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace xres::recovery {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_raw(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  out << content;
}

JournalMeta test_meta() {
  JournalMeta meta;
  meta.study = "journal-test";
  meta.root_seed = 42;
  return meta;
}

JournalRecord make_record(std::uint64_t index, const std::string& payload = "{}") {
  JournalRecord record;
  record.batch = "b";
  record.index = index;
  record.seed = 1000 + index;
  record.payload = payload;
  return record;
}

/// A temp journal path, removed on destruction.
struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name) : path{"/tmp/xres_" + name} {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(Crc32, KnownAnswerAndChunking) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
  EXPECT_EQ(crc32_hex(crc32("123456789")), "cbf43926");
  EXPECT_EQ(crc32(""), 0U);
  // Chunked continuation matches the one-shot result.
  EXPECT_EQ(crc32("456789", crc32("123")), crc32("123456789"));
  // Any flipped byte changes the checksum.
  EXPECT_NE(crc32("123456788"), crc32("123456789"));
}

TEST(AtomicFile, WritesAndReplacesWholeFiles) {
  const TempPath tmp{"atomic_test.txt"};
  write_file_atomic(tmp.path, "first");
  EXPECT_EQ(read_file(tmp.path), "first");
  write_file_atomic(tmp.path, "second, longer content\n");
  EXPECT_EQ(read_file(tmp.path), "second, longer content\n");
}

TEST(JournalFrame, RoundTripsAndRejectsTampering) {
  const std::string record = R"({"b":"x","i":1,"s":2,"p":{}})";
  const std::string line = frame_journal_line(record);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  std::string parsed;
  ASSERT_TRUE(unframe_journal_line(
      std::string_view{line}.substr(0, line.size() - 1), parsed));
  EXPECT_EQ(parsed, record);

  // Flip one payload byte: the CRC must catch it.
  std::string tampered = line.substr(0, line.size() - 1);
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_FALSE(unframe_journal_line(tampered, parsed));

  // Truncation (a torn append) is rejected, not misread.
  EXPECT_FALSE(unframe_journal_line(
      std::string_view{line}.substr(0, line.size() / 2), parsed));
  EXPECT_FALSE(unframe_journal_line("", parsed));
  EXPECT_FALSE(unframe_journal_line("not a journal line", parsed));
}

TEST(ResumeIndex, MissingFileIsAFreshStart) {
  const ResumeIndex index = ResumeIndex::load("/tmp/xres_does_not_exist.jsonl",
                                              test_meta());
  EXPECT_FALSE(index.stats().found);
  EXPECT_TRUE(index.empty());
}

TEST(ResumeIndex, EmptyFileIsAFreshStart) {
  const TempPath tmp{"journal_empty.jsonl"};
  write_raw(tmp.path, "");
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_TRUE(index.stats().found);
  EXPECT_TRUE(index.empty());
}

TEST(ResumeIndex, LoadsWhatTheJournalWrote) {
  const TempPath tmp{"journal_roundtrip.jsonl"};
  {
    TrialJournal journal{tmp.path, test_meta(), /*flush_every=*/2};
    journal.append(make_record(0, R"({"v":0})"));
    journal.append(make_record(1, R"({"v":1})"));
    journal.append(make_record(2, R"({"v":2})"));
    EXPECT_EQ(journal.appended(), 3U);
  }
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.size(), 3U);
  EXPECT_EQ(index.stats().valid_records, 3U);
  EXPECT_EQ(index.stats().corrupt_records, 0U);
  EXPECT_FALSE(index.stats().torn_tail);

  const JournalRecord* r1 = index.find("b", 1);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->seed, 1001U);
  EXPECT_EQ(r1->payload, R"({"v":1})");
  EXPECT_EQ(index.find("b", 99), nullptr);
  EXPECT_EQ(index.find("other", 1), nullptr);
}

TEST(ResumeIndex, TornTailIsDroppedWithoutLosingTheRest) {
  const TempPath tmp{"journal_torn.jsonl"};
  {
    TrialJournal journal{tmp.path, test_meta()};
    journal.append(make_record(0));
    journal.append(make_record(1));
  }
  // Simulate a SIGKILL mid-append: half a framed line, no newline.
  const std::string torn = frame_journal_line(to_record_json(make_record(2)));
  std::ofstream out{tmp.path, std::ios::binary | std::ios::app};
  out << torn.substr(0, torn.size() / 2);
  out.close();

  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.size(), 2U);
  EXPECT_TRUE(index.stats().torn_tail);
  EXPECT_EQ(index.stats().corrupt_records, 0U);
  EXPECT_NE(index.find("b", 0), nullptr);
  EXPECT_NE(index.find("b", 1), nullptr);
  EXPECT_EQ(index.find("b", 2), nullptr);
}

TEST(ResumeIndex, CorruptRecordMidFileIsSkippedLoudly) {
  const TempPath tmp{"journal_corrupt.jsonl"};
  {
    TrialJournal journal{tmp.path, test_meta()};
    journal.append(make_record(0));
    journal.append(make_record(1));
    journal.append(make_record(2));
  }
  // Flip one byte inside record 1's line (bit-rot / partial overwrite).
  std::string content = read_file(tmp.path);
  std::size_t line_start = 0;
  for (int skip = 0; skip < 2; ++skip) {  // meta + record 0
    line_start = content.find('\n', line_start) + 1;
  }
  content[line_start + 20] ^= 0x01;
  write_raw(tmp.path, content);

  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.size(), 2U);
  EXPECT_EQ(index.stats().corrupt_records, 1U);
  EXPECT_FALSE(index.stats().torn_tail);
  EXPECT_NE(index.find("b", 0), nullptr);
  EXPECT_EQ(index.find("b", 1), nullptr);  // the corrupt one re-runs
  EXPECT_NE(index.find("b", 2), nullptr);
}

TEST(ResumeIndex, DuplicateRecordsFirstWins) {
  const TempPath tmp{"journal_dupes.jsonl"};
  {
    TrialJournal journal{tmp.path, test_meta()};
    journal.append(make_record(0, R"({"v":"first"})"));
    journal.append(make_record(0, R"({"v":"second"})"));
    journal.append(make_record(1));
  }
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_EQ(index.size(), 2U);
  EXPECT_EQ(index.stats().duplicate_records, 1U);
  const JournalRecord* r0 = index.find("b", 0);
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r0->payload, R"({"v":"first"})");
}

TEST(ResumeIndex, RefusesForeignJournalsLoudly) {
  const TempPath tmp{"journal_foreign.jsonl"};
  {
    TrialJournal journal{tmp.path, test_meta()};
    journal.append(make_record(0));
  }
  JournalMeta other_study = test_meta();
  other_study.study = "someone-else";
  EXPECT_THROW((void)ResumeIndex::load(tmp.path, other_study), CheckError);

  JournalMeta other_seed = test_meta();
  other_seed.root_seed = 43;
  EXPECT_THROW((void)ResumeIndex::load(tmp.path, other_seed), CheckError);

  // Data records with no meta record at all: cannot verify ownership.
  const TempPath headless{"journal_headless.jsonl"};
  write_raw(headless.path, frame_journal_line(to_record_json(make_record(0))));
  EXPECT_THROW((void)ResumeIndex::load(headless.path, test_meta()), CheckError);

  // Garbage that happens to have valid CRC framing but a non-journal meta.
  const TempPath alien{"journal_alien.jsonl"};
  write_raw(alien.path, frame_journal_line(R"({"journal":"other-format","v":1})"));
  EXPECT_THROW((void)ResumeIndex::load(alien.path, test_meta()), CheckError);
}

TEST(ResumeIndex, WholeFileOfGarbageNeverCrashes) {
  const TempPath tmp{"journal_garbage.jsonl"};
  write_raw(tmp.path, "not\x01json\nat\x02" "all\n\n{\"c\":\"zzzz\"}\n");
  const ResumeIndex index = ResumeIndex::load(tmp.path, test_meta());
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.stats().corrupt_records, 2U);
  EXPECT_TRUE(index.stats().torn_tail);
}

TEST(TrialRecord, OutcomeRoundTripsByteIdentically) {
  // A real simulated trial, so every double is an honest product of the
  // engine rather than a hand-picked round number.
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 360};
  config.technique = TechniqueKind::kMultilevel;

  TrialOutcome outcome;
  outcome.result = run_trial(config, 12345);
  const std::string payload = serialize_trial_outcome(outcome);

  const TrialOutcome parsed = parse_trial_outcome(payload);
  EXPECT_EQ(parsed.result.efficiency, outcome.result.efficiency);
  EXPECT_EQ(parsed.result.wall_time.to_seconds(), outcome.result.wall_time.to_seconds());
  EXPECT_EQ(parsed.result.failures_seen, outcome.result.failures_seen);
  EXPECT_FALSE(parsed.quarantined);
  // Serialize(parse(x)) == x: nothing is lost or reformatted.
  EXPECT_EQ(serialize_trial_outcome(parsed), payload);
}

TEST(TrialRecord, OutcomeWithMetricsRoundTrips) {
  SingleAppTrialConfig config;
  config.app = AppSpec{app_type_by_name("C64"), 30000, 360};
  config.technique = TechniqueKind::kCheckpointRestart;

  obs::TrialObs obs;
  obs.enable_metrics();
  TrialOutcome outcome;
  outcome.result = run_trial(config, 777, &obs);
  outcome.metrics = *obs.metrics();

  const std::string payload = serialize_trial_outcome(outcome);
  const TrialOutcome parsed = parse_trial_outcome(payload);
  ASSERT_TRUE(parsed.metrics.has_value());
  EXPECT_EQ(serialize_trial_outcome(parsed), payload);
}

TEST(TrialRecord, QuarantineMarkerRoundTrips) {
  TrialOutcome outcome;
  outcome.quarantined = true;
  outcome.quarantine_reason = "watchdog: trial exceeded 2.5s";
  const TrialOutcome parsed = parse_trial_outcome(serialize_trial_outcome(outcome));
  EXPECT_TRUE(parsed.quarantined);
  EXPECT_EQ(parsed.quarantine_reason, outcome.quarantine_reason);
  EXPECT_EQ(parsed.result.efficiency, 0.0);
}

TEST(TrialRecord, MalformedPayloadsThrowNotCrash) {
  EXPECT_THROW((void)parse_trial_outcome(""), JsonParseError);
  EXPECT_THROW((void)parse_trial_outcome("{"), JsonParseError);
  EXPECT_THROW((void)parse_trial_outcome("{}"), JsonParseError);
  EXPECT_THROW((void)parse_trial_outcome(R"({"eff":true})"), JsonParseError);
  EXPECT_THROW((void)parse_trial_outcome("[1,2,3]"), JsonParseError);
}

TEST(WorkloadRecord, OutcomeRoundTripsByteIdentically) {
  WorkloadOutcome outcome;
  outcome.result.total_jobs = 40;
  outcome.result.completed = 37;
  outcome.result.dropped = 3;
  outcome.result.dropped_fraction = 3.0 / 40.0;
  outcome.result.mean_utilization = 0.8375;
  outcome.result.failures_injected = 17;
  outcome.result.selection_counts[TechniqueKind::kMultilevel] = 12;
  outcome.result.selection_counts[TechniqueKind::kParallelRecovery] = 25;

  const std::string payload = serialize_workload_outcome(outcome);
  const WorkloadOutcome parsed = parse_workload_outcome(payload);
  EXPECT_EQ(parsed.result.total_jobs, 40U);
  EXPECT_EQ(parsed.result.dropped_fraction, outcome.result.dropped_fraction);
  EXPECT_EQ(parsed.result.mean_utilization, outcome.result.mean_utilization);
  EXPECT_EQ(parsed.result.selection_counts.at(TechniqueKind::kMultilevel), 12U);
  EXPECT_EQ(serialize_workload_outcome(parsed), payload);
}

TEST(WorkloadRecord, MalformedPayloadsThrowNotCrash) {
  EXPECT_THROW((void)parse_workload_outcome("{}"), JsonParseError);
  EXPECT_THROW((void)parse_workload_outcome("null"), JsonParseError);
  // An out-of-range technique id in the selection counts is corruption.
  WorkloadOutcome outcome;
  outcome.result.selection_counts[TechniqueKind::kMultilevel] = 1;
  std::string payload = serialize_workload_outcome(outcome);
  const std::size_t sel = payload.find("\"sel\":[[");
  ASSERT_NE(sel, std::string::npos);
  payload.replace(sel + 8, 1, "99");
  EXPECT_THROW((void)parse_workload_outcome(payload), JsonParseError);
}

}  // namespace
}  // namespace xres::recovery
