// Failure explorer: generate failure traces under the paper's model
// (Section III-E) and inspect their statistics — inter-arrival histogram,
// severity mix, system-MTBF scaling — before running full studies.
//
//   $ ./failure_explorer --mtbf-years 10 --system-share 1.0 --days 7

#include <cstdio>

#include "failure/distribution.hpp"
#include "failure/severity.hpp"
#include "failure/trace.hpp"
#include "platform/spec.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace xres;
  CliParser cli{"failure_explorer — inspect the paper's failure model"};
  cli.add_option("--mtbf-years", "per-node MTBF", "10");
  cli.add_option("--system-share", "fraction of the machine busy", "1.0");
  cli.add_option("--days", "trace horizon in days", "7");
  cli.add_option("--weibull-shape", "0 = exponential (paper), else Weibull shape", "0");
  cli.add_option("--seed", "RNG seed", "1");
  if (!cli.parse_or_exit(argc, argv)) return 0;

  const MachineSpec machine = MachineSpec::exascale();
  const double share = cli.real("--system-share");
  XRES_CHECK(share > 0.0 && share <= 1.0, "--system-share must be in (0, 1]");
  const double busy_nodes = share * machine.node_count;
  const Rate rate =
      Rate::one_per(Duration::years(cli.real("--mtbf-years"))) * busy_nodes;
  const Duration horizon = Duration::days(cli.real("--days"));
  const double shape = cli.real("--weibull-shape");
  const FailureDistribution dist =
      shape > 0.0 ? FailureDistribution::weibull(shape)
                  : FailureDistribution::exponential();

  std::printf("system: %.0f busy nodes, node MTBF %.1f y\n", busy_nodes,
              cli.real("--mtbf-years"));
  std::printf("Eq. 2 system failure rate: %.2f failures/hour (system MTBF %s)\n\n",
              rate.per_hour_value(), to_string(rate.mean_interval()).c_str());

  const SeverityModel severity = SeverityModel::bluegene_default();
  Pcg32 rng{static_cast<std::uint64_t>(cli.integer("--seed"))};
  const FailureTrace trace =
      FailureTrace::generate(rate, horizon, severity, dist, rng);

  std::printf("generated %zu failures over %s (empirical rate %.2f/h)\n\n",
              trace.size(), to_string(horizon).c_str(),
              trace.empirical_rate().per_hour_value());

  // Severity mix.
  std::vector<std::size_t> by_severity(4, 0);
  RunningStats gaps;
  TimePoint prev = TimePoint::origin();
  Histogram gap_hist{0.0, 3.0 * rate.mean_interval().to_minutes(), 24};
  for (const Failure& f : trace.failures()) {
    by_severity[static_cast<std::size_t>(f.severity)]++;
    gaps.add((f.time - prev).to_minutes());
    gap_hist.add((f.time - prev).to_minutes());
    prev = f.time;
  }

  Table severities{{"severity", "meaning", "count", "fraction"}};
  const char* meanings[] = {"", "transient (L1 recoverable)", "node loss (L2 recoverable)",
                            "severe (needs PFS checkpoint)"};
  for (int level = 1; level <= 3; ++level) {
    severities.add_row({std::to_string(level), meanings[level],
                        std::to_string(by_severity[static_cast<std::size_t>(level)]),
                        fmt_percent(static_cast<double>(
                                        by_severity[static_cast<std::size_t>(level)]) /
                                    static_cast<double>(trace.size()))});
  }
  std::printf("%s\n", severities.to_text().c_str());

  std::printf("inter-arrival gaps (minutes): mean %.2f, sd %.2f, min %.3f, max %.1f\n\n",
              gaps.mean(), gaps.stddev(), gaps.min(), gaps.max());
  std::printf("%s", gap_hist.to_text(48).c_str());
  if (shape <= 0.0) {
    std::printf("\n(exponential gaps: sd ~= mean, monotone-decaying histogram)\n");
  } else {
    std::printf("\n(Weibull shape %.2f: %s)\n", shape,
                shape < 1.0 ? "bursty — heavy head and tail" : "more regular than Poisson");
  }
  return 0;
}
