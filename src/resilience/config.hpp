#pragma once

/// \file config.hpp
/// Tunable parameters of the resilience models (paper Table II plus the
/// constants the paper adopts from its references).

#include <vector>

#include "util/units.hpp"

namespace xres {

struct ResilienceConfig {
  /// M_n: per-node mean time between failures. The paper evaluates 10 years
  /// (default) and 2.5 years (Figure 3).
  Duration node_mtbf{Duration::years(10.0)};

  /// Per-severity-level failure weights (normalized internally). Index 0 is
  /// level 1. Default after the BlueGene/L-derived ratios of Moody et al.
  /// [3]; see DESIGN.md §5 for the substitution rationale.
  std::vector<double> severity_weights{0.55, 0.35, 0.10};

  /// Message-logging slowdown per unit of communication fraction:
  /// µ = 1 + comm_slowdown_per_tc × T_C. The paper uses T_C / 10, i.e. 0.1
  /// (Section IV-D).
  double comm_slowdown_per_tc{0.1};

  /// Parallel recovery fans the failed node's rework across this many
  /// helpers (from the virtualization ratios in Meneses et al. [2]).
  double recovery_parallelism{4.0};

  /// Degrees of redundancy evaluated (Section IV-E).
  double partial_redundancy{1.5};
  double full_redundancy{2.0};

  /// Abort an execution once wall time exceeds this multiple of the
  /// (stretched) baseline; such runs report efficiency 0. Captures the
  /// paper's "unable to even complete execution at exascale sizes".
  double max_slowdown{100.0};

  /// Multilevel optimizer search bound for checkpoints-per-parent-level.
  int max_nesting{128};

  /// Extension: let single-level techniques (checkpoint/restart, parallel
  /// recovery) adapt their checkpoint interval to the observed failure
  /// rate at runtime (see ExecutionPlan::adaptive_interval).
  bool adaptive_interval{false};

  /// Extension: work rate sustained while a semi-blocking checkpoint
  /// drains (kSemiBlockingCheckpoint only). 0.5 means the application
  /// progresses at half speed during checkpoint I/O.
  double semi_blocking_work_rate{0.5};

  /// Extension: checkpoint image size as a fraction of application memory
  /// (incremental/compressed checkpointing). 1.0 = the paper's full-memory
  /// images; 0.25 means images are a quarter of N_m. Scales every level's
  /// save/restore cost (Eqs. 3, 5, 6).
  double checkpoint_compression{1.0};

  void validate() const;
};

}  // namespace xres
