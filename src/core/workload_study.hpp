#pragma once

/// \file workload_study.hpp
/// Orchestration of the workload experiments: run every (scheduler ×
/// technique-policy) combination over the same set of seeded arrival
/// patterns and summarize the dropped-application fraction (paper
/// Figures 4 and 5).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "core/executor.hpp"
#include "core/policy.hpp"
#include "core/workload_engine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace xres {

struct WorkloadStudyConfig {
  MachineSpec machine{MachineSpec::exascale()};
  ResilienceConfig resilience{};
  WorkloadConfig workload{};
  /// 50 arrival patterns in the paper.
  std::uint32_t patterns{50};
  std::uint64_t seed{20170530};
  /// Worker threads for pattern runs; 0 = hardware_concurrency, 1 =
  /// serial. Results are identical for every value (see core/executor.hpp).
  unsigned threads{0};
  /// Collect a deterministic MetricSet per combo (one per pattern run,
  /// merged in pattern order — thread-count-invariant like the results).
  bool collect_metrics{false};
  /// Crash-safety envelope — journal/resume/watchdog/retry
  /// (docs/ROBUSTNESS.md). The default reproduces the historical behavior.
  /// Pattern runs are journaled under `recovery_batch`, fingerprinted by
  /// (study seed, combo name hash, pattern), so reordering or editing the
  /// combo list invalidates exactly the affected records.
  recovery::TrialRecoveryOptions recovery{};
  /// Journal batch label. Drivers running several studies against one
  /// journal (e.g. one per workload bias) must give each a distinct label.
  std::string recovery_batch{"workload"};
};

/// One bar of Figure 4/5: a scheduler + technique policy evaluated over all
/// patterns.
struct WorkloadCombo {
  SchedulerKind scheduler{SchedulerKind::kFcfs};
  TechniquePolicy policy{};

  [[nodiscard]] std::string name() const;
};

struct WorkloadComboResult {
  WorkloadCombo combo{};
  Summary dropped_fraction;     ///< over patterns
  Summary mean_utilization;     ///< over patterns
  double mean_failures{0.0};    ///< failures injected per pattern
  std::map<TechniqueKind, std::uint32_t> selection_counts;  ///< summed
  /// Merged over this combo's pattern runs (set when collect_metrics).
  std::optional<obs::MetricSet> metrics;
};

/// Progress callback: (completed pattern-runs, total pattern-runs).
/// Invoked from worker threads under the executor's mutex (one invocation
/// at a time, strictly increasing counts) — see TrialProgress.
using WorkloadProgress = TrialProgress;

/// Evaluate each combo over the study's patterns. Pattern i is identical
/// across combos (same generator seed), matching the paper's methodology.
/// \p report (optional) receives the crash-safety accounting; when it comes
/// back `interrupted`, completed runs are valid, the rest reduced as zeros —
/// callers should print partial progress and exit with
/// recovery::kExitInterrupted instead of writing figure artifacts.
[[nodiscard]] std::vector<WorkloadComboResult> run_workload_study(
    const WorkloadStudyConfig& config, const std::vector<WorkloadCombo>& combos,
    const WorkloadProgress& progress = {}, recovery::BatchReport* report = nullptr);

/// The Figure-4 combo set: Ideal Baseline plus each scheduler × each
/// workload technique.
[[nodiscard]] std::vector<WorkloadCombo> figure4_combos();

/// The Figure-5 combo set for one bias: each scheduler with Parallel
/// Recovery and with Resilience Selection.
[[nodiscard]] std::vector<WorkloadCombo> figure5_combos();

/// Render combo results as a table (rows: combos).
[[nodiscard]] Table workload_results_table(const std::vector<WorkloadComboResult>& results);

}  // namespace xres
