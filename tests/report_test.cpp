// Tests for markdown study reports and the Table markdown renderer, plus
// randomized cross-checks of the event queue against a reference model
// and a workload-engine accounting fuzz.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "core/report.hpp"
#include "core/workload_engine.hpp"
#include "sim/event_queue.hpp"
#include "util/check.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace xres {
namespace {

TEST(TableMarkdown, RendersPipesAndEscapes) {
  Table t{{"name", "value"}};
  t.add_row({"plain", "1"});
  t.add_row({"with|pipe", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name | value |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("with\\|pipe"), std::string::npos);
}

TEST(StudyReport, MarkdownStructure) {
  StudyReport report{"Figure X: a study"};
  report.add_config("machine", "120000 nodes");
  report.add_config("trials", "200");
  report.add_paragraph("Some *context* for the numbers.");
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  report.add_table("Results", std::move(t));

  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("# Figure X: a study"), std::string::npos);
  EXPECT_NE(md.find("## Configuration"), std::string::npos);
  EXPECT_NE(md.find("* **machine**: 120000 nodes"), std::string::npos);
  EXPECT_NE(md.find("Some *context*"), std::string::npos);
  EXPECT_NE(md.find("## Results"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_EQ(report.table_count(), 1U);
  // Configuration precedes prose precedes tables.
  EXPECT_LT(md.find("## Configuration"), md.find("Some *context*"));
  EXPECT_LT(md.find("Some *context*"), md.find("## Results"));
}

TEST(StudyReport, WriteRoundTrips) {
  StudyReport report{"t"};
  report.add_paragraph("body");
  const std::string path = "/tmp/xres_report_test.md";
  report.write(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof buf - 1, f), 0U);
  std::fclose(f);
  EXPECT_EQ(std::string(buf).substr(0, 4), "# t\n");
  std::remove(path.c_str());
  // Unwritable targets surface as io::IoError (errno preserved) since the
  // atomic-write path moved onto the hardened util/io layer.
  EXPECT_THROW(report.write("/nonexistent/dir/report.md"), xres::io::IoError);
}

TEST(StudyReport, RejectsEmptyInputs) {
  EXPECT_THROW(StudyReport{""}, CheckError);
  StudyReport report{"t"};
  EXPECT_THROW(report.add_config("", "v"), CheckError);
}

/// Randomized differential test: EventQueue vs. a naive sorted reference.
class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Pcg32 rng{GetParam()};
  EventQueue queue;
  // Reference: (time, seq, id) tuples, manually sorted at pop time.
  struct Ref {
    double time;
    std::uint64_t seq;
    EventId id;
  };
  std::vector<Ref> reference;
  std::uint64_t seq = 0;
  std::vector<EventId> order_popped;
  std::vector<EventId> order_expected;

  for (int step = 0; step < 3000; ++step) {
    const double p = rng.next_double();
    if (p < 0.5) {
      const double t = rng.uniform(0.0, 1000.0);
      const EventId id = queue.schedule(TimePoint::at(Duration::seconds(t)), [] {});
      reference.push_back(Ref{t, seq++, id});
    } else if (p < 0.65 && !reference.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint32_t>(reference.size())));
      EXPECT_TRUE(queue.cancel(reference[idx].id));
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!reference.empty()) {
      auto best = std::min_element(reference.begin(), reference.end(),
                                   [](const Ref& a, const Ref& b) {
                                     if (a.time != b.time) return a.time < b.time;
                                     return a.seq < b.seq;
                                   });
      order_expected.push_back(best->id);
      auto fired = queue.pop();
      ASSERT_TRUE(fired.has_value());
      order_popped.push_back(fired->id);
      reference.erase(best);
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  EXPECT_EQ(order_popped, order_expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL));

/// Workload-engine accounting fuzz: random small patterns must always
/// satisfy completed + dropped == total and the drop breakdown identity.
class WorkloadFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadFuzz, AccountingIdentitiesHold) {
  const std::uint64_t seed = GetParam();
  Pcg32 rng{seed};

  WorkloadConfig wconfig;
  wconfig.machine_nodes = 1000;
  wconfig.arrival_count = static_cast<std::uint32_t>(rng.uniform_int(5, 25));
  wconfig.mean_interarrival = Duration::hours(rng.uniform(0.25, 2.0));
  wconfig.size_fractions = {0.05, 0.15, 0.40};
  wconfig.baseline_hours = {1.0, 3.0, 6.0};
  const ArrivalPattern pattern = generate_pattern(wconfig, seed, 0);

  WorkloadEngineConfig config;
  config.machine = MachineSpec::testbed(1000);
  config.resilience.node_mtbf = Duration::days(rng.uniform(30.0, 720.0));
  config.scheduler = extended_schedulers()[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint32_t>(extended_schedulers().size())))];
  const auto& kinds = workload_techniques();
  config.policy = TechniquePolicy::fixed_technique(
      kinds[static_cast<std::size_t>(rng.next_below(static_cast<std::uint32_t>(kinds.size())))]);
  config.seed = seed;
  config.burst_probability = rng.bernoulli(0.5) ? 0.2 : 0.0;
  config.model_pfs_contention = rng.bernoulli(0.5);

  const WorkloadRunResult result = run_workload(config, pattern);
  EXPECT_EQ(result.completed + result.dropped, result.total_jobs);
  EXPECT_EQ(result.dropped_before_start + result.dropped_while_running, result.dropped);
  EXPECT_GE(result.mean_utilization, 0.0);
  EXPECT_LE(result.mean_utilization, 1.0);
  EXPECT_EQ(result.completed_slowdown.count, result.completed);
  if (result.completed_slowdown.count > 0) {
    EXPECT_GE(result.completed_slowdown.min, 1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadFuzz,
                         ::testing::Range(std::uint64_t{100}, std::uint64_t{112}));

}  // namespace
}  // namespace xres
