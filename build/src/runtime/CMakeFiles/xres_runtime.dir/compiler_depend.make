# Empty compiler generated dependencies file for xres_runtime.
# This may be replaced when dependencies are built.
