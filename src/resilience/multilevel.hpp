#pragma once

/// \file multilevel.hpp
/// Per-level checkpoint-schedule optimization for multilevel checkpointing
/// (paper Section IV-C, after the Markov model of Moody et al. [3]).
///
/// The schedule is hierarchical: work proceeds in quanta of length w; a
/// checkpoint is taken after every quantum; every n_1-th checkpoint is
/// level 2 instead of level 1, every (n_1·n_2)-th is level 3, and so on.
/// We pick (w, n_1, ..., n_{m-1}) to minimize first-order expected overhead
/// per unit of useful work:
///
///   g = Σ_i count_i·C_i / (N·w)            (checkpoint cost)
///     + Σ_i λ_i · (P_i / 2 + R_i)          (expected rework + restart)
///
/// where P_i = w·Π_{j<i} n_j is the level-i coverage period, λ_i the rate
/// of severity-i failures, and C_i/R_i the save/restore costs. For fixed
/// nesting the optimal w has the closed form sqrt(A/B) (g = A/w + B·w +
/// const), so the search is exhaustive over a geometric nesting grid and
/// exact in w. With a single level this degenerates to the Daly optimum of
/// Eq. 4 (property-tested).

#include <vector>

#include "resilience/plan.hpp"
#include "util/units.hpp"

namespace xres {

struct MultilevelSchedule {
  Duration quantum{};         ///< w
  std::vector<int> nesting;   ///< size == level count; last entry fixed at 1
  double overhead{0.0};       ///< predicted overhead g at the optimum
};

/// Expected overhead per unit work of a given schedule (exposed for tests
/// and the analytic model). \p level_rates[i] is the rate of failures whose
/// severity maps to level i.
[[nodiscard]] double multilevel_overhead(Duration quantum, const std::vector<int>& nesting,
                                         const std::vector<CheckpointLevelSpec>& levels,
                                         const std::vector<Rate>& level_rates);

/// Find the minimum-overhead schedule. \p max_nesting bounds each n_i.
[[nodiscard]] MultilevelSchedule optimize_multilevel(
    const std::vector<CheckpointLevelSpec>& levels,
    const std::vector<Rate>& level_rates, int max_nesting);

}  // namespace xres
