#include "study/registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace xres::study {

const char* to_string(StudyGroup group) {
  switch (group) {
    case StudyGroup::kFigure: return "figure";
    case StudyGroup::kTable: return "table";
    case StudyGroup::kAblation: return "ablation";
    case StudyGroup::kExtension: return "extension";
    case StudyGroup::kAdhoc: return "adhoc";
  }
  return "?";
}

const char* ParamSpec::type_name() const {
  switch (type) {
    case Type::kInt: return "int";
    case Type::kReal: return "real";
    case Type::kString: return "string";
  }
  return "?";
}

namespace {

/// Trim a %g rendering for range bounds (they are documentation, not data).
std::string bound_text(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string ParamSpec::range_text() const {
  if (!min_value.has_value() && !max_value.has_value()) return "";
  std::string out = "[";
  out += min_value.has_value() ? bound_text(*min_value) : "...";
  out += ", ";
  out += max_value.has_value() ? bound_text(*max_value) : "...";
  out += "]";
  return out;
}

const ParamSpec* StudyDefinition::find_param(const std::string& key) const {
  for (const ParamSpec& p : params) {
    if (p.key == key) return &p;
  }
  return nullptr;
}

std::string StudyDefinition::help_summary() const {
  if (!summary.empty()) return summary;
  return name + " — " + description;
}

void validate_param_value(const ParamSpec& spec, const std::string& value) {
  if (spec.type == ParamSpec::Type::kString) return;
  XRES_CHECK(!value.empty(), "parameter '" + spec.key + "' needs a value");
  char* end = nullptr;
  double parsed = 0.0;
  if (spec.type == ParamSpec::Type::kInt) {
    parsed = static_cast<double>(std::strtoll(value.c_str(), &end, 10));
    XRES_CHECK(end != nullptr && *end == '\0',
               "parameter '" + spec.key + "' expects an integer, got '" + value + "'");
  } else {
    parsed = std::strtod(value.c_str(), &end);
    XRES_CHECK(end != nullptr && *end == '\0',
               "parameter '" + spec.key + "' expects a number, got '" + value + "'");
  }
  XRES_CHECK(!spec.min_value.has_value() || parsed >= *spec.min_value,
             "parameter '" + spec.key + "' = " + value + " is below its minimum " +
                 bound_text(*spec.min_value));
  XRES_CHECK(!spec.max_value.has_value() || parsed <= *spec.max_value,
             "parameter '" + spec.key + "' = " + value + " is above its maximum " +
                 bound_text(*spec.max_value));
}

StudyParams::StudyParams(const StudyDefinition& def) : def_{&def} {
  for (const ParamSpec& p : def.params) values_[p.key] = p.default_value;
}

void StudyParams::set(const std::string& key, const std::string& value) {
  XRES_CHECK(def_ != nullptr, "StudyParams not bound to a study");
  const ParamSpec* spec = def_->find_param(key);
  XRES_CHECK(spec != nullptr,
             "unknown parameter '" + key + "' for study '" + def_->name + "'");
  validate_param_value(*spec, value);
  values_[key] = value;
}

std::int64_t StudyParams::integer(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  XRES_CHECK(end != nullptr && *end == '\0' && !v.empty(),
             "parameter '" + key + "' expects an integer, got '" + v + "'");
  return parsed;
}

std::uint32_t StudyParams::u32(const std::string& key) const {
  return static_cast<std::uint32_t>(integer(key));
}

double StudyParams::real(const std::string& key) const {
  const std::string v = str(key);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  XRES_CHECK(end != nullptr && *end == '\0' && !v.empty(),
             "parameter '" + key + "' expects a number, got '" + v + "'");
  return parsed;
}

std::string StudyParams::str(const std::string& key) const {
  const auto it = values_.find(key);
  XRES_CHECK(it != values_.end(), "undeclared parameter queried: " + key);
  return it->second;
}

namespace detail {
void register_builtin_studies(StudyRegistry& registry);
}  // namespace detail

StudyRegistry& StudyRegistry::instance() {
  // Leaked on purpose: study Registrations run during static init and the
  // registry must outlive every other static destructor.
  static StudyRegistry* registry = [] {
    auto* r = new StudyRegistry();
    detail::register_builtin_studies(*r);
    return r;
  }();
  return *registry;
}

void StudyRegistry::add(StudyDefinition def) {
  XRES_CHECK(!def.name.empty(), "study needs a name");
  XRES_CHECK(!def.description.empty(), "study '" + def.name + "' needs a description");
  XRES_CHECK(def.run != nullptr, "study '" + def.name + "' needs a run function");
  XRES_CHECK(find(def.name) == nullptr, "duplicate study name: " + def.name);
  for (const ParamSpec& p : def.params) {
    XRES_CHECK(!p.key.empty() && p.key[0] != '-',
               "study '" + def.name + "': parameter keys are bare names");
    validate_param_value(p, p.default_value);
  }
  studies_.push_back(std::make_unique<StudyDefinition>(std::move(def)));
}

const StudyDefinition* StudyRegistry::find(const std::string& name) const {
  for (const auto& s : studies_) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

std::vector<const StudyDefinition*> StudyRegistry::all() const {
  std::vector<const StudyDefinition*> out;
  out.reserve(studies_.size());
  for (const auto& s : studies_) out.push_back(s.get());
  std::sort(out.begin(), out.end(),
            [](const StudyDefinition* a, const StudyDefinition* b) {
              if (a->group != b->group) return a->group < b->group;
              return a->name < b->name;
            });
  return out;
}

std::vector<const StudyDefinition*> StudyRegistry::group_members(
    const std::vector<StudyGroup>& groups) const {
  std::vector<const StudyDefinition*> out;
  for (const StudyDefinition* def : all()) {
    if (std::find(groups.begin(), groups.end(), def->group) != groups.end()) {
      out.push_back(def);
    }
  }
  return out;
}

Registration::Registration(StudyDefinition def) {
  StudyRegistry::instance().add(std::move(def));
}

}  // namespace xres::study
