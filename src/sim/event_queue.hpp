#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event simulator.
///
/// Requirements that shaped the design:
///  * deterministic total order: ties in time are broken by insertion
///    sequence so that a seeded simulation replays identically,
///  * O(log n) schedule/pop and O(1) cancel — resilience runtimes cancel
///    their pending phase-completion event on every failure, so cancel is on
///    the hot path (lazy deletion: cancelled entries are skipped at pop).

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace xres {

/// Handle identifying a scheduled event; unique within one queue's lifetime.
enum class EventId : std::uint64_t {};

}  // namespace xres

template <>
struct std::hash<xres::EventId> {
  std::size_t operator()(xres::EventId id) const noexcept {
    return std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(id));
  }
};

namespace xres {

/// Action executed when an event fires.
using EventCallback = std::function<void()>;

/// An event popped from the queue, ready to execute.
struct FiredEvent {
  EventId id{};
  TimePoint time{};
  EventCallback callback;
};

class EventQueue {
 public:
  /// Schedule \p callback at absolute time \p when.
  EventId schedule(TimePoint when, EventCallback callback);

  /// Cancel a pending event. Returns true if the event was still pending
  /// (false if it already fired or was already cancelled).
  bool cancel(EventId id);

  /// True if \p id is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Time of the earliest pending event, if any.
  [[nodiscard]] std::optional<TimePoint> next_time() const;

  /// Remove and return the earliest pending event. Empty optional when the
  /// queue has no live events.
  std::optional<FiredEvent> pop();

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  [[nodiscard]] bool empty() const { return live_.empty(); }

  /// Drop every pending event.
  void clear();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    EventId id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pop heap entries that were cancelled (lazy deletion).
  void skip_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_map<EventId, EventCallback> live_;
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
};

}  // namespace xres
