// Tests for runtime-defined studies: the TOML reader, spec parsing and
// materialization, the schema JSON round-trip, the sweep planner's grid
// semantics, and the end-to-end contracts — a spec-defined study produces
// byte-identical artifacts to its compiled-in base, and a sweep manifest is
// byte-identical for every --threads value.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "recovery/json_parse.hpp"
#include "study/capture.hpp"
#include "study/options.hpp"
#include "study/registry.hpp"
#include "study/spec.hpp"
#include "study/study_main.hpp"
#include "study/suite.hpp"
#include "study/sweep.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/toml.hpp"

namespace xres::study {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------- TOML --

TEST(Toml, ParsesTablesKeysAndScalarKinds) {
  const util::TomlDocument doc = util::TomlDocument::parse(
      "# spec header comment\n"
      "[study]\n"
      "name = \"eff\"  # trailing comment\n"
      "base = 'efficiency'\n"
      "seed = 7\n"
      "share = 0.25\n"
      "fast = true\n"
      "\"quoted key\" = \"v\"\n");
  const util::TomlTable* study = doc.find("study");
  ASSERT_NE(study, nullptr);
  EXPECT_EQ(study->entries.size(), 6u);
  EXPECT_EQ(study->find("name")->value.kind, util::TomlValue::Kind::kString);
  EXPECT_EQ(study->find("name")->value.text, "eff");
  EXPECT_EQ(study->find("base")->value.text, "efficiency");
  EXPECT_EQ(study->find("seed")->value.kind, util::TomlValue::Kind::kInteger);
  EXPECT_EQ(study->find("seed")->value.text, "7");
  EXPECT_EQ(study->find("share")->value.kind, util::TomlValue::Kind::kFloat);
  EXPECT_EQ(study->find("share")->value.text, "0.25");
  EXPECT_EQ(study->find("fast")->value.kind, util::TomlValue::Kind::kBool);
  EXPECT_NE(study->find("quoted key"), nullptr);
}

TEST(Toml, RawNumberTextIsPreserved) {
  // The schema machinery stores raw value text; "2.50" must not become
  // "2.5" on the way through the parser.
  const util::TomlDocument doc =
      util::TomlDocument::parse("[params]\nmtbf = 2.50\nbig = 1e9\nneg = -3\n");
  const util::TomlTable* params = doc.find("params");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->find("mtbf")->value.text, "2.50");
  EXPECT_EQ(params->find("big")->value.text, "1e9");
  EXPECT_EQ(params->find("neg")->value.text, "-3");
}

TEST(Toml, ArraysSpanLinesAndNest) {
  const util::TomlDocument doc = util::TomlDocument::parse(
      "[sweep]\n"
      "trials = [10, 20,\n"
      "          40]  # continued\n"
      "mixed = [\"a\", 'b']\n"
      "empty = []\n");
  const util::TomlTable* sweep = doc.find("sweep");
  ASSERT_NE(sweep, nullptr);
  const util::TomlValue& trials = sweep->find("trials")->value;
  ASSERT_EQ(trials.kind, util::TomlValue::Kind::kArray);
  ASSERT_EQ(trials.items.size(), 3u);
  EXPECT_EQ(trials.items[2].text, "40");
  EXPECT_EQ(sweep->find("mixed")->value.items.size(), 2u);
  EXPECT_TRUE(sweep->find("empty")->value.items.empty());
}

TEST(Toml, StringEscapes) {
  const util::TomlDocument doc = util::TomlDocument::parse(
      "a = \"tab\\there\"\nb = \"quote \\\" done\"\nc = 'no \\escape'\n");
  const util::TomlTable* root = doc.find("");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->find("a")->value.text, "tab\there");
  EXPECT_EQ(root->find("b")->value.text, "quote \" done");
  EXPECT_EQ(root->find("c")->value.text, "no \\escape");
}

TEST(Toml, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      (void)util::TomlDocument::parse(text);
      FAIL() << "expected TomlParseError for: " << text;
    } catch (const util::TomlParseError& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << e.what() << " should mention " << needle;
    }
  };
  expect_error("a = 1\na = 2\n", "line 2");
  expect_error("a = 1\na = 2\n", "duplicate key 'a'");
  expect_error("[t]\n[t]\n", "duplicate table [t]");
  expect_error("a = \"unterminated\n", "unterminated string");
  expect_error("a = 12x\n", "bad value");
  expect_error("a = [1, 2\n\n", "unterminated array");
  expect_error("a.b = 1\n", "dotted keys");
  expect_error("a = 1 stray\n", "line 1");
  expect_error("a 1\n", "expected '='");
}

// ---------------------------------------------------------------- spec --

constexpr const char* kSpecToml =
    "[study]\n"
    "name = \"eff_a32\"\n"
    "base = \"efficiency\"\n"
    "description = \"A32 variant\"\n"
    "seed = 11\n"
    "\n"
    "[params]\n"
    "type = \"A32\"\n"
    "trials = 3\n"
    "\n"
    "[sweep]\n"
    "mtbf-years = [5, 10]\n";

constexpr const char* kSpecJson =
    "{\"study\": {\"name\": \"eff_a32\", \"base\": \"efficiency\","
    " \"description\": \"A32 variant\", \"seed\": 11},"
    " \"params\": {\"type\": \"A32\", \"trials\": 3},"
    " \"sweep\": {\"mtbf-years\": [5, 10]}}";

void expect_spec_contents(const StudySpec& spec) {
  EXPECT_EQ(spec.name, "eff_a32");
  EXPECT_EQ(spec.base, "efficiency");
  EXPECT_EQ(spec.description, "A32 variant");
  ASSERT_TRUE(spec.seed.has_value());
  EXPECT_EQ(*spec.seed, 11u);
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.params[0].first, "type");
  EXPECT_EQ(spec.params[0].second, "A32");
  EXPECT_EQ(spec.params[1].second, "3");
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_EQ(spec.sweep[0].key, "mtbf-years");
  EXPECT_EQ(spec.sweep[0].values, (std::vector<std::string>{"5", "10"}));
}

TEST(StudySpecParse, TomlAndJsonAgree) {
  expect_spec_contents(parse_spec_toml(kSpecToml));
  expect_spec_contents(parse_spec_json(kSpecJson));
}

TEST(StudySpecParse, RejectsUnknownKeysNamingThem) {
  const auto expect_check = [](const auto& fn, const char* needle) {
    try {
      (void)fn();
      FAIL() << "expected CheckError mentioning " << needle;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos) << e.what();
    }
  };
  expect_check([] { return parse_spec_toml("[study]\nname=\"x\"\nbase=\"y\"\nbogus=1\n"); },
               "unknown [study] key 'bogus'");
  expect_check([] { return parse_spec_toml("[study]\nname=\"x\"\nbase=\"y\"\n[extra]\n"); },
               "unknown section [extra]");
  expect_check([] { return parse_spec_toml("name = \"x\"\n"); },
               "outside a section");
  expect_check([] { return parse_spec_toml("[study]\nbase=\"y\"\n"); }, "'name'");
  expect_check([] { return parse_spec_toml("[study]\nname=\"x\"\n"); }, "'base'");
  expect_check([] { return parse_spec_toml(
                        "[study]\nname=\"x\"\nbase=\"y\"\n[params]\nt=[1,2]\n"); },
               "use [sweep]");
  expect_check([] { return parse_spec_json("{\"bogus\": 1}"); },
               "unknown top-level key 'bogus'");
}

TEST(StudySpecMaterialize, DerivesFromBaseWithNewDefaults) {
  const LoadedStudy loaded = materialize_spec(parse_spec_toml(kSpecToml));
  ASSERT_NE(loaded.def, nullptr);
  const StudyDefinition& def = *loaded.def;
  const StudyDefinition* base = StudyRegistry::instance().find("efficiency");
  ASSERT_NE(base, nullptr);

  EXPECT_EQ(def.name, "eff_a32");
  EXPECT_EQ(def.group, base->group);
  EXPECT_EQ(def.description, "A32 variant");
  EXPECT_EQ(def.journal_study(), "eff_a32");
  EXPECT_EQ(def.options.default_seed, 11u);
  EXPECT_EQ(def.params.size(), base->params.size());
  EXPECT_EQ(def.params.find("type")->default_value, "A32");
  EXPECT_EQ(def.params.find("trials")->default_value, "3");
  // Untouched params keep the base defaults.
  EXPECT_EQ(def.params.find("baseline-hours")->default_value,
            base->params.find("baseline-hours")->default_value);
  ASSERT_EQ(loaded.sweep.size(), 1u);
  EXPECT_EQ(loaded.sweep[0].key, "mtbf-years");
}

TEST(StudySpecMaterialize, RejectsBadSpecs) {
  const auto expect_check = [](const char* toml, const char* needle) {
    try {
      (void)materialize_spec(parse_spec_toml(toml));
      FAIL() << "expected CheckError mentioning " << needle;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos) << e.what();
    }
  };
  expect_check("[study]\nname=\"x\"\nbase=\"no_such_study\"\n",
               "unknown base study 'no_such_study'");
  expect_check("[study]\nname=\"bad/name\"\nbase=\"efficiency\"\n", "study name");
  expect_check("[study]\nname=\"x\"\nbase=\"efficiency\"\n[params]\nbogus=1\n",
               "unknown parameter 'bogus'");
  expect_check("[study]\nname=\"x\"\nbase=\"efficiency\"\n[params]\ntrials=0\n",
               "below its minimum");
  expect_check("[study]\nname=\"x\"\nbase=\"efficiency\"\n[sweep]\nbogus=[1]\n",
               "unknown sweep axis 'bogus'");
  expect_check("[study]\nname=\"x\"\nbase=\"efficiency\"\n[sweep]\ntrials=[0]\n",
               "below its minimum");
}

TEST(StudySpecLoad, FileErrorsArePathPrefixed) {
  const std::string dir = ::testing::TempDir();
  const std::string bad_ext = dir + "spec_test_bad_ext.txt";
  write_file(bad_ext, "[study]\n");
  const std::string bad_toml = dir + "spec_test_bad.toml";
  write_file(bad_toml, "[study\n");

  for (const auto& [path, needle] :
       std::vector<std::pair<std::string, std::string>>{
           {dir + "spec_test_missing.toml", "cannot read"},
           {bad_ext, ".toml or .json"},
           {bad_toml, "line 1"}}) {
    try {
      (void)load_study_from_file(path);
      FAIL() << "expected CheckError for " << path;
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(path), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  }
}

// ---------------------------------------------------- schema round-trip --

ParamSchema random_schema(Pcg32& rng) {
  ParamSchema schema;
  const int count = static_cast<int>(rng.next_below(6));
  for (int i = 0; i < count; ++i) {
    ParamSpec spec;
    spec.key = "p" + std::to_string(i);
    spec.help = "help " + std::to_string(rng.next_u32() % 1000);
    switch (rng.next_below(3)) {
      case 0: {
        spec.type = ParamSpec::Type::kInt;
        const std::int64_t v = rng.uniform_int(-1000, 1000);
        spec.default_value = std::to_string(v);
        if (rng.next_below(2) != 0) spec.min_value = static_cast<double>(v - 10);
        if (rng.next_below(2) != 0) spec.max_value = static_cast<double>(v + 10);
        break;
      }
      case 1: {
        spec.type = ParamSpec::Type::kReal;
        const double v = rng.uniform(-100.0, 100.0);
        spec.default_value = format_real(v);
        if (rng.next_below(2) != 0) spec.min_value = v - 1.0;
        if (rng.next_below(2) != 0) spec.max_value = v + 1.0;
        break;
      }
      default:
        spec.type = ParamSpec::Type::kString;
        spec.default_value = "v\"" + std::to_string(rng.next_u32() % 100);
        break;
    }
    schema.add(std::move(spec));
  }
  return schema;
}

TEST(SchemaJson, RandomSchemasRoundTrip) {
  Pcg32 rng{20170529};
  for (int trial = 0; trial < 200; ++trial) {
    const ParamSchema schema = random_schema(rng);
    obs::JsonWriter w;
    write_schema_json(w, schema);
    const ParamSchema back = schema_from_json(recovery::parse_json(w.str()));

    ASSERT_EQ(back.size(), schema.size()) << w.str();
    for (std::size_t i = 0; i < schema.size(); ++i) {
      const ParamSpec& a = schema.specs()[i];
      const ParamSpec& b = back.specs()[i];
      EXPECT_EQ(a.key, b.key);
      EXPECT_EQ(a.type, b.type);
      EXPECT_EQ(a.help, b.help);
      EXPECT_EQ(a.default_value, b.default_value);
      EXPECT_EQ(a.min_value, b.min_value);
      EXPECT_EQ(a.max_value, b.max_value);
    }
    // Serializing the round-tripped schema reproduces the bytes.
    obs::JsonWriter w2;
    write_schema_json(w2, back);
    EXPECT_EQ(w.str(), w2.str());
  }
}

TEST(SchemaJson, EveryRegisteredSchemaRoundTrips) {
  for (const StudyDefinition* def : StudyRegistry::instance().all()) {
    obs::JsonWriter w;
    write_schema_json(w, def->params);
    const ParamSchema back = schema_from_json(recovery::parse_json(w.str()));
    obs::JsonWriter w2;
    write_schema_json(w2, back);
    EXPECT_EQ(w.str(), w2.str()) << def->name;
  }
}

TEST(SchemaJson, DescribeAndCatalogAreValidJson) {
  const StudyDefinition* def = StudyRegistry::instance().find("efficiency");
  ASSERT_NE(def, nullptr);
  const recovery::JsonValue describe =
      recovery::parse_json(describe_study_json(*def));
  EXPECT_EQ(describe.at("study").as_string(), "efficiency");
  EXPECT_EQ(describe.at("params").as_array().size(), def->params.size());

  const recovery::JsonValue catalog = recovery::parse_json(catalog_json());
  EXPECT_EQ(catalog.at("studies").as_array().size(),
            StudyRegistry::instance().size());
}

// --------------------------------------------------------------- sweep --

TEST(SweepPlan, CrossProductOrderIsDeclarationOrderLastAxisFastest) {
  const StudyDefinition* def = StudyRegistry::instance().find("efficiency");
  ASSERT_NE(def, nullptr);
  const SweepPlan plan = plan_sweep(
      *def, {SweepAxis{"type", {"A32", "C64"}}, SweepAxis{"mtbf-years", {"5", "10"}}},
      {{"trials", "2"}});
  ASSERT_EQ(plan.points.size(), 4u);
  EXPECT_EQ(plan.points[0].name, "efficiency__type=A32__mtbf-years=5");
  EXPECT_EQ(plan.points[1].name, "efficiency__type=A32__mtbf-years=10");
  EXPECT_EQ(plan.points[2].name, "efficiency__type=C64__mtbf-years=5");
  EXPECT_EQ(plan.points[3].name, "efficiency__type=C64__mtbf-years=10");
  for (const SweepPoint& point : plan.points) {
    ASSERT_EQ(point.bindings.size(), 3u);
    EXPECT_EQ(point.bindings[0].first, "trials");  // base bindings first
  }
}

TEST(SweepPlan, ParseAxisAndValidation) {
  const SweepAxis axis = parse_axis("mtbf-years=1,2.5,5,10");
  EXPECT_EQ(axis.key, "mtbf-years");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"1", "2.5", "5", "10"}));

  EXPECT_THROW((void)parse_axis("noequals"), CheckError);
  EXPECT_THROW((void)parse_axis("=1,2"), CheckError);
  EXPECT_THROW((void)parse_axis("k=1,,2"), CheckError);
  EXPECT_THROW((void)parse_axis("k=1,1"), CheckError);

  const StudyDefinition* def = StudyRegistry::instance().find("efficiency");
  ASSERT_NE(def, nullptr);
  EXPECT_THROW((void)plan_sweep(*def, {}), CheckError);
  EXPECT_THROW((void)plan_sweep(*def, {SweepAxis{"bogus", {"1"}}}), CheckError);
  EXPECT_THROW((void)plan_sweep(*def, {SweepAxis{"trials", {"1"}},
                                       SweepAxis{"trials", {"2"}}}),
               CheckError);
  EXPECT_THROW((void)plan_sweep(*def, {SweepAxis{"trials", {"0"}}}), CheckError);
  EXPECT_THROW((void)plan_sweep(*def, {SweepAxis{"trials", {"1"}}},
                                {{"bogus", "1"}}),
               CheckError);
}

// ------------------------------------------------------- e2e contracts --

/// A throwaway output directory under the gtest temp dir, wiped of any
/// state a previous test-binary run left behind.
std::string fresh_dir(const std::string& label) {
  const std::string dir = ::testing::TempDir() + "spec_test_" + label;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SpecEndToEnd, SpecDefinedStudyMatchesCompiledInByteForByte) {
  // The acceptance contract: `--from spec` and the equivalent compiled-in
  // invocation produce byte-identical artifacts.
  const StudyDefinition* base = StudyRegistry::instance().find("efficiency");
  ASSERT_NE(base, nullptr);
  const LoadedStudy loaded = materialize_spec(parse_spec_toml(
      "[study]\nname = \"eff_spec\"\nbase = \"efficiency\"\n"
      "[params]\ntrials = 1\ntype = \"A32\"\n"));

  const auto run_captured = [](const StudyDefinition& def, ParamSet params,
                               const std::string& out_path) {
    HarnessOptions options = default_harness_options(def);
    options.threads = 2;
    set_status_stream(stderr);
    int rc = -1;
    {
      StdoutCapture capture{out_path};
      rc = run_study(def, std::move(params), options);
      capture.finish();
    }
    set_status_stream(stdout);
    ASSERT_EQ(rc, 0);
  };

  const std::string dir = ::testing::TempDir();
  run_captured(*loaded.def, ParamSet{*loaded.def}, dir + "spec_defined.txt");
  ParamSet compiled_params{*base};
  compiled_params.set("trials", "1");
  compiled_params.set("type", "A32");
  run_captured(*base, std::move(compiled_params), dir + "compiled_in.txt");

  const std::string spec_bytes = read_file(dir + "spec_defined.txt");
  ASSERT_FALSE(spec_bytes.empty());
  EXPECT_EQ(spec_bytes, read_file(dir + "compiled_in.txt"));
}

TEST(SpecEndToEnd, SweepManifestIsThreadsInvariant) {
  const StudyDefinition* def = StudyRegistry::instance().find("efficiency");
  ASSERT_NE(def, nullptr);
  const SweepPlan plan = plan_sweep(*def, {SweepAxis{"type", {"A32", "C64"}}},
                                    {{"trials", "1"}});

  const auto run_with_threads = [&](unsigned threads, const std::string& label) {
    SuiteOptions options;
    options.out_dir = fresh_dir(label);
    options.threads = threads;
    EXPECT_EQ(run_sweep(plan, options), 0);
    return options.out_dir;
  };
  const std::string one = run_with_threads(1, "sweep_t1");
  const std::string four = run_with_threads(4, "sweep_t4");

  const std::string manifest_one = read_file(one + "/manifest.json");
  ASSERT_FALSE(manifest_one.empty());
  EXPECT_EQ(manifest_one, read_file(four + "/manifest.json"));
  for (const char* cell : {"efficiency__type=A32", "efficiency__type=C64"}) {
    const std::string txt_one = read_file(one + "/" + cell + ".txt");
    ASSERT_FALSE(txt_one.empty()) << cell;
    EXPECT_EQ(txt_one, read_file(four + "/" + cell + ".txt")) << cell;
  }
  EXPECT_EQ(verify_suite(one), 0);
  EXPECT_EQ(verify_suite(four), 0);
}

}  // namespace
}  // namespace xres::study
