#pragma once

/// \file study_main.hpp
/// The one generic driver main every study binary shares. A per-figure
/// bench executable is now a two-line alias:
///
///   #include "study/study_main.hpp"
///   int main(int argc, char** argv) {
///     return xres::study::study_main("fig1_efficiency_a32", argc, argv);
///   }
///
/// `xres run <study>` forwards here too, and `xres run --from spec.toml`
/// uses the definition overload with a runtime-materialized study.

#include <string>

#include "study/context.hpp"
#include "study/registry.hpp"

namespace xres::study {

/// Parse \p argv against the study's declared option surface, then run it.
/// Returns the process exit code (0; CliParser::kExitUsage paths exit
/// directly; recovery::kExitInterrupted after a drained shutdown). Unknown
/// \p name prints the catalog hint to stderr and returns 1.
int study_main(const std::string& name, int argc, const char* const* argv);

/// Same, for a definition the caller owns (a spec-file study materialized
/// at runtime — see spec.hpp).
int study_main(const StudyDefinition& def, int argc, const char* const* argv);

/// Programmatic entry (suite runner, sweep cells, tests): run \p def with
/// explicit parameter bindings and harness options, no CLI involved.
int run_study(const StudyDefinition& def, ParamSet params, HarnessOptions options);

}  // namespace xres::study
