// Reproduces paper Figure 5: dropped applications for each resource
// management technique using Parallel Recovery vs. using per-application
// Resilience Selection, over four arrival-pattern types (unbiased,
// high-memory, high-communication, large applications).

#include <cstdio>

#include "core/workload_study.hpp"
#include "obs/profile.hpp"
#include "study/context.hpp"
#include "study/platform_params.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  const study::ObsOptions& obs = ctx.options().obs;
  const std::uint32_t patterns = ctx.params().u32("patterns");
  const std::uint64_t seed = ctx.seed();
  const unsigned threads = ctx.threads();

  std::printf("Figure 5: Parallel Recovery vs. Resilience Selection\n\n");

  study::RecoveryCoordinator& coordinator = ctx.recovery();

  obs::PhaseProfiler profiler;
  profiler.begin("run");
  obs::MetricSet merged;
  Table table{{"arrival pattern", "scheduler", "resilience", "dropped %", "std %"}};
  for (WorkloadBias bias :
       {WorkloadBias::kUnbiased, WorkloadBias::kHighMemory,
        WorkloadBias::kHighCommunication, WorkloadBias::kLargeApps}) {
    WorkloadStudyConfig config;
    config.patterns = patterns;
    config.seed = seed;
    config.threads = threads;
    config.workload.bias = bias;
    config.collect_metrics = obs.metrics();
    study::apply_platform_params(config.machine, ctx.params());
    config.recovery = coordinator.options();
    // One journal batch per bias: the four studies share index space.
    config.recovery_batch = std::string{"bias:"} + to_string(bias);

    std::fprintf(stderr, "bias: %s\n", to_string(bias));
    obs::ProgressMeter meter{"pattern-run"};
    recovery::BatchReport report;
    const auto results =
        run_workload_study(config, figure5_combos(), meter.callback(), &report);
    coordinator.absorb(report);
    if (coordinator.interrupted()) return coordinator.finish();
    for (const WorkloadComboResult& r : results) {
      table.add_row({to_string(bias), to_string(r.combo.scheduler),
                     r.combo.policy.name(),
                     fmt_double(r.dropped_fraction.mean * 100.0, 2),
                     fmt_double(r.dropped_fraction.stddev * 100.0, 2)});
      // Bias and combo order are fixed, so the merge order (and the
      // artifact) is thread-count-invariant.
      if (r.metrics.has_value()) merged.merge(*r.metrics);
    }
  }

  profiler.begin("reduce");
  std::printf("%s", table.to_text().c_str());
  ctx.emit_csv(table);

  if (obs.metrics()) {
    std::printf("\nInstrumented breakdown (whole study):\n%s",
                merged.to_table().to_text().c_str());
    merged.write_json(obs.metrics_path);
    study::statusf("metrics written to %s\n", obs.metrics_path.c_str());
  }

  profiler.end();
  study::statusf("(phases: %s)\n", profiler.summary().c_str());
  return coordinator.finish();
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "fig5_resilience_selection";
  def.group = study::StudyGroup::kFigure;
  def.description =
      "paper Figure 5: Parallel Recovery vs. Resilience Selection over four "
      "workload biases";
  def.summary =
      "fig5_resilience_selection — paper Figure 5: Parallel Recovery vs. "
      "Resilience Selection per scheduler, over four workload biases.";
  def.options.default_seed = 20170530;
  def.options.csv = true;
  def.options.obs = study::StudyOptionsSpec::Obs::kNoTrace;
  def.params.integer("patterns", "arrival patterns per combo (paper: 50)", 50).min(1);
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
