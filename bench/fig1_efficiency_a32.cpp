// Reproduces paper Figure 1: resilience-technique efficiency at increasing
// percentages of total system use for the low-memory, low-communication
// application A32, with a 10-year processor MTBF.

#include "apps/app_type.hpp"
#include "study/figure.hpp"
#include "study/registry.hpp"

namespace {
using namespace xres;

int run(study::StudyContext& ctx) {
  EfficiencyStudyConfig config;
  config.app_type = app_type_by_name("A32");
  config.resilience.node_mtbf = Duration::years(10.0);
  return study::run_efficiency_figure(
      "Figure 1: efficiency vs. system share, application A32, MTBF 10 y",
      config, ctx);
}

study::StudyDefinition make() {
  study::StudyDefinition def;
  def.name = "fig1_efficiency_a32";
  def.group = study::StudyGroup::kFigure;
  def.description =
      "paper Figure 1: efficiency vs. system share for A32, node MTBF 10 years";
  def.summary =
      "fig1_efficiency_a32 — paper Figure 1: efficiency vs. application size "
      "for A32 (low memory, no communication), node MTBF 10 years.";
  // Historical journal identity: the figure title the pre-registry driver
  // passed to its RecoveryCoordinator, so old journals keep resuming.
  def.journal_id = "Figure 1: efficiency vs. system share, application A32, MTBF 10 y";
  def.options.csv = true;
  def.options.chart = true;
  def.options.report = true;
  def.params.integer("trials", "trials per bar (paper: 200)", 200).min(1);
  def.params.text("surrogate",
                  "sim | analytic | auto — answer cells from the analytic "
                  "surrogate with a per-cell error bound (docs/STUDIES.md)",
                  "sim");
  def.run = run;
  return def;
}

const study::Registration registered{make()};

}  // namespace
