// Tests for the adaptive checkpoint-interval extension: the runtime
// re-estimates the failure rate online and retunes the Eq.-4 interval.

#include <gtest/gtest.h>

#include "core/single_app_study.hpp"
#include "resilience/interval.hpp"
#include "resilience/planner.hpp"
#include "runtime/app_runtime.hpp"
#include "sim/simulation.hpp"

namespace xres {
namespace {

ExecutionPlan adaptive_plan(Rate planned_rate) {
  ExecutionPlan plan;
  plan.kind = TechniqueKind::kCheckpointRestart;
  plan.app = AppSpec{app_type_by_name("A32"), 100, 2000};
  plan.physical_nodes = 100;
  plan.baseline = Duration::minutes(2000.0);
  plan.work_target = plan.baseline;
  plan.levels = {
      CheckpointLevelSpec{Duration::minutes(2.0), Duration::minutes(2.0), 3}};
  plan.nesting = {1};
  plan.failure_rate = planned_rate;
  plan.checkpoint_quantum = daly_interval(plan.levels[0].save_cost, planned_rate);
  plan.adaptive_interval = true;
  plan.max_wall_time = Duration::infinity();
  return plan;
}

TEST(AdaptiveInterval, QuantumGrowsWhenNoFailuresObserved) {
  // Planner assumed a 30-minute MTBF, but no failures ever arrive: the
  // estimated rate decays and the interval grows past the planned one.
  const Rate planned = Rate::one_per(Duration::minutes(30.0));
  ExecutionPlan plan = adaptive_plan(planned);
  const Duration planned_quantum = plan.checkpoint_quantum;

  Simulation sim;
  ExecutionResult result;
  ResilientAppRuntime runtime{sim, std::move(plan), 1,
                              [&](const ExecutionResult& r) { result = r; }};
  runtime.start();
  sim.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GT(runtime.current_quantum(), planned_quantum * 2.0);
}

TEST(AdaptiveInterval, QuantumShrinksUnderHeavyFailures) {
  // Planner assumed a quiet machine (MTBF 10 d); reality delivers a
  // failure every 30 minutes: the interval must shrink toward the true
  // Daly optimum.
  const Rate planned = Rate::one_per(Duration::days(10.0));
  const Rate actual = Rate::one_per(Duration::minutes(30.0));
  ExecutionPlan plan = adaptive_plan(planned);
  const Duration planned_quantum = plan.checkpoint_quantum;
  plan.failure_rate = planned;  // the plan still believes the quiet rate

  const ResilienceConfig resilience;
  Simulation sim;
  ExecutionResult result;
  ResilientAppRuntime runtime{sim, plan, 1,
                              [&](const ExecutionResult& r) {
                                result = r;
                                sim.request_stop();
                              }};
  const SeverityModel severity = SeverityModel::single_level();
  AppFailureProcess failures{sim,
                             actual,
                             severity,
                             FailureDistribution::exponential(),
                             Pcg32{99},
                             [&runtime](const Failure& f) { runtime.on_failure(f); }};
  failures.start();
  runtime.start();
  sim.run();

  ASSERT_TRUE(result.completed);
  EXPECT_LT(runtime.current_quantum(), planned_quantum);
  // Converged near the true optimum (within 2x).
  const Duration optimum = daly_interval(Duration::minutes(2.0), actual);
  EXPECT_LT(runtime.current_quantum(), optimum * 2.0);
  EXPECT_GT(runtime.current_quantum(), optimum * 0.5);
}

TEST(AdaptiveInterval, StaticPlanNeverRetunes) {
  ExecutionPlan plan = adaptive_plan(Rate::one_per(Duration::minutes(30.0)));
  plan.adaptive_interval = false;
  const Duration planned_quantum = plan.checkpoint_quantum;
  Simulation sim;
  ExecutionResult result;
  ResilientAppRuntime runtime{sim, std::move(plan), 1,
                              [&](const ExecutionResult& r) { result = r; }};
  runtime.start();
  sim.run();
  EXPECT_EQ(runtime.current_quantum(), planned_quantum);
}

TEST(AdaptiveInterval, PlannerWiresConfigFlag) {
  const MachineSpec machine = MachineSpec::exascale();
  ResilienceConfig config;
  config.adaptive_interval = true;
  const AppSpec app{app_type_by_name("B32"), 12000, 1440};
  EXPECT_TRUE(make_plan(TechniqueKind::kCheckpointRestart, app, machine, config)
                  .adaptive_interval);
  EXPECT_TRUE(make_plan(TechniqueKind::kParallelRecovery, app, machine, config)
                  .adaptive_interval);
  // Multilevel keeps its optimizer-driven hierarchical schedule.
  EXPECT_FALSE(make_plan(TechniqueKind::kMultilevel, app, machine, config)
                   .adaptive_interval);
  config.adaptive_interval = false;
  EXPECT_FALSE(make_plan(TechniqueKind::kCheckpointRestart, app, machine, config)
                   .adaptive_interval);
}

TEST(AdaptiveInterval, RecoversEfficiencyUnderMisspecifiedMtbf) {
  // End-to-end: the machine is 4x less reliable than the planner assumed.
  // Adaptive retuning must beat the misspecified static interval on mean
  // efficiency.
  const MachineSpec machine = MachineSpec::exascale();
  const AppSpec app{app_type_by_name("B32"), 60000, 1440};

  ResilienceConfig assumed;  // 10-year MTBF assumption
  ResilienceConfig actual;
  actual.node_mtbf = Duration::years(2.5);

  // Plans built under the *assumed* reliability...
  ExecutionPlan static_plan =
      make_plan(TechniqueKind::kCheckpointRestart, app, machine, assumed);
  ExecutionPlan adaptive = static_plan;
  adaptive.adaptive_interval = true;
  // ...executed under the *actual* failure rate.
  const Rate true_rate =
      Rate::one_per(actual.node_mtbf) * static_cast<double>(app.nodes);
  static_plan.failure_rate = true_rate;
  adaptive.failure_rate = true_rate;
  // Keep the planner's (misspecified) quantum in both; only one may adapt.

  RunningStats static_eff;
  RunningStats adaptive_eff;
  for (std::uint64_t t = 0; t < 25; ++t) {
    static_eff.add(
        run_trial(PlanTrialSpec{static_plan, actual, FailureDistribution::exponential()},
                  derive_seed(3, t))
            .efficiency);
    adaptive_eff.add(
        run_trial(PlanTrialSpec{adaptive, actual, FailureDistribution::exponential()},
                  derive_seed(3, t))
            .efficiency);
  }
  EXPECT_GT(adaptive_eff.mean(), static_eff.mean());
}

}  // namespace
}  // namespace xres
