
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/distribution.cpp" "src/failure/CMakeFiles/xres_failure.dir/distribution.cpp.o" "gcc" "src/failure/CMakeFiles/xres_failure.dir/distribution.cpp.o.d"
  "/root/repo/src/failure/process.cpp" "src/failure/CMakeFiles/xres_failure.dir/process.cpp.o" "gcc" "src/failure/CMakeFiles/xres_failure.dir/process.cpp.o.d"
  "/root/repo/src/failure/replay.cpp" "src/failure/CMakeFiles/xres_failure.dir/replay.cpp.o" "gcc" "src/failure/CMakeFiles/xres_failure.dir/replay.cpp.o.d"
  "/root/repo/src/failure/severity.cpp" "src/failure/CMakeFiles/xres_failure.dir/severity.cpp.o" "gcc" "src/failure/CMakeFiles/xres_failure.dir/severity.cpp.o.d"
  "/root/repo/src/failure/trace.cpp" "src/failure/CMakeFiles/xres_failure.dir/trace.cpp.o" "gcc" "src/failure/CMakeFiles/xres_failure.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/xres_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
