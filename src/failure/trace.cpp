#include "failure/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace xres {

FailureTrace::FailureTrace(std::vector<Failure> failures)
    : failures_{std::move(failures)} {
  XRES_CHECK(std::is_sorted(failures_.begin(), failures_.end(),
                            [](const Failure& a, const Failure& b) {
                              return a.time < b.time;
                            }),
             "failure trace must be time-sorted");
}

FailureTrace FailureTrace::generate(Rate rate, Duration horizon,
                                    const SeverityModel& severity,
                                    FailureDistribution dist, Pcg32& rng) {
  XRES_CHECK(horizon > Duration::zero(), "trace horizon must be positive");
  std::vector<Failure> failures;
  TimePoint t = TimePoint::origin();
  for (;;) {
    const Duration gap = dist.draw(rng, rate);
    if (!gap.is_finite()) break;
    t += gap;
    if (t.since_origin() >= horizon) break;
    failures.push_back(Failure{t, severity.sample(rng)});
  }
  return FailureTrace{std::move(failures)};
}

Rate FailureTrace::empirical_rate() const {
  if (failures_.empty()) return Rate::zero();
  const Duration span = failures_.back().time.since_origin();
  if (span <= Duration::zero()) return Rate::zero();
  return Rate::per_second(static_cast<double>(failures_.size()) / span.to_seconds());
}

std::string FailureTrace::to_csv() const {
  std::string out = "time_seconds,severity\n";
  char line[64];
  for (const Failure& f : failures_) {
    std::snprintf(line, sizeof line, "%.9f,%d\n", f.time.to_seconds(), f.severity);
    out += line;
  }
  return out;
}

FailureTrace FailureTrace::from_csv(const std::string& csv) {
  std::istringstream in{csv};
  std::string line;
  XRES_CHECK(static_cast<bool>(std::getline(in, line)), "empty trace CSV");
  XRES_CHECK(line == "time_seconds,severity", "unexpected trace CSV header: " + line);
  std::vector<Failure> failures;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double t = 0.0;
    int severity = 0;
    XRES_CHECK(std::sscanf(line.c_str(), "%lf,%d", &t, &severity) == 2,
               "malformed trace CSV line: " + line);
    XRES_CHECK(severity >= 1, "severity must be >= 1 in trace CSV");
    failures.push_back(
        Failure{TimePoint::at(Duration::seconds(t)), severity});
  }
  return FailureTrace{std::move(failures)};
}

void FailureTrace::save(const std::string& path) const {
  // Atomic (temp + rename): a crash mid-write never leaves a torn trace.
  write_file_atomic(path, to_csv());
}

FailureTrace FailureTrace::load(const std::string& path) {
  std::ifstream f{path};
  XRES_CHECK(f.good(), "cannot open trace file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_csv(buf.str());
}

}  // namespace xres
