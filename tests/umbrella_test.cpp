// Compile-and-link check for the umbrella header plus a tiny end-to-end
// exercise going only through it.

#include "xres.hpp"

#include <gtest/gtest.h>

namespace xres {
namespace {

TEST(Umbrella, VersionIsConsistent) {
  EXPECT_EQ(kVersionMajor, 1);
  const std::string v = std::to_string(kVersionMajor) + "." +
                        std::to_string(kVersionMinor) + "." +
                        std::to_string(kVersionPatch);
  EXPECT_EQ(v, kVersionString);
}

TEST(Umbrella, EndToEndThroughSingleInclude) {
  const MachineSpec machine = MachineSpec::exascale();
  const AppSpec app{app_type_by_name("B32"), 12000, 360};
  const ResilienceConfig resilience;
  const ExecutionPlan plan =
      make_plan(TechniqueKind::kMultilevel, app, machine, resilience);
  const ExecutionResult result =
      run_trial(PlanTrialSpec{plan, resilience, FailureDistribution::exponential()}, 1);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.efficiency, 0.5);
}

}  // namespace
}  // namespace xres
