#include "sim/event_queue.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <new>
#include <utility>

#include "obs/perf.hpp"
#include "util/check.hpp"

namespace xres {

namespace {

/// Per-queue id tag. A process-wide counter guarantees distinct salts for
/// (the first 65536) concurrently live queues, making pending()/cancel() on
/// a foreign queue's id deterministically false. The value never influences
/// event ordering or any serialized artifact, so the cross-thread
/// construction order being nondeterministic is harmless.
std::uint64_t next_salt() {
  static std::atomic<std::uint64_t> counter{0};
  // 1..65535, never 0: keeps a value-initialized EventId{0} unanswerable by
  // any queue regardless of how many queues a process creates.
  return (counter.fetch_add(1, std::memory_order_relaxed) % 0xFFFFULL) + 1;
}

}  // namespace

EventQueue::EventQueue() : salt_{next_salt()} {}

EventQueue::~EventQueue() {
  obs::perf_add_engine(stat_scheduled_, stat_popped_, stat_cancelled_,
                       stat_compactions_);
}

bool EventQueue::decode(EventId id, std::uint32_t& slot,
                        std::uint32_t& generation) const noexcept {
  const auto raw = static_cast<std::uint64_t>(id);
  if ((raw >> (kIndexBits + kGenBits)) != salt_) return false;
  slot = static_cast<std::uint32_t>(raw & kIndexMask);
  generation = static_cast<std::uint32_t>((raw >> kIndexBits) & kGenMask);
  return true;
}

std::uint64_t EventQueue::time_to_bits(double t) noexcept {
  t += 0.0;  // -0.0 + 0.0 == +0.0: keep the two zeros tied
  std::uint64_t bits;
  std::memcpy(&bits, &t, sizeof bits);
  return (bits & (1ULL << 63)) != 0 ? ~bits : bits | (1ULL << 63);
}

double EventQueue::bits_to_time(std::uint64_t bits) noexcept {
  bits = (bits & (1ULL << 63)) != 0 ? bits & ~(1ULL << 63) : ~bits;
  double t;
  std::memcpy(&t, &bits, sizeof t);
  return t;
}

void EventQueue::heap_grow(std::size_t logical_capacity) const {
  if (logical_capacity <= heap_capacity_) return;
  const std::size_t new_capacity =
      std::max({heap_capacity_ * 2, logical_capacity, std::size_t{256}});
  // Physical layout: 3 pad cells before the root plus trailing cells so
  // the deepest child group can always be read in full (see sift_down).
  const std::size_t physical = new_capacity + 8;
  auto* raw = static_cast<HeapEntry*>(
      ::operator new[](physical * sizeof(HeapEntry), std::align_val_t{64}));
  std::size_t used = 0;
  if (heap_size_ > 0) {
    // HeapEntry is trivially copyable; relocate the whole physical span
    // (the 3 pad cells hold sentinels and come along for free).
    used = heap_size_ + 3;
    std::memcpy(raw, heap_.get(), used * sizeof(HeapEntry));
  }
  std::fill(raw + used, raw + physical, kSentinel);
  heap_.reset(raw);
  heap_capacity_ = new_capacity;
}

void EventQueue::heap_push(const HeapEntry& entry) {
  heap_grow(heap_size_ + 1);
  const std::size_t logical = heap_size_++;
  at(logical) = entry;
  sift_up(logical);
}

void EventQueue::heap_pop_root() const {
  const std::size_t n = --heap_size_;
  if (n == 0) {
    at(0) = kSentinel;
    return;
  }
  const HeapEntry tail = at(n);
  at(n) = kSentinel;
  // Cascade the min-child hole to the bottom — one comparison round per
  // level, no "is the tail small enough to stop?" check — then sift the
  // tail up from the hole. The tail came from the deepest layer, so it
  // almost always belongs near the bottom and the up-walk is ~0 steps;
  // the classic move-tail-to-root-and-sift-down pays an extra comparison
  // and a hard-to-predict branch at every level instead.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) break;
    // Load the whole child group up front: the four loads share one cache
    // line and issue in parallel, and the tournament then selects values
    // already in registers — the alternative (selecting an index, then
    // loading through it) puts a dependent load after every comparison.
    const HeapEntry e0 = at(first_child);
    const HeapEntry e1 = at(first_child + 1);
    const HeapEntry e2 = at(first_child + 2);
    const HeapEntry e3 = at(first_child + 3);
    // Whichever child wins, its own child group is one of these four
    // lines; fetching all four now overlaps the next level's (otherwise
    // dependent) loads with this level's tournament. Past-the-end
    // prefetches are harmless.
    __builtin_prefetch(&at(4 * first_child + 1));
    __builtin_prefetch(&at(4 * first_child + 5));
    __builtin_prefetch(&at(4 * first_child + 9));
    __builtin_prefetch(&at(4 * first_child + 13));
    const bool c01 = earlier(e1, e0);
    const bool c23 = earlier(e3, e2);
    const HeapEntry m01 = c01 ? e1 : e0;
    const HeapEntry m23 = c23 ? e3 : e2;
    const bool cf = earlier(m23, m01);
    at(hole) = cf ? m23 : m01;
    hole = (cf ? first_child + 2 + static_cast<std::size_t>(c23)
               : first_child + static_cast<std::size_t>(c01));
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(tail, at(parent))) break;
    at(hole) = at(parent);
    hole = parent;
  }
  at(hole) = tail;
}

void EventQueue::sift_up(std::size_t logical) {
  const HeapEntry entry = at(logical);
  while (logical > 0) {
    const std::size_t parent = (logical - 1) / 4;
    if (!earlier(entry, at(parent))) break;
    at(logical) = at(parent);
    logical = parent;
  }
  at(logical) = entry;
}

void EventQueue::sift_down(std::size_t logical) const {
  const std::size_t n = heap_size_;
  const HeapEntry entry = at(logical);
  for (;;) {
    const std::size_t first_child = 4 * logical + 1;
    if (first_child >= n) break;
    // The four children are physically contiguous and line-aligned, and
    // sentinel padding past the logical size means the full group can be
    // read with no bounds check. The tournament min keeps the two
    // first-round comparisons independent and compiles to conditional
    // moves — a serial scan here mispredicts ~50% per level on random
    // keys, which dominated sift cost.
    const std::size_t b01 = earlier(at(first_child + 1), at(first_child))
                                ? first_child + 1
                                : first_child;
    const std::size_t b23 = earlier(at(first_child + 3), at(first_child + 2))
                                ? first_child + 3
                                : first_child + 2;
    const std::size_t best = earlier(at(b23), at(b01)) ? b23 : b01;
    if (!earlier(at(best), entry)) break;
    at(logical) = at(best);
    logical = best;
  }
  at(logical) = entry;
}

void EventQueue::renumber_seqs() {
  // Order of the outstanding entries by their (not yet wrapped) 32-bit
  // seqs; reassigning ranks in that order preserves every pairwise
  // comparison, so the heap remains valid and replay is unaffected.
  std::vector<std::uint32_t> order(heap_size_);
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    return at(a).seq() < at(b).seq();
  });
  std::uint64_t rank = 0;
  for (const std::uint32_t i : order) {
    HeapEntry& e = at(i);
    e.lo = (rank++ << 32) | (e.lo & 0xFFFFFFFFULL);
  }
  next_seq_ = rank;
}

EventId EventQueue::schedule(TimePoint when, EventCallback callback) {
  XRES_CHECK(static_cast<bool>(callback), "event callback must be non-empty");
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    XRES_CHECK(tags_.size() <= kIndexMask, "event queue slot space exhausted");
    idx = static_cast<std::uint32_t>(tags_.size());
    tags_.push_back(0);
    callbacks_.emplace_back();
  }
  const std::uint32_t generation = ++tags_[idx];  // even (free) -> odd (pending)
  callbacks_[idx].callback = std::move(callback);
  if (next_seq_ > 0xFFFFFFFFULL) renumber_seqs();
  heap_push(HeapEntry{time_to_bits(when.to_seconds()),
                      ((next_seq_++ & 0xFFFFFFFFULL) << 32) | idx});
  ++live_count_;
  ++stat_scheduled_;
  return encode(idx, generation);
}

bool EventQueue::cancel(EventId id) noexcept {
  std::uint32_t idx;
  std::uint32_t generation;
  if (!decode(id, idx, generation)) return false;
  if (idx >= tags_.size()) return false;
  if ((tags_[idx] & kGenMask) != generation) return false;  // fired/cancelled/stale
  ++tags_[idx];  // odd (pending) -> even (dead); invalidates all handles
  callbacks_[idx].callback.reset();
  --live_count_;
  ++stat_cancelled_;
  if (heap_size_ >= 64 && (heap_size_ - live_count_) * 2 >= heap_size_) compact_heap();
  return true;
}

void EventQueue::compact_heap() {
  ++stat_compactions_;
  std::size_t out = 0;
  for (std::size_t l = 0; l < heap_size_; ++l) {
    const HeapEntry e = at(l);
    if ((tags_[e.slot()] & 1U) != 0) {
      at(out++) = e;
    } else {
      free_slots_.push_back(e.slot());
    }
  }
  for (std::size_t l = out; l < heap_size_; ++l) at(l) = kSentinel;
  heap_size_ = out;
  // Bottom-up heapify: every pairwise (hi, lo) comparison is unchanged, so
  // the pop order — and therefore replay — is unaffected.
  if (out > 1) {
    for (std::size_t l = (out - 2) / 4 + 1; l-- > 0;) sift_down(l);
  }
}

bool EventQueue::pending(EventId id) const noexcept {
  std::uint32_t idx;
  std::uint32_t generation;
  if (!decode(id, idx, generation)) return false;
  if (idx >= tags_.size()) return false;
  // Ids are only minted from odd (pending) generations, so the tag compare
  // alone answers liveness.
  return (tags_[idx] & kGenMask) == generation;
}

void EventQueue::skip_dead() const {
  while (heap_size_ > 0) {
    const std::uint32_t idx = at(0).slot();
    if ((tags_[idx] & 1U) != 0) return;  // live root
    free_slots_.push_back(idx);
    heap_pop_root();
  }
}

std::optional<TimePoint> EventQueue::next_time() const {
  skip_dead();
  if (heap_size_ == 0) return std::nullopt;
  return TimePoint::at(Duration::seconds(bits_to_time(at(0).hi)));
}

std::optional<FiredEvent> EventQueue::pop() {
  skip_dead();
  if (heap_size_ == 0) return std::nullopt;
  const HeapEntry top = at(0);
  heap_pop_root();

  const std::uint32_t slot = top.slot();
  const std::uint32_t generation = tags_[slot];
  ++tags_[slot];  // odd (pending) -> even (fired)
  // Construct in the returned optional directly: the callback moves once,
  // slab -> result.
  std::optional<FiredEvent> fired;
  fired.emplace(encode(slot, generation),
                TimePoint::at(Duration::seconds(bits_to_time(top.hi))),
                std::move(callbacks_[slot].callback));
  free_slots_.push_back(slot);
  --live_count_;
  ++stat_popped_;
  return fired;
}

void EventQueue::clear() {
  for (std::size_t l = 0; l < heap_size_; ++l) {
    const std::uint32_t idx = at(l).slot();
    if ((tags_[idx] & 1U) != 0) {
      ++tags_[idx];
      callbacks_[idx].callback.reset();
    }
    free_slots_.push_back(idx);
    at(l) = kSentinel;
  }
  heap_size_ = 0;
  live_count_ = 0;
}

}  // namespace xres
